// Ablation: CDN answer TTL.
//
// The paper attributes the cellular DNS miss tail (Fig. 7) to "the short
// TTLs used by CDNs". This ablation sweeps the CDN answer TTL and
// measures the consequences on the fleet: the back-to-back miss tail and
// the first-lookup resolution median.
#include <cstdio>

#include "analysis/figures.h"
#include "core/study.h"

int main() {
  using namespace curtain;
  std::printf("================================================================\n");
  std::printf("Ablation — CDN answer TTL vs cache effectiveness (Fig. 7's"
              " mechanism)\n");
  std::printf("================================================================\n");
  std::printf("  %-8s %-22s %-22s %s\n", "TTL(s)", "2nd-lookup miss tail",
              "1st-lookup p50 (ms)", "1st-lookup p90 (ms)");

  for (const uint32_t ttl : {5u, 30u, 120u, 600u}) {
    core::Study study(core::Scenario::paper_2014()
                          .with_seed(424242)
                          .with_scale(0.01)
                          .with_cdn_answer_ttl(ttl));
    study.run();

    const auto groups = analysis::fig7_cache_effect(study.records());
    const auto& first = groups.at("1st Lookup");
    const auto& second = groups.at("2nd Lookup");
    const double threshold = first.quantile(0.75);
    const double miss_tail = 1.0 - second.fraction_at_or_below(threshold);
    std::printf("  %-8u %18.1f %%  %18.1f %21.1f\n", ttl, miss_tail * 100.0,
                first.median(), first.quantile(0.9));
  }
  std::printf("\nLonger TTLs let every cache on the path absorb repeats, but\n"
              "pin clients to a replica set for longer — the CDN's agility/\n"
              "cacheability trade-off.\n");
  return 0;
}
