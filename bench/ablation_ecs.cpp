// Ablation: EDNS client-subnet (RFC 7871) on Google Public DNS.
//
// The paper shows resolver-based mapping mislocalizes cellular clients;
// its related work (Otto et al., IMC'12) points to ECS as the fix. This
// ablation builds two otherwise identical worlds — Google DNS with and
// without ECS — and measures the RTT from devices to the replicas each
// configuration selects, against the carrier LDNS path and the
// perfect-localization oracle.
#include <cstdio>

#include "cdn/domains.h"
#include "cellular/device.h"
#include "core/world.h"
#include "dns/stub.h"
#include "measure/probes.h"

namespace {

using namespace curtain;

struct Sample {
  double sum = 0.0;
  int n = 0;
  void add(double v) {
    sum += v;
    ++n;
  }
  double mean() const { return n == 0 ? 0.0 : sum / n; }
};

/// Mean RTT from a fleet sample to the replicas selected via `resolver_ip`
/// in `world`.
Sample measure_path(core::World& world, size_t carrier_index,
                    net::Ipv4Addr resolver_ip, uint64_t seed) {
  auto& carrier = world.carrier(carrier_index);
  measure::ProbeEngine probes(
      measure::WorldView{world.topology(), world.registry()});
  net::Rng rng(seed);
  Sample sample;
  const auto host = dns::DnsName::parse("m.yelp.com");
  for (int d = 0; d < 6; ++d) {
    const auto& metros = carrier.profile().country == "KR" ? net::kr_metros()
                                                           : net::us_metros();
    cellular::Fleet fleet(&carrier, 1);
    fleet.enroll(0, static_cast<uint64_t>(d + 1),
                 metros[static_cast<size_t>(d) % metros.size()].location);
    cellular::Device device = fleet.device(0);
    for (int hour = 0; hour < 72; hour += 6) {
      const auto now = net::SimTime::from_hours(hour);
      const auto snapshot = device.begin_experiment(now, rng);
      const net::Ipv4Addr target = resolver_ip.is_unspecified()
                                       ? snapshot.configured_resolver
                                       : resolver_ip;
      dns::StubResolver stub(device.gateway_node(), snapshot.public_ip,
                             world.topology(), world.registry());
      const auto result = stub.query(target, *host, dns::RRType::kA, now, rng);
      if (!result.responded || result.addresses().empty()) continue;
      const measure::ProbeOrigin origin{device.gateway_node(),
                                        snapshot.public_ip, 0.0};
      const auto ping = probes.ping(origin, result.addresses()[0], now, rng);
      if (ping.responded) sample.add(ping.rtt_ms);
    }
  }
  return sample;
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("Ablation — EDNS client-subnet on Google Public DNS\n");
  std::printf("  (RTT to the replica each DNS path selects; lower = better"
              " localization)\n");
  std::printf("================================================================\n");
  std::fprintf(stderr, "[bench] building baseline and ECS worlds...\n");

  core::World baseline(core::Scenario::paper_2014());
  core::World with_ecs(core::Scenario::paper_2014().with_google_ecs(true));

  const net::Ipv4Addr google{8, 8, 8, 8};
  std::printf("  %-12s %12s %12s %12s\n", "Carrier", "cell LDNS",
              "Google", "Google+ECS");
  for (size_t c = 0; c < baseline.carriers().size(); ++c) {
    const uint64_t seed = 1000 + c;
    const Sample cell = measure_path(baseline, c, net::Ipv4Addr{}, seed);
    const Sample plain = measure_path(baseline, c, google, seed);
    const Sample ecs = measure_path(with_ecs, c, google, seed);
    std::printf("  %-12s %9.1f ms %9.1f ms %9.1f ms\n",
                baseline.carrier(c).profile().name.c_str(), cell.mean(),
                plain.mean(), ecs.mean());
  }
  std::printf("\nECS restores client-keyed mapping through a remote public\n"
              "resolver — the 'natural evolution of DNS' the paper's related\n"
              "work anticipated.\n");
  return 0;
}
