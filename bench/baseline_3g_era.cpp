// Baseline comparison: the 3G era (Xu et al., SIGMETRICS'11) vs the
// paper's LTE era.
//
// Xu et al. concluded that with 4-6 egress points and radio latency
// dominating, "choosing content servers based on local DNS servers is
// sufficiently accurate". The paper's thesis is that LTE flips this: more
// egress points and a fast radio make replica mislocalization *matter*.
// This bench builds both worlds and measures, for the same fleet logic,
// how much of the end-to-end replica TTFB the DNS-driven replica choice
// actually costs in each era.
#include <cstdio>

#include "cellular/device.h"
#include "core/world.h"
#include "dns/stub.h"
#include "measure/probes.h"

namespace {

using namespace curtain;

struct EraStats {
  double access_sum = 0.0;   ///< radio access RTT per replica fetch
  double ttfb_sum = 0.0;     ///< total HTTP TTFB to the assigned replica
  double penalty_sum = 0.0;  ///< assigned-replica RTT minus best-replica RTT
  int n = 0;
};

EraStats measure_era(core::World& world, uint64_t seed) {
  EraStats stats;
  measure::ProbeEngine probes(
      measure::WorldView{world.topology(), world.registry()});
  auto& provider = world.cdn("curtaincdn");
  const auto host = dns::DnsName::parse("m.yelp.com");
  net::Rng rng(seed);

  for (size_t c = 0; c < world.carriers().size(); ++c) {
    auto& carrier = world.carrier(c);
    if (carrier.profile().country != "US") continue;
    for (int d = 0; d < 8; ++d) {
      cellular::Fleet fleet(&carrier, 1);
      fleet.enroll(
          0, static_cast<uint64_t>(c * 100 + static_cast<size_t>(d)),
          net::us_metros()[static_cast<size_t>(d) % net::us_metros().size()]
              .location);
      cellular::Device device = fleet.device(0);
      for (int hour = 0; hour < 48; hour += 4) {
        const auto now = net::SimTime::from_hours(hour);
        const auto snapshot = device.begin_experiment(now, rng);
        dns::StubResolver stub(device.gateway_node(), snapshot.public_ip,
                               world.topology(), world.registry());
        const double access = device.access_rtt_ms(now, rng);
        const auto result = stub.query(snapshot.configured_resolver, *host,
                                       dns::RRType::kA, now, rng, access);
        if (!result.responded || result.addresses().empty()) continue;

        const measure::ProbeOrigin wired{device.gateway_node(),
                                         snapshot.public_ip, 0.0};
        const auto assigned =
            probes.ping(wired, result.addresses()[0], now, rng);
        const auto& best = provider.nearest_cluster(snapshot.location, "US");
        const auto optimal = probes.ping(wired, best.replica_ips[0], now, rng);
        if (!assigned.responded || !optimal.responded) continue;

        const measure::ProbeOrigin radio{device.gateway_node(),
                                         snapshot.public_ip,
                                         device.access_rtt_ms(now, rng)};
        const auto http =
            probes.http_get(radio, result.addresses()[0], now, rng);
        if (!http.responded) continue;

        stats.access_sum += radio.access_rtt_ms;
        stats.ttfb_sum += http.ttfb_ms;
        stats.penalty_sum +=
            std::max(0.0, assigned.rtt_ms - optimal.rtt_ms);
        ++stats.n;
      }
    }
  }
  return stats;
}

void print_era(const char* label, const EraStats& stats, size_t egress_total) {
  const double n = stats.n;
  const double penalty = stats.penalty_sum / n;
  const double ttfb = stats.ttfb_sum / n;
  std::printf("  %-10s access RTT %.0f ms   replica TTFB %.0f ms   "
              "mislocalization cost %.1f ms (%.0f%% of TTFB)   "
              "US egress points %zu\n",
              label, stats.access_sum / n, ttfb, penalty,
              100.0 * penalty / ttfb, egress_total);
}

size_t egress_count(const core::World& world) {
  size_t total = 0;
  for (const auto& carrier : world.carriers()) {
    if (carrier->profile().country == "US") {
      total += static_cast<size_t>(carrier->profile().egress_points);
    }
  }
  return total;
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("Baseline — 3G era (Xu et al. '11) vs the paper's LTE era\n");
  std::printf("================================================================\n");
  std::fprintf(stderr, "[bench] building 3G-era and LTE worlds...\n");

  core::World xu_world(
      core::Scenario::paper_2014().with_carriers(cellular::xu_era_carriers()));
  core::World lte_world;

  const EraStats g3 = measure_era(xu_world, 3);
  const EraStats lte = measure_era(lte_world, 3);
  print_era("3G era", g3, egress_count(xu_world));
  print_era("LTE era", lte, egress_count(lte_world));

  const double g3_share = g3.penalty_sum / g3.ttfb_sum;
  const double lte_share = lte.penalty_sum / lte.ttfb_sum;
  std::printf("\nReplica mislocalization is %.1fx more significant relative\n"
              "to end-to-end latency under LTE — the paper's motivating\n"
              "claim for revisiting DNS-based replica selection (§2.1).\n",
              lte_share / g3_share);
  return 0;
}
