// Shared scaffolding for the per-figure/table bench binaries.
//
// Every bench runs one campaign at CURTAIN_SCALE (default 0.05 of the
// paper's five months; CURTAIN_SCALE=1 reproduces the full 28k-experiment
// study) and prints the rows/series of its paper figure or table.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "analysis/figures.h"
#include "core/study.h"
#include "net/rng.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/flags.h"

namespace curtain::bench {

/// Rng stream for one micro-bench, derived from CURTAIN_SEED via the same
/// mix_key/hash_tag discipline as the simulator's own streams.
inline net::Rng bench_rng(std::string_view tag) {  // lint: rng-seed
  return net::Rng(net::mix_key(util::study_seed(), net::hash_tag(tag)));
}

// Wall-clock use below is waived: it feeds only the bench run records'
// wall_ms field, never a simulated result.

/// Wall-clock anchor for the whole bench process (first call wins).
inline std::chrono::steady_clock::time_point& bench_start() {  // lint: wallclock
  static auto start = std::chrono::steady_clock::now();  // lint: wallclock, shared-static (process-wide bench anchor)
  return start;
}

/// Emits the bench's one-line machine-readable run record to stdout:
/// name, wall-clock, peak RSS, and the headline obs counters. Greppable
/// as `"bench_record"` from a loop over `build/bench/*`.
inline void emit_json_record(const std::string& name) {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - bench_start())  // lint: wallclock
          .count();
  const auto snapshot = obs::metrics().snapshot();
  static constexpr const char* kKeyCounters[] = {
      "curtain_dns_queries_total",        "curtain_dns_cache_hits_total",
      "curtain_cdn_mapping_lookups_total", "curtain_measure_experiments_total",
      "curtain_measure_resolutions_total"};
  std::string out = "{\"bench_record\":\"" + name + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"wall_ms\":%.1f", wall_ms);
  out += buf;
  // Peak RSS belongs in the perf evidence alongside wall-clock: a change
  // that trades memory for speed must show up in the same record.
  std::snprintf(buf, sizeof(buf), ",\"peak_rss_mb\":%.1f",
                static_cast<double>(obs::read_peak_rss_bytes()) /
                    (1024.0 * 1024.0));
  out += buf;
  for (const char* key : kKeyCounters) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                  static_cast<unsigned long long>(snapshot.counter_value(key)));
    out += buf;
  }
  out += "}";
  std::printf("%s\n", out.c_str());
}

/// Name registered by banner(); the atexit hook emits its record.
inline std::string& bench_name() {
  static std::string name;  // lint: shared-static (single-threaded bench harness)
  return name;
}

namespace detail {
inline void emit_record_at_exit() {
  if (!bench_name().empty()) emit_json_record(bench_name());
}
}  // namespace detail

/// When CURTAIN_BENCH_CSV_DIR is set, every CDF a bench prints is also
/// written as `<dir>/<exp_id>.csv` (label,quantile,value rows) for
/// external plotting.
class CsvSink {
 public:
  explicit CsvSink(const std::string& exp_id) {
    const std::string dir = util::env_string("CURTAIN_BENCH_CSV_DIR", "");
    if (dir.empty()) return;
    std::string slug;
    for (const char c : exp_id) {
      slug += std::isalnum(static_cast<unsigned char>(c))
                  ? static_cast<char>(std::tolower(c))
                  : '_';
    }
    file_ = std::make_unique<util::CsvFile>(dir + "/" + slug + ".csv");
    if (!file_->valid()) {
      file_.reset();
      return;
    }
    file_->writer().row({"series", "quantile", "value"});
  }

  void add(const std::string& label, const analysis::Ecdf& cdf) {
    if (!file_) return;
    for (const auto& [p, v] : cdf.curve(41)) {
      file_->writer().typed_row(label, p, v);
    }
  }

 private:
  std::unique_ptr<util::CsvFile> file_;
};

/// Process-wide sink bound by banner(); null until then.
inline std::unique_ptr<CsvSink>& csv_sink() {
  static std::unique_ptr<CsvSink> sink;  // lint: shared-static (single-threaded bench harness)
  return sink;
}

/// Builds, runs and returns the study for this bench process.
inline core::Study& study() {
  static core::Study* instance = [] {  // lint: shared-static (one campaign per bench process)
    auto* s = new core::Study(core::Scenario::from_env());
    std::fprintf(stderr,
                 "[bench] running campaign: scale=%.3f seed=%llu shards=%d ...\n",
                 s->scenario().scale,
                 static_cast<unsigned long long>(s->scenario().seed),
                 s->scenario().shards);
    s->run();
    std::fprintf(stderr, "[bench] campaign done: %s\n", s->summary().c_str());
    return s;
  }();
  return *instance;
}

inline void banner(const char* exp_id, const char* description) {
  bench_start();
  if (bench_name().empty()) {
    bench_name() = exp_id;
    std::atexit(detail::emit_record_at_exit);
  }
  csv_sink() = std::make_unique<CsvSink>(exp_id);
  std::printf("================================================================\n");
  std::printf("%s — %s\n", exp_id, description);
  std::printf("  (Behind the Curtain, IMC'14 reproduction; dataset: %s)\n",
              study().summary().c_str());
  std::printf("================================================================\n");
}

/// Prints one labelled CDF as a quantile row (and mirrors it to the CSV
/// sink when CURTAIN_BENCH_CSV_DIR is set; `series` names the CSV series,
/// defaulting to the display label).
inline void print_cdf_row(const std::string& label, const analysis::Ecdf& cdf,
                          const std::string& series = {}) {
  std::printf("  %-22s %s\n", label.c_str(), analysis::describe_cdf(cdf).c_str());
  if (csv_sink()) csv_sink()->add(series.empty() ? label : series, cdf);
}

/// Prints a group of CDFs (one figure panel).
inline void print_group(const std::string& title,
                        const analysis::CdfGroup& group) {
  std::printf("%s\n", title.c_str());
  for (const auto& [label, cdf] : group) {
    print_cdf_row(label, cdf, title + "/" + label);
  }
}

/// Prints full CDF curves as CSV-ish series rows for external plotting.
inline void print_curves(const analysis::CdfGroup& group, int points = 11) {
  for (const auto& [label, cdf] : group) {
    if (cdf.empty()) continue;
    std::printf("    series,%s", label.c_str());
    for (const auto& [p, v] : cdf.curve(points)) {
      std::printf(",%.0f%%=%.1f", p * 100.0, v);
    }
    std::printf("\n");
  }
}

#ifdef BENCHMARK_BENCHMARK_H_
/// main() body for the micro benches (include benchmark/benchmark.h before
/// this header): runs google-benchmark, then emits the same one-line JSON
/// run record the figure benches print.
inline int run_micro_benchmarks(const char* name, int argc, char** argv) {
  bench_start();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json_record(name);
  return 0;
}
#endif

}  // namespace curtain::bench
