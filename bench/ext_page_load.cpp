// Extension: page-load time vs ping as a replica comparison metric.
//
// The paper (§3.3) follows Gember et al. in preferring ping latency over
// page-load time because PLT is noisier and context-dependent. With the
// PLT model we can quantify both claims:
//   1. stability — coefficient of variation of repeated PLTs vs pings to
//      the same replica;
//   2. impact — how much a mislocalized replica inflates full page loads
//      (the end-user cost behind Fig. 2's latency penalties).
#include <cmath>
#include <cstdio>

#include "cellular/device.h"
#include "core/world.h"
#include "measure/pageload.h"

namespace {

using namespace curtain;

struct Series {
  double sum = 0.0;
  double sum_sq = 0.0;
  int n = 0;
  void add(double v) {
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  double mean() const { return n == 0 ? 0.0 : sum / n; }
  double cv() const {
    if (n < 2) return 0.0;
    const double m = mean();
    const double variance = sum_sq / n - m * m;
    return m > 0 ? std::sqrt(std::max(0.0, variance)) / m : 0.0;
  }
};

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("Extension — page-load time vs ping as replica metrics (§3.3)\n");
  std::printf("================================================================\n");

  core::World world;
  const measure::WorldView view{world.topology(), world.registry()};
  measure::PageLoadEstimator plt(view);
  measure::ProbeEngine probes(view);
  auto& provider = world.cdn("curtaincdn");
  const auto page = measure::PageSpec::mobile_default();
  net::Rng rng(net::hash_tag("ext-page-load"));

  std::printf("  %-12s %10s %10s %12s %12s %14s\n", "Carrier", "ping CV",
              "PLT CV", "PLT best", "PLT assigned", "PLT inflation");
  for (size_t c = 0; c < world.carriers().size(); ++c) {
    auto& carrier = world.carrier(c);
    cellular::Fleet fleet(&carrier, 1);
    fleet.enroll(0, static_cast<uint64_t>(c + 1),
                 carrier.profile().country == "KR"
                     ? net::GeoPoint{37.57, 126.98}
                     : net::GeoPoint{33.75, -84.39});
    cellular::Device device = fleet.device(0);
    Series ping_series;
    Series plt_series;
    Series plt_best;
    Series plt_assigned;
    for (int hour = 0; hour < 96; hour += 2) {
      const auto now = net::SimTime::from_hours(hour);
      const auto snapshot = device.begin_experiment(now, rng);
      // Control for radio context like the paper (§3.3): LTE-only, so the
      // metric comparison is not drowned by technology switching.
      if (snapshot.radio != cellular::RadioTech::kLte) continue;
      const auto pair = carrier.select_pair(0, snapshot.public_ip, now, rng);
      if (pair.external == nullptr) continue;
      const auto& assigned = provider.cluster_for_resolver(pair.external->ip());
      const auto& best = provider.nearest_cluster(
          snapshot.location, carrier.profile().country);

      // Bootstrap ping first (the paper's script, §3.2): pay the RRC
      // promotion before the measurements, not inside them.
      device.access_rtt_ms(now, rng);

      // Stability: repeated ping vs repeated PLT to the *same* replica.
      const measure::ProbeOrigin origin{device.gateway_node(),
                                        snapshot.public_ip,
                                        device.access_rtt_ms(now, rng)};
      const auto ping = probes.ping(origin, best.replica_ips[0], now, rng);
      if (ping.responded) ping_series.add(ping.rtt_ms);
      const auto best_load = plt.load(origin, best.replica_ips[0],
                                      snapshot.radio, 45.0, page, now, rng);
      if (best_load.completed) {
        plt_series.add(best_load.plt_ms);
        plt_best.add(best_load.plt_ms);
      }
      const auto assigned_load = plt.load(origin, assigned.replica_ips[0],
                                          snapshot.radio, 45.0, page, now, rng);
      if (assigned_load.completed) plt_assigned.add(assigned_load.plt_ms);
    }
    std::printf("  %-12s %9.2f %10.2f %9.0f ms %9.0f ms %12.1f%%\n",
                carrier.profile().name.c_str(), ping_series.cv(),
                plt_series.cv(), plt_best.mean(), plt_assigned.mean(),
                (plt_assigned.mean() / plt_best.mean() - 1.0) * 100.0);
  }
  std::printf("\nNote: with only network effects modeled, long transfers\n"
              "actually smooth PLT (lower CV). Gember et al.'s instability\n"
              "argument — and the paper's choice of ping — rests on *device*\n"
              "context (CPU, rendering, screen state) that no network\n"
              "simulator sees, which is itself the point: PLT entangles the\n"
              "client, ping isolates the path. Replica assignment still\n"
              "shows up as whole-page slowdown (the 'inflation' column).\n");
  return 0;
}
