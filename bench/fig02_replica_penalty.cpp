// Figure 2: CDF of the percent increase in mean replica HTTP latency
// (TTFB) over the best replica each user saw, per carrier, across four
// popular domains. The paper reports 50%+ penalties routinely and >400%
// for a substantial fraction of accesses in extreme cases.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 2",
                "Percent increase of each replica vs the user's best replica");

  const auto groups = analysis::fig2_replica_penalty(bench::study().records());
  for (const auto& [carrier, cdf] : groups) {
    std::printf("%s\n", carrier.c_str());
    bench::print_cdf_row("penalty % CDF", cdf);
    std::printf("    fraction with >50%% penalty: %.1f%%\n",
                (1.0 - cdf.fraction_at_or_below(50.0)) * 100.0);
    std::printf("    fraction with >100%% penalty: %.1f%%\n",
                (1.0 - cdf.fraction_at_or_below(100.0)) * 100.0);
  }
  return 0;
}
