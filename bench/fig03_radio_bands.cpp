// Figure 3: DNS resolution time grouped by the radio technology active
// during the resolution, per carrier. The paper's bands: LTE fastest,
// 3G ~50 ms slower at the median, 2G near one second.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 3", "Resolution time by radio technology, per carrier");

  const auto groups = analysis::fig3_radio_bands(bench::study().records());
  for (const auto& [carrier, by_tech] : groups) {
    bench::print_group(carrier, by_tech);
    bench::print_curves(by_tech, 5);
  }
  return 0;
}
