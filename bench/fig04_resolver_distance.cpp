// Figure 4: client ping latency to the configured (client-facing) vs the
// identified external-facing resolver, per carrier. SK Telecom's tiers
// are collocated; Verizon's and LG U+'s externals never answer.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 4", "Latency to client- vs external-facing resolvers");

  const auto groups = analysis::fig4_resolver_distance(bench::study().records());
  for (const auto& [carrier, group] : groups) {
    bench::print_group(carrier, group);
    if (!group.count("External")) {
      std::printf("  %-22s (no responses — unresponsive external tier)\n",
                  "External");
    }
    bench::print_curves(group, 5);
  }
  return 0;
}
