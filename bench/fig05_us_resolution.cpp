// Figure 5: DNS resolution time CDFs for the four US carriers (cell LDNS,
// first lookups). Paper medians: 30-50 ms, long tails past p80.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 5", "Resolution time, US carriers (cell LDNS)");
  const auto group =
      analysis::fig5_fig6_resolution_times(bench::study().records(), "US");
  bench::print_group("US carriers", group);
  bench::print_curves(group);
  return 0;
}
