// Figure 6: DNS resolution time CDFs for the two South Korean carriers
// (cell LDNS, first lookups). The paper notes bimodal behaviour above the
// median — the cache-miss mode.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 6", "Resolution time, South Korean carriers (cell LDNS)");
  const auto group =
      analysis::fig5_fig6_resolution_times(bench::study().records(), "KR");
  bench::print_group("SK carriers", group);
  bench::print_curves(group);
  return 0;
}
