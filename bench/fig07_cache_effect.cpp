// Figure 7: back-to-back lookups against the cell LDNS (US carriers
// combined). The second lookup is mostly cached, with a ~20% miss tail
// caused by short CDN TTLs and LDNS pool load balancing.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 7", "1st vs 2nd back-to-back lookup (US carriers)");

  const auto group = analysis::fig7_cache_effect(bench::study().records());
  bench::print_group("US combined", group);
  bench::print_curves(group);

  const auto& first = group.at("1st Lookup");
  const auto& second = group.at("2nd Lookup");
  const double threshold = first.quantile(0.75);
  std::printf("  2nd lookups slower than the 1st-lookup p75 (miss tail): "
              "%.1f%%  (paper: ~20%%)\n",
              (1.0 - second.fraction_at_or_below(threshold)) * 100.0);
  return 0;
}
