// Figure 8: external resolvers observed by individual clients over time —
// distinct IPs (bottom panels) and distinct /24s (top panels). The paper:
// AT&T/Verizon relatively stable; Sprint/T-Mobile unstable across /24s;
// SK carriers churn many IPs inside 1-2 /24s.
#include "bench_common.h"
#include "net/time.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 8", "External-resolver churn per client over time");

  const auto& dataset = bench::study().records();
  for (int c = 0; c < 6; ++c) {
    const auto timelines = analysis::resolver_timelines(
        dataset, c, measure::ResolverKind::kLocal);
    size_t max_ips = 0;
    size_t max_prefixes = 0;
    double mean_ips = 0.0;
    for (const auto& timeline : timelines) {
      max_ips = std::max(max_ips, timeline.unique_ips());
      max_prefixes = std::max(max_prefixes, timeline.unique_slash24s());
      mean_ips += static_cast<double>(timeline.unique_ips());
    }
    if (!timelines.empty()) mean_ips /= static_cast<double>(timelines.size());
    std::printf("%s: clients=%zu  unique IPs per client mean=%.1f max=%zu  "
                "max /24s=%zu\n",
                analysis::carrier_name(c).c_str(), timelines.size(), mean_ips,
                max_ips, max_prefixes);

    // The busiest client's association series, day-labelled as in the
    // paper's panels.
    const analysis::ResolverTimeline* busiest = nullptr;
    for (const auto& timeline : timelines) {
      if (busiest == nullptr || timeline.unique_ips() > busiest->unique_ips()) {
        busiest = &timeline;
      }
    }
    if (busiest != nullptr) {
      std::printf("    device %llu series:",
                  static_cast<unsigned long long>(busiest->device_id));
      const size_t step = std::max<size_t>(1, busiest->times.size() / 12);
      for (size_t i = 0; i < busiest->times.size(); i += step) {
        std::printf(" %s:ip#%d/%d",
                    net::CampaignCalendar::day_label(busiest->times[i]).c_str(),
                    busiest->ip_rank[i], busiest->slash24_rank[i]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
