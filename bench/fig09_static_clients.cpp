// Figure 9: resolver associations for clients at a *static* location
// (observations within 10 km of the modal location). Even stationary
// clients shift resolvers across IPs and /24s.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 9", "Resolver churn for stationary clients (10 km filter)");

  const auto& dataset = bench::study().records();
  for (int c = 0; c < 6; ++c) {
    const auto timelines = analysis::static_resolver_timelines(
        dataset, c, measure::ResolverKind::kLocal, 10.0);
    size_t churning = 0;
    size_t max_ips = 0;
    size_t max_prefixes = 0;
    for (const auto& timeline : timelines) {
      if (timeline.unique_ips() > 1) ++churning;
      max_ips = std::max(max_ips, timeline.unique_ips());
      max_prefixes = std::max(max_prefixes, timeline.unique_slash24s());
    }
    std::printf("%s: static clients=%zu  with resolver churn=%zu  "
                "max IPs=%zu  max /24s=%zu\n",
                analysis::carrier_name(c).c_str(), timelines.size(), churning,
                max_ips, max_prefixes);
  }
  std::printf("  (paper: clients shift resolvers across IPs and /24 prefixes"
              " even when not moving)\n");
  return 0;
}
