// Figure 10: cosine similarity of buzzfeed.com replica sets between
// resolvers within the same /24 vs across /24s, per carrier. Paper: same
// /24 close to 1; over 60% of cross-/24 pairs at exactly 0.
#include "bench_common.h"
#include "cdn/domains.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 10", "Replica-set cosine similarity by resolver /24");

  // Locate buzzfeed in the domain catalog.
  uint16_t buzzfeed = 0;
  for (size_t d = 0; d < cdn::study_domains().size(); ++d) {
    if (cdn::study_domains()[d].host == "www.buzzfeed.com") {
      buzzfeed = static_cast<uint16_t>(d);
    }
  }

  const auto splits = analysis::fig10_cosine(bench::study().records(), buzzfeed);
  for (const auto& [carrier, split] : splits) {
    std::printf("%s\n", carrier.c_str());
    bench::print_cdf_row("same /24", split.same_slash24);
    bench::print_cdf_row("different /24", split.different_slash24);
    if (!split.different_slash24.empty()) {
      std::printf("    cross-/24 pairs with similarity 0: %.1f%%"
                  "  (paper: >60%%)\n",
                  split.different_slash24.fraction_at_or_below(1e-9) * 100.0);
    }
  }
  return 0;
}
