// Figure 11: ping latency to the carrier's (external-facing) LDNS vs the
// public DNS VIPs. The cell resolvers are closer a significant majority
// of the time — except for Verizon and LG U+, whose external tiers do not
// respond to subscriber probes at all.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 11", "Latency to cell LDNS vs public DNS resolvers");

  const auto groups = analysis::fig11_public_distance(bench::study().records());
  for (const auto& [carrier, group] : groups) {
    bench::print_group(carrier, group);
    if (!group.count("Cell LDNS")) {
      std::printf("  %-22s (no responses — unresponsive external tier)\n",
                  "Cell LDNS");
    } else if (group.count("GoogleDNS")) {
      std::printf("    cell closer than GoogleDNS at median by %.1f ms\n",
                  group.at("GoogleDNS").median() -
                      group.at("Cell LDNS").median());
    }
  }
  return 0;
}
