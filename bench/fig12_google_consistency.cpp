// Figure 12: Google Public DNS resolver consistency per client. Despite
// the single anycast VIP, clients are directed to several of Google's 30
// geographic /24 clusters over time.
#include "bench_common.h"
#include "net/time.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 12", "GoogleDNS resolver/(24) consistency over time");

  const auto& dataset = bench::study().records();
  for (int c = 0; c < 6; ++c) {
    const auto timelines = analysis::resolver_timelines(
        dataset, c, measure::ResolverKind::kGoogle);
    size_t multi_prefix = 0;
    size_t max_prefixes = 0;
    double mean_ips = 0.0;
    for (const auto& timeline : timelines) {
      if (timeline.unique_slash24s() > 1) ++multi_prefix;
      max_prefixes = std::max(max_prefixes, timeline.unique_slash24s());
      mean_ips += static_cast<double>(timeline.unique_ips());
    }
    if (!timelines.empty()) mean_ips /= static_cast<double>(timelines.size());
    std::printf("%s: clients=%zu  seeing >1 Google /24: %zu  "
                "max /24s=%zu  mean IPs=%.1f\n",
                analysis::carrier_name(c).c_str(), timelines.size(),
                multi_prefix, max_prefixes, mean_ips);
  }
  std::printf("  (each /24 is one of Google's ~30 geographic sites)\n");
  return 0;
}
