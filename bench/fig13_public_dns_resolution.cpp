// Figure 13: domain resolution time — the carrier's DNS vs Google DNS vs
// OpenDNS, per carrier. Cell DNS wins at the median; public DNS has lower
// variance and a shorter tail.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 13", "Resolution time: cell LDNS vs public DNS");

  const auto groups = analysis::fig13_public_resolution(bench::study().records());
  for (const auto& [carrier, group] : groups) {
    bench::print_group(carrier, group);
    if (group.count("local") && group.count("GoogleDNS")) {
      const auto& local = group.at("local");
      const auto& google = group.at("GoogleDNS");
      std::printf("    local faster at p50 by %.1f ms; tail (p99-p50): "
                  "local %.0f ms vs Google %.0f ms\n",
                  google.median() - local.median(),
                  local.quantile(0.99) - local.median(),
                  google.quantile(0.99) - google.median());
    }
  }
  return 0;
}
