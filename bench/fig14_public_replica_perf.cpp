// Figure 14: relative replica latency — replicas selected through public
// DNS vs through the cell LDNS, aggregated by /24 (overlapping /24 sets
// count as equal). The paper's headline: public DNS renders equal-or-
// better replica performance over 75% of the time.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Figure 14", "Relative replica latency: public vs cell DNS");

  const auto groups = analysis::fig14_public_replica_delta(bench::study().records());
  for (const auto& [carrier, group] : groups) {
    std::printf("%s\n", carrier.c_str());
    for (const auto& [kind, cdf] : group) {
      size_t zeros = 0;
      for (const double v : cdf.sorted_values()) {
        if (v == 0.0) ++zeros;
      }
      std::printf("  %-10s n=%zu  exactly-0: %.0f%%  equal-or-better: %.0f%%"
                  "  p10=%.0f%% p90=%.0f%%\n",
                  kind.c_str(), cdf.size(),
                  100.0 * static_cast<double>(zeros) /
                      static_cast<double>(cdf.size()),
                  100.0 * cdf.fraction_at_or_below(0.0), cdf.quantile(0.10),
                  cdf.quantile(0.90));
    }
  }
  // Pool every comparison for the headline with a bootstrap interval.
  analysis::Ecdf pooled;
  for (const auto& [carrier, group] : groups) {
    for (const auto& [kind, cdf] : group) pooled.add_all(cdf.sorted_values());
  }
  const auto interval =
      analysis::bootstrap_fraction_at_or_below(pooled, 0.0, 500, 7);
  std::printf("\nHEADLINE: public DNS equal-or-better in %.1f%% of comparisons"
              " [95%% CI %.1f-%.1f] (paper: >75%%)\n",
              100.0 * interval.point, 100.0 * interval.low,
              100.0 * interval.high);
  return 0;
}
