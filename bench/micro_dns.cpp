// Microbenchmarks for the DNS substrate: wire codec, cache and an
// end-to-end recursive resolution — the operations a full campaign
// performs millions of times.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dns/hierarchy.h"
#include "dns/resolver.h"

namespace {

using namespace curtain;

dns::Message sample_message() {
  const auto host = *dns::DnsName::parse("www.buzzfeed.com");
  const auto edge = *dns::DnsName::parse("buzzfeed-www.fastedge.net");
  dns::Message m = dns::Message::query(0x1234, host, dns::RRType::kA)
                       .make_response();
  m.answers.push_back(dns::ResourceRecord::cname(host, edge, 300));
  m.answers.push_back(
      dns::ResourceRecord::a(edge, net::Ipv4Addr{20, 1, 2, 3}, 30));
  m.answers.push_back(
      dns::ResourceRecord::a(edge, net::Ipv4Addr{20, 1, 2, 4}, 30));
  return m;
}

void BM_EncodeMessage(benchmark::State& state) {
  const dns::Message m = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(m));
  }
}
BENCHMARK(BM_EncodeMessage);

void BM_DecodeMessage(benchmark::State& state) {
  const auto wire = dns::encode(sample_message());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_DecodeMessage);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DnsName::parse("edge-17.cdn.example.com"));
  }
}
BENCHMARK(BM_NameParse);

// --- flat-name series (ISSUE-5 before/after comparison workloads) -----------

/// Reverse-map style name: many short labels, the worst case for
/// per-label heap allocation.
void BM_NameParseDeep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DnsName::parse("4.3.2.1.in-addr.arpa"));
  }
}
BENCHMARK(BM_NameParseDeep);

/// Copy + hash: what every cache lookup pays to build its Key.
void BM_NameCopyHash(benchmark::State& state) {
  const auto name = *dns::DnsName::parse("www.buzzfeed.com");
  for (auto _ : state) {
    dns::DnsName key = name;
    benchmark::DoNotOptimize(key.hash());
  }
}
BENCHMARK(BM_NameCopyHash);

/// Zone walk: parent()/is_within(), the resolver's best_server_for loop.
void BM_NameZoneWalk(benchmark::State& state) {
  const auto name = *dns::DnsName::parse("edge-17.cdn.example.com");
  const auto apex = *dns::DnsName::parse("example.com");
  for (auto _ : state) {
    dns::DnsName zone = name;
    size_t within = 0;
    while (!zone.is_root()) {
      if (zone.is_within(apex)) ++within;
      zone = zone.parent();
    }
    benchmark::DoNotOptimize(within);
  }
}
BENCHMARK(BM_NameZoneWalk);

void BM_CacheLookupHit(benchmark::State& state) {
  dns::Cache cache;
  const auto name = *dns::DnsName::parse("www.example.com");
  cache.insert(name, dns::RRType::kA,
               {dns::ResourceRecord::a(name, net::Ipv4Addr{1, 2, 3, 4}, 3600)},
               net::SimTime::zero());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(name, dns::RRType::kA, net::SimTime::from_seconds(1)));
  }
}
BENCHMARK(BM_CacheLookupHit);

// --- cache series (ISSUE-5 before/after comparison workloads) ---------------

/// Hit-heavy lookups against a wide rrset (8 A records): the paper's CDN
/// names resolve to multi-record rrsets, and every hit must age TTLs.
void BM_CacheLookupHitWide(benchmark::State& state) {
  dns::Cache cache;
  const auto name = *dns::DnsName::parse("buzzfeed-www.fastedge.net");
  std::vector<dns::ResourceRecord> records;
  for (uint8_t i = 0; i < 8; ++i) {
    records.push_back(dns::ResourceRecord::a(
        name, net::Ipv4Addr{20, 1, 2, i}, 3600));
  }
  cache.insert(name, dns::RRType::kA, std::move(records), net::SimTime::zero());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(name, dns::RRType::kA, net::SimTime::from_seconds(1)));
  }
}
BENCHMARK(BM_CacheLookupHitWide);

/// Insert churn against a saturated cache whose entries have all expired:
/// the eviction path a burst of short-TTL CDN answers produces.
void BM_CacheEvictionChurn(benchmark::State& state) {
  constexpr size_t kCapacity = 1024;
  constexpr size_t kNames = 4096;
  std::vector<dns::DnsName> names;
  names.reserve(kNames);
  for (size_t i = 0; i < kNames; ++i) {
    names.push_back(
        *dns::DnsName::parse("host-" + std::to_string(i) + ".example.com"));
  }
  dns::Cache cache(kCapacity);
  // Saturate with entries that expire at t=30.
  for (size_t i = 0; i < kCapacity; ++i) {
    cache.insert(names[i], dns::RRType::kA,
                 {dns::ResourceRecord::a(names[i], net::Ipv4Addr{1, 2, 3, 4}, 30)},
                 net::SimTime::zero());
  }
  const auto now = net::SimTime::from_seconds(60);
  size_t next = 0;
  for (auto _ : state) {
    const dns::DnsName& name = names[next];
    next = (next + 1) % kNames;
    cache.insert(name, dns::RRType::kA,
                 {dns::ResourceRecord::a(name, net::Ipv4Addr{1, 2, 3, 4}, 30)},
                 now);
  }
  benchmark::DoNotOptimize(cache.size());
}
BENCHMARK(BM_CacheEvictionChurn);

void BM_RecursiveResolution(benchmark::State& state) {
  // Mini-world: hub + hierarchy + one zone + one resolver.
  net::Topology topo;
  dns::ServerRegistry registry;
  net::Node hub;
  hub.name = "hub";
  const net::NodeId hub_id = topo.add_node(hub);
  const auto attach = [&](const std::string& name, net::NodeKind kind,
                          const net::GeoPoint& loc, net::Ipv4Addr ip) {
    net::Node node;
    node.name = name;
    node.kind = kind;
    node.location = loc;
    node.ip = ip;
    const net::NodeId id = topo.add_node(node);
    topo.add_link(id, hub_id, net::LatencyModel::fixed(1.0));
    return id;
  };
  dns::DnsHierarchy hierarchy(attach, &registry);
  auto& zone = hierarchy.create_zone(*dns::DnsName::parse("example.com"),
                                     {40, -74}, net::Ipv4Addr{50, 0, 0, 1});
  const auto host = *dns::DnsName::parse("www.example.com");
  zone.add_record(dns::ResourceRecord::a(host, net::Ipv4Addr{9, 8, 7, 6}, 30));

  const net::NodeId rnode =
      attach("resolver", net::NodeKind::kResolver, {41, -87}, net::Ipv4Addr{});
  dns::RecursiveResolver resolver("bench", rnode, net::Ipv4Addr{9, 9, 9, 9},
                                  &topo, &registry, hierarchy.root_ip());
  auto rng = bench::bench_rng("micro_dns/resolve-cold");
  int64_t t = 0;
  for (auto _ : state) {
    // Advance past the 30 s TTL so every iteration resolves cold.
    t += 31'000'000;
    benchmark::DoNotOptimize(
        resolver.resolve(host, dns::RRType::kA, net::SimTime{t}, rng));
  }
}
BENCHMARK(BM_RecursiveResolution);

void BM_CachedResolution(benchmark::State& state) {
  net::Topology topo;
  dns::ServerRegistry registry;
  net::Node hub;
  hub.name = "hub";
  const net::NodeId hub_id = topo.add_node(hub);
  const auto attach = [&](const std::string& name, net::NodeKind kind,
                          const net::GeoPoint& loc, net::Ipv4Addr ip) {
    net::Node node;
    node.name = name;
    node.kind = kind;
    node.location = loc;
    node.ip = ip;
    const net::NodeId id = topo.add_node(node);
    topo.add_link(id, hub_id, net::LatencyModel::fixed(1.0));
    return id;
  };
  dns::DnsHierarchy hierarchy(attach, &registry);
  auto& zone = hierarchy.create_zone(*dns::DnsName::parse("example.com"),
                                     {40, -74}, net::Ipv4Addr{50, 0, 0, 1});
  const auto host = *dns::DnsName::parse("www.example.com");
  zone.add_record(dns::ResourceRecord::a(host, net::Ipv4Addr{9, 8, 7, 6}, 3600));
  const net::NodeId rnode =
      attach("resolver", net::NodeKind::kResolver, {41, -87}, net::Ipv4Addr{});
  dns::RecursiveResolver resolver("bench", rnode, net::Ipv4Addr{9, 9, 9, 9},
                                  &topo, &registry, hierarchy.root_ip());
  auto rng = bench::bench_rng("micro_dns/resolve-warm");
  resolver.resolve(host, dns::RRType::kA, net::SimTime::zero(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(
        host, dns::RRType::kA, net::SimTime::from_seconds(1), rng));
  }
}
BENCHMARK(BM_CachedResolution);

}  // namespace

int main(int argc, char** argv) {
  return curtain::bench::run_micro_benchmarks("micro_dns", argc, argv);
}
