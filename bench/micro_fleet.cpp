// micro_fleet — million-device campaign in bounded memory.
//
// The record-block pipeline's headline claim (DESIGN.md §15): campaign
// memory is set by the fleet (SoA arenas + laned state) and the per-shard
// open record block — never by how many records the campaign streams.
// This bench proves it by enrolling a 10^6-device fleet (four US-carrier
// profiles widened to 250k study clients each) and running the same
// streaming campaign at increasing durations: records streamed grow
// linearly with length, while resident memory minus the laned per-device
// state (reported separately, and bounded by the fleet — every touched
// device keeps its resolver-cache view) must stay flat.
//
// Every run uses CampaignEngine::run_streaming with a discard sink per
// shard, i.e. the bounded-memory path a real million-device export would
// use (swap the discard sinks for analysis::StreamingCsvExporter to keep
// the bytes).
//
// Emits one `fleet_memory` JSON line per duration point (committed as
// BENCH_fleet_memory.json). When CURTAIN_RSS_CEILING_MB is set (nonzero),
// the bench exits nonzero if peak RSS crosses it — the scripts/check.sh
// `rss-smoke` leg runs exactly that.
//
// CURTAIN_SHARDS sizes the worker pool as everywhere else (0 = one per
// hardware thread); CURTAIN_SEED and CURTAIN_BLOCK_ROWS apply too.
// CURTAIN_SCALE scales the fleet (1.0 = the full million; scripts/check.sh
// rss-smoke runs a scaled-down fleet under a proportional ceiling).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cellular/carrier_profile.h"
#include "core/world.h"
#include "exec/engine.h"
#include "obs/memory.h"

namespace {

using namespace curtain;

constexpr int kClientsPerCarrier = 250000;  // × 4 US carriers = one million

/// CURTAIN_SCALE-adjusted fleet size per carrier (minimum 1 device).
int scaled_clients_per_carrier() {
  const double scaled = util::campaign_scale() * kClientsPerCarrier;
  return scaled < 1.0 ? 1 : static_cast<int>(scaled);
}

/// Counts and discards a shard's record stream; remembers the largest
/// single block it saw (the per-shard memory high-water contribution).
class DiscardSink final : public measure::RecordSink {
 public:
  void consume(measure::RecordBlock&& block) override {
    experiments_ += block.experiments.size();
    records_ += block.rows;
    bytes_ += block.approx_bytes();
    peak_block_bytes_ = std::max(peak_block_bytes_, block.approx_bytes());
    // `block` dies here — streamed memory never accumulates.
  }

  size_t experiments() const { return experiments_; }
  size_t records() const { return records_; }
  size_t bytes() const { return bytes_; }
  size_t peak_block_bytes() const { return peak_block_bytes_; }

 private:
  size_t experiments_ = 0;
  size_t records_ = 0;
  size_t bytes_ = 0;
  size_t peak_block_bytes_ = 0;
};

std::vector<cellular::CarrierProfile> million_device_carriers() {
  std::vector<cellular::CarrierProfile> profiles;
  for (const auto& profile : cellular::study_carriers()) {
    if (profile.country != "US") continue;
    cellular::CarrierProfile widened = profile;
    widened.study_clients = scaled_clients_per_carrier();
    profiles.push_back(std::move(widened));
  }
  return profiles;
}

struct RunPoint {
  double duration_days = 0.0;
  size_t devices = 0;
  size_t shards = 0;
  size_t experiments = 0;
  size_t records = 0;
  double streamed_mb = 0.0;
  double peak_block_mb = 0.0;
  double fleet_arena_mb = 0.0;
  double lane_cache_mb = 0.0;
  double lane_state_mb = 0.0;
  double rss_after_mb = 0.0;
  /// Resident memory not explained by laned per-device state: world +
  /// fleet arenas + open record blocks. The bounded-memory claim is that
  /// THIS stays flat as the campaign streams more records.
  double rss_floor_mb = 0.0;
  double wall_ms = 0.0;
};

RunPoint run_campaign(core::World& world, double duration_days, int workers,
                      uint64_t seed) {
  exec::EngineConfig config;
  config.seed = seed;
  config.workers = workers;
  config.cohorts = 0;  // auto-size the partition from the worker count
  config.campaign.duration_days = duration_days;
  // Thin participation: the fleet, not the experiment count, is the
  // point. ~0.001/device/hour keeps the longest sweep point tractable
  // while still streaming tens of thousands of experiments.
  config.campaign.participation = 0.001;

  std::vector<exec::CampaignEngine::CarrierRef> carriers;
  for (size_t c = 0; c < world.carriers().size(); ++c) {
    carriers.push_back(exec::CampaignEngine::CarrierRef{
        world.carrier(c), static_cast<int>(c)});
  }
  exec::CampaignEngine engine(
      measure::WorldView{world.topology(), world.registry()},
      world.research_apex(), std::move(carriers), config);
  world.topology().set_route_cache_ways(engine.shard_count() + 1);

  std::vector<std::unique_ptr<DiscardSink>> sinks;
  std::vector<measure::RecordSink*> sink_ptrs;
  for (size_t s = 0; s < engine.shard_count(); ++s) {
    sinks.push_back(std::make_unique<DiscardSink>());
    sink_ptrs.push_back(sinks.back().get());
  }

  const auto start = std::chrono::steady_clock::now();  // lint: wallclock
  engine.run_streaming(sink_ptrs);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)  // lint: wallclock
          .count();

  RunPoint point;
  point.duration_days = duration_days;
  point.devices = engine.device_count();
  point.shards = engine.shard_count();
  point.fleet_arena_mb =
      static_cast<double>(engine.fleet_arena_bytes()) / (1024.0 * 1024.0);
  size_t peak_block = 0;
  for (const auto& sink : sinks) {
    point.experiments += sink->experiments();
    point.records += sink->records();
    point.streamed_mb +=
        static_cast<double>(sink->bytes()) / (1024.0 * 1024.0);
    peak_block = std::max(peak_block, sink->peak_block_bytes());
  }
  point.peak_block_mb = static_cast<double>(peak_block) / (1024.0 * 1024.0);
  const obs::LaneMemory lanes = world.approx_lane_state_bytes();
  point.lane_cache_mb =
      static_cast<double>(lanes.cache_bytes) / (1024.0 * 1024.0);
  point.lane_state_mb =
      static_cast<double>(lanes.state_bytes) / (1024.0 * 1024.0);
  point.rss_after_mb =
      static_cast<double>(obs::read_current_rss_bytes()) / (1024.0 * 1024.0);
  point.rss_floor_mb = std::max(
      0.0, point.rss_after_mb - point.lane_cache_mb - point.lane_state_mb);
  point.wall_ms = wall_ms;
  return point;
}

}  // namespace

int main() {
  bench::bench_start();
  std::printf("================================================================\n");
  std::printf("micro_fleet — million-device campaign in bounded memory\n");
  std::printf("================================================================\n");

  int workers = util::campaign_shards();
  if (workers <= 1) {
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores > 1) workers = static_cast<int>(cores > 64 ? 64 : cores);
  }
  const uint64_t seed = util::study_seed();

  core::World world(core::Scenario::paper_2014()
                        .with_seed(seed)
                        .with_carriers(million_device_carriers()));

  // Sweep campaign length at a fixed one-million-device fleet. Records
  // streamed must grow ~linearly with duration while the record-path
  // floor (RSS minus the laned per-device state, which is bounded by the
  // fleet, not the campaign) stays flat — the bounded-memory contract.
  size_t reference_devices = 0;
  double first_floor_mb = 0.0;
  double last_floor_mb = 0.0;
  for (const double duration_days : {0.25, 0.5, 1.0}) {
    const RunPoint point = run_campaign(world, duration_days, workers, seed);
    if (reference_devices == 0) reference_devices = point.devices;
    if (first_floor_mb == 0.0) first_floor_mb = point.rss_floor_mb;
    last_floor_mb = point.rss_floor_mb;

    std::printf(
        "{\"bench_record\":\"fleet_memory\",\"devices\":%zu,"
        "\"duration_days\":%.2f,\"shards\":%zu,\"workers\":%d,"
        "\"experiments\":%zu,\"records\":%zu,\"streamed_mb\":%.1f,"
        "\"peak_block_mb\":%.2f,\"fleet_arena_mb\":%.1f,"
        "\"lane_cache_mb\":%.1f,\"lane_state_mb\":%.1f,"
        "\"rss_after_mb\":%.1f,\"rss_floor_mb\":%.1f,"
        "\"peak_rss_mb\":%.1f,\"wall_ms\":%.1f}\n",
        point.devices, point.duration_days, point.shards, workers,
        point.experiments, point.records, point.streamed_mb,
        point.peak_block_mb, point.fleet_arena_mb, point.lane_cache_mb,
        point.lane_state_mb, point.rss_after_mb, point.rss_floor_mb,
        static_cast<double>(obs::read_peak_rss_bytes()) / (1024.0 * 1024.0),
        point.wall_ms);
  }

  const size_t expected_devices =
      4u * static_cast<size_t>(scaled_clients_per_carrier());
  if (reference_devices != expected_devices) {
    std::printf("FAIL: fleet enrolled %zu devices, expected %zu\n",
                reference_devices, expected_devices);
    return 1;
  }
  // "Flat" allows allocator slack between sweep points (cache nodes churn
  // and glibc keeps some freed pages resident), not growth proportional
  // to the 4x campaign-length spread.
  if (last_floor_mb > first_floor_mb * 1.5 + 128.0) {
    std::printf("FAIL: record-path memory grew with campaign length "
                "(floor %.1f MB -> %.1f MB)\n", first_floor_mb, last_floor_mb);
    return 1;
  }

  const size_t ceiling_mb = util::rss_ceiling_mb();
  const double peak_mb =
      static_cast<double>(obs::read_peak_rss_bytes()) / (1024.0 * 1024.0);
  if (ceiling_mb != 0 && peak_mb > static_cast<double>(ceiling_mb)) {
    std::printf("FAIL: peak RSS %.1f MB over CURTAIN_RSS_CEILING_MB=%zu\n",
                peak_mb, ceiling_mb);
    return 1;
  }
  std::printf("peak RSS %.1f MB%s\n", peak_mb,
              ceiling_mb == 0 ? " (no ceiling set)" : " (under ceiling)");
  return 0;
}
