// Microbenchmarks for the network substrate: RNG, latency sampling,
// routing and probe primitives.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/geo.h"
#include "net/rng.h"
#include "net/topology.h"

namespace {

using namespace curtain;

void BM_RngNextU64(benchmark::State& state) {
  auto rng = bench::bench_rng("micro_net/next-u64");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngLognormal(benchmark::State& state) {
  auto rng = bench::bench_rng("micro_net/lognormal");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_median(30.0, 0.3));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_Haversine(benchmark::State& state) {
  const net::GeoPoint a{40.71, -74.01};
  const net::GeoPoint b{34.05, -118.24};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::distance_km(a, b));
  }
}
BENCHMARK(BM_Haversine);

/// A mid-sized world: full-mesh backbone of 30 metros plus 200 leaves.
net::Topology make_topology() {
  net::Topology topo;
  std::vector<net::NodeId> backbone;
  for (const auto& metro : net::world_metros()) {
    net::Node node;
    node.name = "ix-" + metro.name;
    node.location = metro.location;
    backbone.push_back(topo.add_node(node));
  }
  for (size_t i = 0; i < backbone.size(); ++i) {
    for (size_t j = i + 1; j < backbone.size(); ++j) {
      topo.add_link(backbone[i], backbone[j],
                    net::LatencyModel::wan(
                        net::propagation_ms(topo.node(backbone[i]).location,
                                            topo.node(backbone[j]).location),
                        1.0));
    }
  }
  auto rng = bench::bench_rng("micro_net/topology-build");
  for (int leaf = 0; leaf < 200; ++leaf) {
    net::Node node;
    node.name = "leaf-" + std::to_string(leaf);
    node.ip = net::Ipv4Addr(0x0a000000u + static_cast<uint32_t>(leaf) + 1);
    const net::NodeId id = topo.add_node(node);
    topo.add_link(id, backbone[static_cast<size_t>(leaf) % backbone.size()],
                  net::LatencyModel::jittered(1.0, 0.3));
    (void)rng;
  }
  return topo;
}

void BM_RouteColdCache(benchmark::State& state) {
  net::Topology topo = make_topology();
  uint32_t from = 30;  // first leaf node id
  uint32_t to = 31;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.route(from, to));
    // Rotate pairs so most lookups miss the route cache.
    from = 30 + (from + 7) % 200;
    to = 30 + (to + 13) % 200;
  }
}
BENCHMARK(BM_RouteColdCache);

void BM_TransportRtt(benchmark::State& state) {
  net::Topology topo = make_topology();
  auto rng = bench::bench_rng("micro_net/transport-rtt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.transport_rtt_ms(30, 150, rng));
  }
}
BENCHMARK(BM_TransportRtt);

void BM_Ping(benchmark::State& state) {
  net::Topology topo = make_topology();
  auto rng = bench::bench_rng("micro_net/ping");
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.ping(30, 150, rng));
  }
}
BENCHMARK(BM_Ping);

void BM_Traceroute(benchmark::State& state) {
  net::Topology topo = make_topology();
  auto rng = bench::bench_rng("micro_net/traceroute");
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.traceroute(30, 150, rng));
  }
}
BENCHMARK(BM_Traceroute);

}  // namespace

int main(int argc, char** argv) {
  return curtain::bench::run_micro_benchmarks("micro_net", argc, argv);
}
