// Microbenchmarks for the network substrate: RNG, latency sampling,
// routing, probe primitives and the discrete-event queue.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/clock.h"
#include "net/geo.h"
#include "net/rng.h"
#include "net/topology.h"

namespace {

using namespace curtain;

void BM_RngNextU64(benchmark::State& state) {
  auto rng = bench::bench_rng("micro_net/next-u64");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngLognormal(benchmark::State& state) {
  auto rng = bench::bench_rng("micro_net/lognormal");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_median(30.0, 0.3));
  }
}
BENCHMARK(BM_RngLognormal);

// --- event queue ------------------------------------------------------------
//
// The queue is the inner loop of every shard: one schedule + one pop per
// device wake-up, with handlers the size of Shard::run's wake closure
// (~48 captured bytes). Both series below are the ISSUE-5 before/after
// comparison workloads.

/// Handler state sized like the shard wake closure; self-reschedules so the
/// queue stays at a steady size, exactly like the hourly device wake-ups.
struct WakeHandler {
  net::EventQueue* queue;
  uint64_t* fires;
  uint64_t pad[4];  // pad to the realistic capture size

  void operator()(net::SimTime at) {
    ++*fires;
    queue->schedule(at + net::SimTime::from_hours(1.0), WakeHandler{*this});
  }
};

/// Pop-heavy: fill the queue with n events at pseudorandom times, then
/// drain it. Dominated by push/pop (handler bodies are trivial).
void BM_EventQueueChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto rng = bench::bench_rng("micro_net/event-queue-churn");
  std::vector<net::SimTime> times;
  times.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    times.push_back(net::SimTime{
        static_cast<int64_t>(rng.uniform_u64(0, 3'600'000'000ull))});
  }
  uint64_t fires = 0;
  for (auto _ : state) {
    net::SimClock clock;
    net::EventQueue queue;
    uint64_t pad[4] = {1, 2, 3, 4};
    for (const net::SimTime t : times) {
      queue.schedule(t, [&fires, pad](net::SimTime) { fires += pad[0]; });
    }
    while (queue.run_next(clock)) {
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  benchmark::DoNotOptimize(fires);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1024)->Arg(16384);

/// Steady-state: 4096 self-rescheduling handlers (one per simulated
/// device); each measured op is one pop + one push at queue depth 4096.
void BM_EventQueueSteadyState(benchmark::State& state) {
  net::SimClock clock;
  net::EventQueue queue;
  uint64_t fires = 0;
  for (int64_t i = 0; i < 4096; ++i) {
    queue.schedule(net::SimTime{i},
                   WakeHandler{&queue, &fires, {1, 2, 3, 4}});
  }
  for (auto _ : state) {
    queue.run_next(clock);
  }
  benchmark::DoNotOptimize(fires);
}
BENCHMARK(BM_EventQueueSteadyState);

void BM_Haversine(benchmark::State& state) {
  const net::GeoPoint a{40.71, -74.01};
  const net::GeoPoint b{34.05, -118.24};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::distance_km(a, b));
  }
}
BENCHMARK(BM_Haversine);

/// A mid-sized world: full-mesh backbone of 30 metros plus 200 leaves.
net::Topology make_topology() {
  net::Topology topo;
  std::vector<net::NodeId> backbone;
  for (const auto& metro : net::world_metros()) {
    net::Node node;
    node.name = "ix-" + metro.name;
    node.location = metro.location;
    backbone.push_back(topo.add_node(node));
  }
  for (size_t i = 0; i < backbone.size(); ++i) {
    for (size_t j = i + 1; j < backbone.size(); ++j) {
      topo.add_link(backbone[i], backbone[j],
                    net::LatencyModel::wan(
                        net::propagation_ms(topo.node(backbone[i]).location,
                                            topo.node(backbone[j]).location),
                        1.0));
    }
  }
  auto rng = bench::bench_rng("micro_net/topology-build");
  for (int leaf = 0; leaf < 200; ++leaf) {
    net::Node node;
    node.name = "leaf-" + std::to_string(leaf);
    node.ip = net::Ipv4Addr(0x0a000000u + static_cast<uint32_t>(leaf) + 1);
    const net::NodeId id = topo.add_node(node);
    topo.add_link(id, backbone[static_cast<size_t>(leaf) % backbone.size()],
                  net::LatencyModel::jittered(1.0, 0.3));
    (void)rng;
  }
  return topo;
}

void BM_RouteColdCache(benchmark::State& state) {
  net::Topology topo = make_topology();
  uint32_t from = 30;  // first leaf node id
  uint32_t to = 31;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.route(from, to));
    // Rotate pairs so most lookups miss the route cache.
    from = 30 + (from + 7) % 200;
    to = 30 + (to + 13) % 200;
  }
}
BENCHMARK(BM_RouteColdCache);

void BM_TransportRtt(benchmark::State& state) {
  net::Topology topo = make_topology();
  auto rng = bench::bench_rng("micro_net/transport-rtt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.transport_rtt_ms(30, 150, rng));
  }
}
BENCHMARK(BM_TransportRtt);

void BM_Ping(benchmark::State& state) {
  net::Topology topo = make_topology();
  auto rng = bench::bench_rng("micro_net/ping");
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.ping(30, 150, rng));
  }
}
BENCHMARK(BM_Ping);

void BM_Traceroute(benchmark::State& state) {
  net::Topology topo = make_topology();
  auto rng = bench::bench_rng("micro_net/traceroute");
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.traceroute(30, 150, rng));
  }
}
BENCHMARK(BM_Traceroute);

}  // namespace

int main(int argc, char** argv) {
  return curtain::bench::run_micro_benchmarks("micro_net", argc, argv);
}
