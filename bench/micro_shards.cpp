// micro_shards — campaign-engine scaling sweep.
//
// Runs the same Scenario at shards=1,2,4 and reports the campaign-phase
// wall-clock for each, plus the parallel speedup over the serial run.
// Shards are per-carrier, so the ceiling is the largest carrier's share
// of the device population (~2.5x for the six study carriers), not the
// shard count. One `bench_record` JSON line is emitted per shard count.
//
// CURTAIN_SCALE (default 0.2 here — enough campaign work for threading
// to dominate setup) and CURTAIN_SEED apply as everywhere else;
// CURTAIN_SHARDS is ignored since the sweep sets shards itself.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/study.h"

namespace {

struct RunResult {
  double campaign_ms = 0.0;
  size_t experiments = 0;
};

RunResult run_at(const curtain::core::Scenario& base, int shards) {
  curtain::core::Study study(curtain::core::Scenario(base).with_shards(shards));
  study.run();
  RunResult result;
  result.experiments = study.dataset().experiments.size();
  for (const auto& phase : study.report().phases) {
    if (phase.name == "campaign") result.campaign_ms = phase.wall_ms;
  }
  std::printf(
      "{\"bench_record\":\"micro_shards\",\"shards\":%d,"
      "\"campaign_ms\":%.1f,\"experiments\":%zu}\n",
      shards, result.campaign_ms, result.experiments);
  return result;
}

}  // namespace

int main() {
  curtain::core::Scenario base = curtain::core::Scenario::from_env();
  if (curtain::util::env_string("CURTAIN_SCALE", "").empty()) {
    base.with_scale(0.2);
  }
  std::printf("================================================================\n");
  std::printf("micro_shards — campaign engine scaling (scale=%.3f seed=%llu)\n",
              base.scale, static_cast<unsigned long long>(base.seed));
  std::printf("================================================================\n");

  const RunResult serial = run_at(base, 1);
  double best_ms = serial.campaign_ms;
  for (const int shards : {2, 4}) {
    const RunResult parallel = run_at(base, shards);
    if (parallel.experiments != serial.experiments) {
      std::printf("  DETERMINISM VIOLATION: shards=%d produced %zu "
                  "experiments, serial produced %zu\n",
                  shards, parallel.experiments, serial.experiments);
      return 1;
    }
    if (parallel.campaign_ms < best_ms) best_ms = parallel.campaign_ms;
    std::printf("  shards=%d speedup over serial: %.2fx\n", shards,
                serial.campaign_ms / parallel.campaign_ms);
  }
  std::printf("  best campaign speedup: %.2fx (serial %.0f ms -> %.0f ms)\n",
              serial.campaign_ms / best_ms, serial.campaign_ms, best_ms);
  return 0;
}
