// micro_shards — campaign-engine cohort-scaling sweep.
//
// Runs the same Scenario across workers ∈ {1,2,4,8,16,ncores} for two
// partition series:
//   * carrier_capped — cohorts=1, the historical one-shard-per-carrier
//     partition, whose speedup ceiling is the largest carrier's share of
//     the fleet (~2.5x for the six study carriers);
//   * cohort — cohorts auto-sized from the worker count (CURTAIN_COHORTS
//     semantics), which splits carriers into device cohorts so the pool
//     can keep every worker busy.
//
// For each (series, workers) point it emits one bench_record JSON line
// with two wall-clock figures:
//   * campaign_wall_ms — the campaign phase as actually measured on this
//     host. On boxes with fewer cores than workers this shows little or
//     no speedup: threads timeslice one core.
//   * modeled_wall_ms — the makespan of the engine's deterministic pull
//     queue (workers take the next shard in index order as they free up)
//     over per-shard busy times measured in an *uncontended* serial run
//     of the same partition. Shards share no mutable state, so on a host
//     with >= `workers` idle cores the measured wall converges to this
//     model; it is the honest cross-host scaling figure.
//
// CURTAIN_SCALE (default 0.1 here — enough campaign work for scheduling
// to dominate setup) and CURTAIN_SEED apply as everywhere else;
// CURTAIN_SHARDS/CURTAIN_COHORTS are ignored since the sweep sets both.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/study.h"

namespace {

using curtain::exec::ShardStat;

struct RunOutcome {
  double wall_ms = 0.0;       ///< measured campaign phase
  size_t experiments = 0;
  size_t shards = 0;
  int cohorts = 1;            ///< cohorts per carrier the engine resolved
  std::vector<ShardStat> stats;
};

RunOutcome run_campaign(const curtain::core::Scenario& base, int cohorts,
                        int workers) {
  curtain::core::Study study(curtain::core::Scenario(base)
                                 .with_cohorts(cohorts)
                                 .with_shards(workers));
  study.run();
  RunOutcome out;
  out.experiments = study.records().experiment_count();
  out.shards = study.shard_count();
  out.stats = study.shard_stats();
  for (const auto& stat : out.stats) {
    out.cohorts = std::max(out.cohorts, stat.cohort_index + 1);
  }
  for (const auto& phase : study.report().phases) {
    if (phase.name == "campaign") out.wall_ms = phase.wall_ms;
  }
  return out;
}

/// Makespan of the engine's pull queue: shards are taken in index order
/// by whichever worker frees up first — exactly greedy list scheduling.
double makespan_ms(const std::vector<ShardStat>& stats, int workers) {
  std::vector<double> free_at(static_cast<size_t>(workers), 0.0);
  for (const auto& stat : stats) {
    *std::min_element(free_at.begin(), free_at.end()) += stat.busy_ms;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

double serial_ms(const std::vector<ShardStat>& stats) {
  double total = 0.0;
  for (const auto& stat : stats) total += stat.busy_ms;
  return total;
}

}  // namespace

int main() {
  curtain::core::Scenario base = curtain::core::Scenario::from_env();
  if (curtain::util::env_string("CURTAIN_SCALE", "").empty()) {
    base.with_scale(0.1);
  }
  std::printf("================================================================\n");
  std::printf("micro_shards — cohort scaling sweep (scale=%.3f seed=%llu)\n",
              base.scale, static_cast<unsigned long long>(base.seed));
  std::printf("================================================================\n");

  // 16 extends past 8 into the regime the carrier-capped partition can
  // never reach (its speedup ceiling is the largest carrier's busy
  // share, ~38% of the fleet, regardless of worker count).
  std::vector<int> sweep = {1, 2, 4, 8, 16};
  const int ncores =
      static_cast<int>(std::thread::hardware_concurrency());
  if (ncores >= 1) sweep.push_back(ncores);
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  size_t reference_experiments = 0;
  // modeled_wall_ms needs uncontended per-shard busy times: one serial
  // (workers=1) run per distinct partition, cached by cohort count.
  std::map<int, RunOutcome> serial_runs;
  std::map<std::pair<std::string, int>, double> modeled;

  for (const std::string series : {"carrier_capped", "cohort"}) {
    for (const int workers : sweep) {
      // carrier_capped pins cohorts=1; cohort lets the engine auto-size
      // the partition from the worker count (CURTAIN_COHORTS=0).
      const int cohorts_knob = series == "carrier_capped" ? 1 : 0;
      const RunOutcome run = run_campaign(base, cohorts_knob, workers);

      if (reference_experiments == 0) reference_experiments = run.experiments;
      if (run.experiments != reference_experiments) {
        std::printf("  DETERMINISM VIOLATION: %s workers=%d produced %zu "
                    "experiments, reference produced %zu\n",
                    series.c_str(), workers, run.experiments,
                    reference_experiments);
        return 1;
      }

      auto clean = serial_runs.find(run.cohorts);
      if (clean == serial_runs.end()) {
        clean = serial_runs
                    .emplace(run.cohorts,
                             workers == 1 ? run
                                          : run_campaign(base, run.cohorts, 1))
                    .first;
      }
      const double model = makespan_ms(clean->second.stats, workers);
      modeled[{series, workers}] = model;

      std::printf(
          "{\"bench_record\":\"cohort_scaling\",\"series\":\"%s\","
          "\"workers\":%d,\"cohorts\":%d,\"shards\":%zu,"
          "\"campaign_wall_ms\":%.1f,\"modeled_wall_ms\":%.1f,"
          "\"serial_ms\":%.1f,\"experiments\":%zu}\n",
          series.c_str(), workers, run.cohorts, run.shards, run.wall_ms,
          model, serial_ms(clean->second.stats), run.experiments);
    }
  }

  // Headline: modeled speedup of the cohort partition over the
  // carrier-capped baseline at the widest sweep point.
  const int widest = sweep.back();
  for (const int workers : sweep) {
    const double capped = modeled.at({"carrier_capped", workers});
    const double cohort = modeled.at({"cohort", workers});
    std::printf("  workers=%d modeled: carrier_capped %.0f ms, cohort %.0f "
                "ms (%.2fx)\n",
                workers, capped, cohort, capped / cohort);
  }
  std::printf("  (modeled = pull-queue makespan over uncontended per-shard "
              "times; this host has %d core%s)\n",
              ncores, ncores == 1 ? "" : "s");
  const double gain = modeled.at({"carrier_capped", widest}) /
                      modeled.at({"cohort", widest});
  std::printf("  cohort partition gain at %d workers: %.2fx\n", widest, gain);
  return 0;
}
