// Microbenchmarks at the campaign level: world construction and full
// experiment throughput — what bounds a CURTAIN_SCALE=1 run.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cellular/device.h"
#include "core/world.h"
#include "dns/stub.h"
#include "measure/experiment.h"

namespace {

using namespace curtain;

void BM_WorldConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::World world;
    benchmark::DoNotOptimize(world.topology().node_count());
  }
}
BENCHMARK(BM_WorldConstruction)->Unit(benchmark::kMillisecond);

void BM_FullExperiment(benchmark::State& state) {
  core::World world;
  measure::ExperimentRunner runner(
      measure::WorldView{world.topology(), world.registry()},
      measure::ResolverIdentifier(world.research_apex()),
      measure::ExperimentConfig{});
  cellular::Fleet fleet(&world.carrier(0), 1);
  fleet.enroll(0, 1, net::GeoPoint{40.71, -74.01});
  cellular::Device device = fleet.device(0);
  measure::RecordStore records;
  auto rng = bench::bench_rng("micro_study/full-experiment");
  int64_t hour = 0;
  for (auto _ : state) {
    runner.run(device, 0, net::SimTime::from_hours(static_cast<double>(++hour)), rng, records);
  }
  state.SetLabel(std::to_string(records.resolution_count() /
                                std::max<size_t>(1, records.experiment_count())) +
                 " resolutions/experiment");
}
BENCHMARK(BM_FullExperiment)->Unit(benchmark::kMillisecond);

void BM_SingleCellResolution(benchmark::State& state) {
  core::World world;
  auto& carrier = world.carrier(0);
  cellular::Fleet fleet(&carrier, 1);
  fleet.enroll(0, 2, net::GeoPoint{40.71, -74.01});
  cellular::Device device = fleet.device(0);
  auto rng = bench::bench_rng("micro_study/single-resolution");
  const auto host = dns::DnsName::parse("www.buzzfeed.com");
  int64_t second = 0;
  for (auto _ : state) {
    const auto now = net::SimTime::from_seconds(static_cast<double>(second += 61));
    const auto snapshot = device.begin_experiment(now, rng);
    dns::StubResolver stub(device.gateway_node(), snapshot.public_ip,
                           world.topology(), world.registry());
    benchmark::DoNotOptimize(stub.query(snapshot.configured_resolver, *host,
                                        dns::RRType::kA, now, rng));
  }
}
BENCHMARK(BM_SingleCellResolution);

/// Hit-heavy variant (ISSUE-5 before/after comparison workload): queries
/// arrive one second apart, so almost every resolution is served from the
/// carrier's client-facing cache — the cache + name hot path end to end.
void BM_SingleCellResolutionWarm(benchmark::State& state) {
  core::World world;
  auto& carrier = world.carrier(0);
  cellular::Fleet fleet(&carrier, 1);
  fleet.enroll(0, 3, net::GeoPoint{40.71, -74.01});
  cellular::Device device = fleet.device(0);
  auto rng = bench::bench_rng("micro_study/single-resolution-warm");
  const auto host = dns::DnsName::parse("www.buzzfeed.com");
  int64_t second = 0;
  for (auto _ : state) {
    const auto now = net::SimTime::from_seconds(static_cast<double>(++second));
    const auto snapshot = device.begin_experiment(now, rng);
    dns::StubResolver stub(device.gateway_node(), snapshot.public_ip,
                           world.topology(), world.registry());
    benchmark::DoNotOptimize(stub.query(snapshot.configured_resolver, *host,
                                        dns::RRType::kA, now, rng));
  }
}
BENCHMARK(BM_SingleCellResolutionWarm);

}  // namespace

int main(int argc, char** argv) {
  return curtain::bench::run_micro_benchmarks("micro_study", argc, argv);
}
