// Section 2.2 motivation: why IP-based client identification fails in
// cellular networks (Balakrishnan et al., IMC'09, as cited by the paper).
//
// From the campaign dataset, measures (a) how quickly a device's public
// address churns and (b) how geographically spread the devices sharing one
// /24 are — the two properties that break IP geolocation and motivate
// DNS-based (and ultimately better-than-DNS) client localization.
#include <map>
#include <set>

#include "bench_common.h"
#include "net/geo.h"

int main() {
  using namespace curtain;
  bench::banner("Sec 2.2", "Ephemeral, itinerant client IPs (geolocation failure)");

  const auto& dataset = bench::study().records();

  for (int c = 0; c < 6; ++c) {
    // (a) distinct public IPs per device.
    std::map<uint64_t, std::set<uint32_t>> ips_per_device;
    std::map<uint64_t, size_t> experiments_per_device;
    // (b) per /24: locations observed using it.
    std::map<uint32_t, std::vector<net::GeoPoint>> locations_per_prefix;
    for (const auto& context : dataset.experiments()) {
      if (context.carrier_index != c) continue;
      ips_per_device[context.device_id].insert(context.public_ip.value());
      ++experiments_per_device[context.device_id];
      locations_per_prefix[context.public_ip.slash24().value()].push_back(
          context.location);
    }
    if (ips_per_device.empty()) continue;

    double churn = 0.0;
    for (const auto& [device, ips] : ips_per_device) {
      churn += static_cast<double>(ips.size()) /
               static_cast<double>(experiments_per_device[device]);
    }
    churn /= static_cast<double>(ips_per_device.size());

    // Max pairwise spread within each /24, aggregated.
    analysis::Ecdf spread_km;
    for (const auto& [prefix, locations] : locations_per_prefix) {
      if (locations.size() < 2) continue;
      double max_distance = 0.0;
      for (size_t i = 0; i < locations.size(); i += 7) {
        for (size_t j = i + 1; j < locations.size(); j += 7) {
          max_distance = std::max(
              max_distance, net::distance_km(locations[i], locations[j]));
        }
      }
      spread_km.add(max_distance);
    }

    std::printf("%-12s new IP per experiment: %.2f   /24 geographic spread: "
                "p50=%.0f km p90=%.0f km\n",
                analysis::carrier_name(c).c_str(), churn,
                spread_km.quantile(0.5), spread_km.quantile(0.9));
  }
  std::printf("\nA /24 whose users span hundreds of km carries no usable\n"
              "location signal — geolocating cellular clients by IP fails\n"
              "(paper §2.2), which is why CDNs leaned on LDNS instead.\n");
  return 0;
}
