// Section 5.2: network egress points per carrier, extracted from client
// traceroutes (last in-carrier hop before the first outside hop). The
// paper reports 110 (AT&T), 45 (Sprint), 62 (Verizon) and 49 (T-Mobile) —
// a 2-10x increase over the 4-6 of Xu et al.'s 3G-era study.
#include "bench_common.h"
#include "cellular/carrier_profile.h"

int main() {
  using namespace curtain;
  bench::banner("Sec 5.2", "Egress points discovered from client traceroutes");

  const auto stats = analysis::egress_points(bench::study().records());
  std::printf("  %-12s %-12s %s\n", "Carrier", "Discovered", "Provisioned");
  for (const auto& row : stats) {
    const auto& profile =
        cellular::study_carriers()[static_cast<size_t>(row.carrier_index)];
    std::printf("  %-12s %-12zu %d\n", profile.name.c_str(), row.egress_points,
                profile.egress_points);
  }
  std::printf("  (longer campaigns discover more of the provisioned set;\n"
              "   run with CURTAIN_SCALE=1 for full five-month coverage)\n");
  return 0;
}
