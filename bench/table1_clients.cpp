// Table 1: distribution of measurement clients across the six carriers.
#include <set>

#include "bench_common.h"
#include "cellular/carrier_profile.h"

int main() {
  using namespace curtain;
  bench::banner("Table 1", "Distribution of measurement clients per operator");

  std::printf("  %-12s %-8s %-8s %s\n", "Carrier", "#Clients", "Country",
              "(measured devices with >=1 experiment)");
  const auto& dataset = bench::study().records();
  std::vector<std::set<uint64_t>> active(cellular::study_carriers().size());
  for (const auto& context : dataset.experiments()) {
    active[static_cast<size_t>(context.carrier_index)].insert(context.device_id);
  }
  int total = 0;
  for (size_t c = 0; c < cellular::study_carriers().size(); ++c) {
    const auto& profile = cellular::study_carriers()[c];
    std::printf("  %-12s %-8d %-8s active=%zu\n", profile.name.c_str(),
                profile.study_clients, profile.country.c_str(),
                active[c].size());
    total += profile.study_clients;
  }
  std::printf("  %-12s %-8d  (paper: 158)\n", "TOTAL", total);
  return 0;
}
