// Table 2: the measured popular mobile domains, and a check that each is
// CNAME-fronted (the paper's selection criterion).
#include <set>

#include "bench_common.h"
#include "cdn/domains.h"

int main() {
  using namespace curtain;
  bench::banner("Table 2", "Popular mobile sites measured (all CNAME-fronted)");

  const auto& dataset = bench::study().records();
  // Count distinct replica /24s each domain resolved to across the fleet.
  std::vector<std::set<uint32_t>> replica_prefixes(cdn::study_domains().size());
  for (const auto& resolution : dataset.resolutions()) {
    for (const auto address : resolution.addresses) {
      replica_prefixes[resolution.domain_index].insert(
          address.slash24().value());
    }
  }
  std::printf("  %-22s %-12s %-16s %s\n", "Domain", "CDN", "edge customer",
              "replica /24s seen");
  for (size_t d = 0; d < cdn::study_domains().size(); ++d) {
    const auto& domain = cdn::study_domains()[d];
    std::printf("  %-22s %-12s %-16s %zu\n", domain.host.c_str(),
                domain.cdn.c_str(), domain.customer.c_str(),
                replica_prefixes[d].size());
  }
  return 0;
}
