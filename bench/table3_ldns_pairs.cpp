// Table 3: LDNS pairs — client-facing and external-facing resolver counts
// and the consistency of their pairings, per carrier. In the paper,
// Verizon is the only carrier at 100%.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Table 3", "LDNS pairs seen by the fleet, with consistency");

  const auto stats = analysis::ldns_pair_stats(bench::study().records());
  std::printf("  %-12s %-8s %-9s %-7s %s\n", "Provider", "Client", "External",
              "Pairs", "Consistency %");
  for (const auto& row : stats) {
    std::printf("  %-12s %-8zu %-9zu %-7zu %.1f\n",
                analysis::carrier_name(row.carrier_index).c_str(),
                row.client_resolvers, row.external_resolvers, row.pairs,
                row.consistency_percent);
  }
  std::printf("  (paper: every carrier indirect; Verizon alone at 100%%)\n");
  return 0;
}
