// Table 4: external reachability of observed cellular DNS resolvers from
// a wired university vantage point. Paper: only Verizon and AT&T answer a
// majority of pings (plus a sliver of T-Mobile); nobody completes a
// traceroute.
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Table 4", "External resolvers reachable from the vantage point");

  const auto table = analysis::external_reachability(bench::study().records());
  std::printf("  %-12s %-7s %-6s %s\n", "Provider", "Total", "Ping",
              "Traceroute");
  for (const auto& row : table) {
    std::printf("  %-12s %-7zu %-6zu %zu\n",
                analysis::carrier_name(row.carrier_index).c_str(), row.total,
                row.ping_responded, row.traceroute_reached);
  }
  return 0;
}
