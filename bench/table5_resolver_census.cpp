// Table 5: distinct resolver addresses (and /24s) observed through our
// ADNS for each provider and resolver group. Paper: public services show
// ~4x more addresses but comparable /24 counts (Google's 30 sites).
#include "bench_common.h"

int main() {
  using namespace curtain;
  bench::banner("Table 5", "Resolver census: unique IPs and /24s per provider");

  const auto census = analysis::resolver_census(bench::study().records());
  const auto kind = [](measure::ResolverKind k) { return static_cast<size_t>(k); };
  std::printf("  %-12s %-18s %-18s %-18s\n", "Provider", "Local (IP,/24)",
              "GoogleDNS (IP,/24)", "OpenDNS (IP,/24)");
  for (const auto& row : census) {
    std::printf("  %-12s (%zu, %zu)%*s(%zu, %zu)%*s(%zu, %zu)\n",
                analysis::carrier_name(row.carrier_index).c_str(),
                row.unique_ips[kind(measure::ResolverKind::kLocal)],
                row.unique_slash24s[kind(measure::ResolverKind::kLocal)], 8, "",
                row.unique_ips[kind(measure::ResolverKind::kGoogle)],
                row.unique_slash24s[kind(measure::ResolverKind::kGoogle)], 8, "",
                row.unique_ips[kind(measure::ResolverKind::kOpenDns)],
                row.unique_slash24s[kind(measure::ResolverKind::kOpenDns)]);
  }
  return 0;
}
