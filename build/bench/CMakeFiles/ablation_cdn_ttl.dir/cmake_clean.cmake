file(REMOVE_RECURSE
  "CMakeFiles/ablation_cdn_ttl.dir/ablation_cdn_ttl.cpp.o"
  "CMakeFiles/ablation_cdn_ttl.dir/ablation_cdn_ttl.cpp.o.d"
  "ablation_cdn_ttl"
  "ablation_cdn_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cdn_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
