# Empty compiler generated dependencies file for ablation_cdn_ttl.
# This may be replaced when dependencies are built.
