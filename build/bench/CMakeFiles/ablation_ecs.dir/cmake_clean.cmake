file(REMOVE_RECURSE
  "CMakeFiles/ablation_ecs.dir/ablation_ecs.cpp.o"
  "CMakeFiles/ablation_ecs.dir/ablation_ecs.cpp.o.d"
  "ablation_ecs"
  "ablation_ecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
