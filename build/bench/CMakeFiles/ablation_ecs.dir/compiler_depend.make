# Empty compiler generated dependencies file for ablation_ecs.
# This may be replaced when dependencies are built.
