file(REMOVE_RECURSE
  "CMakeFiles/baseline_3g_era.dir/baseline_3g_era.cpp.o"
  "CMakeFiles/baseline_3g_era.dir/baseline_3g_era.cpp.o.d"
  "baseline_3g_era"
  "baseline_3g_era.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_3g_era.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
