# Empty dependencies file for baseline_3g_era.
# This may be replaced when dependencies are built.
