file(REMOVE_RECURSE
  "CMakeFiles/ext_page_load.dir/ext_page_load.cpp.o"
  "CMakeFiles/ext_page_load.dir/ext_page_load.cpp.o.d"
  "ext_page_load"
  "ext_page_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_page_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
