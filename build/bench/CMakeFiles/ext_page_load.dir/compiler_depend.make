# Empty compiler generated dependencies file for ext_page_load.
# This may be replaced when dependencies are built.
