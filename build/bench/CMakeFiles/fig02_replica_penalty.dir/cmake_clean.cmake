file(REMOVE_RECURSE
  "CMakeFiles/fig02_replica_penalty.dir/fig02_replica_penalty.cpp.o"
  "CMakeFiles/fig02_replica_penalty.dir/fig02_replica_penalty.cpp.o.d"
  "fig02_replica_penalty"
  "fig02_replica_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_replica_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
