# Empty dependencies file for fig02_replica_penalty.
# This may be replaced when dependencies are built.
