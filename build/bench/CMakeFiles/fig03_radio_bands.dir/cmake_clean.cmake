file(REMOVE_RECURSE
  "CMakeFiles/fig03_radio_bands.dir/fig03_radio_bands.cpp.o"
  "CMakeFiles/fig03_radio_bands.dir/fig03_radio_bands.cpp.o.d"
  "fig03_radio_bands"
  "fig03_radio_bands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_radio_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
