# Empty dependencies file for fig03_radio_bands.
# This may be replaced when dependencies are built.
