file(REMOVE_RECURSE
  "CMakeFiles/fig04_resolver_distance.dir/fig04_resolver_distance.cpp.o"
  "CMakeFiles/fig04_resolver_distance.dir/fig04_resolver_distance.cpp.o.d"
  "fig04_resolver_distance"
  "fig04_resolver_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_resolver_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
