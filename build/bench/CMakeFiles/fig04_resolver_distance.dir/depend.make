# Empty dependencies file for fig04_resolver_distance.
# This may be replaced when dependencies are built.
