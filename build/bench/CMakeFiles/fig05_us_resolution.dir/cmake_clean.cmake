file(REMOVE_RECURSE
  "CMakeFiles/fig05_us_resolution.dir/fig05_us_resolution.cpp.o"
  "CMakeFiles/fig05_us_resolution.dir/fig05_us_resolution.cpp.o.d"
  "fig05_us_resolution"
  "fig05_us_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_us_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
