# Empty dependencies file for fig05_us_resolution.
# This may be replaced when dependencies are built.
