file(REMOVE_RECURSE
  "CMakeFiles/fig06_sk_resolution.dir/fig06_sk_resolution.cpp.o"
  "CMakeFiles/fig06_sk_resolution.dir/fig06_sk_resolution.cpp.o.d"
  "fig06_sk_resolution"
  "fig06_sk_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sk_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
