# Empty compiler generated dependencies file for fig06_sk_resolution.
# This may be replaced when dependencies are built.
