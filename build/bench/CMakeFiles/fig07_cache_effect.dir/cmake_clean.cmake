file(REMOVE_RECURSE
  "CMakeFiles/fig07_cache_effect.dir/fig07_cache_effect.cpp.o"
  "CMakeFiles/fig07_cache_effect.dir/fig07_cache_effect.cpp.o.d"
  "fig07_cache_effect"
  "fig07_cache_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cache_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
