file(REMOVE_RECURSE
  "CMakeFiles/fig08_resolver_churn.dir/fig08_resolver_churn.cpp.o"
  "CMakeFiles/fig08_resolver_churn.dir/fig08_resolver_churn.cpp.o.d"
  "fig08_resolver_churn"
  "fig08_resolver_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_resolver_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
