# Empty dependencies file for fig08_resolver_churn.
# This may be replaced when dependencies are built.
