file(REMOVE_RECURSE
  "CMakeFiles/fig09_static_clients.dir/fig09_static_clients.cpp.o"
  "CMakeFiles/fig09_static_clients.dir/fig09_static_clients.cpp.o.d"
  "fig09_static_clients"
  "fig09_static_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_static_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
