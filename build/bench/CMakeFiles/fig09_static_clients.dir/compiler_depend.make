# Empty compiler generated dependencies file for fig09_static_clients.
# This may be replaced when dependencies are built.
