file(REMOVE_RECURSE
  "CMakeFiles/fig10_cosine_similarity.dir/fig10_cosine_similarity.cpp.o"
  "CMakeFiles/fig10_cosine_similarity.dir/fig10_cosine_similarity.cpp.o.d"
  "fig10_cosine_similarity"
  "fig10_cosine_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cosine_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
