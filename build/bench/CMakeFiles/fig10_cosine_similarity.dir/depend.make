# Empty dependencies file for fig10_cosine_similarity.
# This may be replaced when dependencies are built.
