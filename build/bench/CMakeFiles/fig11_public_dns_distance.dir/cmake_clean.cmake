file(REMOVE_RECURSE
  "CMakeFiles/fig11_public_dns_distance.dir/fig11_public_dns_distance.cpp.o"
  "CMakeFiles/fig11_public_dns_distance.dir/fig11_public_dns_distance.cpp.o.d"
  "fig11_public_dns_distance"
  "fig11_public_dns_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_public_dns_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
