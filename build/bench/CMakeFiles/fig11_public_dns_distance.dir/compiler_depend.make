# Empty compiler generated dependencies file for fig11_public_dns_distance.
# This may be replaced when dependencies are built.
