file(REMOVE_RECURSE
  "CMakeFiles/fig12_google_consistency.dir/fig12_google_consistency.cpp.o"
  "CMakeFiles/fig12_google_consistency.dir/fig12_google_consistency.cpp.o.d"
  "fig12_google_consistency"
  "fig12_google_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_google_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
