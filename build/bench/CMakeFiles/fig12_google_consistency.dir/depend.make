# Empty dependencies file for fig12_google_consistency.
# This may be replaced when dependencies are built.
