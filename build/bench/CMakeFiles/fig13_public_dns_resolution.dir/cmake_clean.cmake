file(REMOVE_RECURSE
  "CMakeFiles/fig13_public_dns_resolution.dir/fig13_public_dns_resolution.cpp.o"
  "CMakeFiles/fig13_public_dns_resolution.dir/fig13_public_dns_resolution.cpp.o.d"
  "fig13_public_dns_resolution"
  "fig13_public_dns_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_public_dns_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
