# Empty dependencies file for fig13_public_dns_resolution.
# This may be replaced when dependencies are built.
