file(REMOVE_RECURSE
  "CMakeFiles/fig14_public_replica_perf.dir/fig14_public_replica_perf.cpp.o"
  "CMakeFiles/fig14_public_replica_perf.dir/fig14_public_replica_perf.cpp.o.d"
  "fig14_public_replica_perf"
  "fig14_public_replica_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_public_replica_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
