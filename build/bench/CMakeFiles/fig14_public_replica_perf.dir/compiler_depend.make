# Empty compiler generated dependencies file for fig14_public_replica_perf.
# This may be replaced when dependencies are built.
