file(REMOVE_RECURSE
  "CMakeFiles/micro_dns.dir/micro_dns.cpp.o"
  "CMakeFiles/micro_dns.dir/micro_dns.cpp.o.d"
  "micro_dns"
  "micro_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
