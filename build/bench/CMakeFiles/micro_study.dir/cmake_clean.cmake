file(REMOVE_RECURSE
  "CMakeFiles/micro_study.dir/micro_study.cpp.o"
  "CMakeFiles/micro_study.dir/micro_study.cpp.o.d"
  "micro_study"
  "micro_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
