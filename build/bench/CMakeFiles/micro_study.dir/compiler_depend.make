# Empty compiler generated dependencies file for micro_study.
# This may be replaced when dependencies are built.
