file(REMOVE_RECURSE
  "CMakeFiles/sec22_ip_geolocation.dir/sec22_ip_geolocation.cpp.o"
  "CMakeFiles/sec22_ip_geolocation.dir/sec22_ip_geolocation.cpp.o.d"
  "sec22_ip_geolocation"
  "sec22_ip_geolocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_ip_geolocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
