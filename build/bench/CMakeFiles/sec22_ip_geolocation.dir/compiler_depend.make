# Empty compiler generated dependencies file for sec22_ip_geolocation.
# This may be replaced when dependencies are built.
