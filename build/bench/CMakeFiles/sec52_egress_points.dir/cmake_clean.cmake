file(REMOVE_RECURSE
  "CMakeFiles/sec52_egress_points.dir/sec52_egress_points.cpp.o"
  "CMakeFiles/sec52_egress_points.dir/sec52_egress_points.cpp.o.d"
  "sec52_egress_points"
  "sec52_egress_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_egress_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
