# Empty dependencies file for sec52_egress_points.
# This may be replaced when dependencies are built.
