file(REMOVE_RECURSE
  "CMakeFiles/table1_clients.dir/table1_clients.cpp.o"
  "CMakeFiles/table1_clients.dir/table1_clients.cpp.o.d"
  "table1_clients"
  "table1_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
