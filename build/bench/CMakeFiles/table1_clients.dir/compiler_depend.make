# Empty compiler generated dependencies file for table1_clients.
# This may be replaced when dependencies are built.
