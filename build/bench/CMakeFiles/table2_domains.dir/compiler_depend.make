# Empty compiler generated dependencies file for table2_domains.
# This may be replaced when dependencies are built.
