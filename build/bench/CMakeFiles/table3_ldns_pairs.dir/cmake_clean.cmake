file(REMOVE_RECURSE
  "CMakeFiles/table3_ldns_pairs.dir/table3_ldns_pairs.cpp.o"
  "CMakeFiles/table3_ldns_pairs.dir/table3_ldns_pairs.cpp.o.d"
  "table3_ldns_pairs"
  "table3_ldns_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ldns_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
