# Empty compiler generated dependencies file for table3_ldns_pairs.
# This may be replaced when dependencies are built.
