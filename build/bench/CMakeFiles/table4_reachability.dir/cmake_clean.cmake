file(REMOVE_RECURSE
  "CMakeFiles/table4_reachability.dir/table4_reachability.cpp.o"
  "CMakeFiles/table4_reachability.dir/table4_reachability.cpp.o.d"
  "table4_reachability"
  "table4_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
