file(REMOVE_RECURSE
  "CMakeFiles/table5_resolver_census.dir/table5_resolver_census.cpp.o"
  "CMakeFiles/table5_resolver_census.dir/table5_resolver_census.cpp.o.d"
  "table5_resolver_census"
  "table5_resolver_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_resolver_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
