# Empty dependencies file for table5_resolver_census.
# This may be replaced when dependencies are built.
