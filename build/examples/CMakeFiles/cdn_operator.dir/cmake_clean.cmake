file(REMOVE_RECURSE
  "CMakeFiles/cdn_operator.dir/cdn_operator.cpp.o"
  "CMakeFiles/cdn_operator.dir/cdn_operator.cpp.o.d"
  "cdn_operator"
  "cdn_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
