# Empty compiler generated dependencies file for cdn_operator.
# This may be replaced when dependencies are built.
