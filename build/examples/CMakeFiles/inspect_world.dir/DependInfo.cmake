
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/inspect_world.cpp" "examples/CMakeFiles/inspect_world.dir/inspect_world.cpp.o" "gcc" "examples/CMakeFiles/inspect_world.dir/inspect_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/curtain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/curtain_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/curtain_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/curtain_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/curtain_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/publicdns/CMakeFiles/curtain_publicdns.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/curtain_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/curtain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/curtain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
