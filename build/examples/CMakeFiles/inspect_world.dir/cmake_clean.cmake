file(REMOVE_RECURSE
  "CMakeFiles/inspect_world.dir/inspect_world.cpp.o"
  "CMakeFiles/inspect_world.dir/inspect_world.cpp.o.d"
  "inspect_world"
  "inspect_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
