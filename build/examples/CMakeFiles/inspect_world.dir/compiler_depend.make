# Empty compiler generated dependencies file for inspect_world.
# This may be replaced when dependencies are built.
