file(REMOVE_RECURSE
  "CMakeFiles/replica_comparison.dir/replica_comparison.cpp.o"
  "CMakeFiles/replica_comparison.dir/replica_comparison.cpp.o.d"
  "replica_comparison"
  "replica_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
