# Empty compiler generated dependencies file for replica_comparison.
# This may be replaced when dependencies are built.
