file(REMOVE_RECURSE
  "CMakeFiles/resolver_churn.dir/resolver_churn.cpp.o"
  "CMakeFiles/resolver_churn.dir/resolver_churn.cpp.o.d"
  "resolver_churn"
  "resolver_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
