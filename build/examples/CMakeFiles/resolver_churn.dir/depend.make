# Empty dependencies file for resolver_churn.
# This may be replaced when dependencies are built.
