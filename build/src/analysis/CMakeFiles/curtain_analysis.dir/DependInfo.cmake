
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/census.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/census.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/census.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/figures.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/figures.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/figures.cpp.o.d"
  "/root/repo/src/analysis/ldns.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/ldns.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/ldns.cpp.o.d"
  "/root/repo/src/analysis/reach.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/reach.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/reach.cpp.o.d"
  "/root/repo/src/analysis/replica.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/replica.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/replica.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/curtain_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/curtain_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/curtain_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/curtain_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/curtain_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/curtain_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/curtain_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/curtain_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
