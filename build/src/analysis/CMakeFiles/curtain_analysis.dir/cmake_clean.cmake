file(REMOVE_RECURSE
  "CMakeFiles/curtain_analysis.dir/census.cpp.o"
  "CMakeFiles/curtain_analysis.dir/census.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/export.cpp.o"
  "CMakeFiles/curtain_analysis.dir/export.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/figures.cpp.o"
  "CMakeFiles/curtain_analysis.dir/figures.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/ldns.cpp.o"
  "CMakeFiles/curtain_analysis.dir/ldns.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/reach.cpp.o"
  "CMakeFiles/curtain_analysis.dir/reach.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/replica.cpp.o"
  "CMakeFiles/curtain_analysis.dir/replica.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/report.cpp.o"
  "CMakeFiles/curtain_analysis.dir/report.cpp.o.d"
  "CMakeFiles/curtain_analysis.dir/stats.cpp.o"
  "CMakeFiles/curtain_analysis.dir/stats.cpp.o.d"
  "libcurtain_analysis.a"
  "libcurtain_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
