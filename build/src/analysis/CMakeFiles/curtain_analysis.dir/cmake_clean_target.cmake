file(REMOVE_RECURSE
  "libcurtain_analysis.a"
)
