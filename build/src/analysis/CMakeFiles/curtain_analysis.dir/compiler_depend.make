# Empty compiler generated dependencies file for curtain_analysis.
# This may be replaced when dependencies are built.
