# Empty dependencies file for curtain_analysis.
# This may be replaced when dependencies are built.
