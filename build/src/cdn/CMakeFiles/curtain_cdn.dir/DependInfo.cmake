
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/cdn.cpp" "src/cdn/CMakeFiles/curtain_cdn.dir/cdn.cpp.o" "gcc" "src/cdn/CMakeFiles/curtain_cdn.dir/cdn.cpp.o.d"
  "/root/repo/src/cdn/domains.cpp" "src/cdn/CMakeFiles/curtain_cdn.dir/domains.cpp.o" "gcc" "src/cdn/CMakeFiles/curtain_cdn.dir/domains.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/curtain_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/curtain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/curtain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
