file(REMOVE_RECURSE
  "CMakeFiles/curtain_cdn.dir/cdn.cpp.o"
  "CMakeFiles/curtain_cdn.dir/cdn.cpp.o.d"
  "CMakeFiles/curtain_cdn.dir/domains.cpp.o"
  "CMakeFiles/curtain_cdn.dir/domains.cpp.o.d"
  "libcurtain_cdn.a"
  "libcurtain_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
