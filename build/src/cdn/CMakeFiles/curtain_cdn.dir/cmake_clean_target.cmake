file(REMOVE_RECURSE
  "libcurtain_cdn.a"
)
