# Empty compiler generated dependencies file for curtain_cdn.
# This may be replaced when dependencies are built.
