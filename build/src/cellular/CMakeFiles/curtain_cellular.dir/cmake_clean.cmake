file(REMOVE_RECURSE
  "CMakeFiles/curtain_cellular.dir/carrier.cpp.o"
  "CMakeFiles/curtain_cellular.dir/carrier.cpp.o.d"
  "CMakeFiles/curtain_cellular.dir/carrier_profile.cpp.o"
  "CMakeFiles/curtain_cellular.dir/carrier_profile.cpp.o.d"
  "CMakeFiles/curtain_cellular.dir/device.cpp.o"
  "CMakeFiles/curtain_cellular.dir/device.cpp.o.d"
  "CMakeFiles/curtain_cellular.dir/radio.cpp.o"
  "CMakeFiles/curtain_cellular.dir/radio.cpp.o.d"
  "libcurtain_cellular.a"
  "libcurtain_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
