file(REMOVE_RECURSE
  "libcurtain_cellular.a"
)
