# Empty dependencies file for curtain_cellular.
# This may be replaced when dependencies are built.
