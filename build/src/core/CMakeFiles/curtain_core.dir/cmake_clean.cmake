file(REMOVE_RECURSE
  "CMakeFiles/curtain_core.dir/study.cpp.o"
  "CMakeFiles/curtain_core.dir/study.cpp.o.d"
  "CMakeFiles/curtain_core.dir/world.cpp.o"
  "CMakeFiles/curtain_core.dir/world.cpp.o.d"
  "libcurtain_core.a"
  "libcurtain_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
