file(REMOVE_RECURSE
  "libcurtain_core.a"
)
