# Empty compiler generated dependencies file for curtain_core.
# This may be replaced when dependencies are built.
