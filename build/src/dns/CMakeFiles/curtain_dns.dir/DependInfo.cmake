
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/authoritative.cpp" "src/dns/CMakeFiles/curtain_dns.dir/authoritative.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/authoritative.cpp.o.d"
  "/root/repo/src/dns/cache.cpp" "src/dns/CMakeFiles/curtain_dns.dir/cache.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/cache.cpp.o.d"
  "/root/repo/src/dns/hierarchy.cpp" "src/dns/CMakeFiles/curtain_dns.dir/hierarchy.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/hierarchy.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/dns/CMakeFiles/curtain_dns.dir/message.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/curtain_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/record.cpp" "src/dns/CMakeFiles/curtain_dns.dir/record.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/record.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/dns/CMakeFiles/curtain_dns.dir/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/resolver.cpp.o.d"
  "/root/repo/src/dns/reverse.cpp" "src/dns/CMakeFiles/curtain_dns.dir/reverse.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/reverse.cpp.o.d"
  "/root/repo/src/dns/stub.cpp" "src/dns/CMakeFiles/curtain_dns.dir/stub.cpp.o" "gcc" "src/dns/CMakeFiles/curtain_dns.dir/stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/curtain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/curtain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
