file(REMOVE_RECURSE
  "CMakeFiles/curtain_dns.dir/authoritative.cpp.o"
  "CMakeFiles/curtain_dns.dir/authoritative.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/cache.cpp.o"
  "CMakeFiles/curtain_dns.dir/cache.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/hierarchy.cpp.o"
  "CMakeFiles/curtain_dns.dir/hierarchy.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/message.cpp.o"
  "CMakeFiles/curtain_dns.dir/message.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/name.cpp.o"
  "CMakeFiles/curtain_dns.dir/name.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/record.cpp.o"
  "CMakeFiles/curtain_dns.dir/record.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/resolver.cpp.o"
  "CMakeFiles/curtain_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/reverse.cpp.o"
  "CMakeFiles/curtain_dns.dir/reverse.cpp.o.d"
  "CMakeFiles/curtain_dns.dir/stub.cpp.o"
  "CMakeFiles/curtain_dns.dir/stub.cpp.o.d"
  "libcurtain_dns.a"
  "libcurtain_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
