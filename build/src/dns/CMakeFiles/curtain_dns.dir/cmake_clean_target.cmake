file(REMOVE_RECURSE
  "libcurtain_dns.a"
)
