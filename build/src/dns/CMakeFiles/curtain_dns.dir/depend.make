# Empty dependencies file for curtain_dns.
# This may be replaced when dependencies are built.
