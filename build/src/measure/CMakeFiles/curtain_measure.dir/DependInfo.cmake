
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/experiment.cpp" "src/measure/CMakeFiles/curtain_measure.dir/experiment.cpp.o" "gcc" "src/measure/CMakeFiles/curtain_measure.dir/experiment.cpp.o.d"
  "/root/repo/src/measure/fleet.cpp" "src/measure/CMakeFiles/curtain_measure.dir/fleet.cpp.o" "gcc" "src/measure/CMakeFiles/curtain_measure.dir/fleet.cpp.o.d"
  "/root/repo/src/measure/pageload.cpp" "src/measure/CMakeFiles/curtain_measure.dir/pageload.cpp.o" "gcc" "src/measure/CMakeFiles/curtain_measure.dir/pageload.cpp.o.d"
  "/root/repo/src/measure/probes.cpp" "src/measure/CMakeFiles/curtain_measure.dir/probes.cpp.o" "gcc" "src/measure/CMakeFiles/curtain_measure.dir/probes.cpp.o.d"
  "/root/repo/src/measure/resolver_ident.cpp" "src/measure/CMakeFiles/curtain_measure.dir/resolver_ident.cpp.o" "gcc" "src/measure/CMakeFiles/curtain_measure.dir/resolver_ident.cpp.o.d"
  "/root/repo/src/measure/vantage.cpp" "src/measure/CMakeFiles/curtain_measure.dir/vantage.cpp.o" "gcc" "src/measure/CMakeFiles/curtain_measure.dir/vantage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellular/CMakeFiles/curtain_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/curtain_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/curtain_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/curtain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/curtain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
