file(REMOVE_RECURSE
  "CMakeFiles/curtain_measure.dir/experiment.cpp.o"
  "CMakeFiles/curtain_measure.dir/experiment.cpp.o.d"
  "CMakeFiles/curtain_measure.dir/fleet.cpp.o"
  "CMakeFiles/curtain_measure.dir/fleet.cpp.o.d"
  "CMakeFiles/curtain_measure.dir/pageload.cpp.o"
  "CMakeFiles/curtain_measure.dir/pageload.cpp.o.d"
  "CMakeFiles/curtain_measure.dir/probes.cpp.o"
  "CMakeFiles/curtain_measure.dir/probes.cpp.o.d"
  "CMakeFiles/curtain_measure.dir/resolver_ident.cpp.o"
  "CMakeFiles/curtain_measure.dir/resolver_ident.cpp.o.d"
  "CMakeFiles/curtain_measure.dir/vantage.cpp.o"
  "CMakeFiles/curtain_measure.dir/vantage.cpp.o.d"
  "libcurtain_measure.a"
  "libcurtain_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
