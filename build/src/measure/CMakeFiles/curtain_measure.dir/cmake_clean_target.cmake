file(REMOVE_RECURSE
  "libcurtain_measure.a"
)
