# Empty dependencies file for curtain_measure.
# This may be replaced when dependencies are built.
