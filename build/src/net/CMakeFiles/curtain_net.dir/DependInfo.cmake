
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/clock.cpp" "src/net/CMakeFiles/curtain_net.dir/clock.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/clock.cpp.o.d"
  "/root/repo/src/net/geo.cpp" "src/net/CMakeFiles/curtain_net.dir/geo.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/geo.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/curtain_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "src/net/CMakeFiles/curtain_net.dir/latency.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/latency.cpp.o.d"
  "/root/repo/src/net/rng.cpp" "src/net/CMakeFiles/curtain_net.dir/rng.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/rng.cpp.o.d"
  "/root/repo/src/net/time.cpp" "src/net/CMakeFiles/curtain_net.dir/time.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/time.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/curtain_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/curtain_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/curtain_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
