file(REMOVE_RECURSE
  "CMakeFiles/curtain_net.dir/clock.cpp.o"
  "CMakeFiles/curtain_net.dir/clock.cpp.o.d"
  "CMakeFiles/curtain_net.dir/geo.cpp.o"
  "CMakeFiles/curtain_net.dir/geo.cpp.o.d"
  "CMakeFiles/curtain_net.dir/ipv4.cpp.o"
  "CMakeFiles/curtain_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/curtain_net.dir/latency.cpp.o"
  "CMakeFiles/curtain_net.dir/latency.cpp.o.d"
  "CMakeFiles/curtain_net.dir/rng.cpp.o"
  "CMakeFiles/curtain_net.dir/rng.cpp.o.d"
  "CMakeFiles/curtain_net.dir/time.cpp.o"
  "CMakeFiles/curtain_net.dir/time.cpp.o.d"
  "CMakeFiles/curtain_net.dir/topology.cpp.o"
  "CMakeFiles/curtain_net.dir/topology.cpp.o.d"
  "libcurtain_net.a"
  "libcurtain_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
