file(REMOVE_RECURSE
  "libcurtain_net.a"
)
