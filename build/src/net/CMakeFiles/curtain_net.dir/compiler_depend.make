# Empty compiler generated dependencies file for curtain_net.
# This may be replaced when dependencies are built.
