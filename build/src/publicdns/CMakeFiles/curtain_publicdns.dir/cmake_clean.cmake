file(REMOVE_RECURSE
  "CMakeFiles/curtain_publicdns.dir/public_dns.cpp.o"
  "CMakeFiles/curtain_publicdns.dir/public_dns.cpp.o.d"
  "libcurtain_publicdns.a"
  "libcurtain_publicdns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_publicdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
