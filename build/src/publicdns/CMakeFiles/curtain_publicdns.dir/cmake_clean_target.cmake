file(REMOVE_RECURSE
  "libcurtain_publicdns.a"
)
