# Empty dependencies file for curtain_publicdns.
# This may be replaced when dependencies are built.
