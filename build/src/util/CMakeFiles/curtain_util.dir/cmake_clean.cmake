file(REMOVE_RECURSE
  "CMakeFiles/curtain_util.dir/bytes.cpp.o"
  "CMakeFiles/curtain_util.dir/bytes.cpp.o.d"
  "CMakeFiles/curtain_util.dir/csv.cpp.o"
  "CMakeFiles/curtain_util.dir/csv.cpp.o.d"
  "CMakeFiles/curtain_util.dir/flags.cpp.o"
  "CMakeFiles/curtain_util.dir/flags.cpp.o.d"
  "CMakeFiles/curtain_util.dir/logging.cpp.o"
  "CMakeFiles/curtain_util.dir/logging.cpp.o.d"
  "CMakeFiles/curtain_util.dir/strings.cpp.o"
  "CMakeFiles/curtain_util.dir/strings.cpp.o.d"
  "libcurtain_util.a"
  "libcurtain_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curtain_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
