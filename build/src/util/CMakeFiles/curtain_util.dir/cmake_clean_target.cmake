file(REMOVE_RECURSE
  "libcurtain_util.a"
)
