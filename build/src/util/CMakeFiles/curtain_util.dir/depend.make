# Empty dependencies file for curtain_util.
# This may be replaced when dependencies are built.
