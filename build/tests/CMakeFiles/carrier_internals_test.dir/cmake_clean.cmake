file(REMOVE_RECURSE
  "CMakeFiles/carrier_internals_test.dir/carrier_internals_test.cpp.o"
  "CMakeFiles/carrier_internals_test.dir/carrier_internals_test.cpp.o.d"
  "carrier_internals_test"
  "carrier_internals_test.pdb"
  "carrier_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carrier_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
