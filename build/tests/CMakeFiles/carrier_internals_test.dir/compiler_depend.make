# Empty compiler generated dependencies file for carrier_internals_test.
# This may be replaced when dependencies are built.
