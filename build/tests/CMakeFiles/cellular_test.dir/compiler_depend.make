# Empty compiler generated dependencies file for cellular_test.
# This may be replaced when dependencies are built.
