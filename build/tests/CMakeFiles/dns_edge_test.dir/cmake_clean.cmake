file(REMOVE_RECURSE
  "CMakeFiles/dns_edge_test.dir/dns_edge_test.cpp.o"
  "CMakeFiles/dns_edge_test.dir/dns_edge_test.cpp.o.d"
  "dns_edge_test"
  "dns_edge_test.pdb"
  "dns_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
