# Empty dependencies file for dns_edge_test.
# This may be replaced when dependencies are built.
