file(REMOVE_RECURSE
  "CMakeFiles/ecs_test.dir/ecs_test.cpp.o"
  "CMakeFiles/ecs_test.dir/ecs_test.cpp.o.d"
  "ecs_test"
  "ecs_test.pdb"
  "ecs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
