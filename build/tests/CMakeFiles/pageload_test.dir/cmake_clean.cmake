file(REMOVE_RECURSE
  "CMakeFiles/pageload_test.dir/pageload_test.cpp.o"
  "CMakeFiles/pageload_test.dir/pageload_test.cpp.o.d"
  "pageload_test"
  "pageload_test.pdb"
  "pageload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pageload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
