# Empty compiler generated dependencies file for pageload_test.
# This may be replaced when dependencies are built.
