file(REMOVE_RECURSE
  "CMakeFiles/publicdns_test.dir/publicdns_test.cpp.o"
  "CMakeFiles/publicdns_test.dir/publicdns_test.cpp.o.d"
  "publicdns_test"
  "publicdns_test.pdb"
  "publicdns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publicdns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
