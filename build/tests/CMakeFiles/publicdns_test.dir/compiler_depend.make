# Empty compiler generated dependencies file for publicdns_test.
# This may be replaced when dependencies are built.
