file(REMOVE_RECURSE
  "CMakeFiles/time_clock_test.dir/time_clock_test.cpp.o"
  "CMakeFiles/time_clock_test.dir/time_clock_test.cpp.o.d"
  "time_clock_test"
  "time_clock_test.pdb"
  "time_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
