file(REMOVE_RECURSE
  "CMakeFiles/xu_campaign_test.dir/xu_campaign_test.cpp.o"
  "CMakeFiles/xu_campaign_test.dir/xu_campaign_test.cpp.o.d"
  "xu_campaign_test"
  "xu_campaign_test.pdb"
  "xu_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xu_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
