# Empty dependencies file for xu_campaign_test.
# This may be replaced when dependencies are built.
