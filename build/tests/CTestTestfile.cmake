# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ipv4_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/time_clock_test[1]_include.cmake")
include("/root/repo/build/tests/geo_latency_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/dns_name_test[1]_include.cmake")
include("/root/repo/build/tests/dns_message_test[1]_include.cmake")
include("/root/repo/build/tests/dns_cache_test[1]_include.cmake")
include("/root/repo/build/tests/dns_server_test[1]_include.cmake")
include("/root/repo/build/tests/cellular_test[1]_include.cmake")
include("/root/repo/build/tests/cdn_test[1]_include.cmake")
include("/root/repo/build/tests/publicdns_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ecs_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/pageload_test[1]_include.cmake")
include("/root/repo/build/tests/carrier_internals_test[1]_include.cmake")
include("/root/repo/build/tests/dns_edge_test[1]_include.cmake")
include("/root/repo/build/tests/reverse_test[1]_include.cmake")
include("/root/repo/build/tests/net_extra_test[1]_include.cmake")
include("/root/repo/build/tests/xu_campaign_test[1]_include.cmake")
