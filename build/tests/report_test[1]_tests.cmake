add_test([=[Report.GeneratesAllSections]=]  /root/repo/build/tests/report_test [==[--gtest_filter=Report.GeneratesAllSections]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Report.GeneratesAllSections]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 300)
set(  report_test_TESTS Report.GeneratesAllSections)
