// CDN operator's view: how good can replica selection be, given what the
// mapping system can actually see?
//
// For every carrier, compares three mapping strategies for real device
// traffic:
//   1. resolver-based (production, what the paper measures): map by the
//      external resolver's /24;
//   2. oracle (upper bound / the paper's future-work direction): map by
//      the *client's* true location;
//   3. country-only (no information): sticky hash within the country.
// Prints the mean replica RTT each strategy achieves — quantifying how
// much cellular DNS opaqueness and client/resolver inconsistency cost.
//
//   $ ./build/examples/cdn_operator
#include <cstdio>

#include "cellular/device.h"
#include "core/world.h"
#include "measure/probes.h"

int main() {
  using namespace curtain;

  core::World world;
  auto& provider = world.cdn("curtaincdn");
  measure::ProbeEngine probes(
      measure::WorldView{world.topology(), world.registry()});
  net::Rng rng(net::hash_tag("cdn-operator"));

  std::printf("%-12s %14s %14s %14s\n", "Carrier", "resolver-based",
              "client-oracle", "country-only");
  for (const auto& carrier : world.carriers()) {
    cellular::Fleet fleet(carrier.get(), 1);
    fleet.enroll(0, 1,
                 carrier->profile().country == "KR"
                     ? net::GeoPoint{35.18, 129.08}    // Busan
                     : net::GeoPoint{39.74, -104.99});  // Denver
    cellular::Device device = fleet.device(0);
    double sum_resolver = 0.0;
    double sum_oracle = 0.0;
    double sum_country = 0.0;
    int samples = 0;
    for (int hour = 0; hour < 24 * 14; hour += 3) {
      const auto now = net::SimTime::from_hours(hour);
      const auto snapshot = device.begin_experiment(now, rng);
      const auto pair =
          carrier->select_pair(0, snapshot.public_ip, now, rng);
      if (pair.external == nullptr) continue;

      const measure::ProbeOrigin origin{device.gateway_node(),
                                        snapshot.public_ip, 0.0};
      const auto rtt_to = [&](const cdn::ReplicaCluster& cluster) {
        const auto ping = probes.ping(origin, cluster.replica_ips[0], now, rng);
        return ping.responded ? ping.rtt_ms : 1000.0;
      };

      sum_resolver += rtt_to(provider.cluster_for_resolver(pair.external->ip()));
      sum_oracle += rtt_to(provider.nearest_cluster(
          snapshot.location, carrier->profile().country));
      // Country-only: a sticky hash of the subscriber's NAT /24.
      const auto& clusters = provider.clusters();
      const uint64_t h = net::mix_key(1, snapshot.public_ip.slash24().value());
      std::vector<const cdn::ReplicaCluster*> pool;
      for (const auto& cluster : clusters) {
        if (cluster.country == carrier->profile().country) {
          pool.push_back(&cluster);
        }
      }
      sum_country += rtt_to(*pool[h % pool.size()]);
      ++samples;
    }
    std::printf("%-12s %11.1f ms %11.1f ms %11.1f ms   (n=%d)\n",
                carrier->profile().name.c_str(), sum_resolver / samples,
                sum_oracle / samples, sum_country / samples, samples);
  }
  std::printf("\nThe gap between 'resolver-based' and 'client-oracle' is what\n"
              "better client localization would buy in each network — the\n"
              "paper's closing argument for moving beyond LDNS-based mapping.\n");
  return 0;
}
