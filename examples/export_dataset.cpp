// Dataset export: run a campaign and dump the raw measurement records as
// CSV — the equivalent of the paper's public data release.
//
//   $ ./build/examples/export_dataset [output-dir]    (default: ./dataset)
#include <cstdio>
#include <filesystem>

#include "analysis/export.h"
#include "core/study.h"

int main(int argc, char** argv) {
  using namespace curtain;

  const std::string directory = argc > 1 ? argv[1] : "dataset";
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", directory.c_str(),
                 ec.message().c_str());
    return 1;
  }

  core::Study study;
  std::printf("running campaign (scale=%.2f)...\n", study.scenario().scale);
  study.run();
  std::printf("campaign: %s\n", study.summary().c_str());

  const int written = analysis::export_records(study.records(), directory);
  std::printf("wrote %d files into %s/ (see MANIFEST.txt)\n", written,
              directory.c_str());
  return written == 7 ? 0 : 1;
}
