// Full reproduction report: runs a campaign and writes the EXPERIMENTS.md
// paper-vs-measured record to stdout.
//
//   $ CURTAIN_SCALE=0.1 ./build/examples/full_report > EXPERIMENTS.md
#include <iostream>

#include "analysis/report.h"
#include "core/study.h"

int main() {
  using namespace curtain;
  core::Study study;
  std::cerr << "running campaign (scale=" << study.scenario().scale << ")...\n";
  study.run();
  std::cerr << "campaign: " << study.summary() << "\n";

  analysis::ReportConfig config;
  config.scale = study.scenario().scale;
  config.seed = study.scenario().seed;
  analysis::write_report(study.records(), config, std::cout);
  return 0;
}
