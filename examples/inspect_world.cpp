// World inspector: dumps the built environment — carriers, DNS tiers,
// CDN footprints, public DNS sites — for exploration and debugging.
//
//   $ ./build/examples/inspect_world [--xu-era]
#include <cstdio>
#include <cstring>
#include <set>

#include "core/world.h"

int main(int argc, char** argv) {
  using namespace curtain;

  core::Scenario scenario = core::Scenario::paper_2014();
  if (argc > 1 && std::strcmp(argv[1], "--xu-era") == 0) {
    scenario.with_carriers(cellular::xu_era_carriers());
    std::printf("== 3G-era (Xu et al.) world ==\n\n");
  }
  core::World world(scenario);

  std::printf("topology: %zu nodes, %zu zones\n\n",
              world.topology().node_count(), world.topology().zone_count());

  std::printf("carriers:\n");
  for (const auto& carrier : world.carriers()) {
    const auto& p = carrier->profile();
    const char* arch = p.dns.kind == cellular::DnsArchKind::kAnycast
                           ? "anycast"
                           : p.dns.kind == cellular::DnsArchKind::kPool
                                 ? "LDNS pool"
                                 : "tiered";
    std::set<uint32_t> external24s;
    for (const auto& resolver : carrier->external_resolvers()) {
      external24s.insert(resolver->ip().slash24().value());
    }
    std::printf(
        "  %-12s %-2s  %3d egress points / %2d regions   DNS: %-9s "
        "%2zu client, %2zu external in %zu /24s%s%s\n",
        p.name.c_str(), p.country.c_str(), p.egress_points, p.regions, arch,
        carrier->client_resolvers().size(),
        carrier->external_resolvers().size(), external24s.size(),
        p.reach.externals_in_dmz ? "  [externals in DMZ AS]" : "",
        p.dns.paired_same_slash24 ? "  [pairs share /24]" : "");
    if (p.client_as != 0) {
      std::printf("  %-15s client tier AS%d, external tier AS%d\n", "",
                  p.client_as, p.external_as);
    }
  }

  std::printf("\nCDN providers:\n");
  for (const auto& [name, provider] : world.cdns()) {
    std::printf("  %-12s %zu clusters:", name.c_str(),
                provider->clusters().size());
    for (const auto& cluster : provider->clusters()) {
      std::printf(" %s", cluster.metro.c_str());
    }
    std::printf("\n");
  }

  std::printf("\npublic DNS:\n");
  for (const auto* service :
       {&world.google_dns(), &world.open_dns()}) {
    std::printf("  %-10s VIP %s  %zu sites x %zu instances\n",
                service->service_name().c_str(),
                service->ip().to_string().c_str(), service->sites().size(),
                service->sites().front().instances.size());
  }

  std::printf("\nresearch ADNS zone: %s   vantage: %s\n",
              world.research_apex().to_string().c_str(),
              world.vantage_ip().to_string().c_str());
  return 0;
}
