// Quickstart: build the study world, run a short campaign, and print the
// headline results — a five-minute tour of the public API.
//
//   $ ./build/examples/quickstart
//
// Environment knobs: CURTAIN_SCALE (0..1, campaign length; default 0.05),
// CURTAIN_SEED (RNG seed; default 20141105), CURTAIN_SHARDS (parallel
// campaign workers; default 1, results identical for every value).
#include <cstdio>

#include "analysis/figures.h"
#include "core/study.h"

int main() {
  using namespace curtain;

  core::Study study;  // Scenario::from_env() by default
  std::printf("curtain quickstart — scale=%.2f seed=%llu shards=%d\n",
              study.scenario().scale,
              static_cast<unsigned long long>(study.scenario().seed),
              study.scenario().shards);
  study.run();
  std::printf("campaign: %s\n\n", study.summary().c_str());

  // Resolution performance per carrier (local resolver), Figs. 5/6 style.
  for (const std::string country : {"US", "KR"}) {
    std::printf("DNS resolution time, %s carriers (cell LDNS):\n",
                country.c_str());
    for (const auto& [carrier, cdf] :
         analysis::fig5_fig6_resolution_times(study.records(), country)) {
      std::printf("  %-12s %s\n", carrier.c_str(),
                  analysis::describe_cdf(cdf).c_str());
    }
  }

  // The paper's headline: public DNS picks equal-or-better replicas most
  // of the time despite being farther from the client.
  const double headline =
      analysis::headline_public_equal_or_better(study.records());
  std::printf("\npublic DNS replicas equal-or-better than cell DNS: %.1f%%"
              " of comparisons (paper: >75%%)\n",
              headline * 100.0);
  return 0;
}
