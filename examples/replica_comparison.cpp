// Replica comparison: one device, one experiment, through all three
// resolver paths — the core measurement of the study, narrated.
//
// Shows, per domain: the resolution time, the replica addresses returned
// by the cell LDNS vs Google DNS vs OpenDNS, and the measured HTTP TTFB
// to each replica, so you can watch DNS-based replica selection diverge.
//
//   $ ./build/examples/replica_comparison [carrier-name]
#include <cstdio>
#include <string>

#include "cdn/domains.h"
#include "cellular/device.h"
#include "core/world.h"
#include "dns/stub.h"
#include "measure/probes.h"

int main(int argc, char** argv) {
  using namespace curtain;

  core::World world;
  const std::string wanted = argc > 1 ? argv[1] : "T-Mobile";
  cellular::CellularNetwork* carrier = nullptr;
  for (const auto& candidate : world.carriers()) {
    if (candidate->profile().name == wanted) carrier = candidate.get();
  }
  if (carrier == nullptr) {
    std::fprintf(stderr, "unknown carrier '%s'\n", wanted.c_str());
    return 1;
  }

  net::Rng rng(net::hash_tag("replica-comparison"));
  cellular::Fleet fleet(carrier, 1);
  fleet.enroll(0, 1, net::GeoPoint{41.88, -87.63});  // Chicago
  cellular::Device device = fleet.device(0);
  const auto snapshot = device.begin_experiment(net::SimTime::zero(), rng);
  std::printf("device on %s  gateway=%d  public IP=%s  configured DNS=%s\n\n",
              carrier->profile().name.c_str(), snapshot.gateway_index,
              snapshot.public_ip.to_string().c_str(),
              snapshot.configured_resolver.to_string().c_str());

  dns::StubResolver stub(device.gateway_node(), snapshot.public_ip,
                         world.topology(), world.registry());
  measure::ProbeEngine probes(
      measure::WorldView{world.topology(), world.registry()});

  const struct {
    const char* label;
    net::Ipv4Addr ip;
  } resolvers[] = {
      {"cell LDNS", snapshot.configured_resolver},
      {"GoogleDNS", net::Ipv4Addr{8, 8, 8, 8}},
      {"OpenDNS", net::Ipv4Addr{208, 67, 222, 222}},
  };

  net::SimTime now = net::SimTime::zero();
  for (const auto& domain : cdn::study_domains()) {
    std::printf("%s (via %s)\n", domain.host.c_str(), domain.cdn.c_str());
    for (const auto& resolver : resolvers) {
      const auto host = dns::DnsName::parse(domain.host);
      const double access = device.access_rtt_ms(now, rng);
      const auto result =
          stub.query(resolver.ip, *host, dns::RRType::kA, now, rng, access);
      now += net::SimTime::from_millis(result.total_ms);
      if (!result.responded) {
        std::printf("  %-10s (no response)\n", resolver.label);
        continue;
      }
      std::printf("  %-10s %6.1f ms ->", resolver.label, result.total_ms);
      for (const auto address : result.addresses()) {
        measure::ProbeOrigin origin{device.gateway_node(), snapshot.public_ip,
                                    device.access_rtt_ms(now, rng)};
        const auto http = probes.http_get(origin, address, now, rng);
        now += net::SimTime::from_millis(http.ttfb_ms);
        std::printf(" %s (TTFB %.1f ms)", address.to_string().c_str(),
                    http.ttfb_ms);
      }
      std::printf("\n");
    }
  }
  return 0;
}
