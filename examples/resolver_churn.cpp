// Resolver churn: watch one stationary device's DNS infrastructure drift.
//
// Replays a month of hourly resolver-identification probes for a single
// device per carrier and prints every change of external-facing resolver,
// with day labels matching the paper's Fig. 8/9 timelines. The device
// never leaves its home suburb — the churn is entirely network-side.
//
//   $ ./build/examples/resolver_churn
#include <cstdio>

#include "cellular/device.h"
#include "core/world.h"
#include "dns/stub.h"
#include "measure/resolver_ident.h"

int main() {
  using namespace curtain;

  core::World world;
  measure::ResolverIdentifier identifier(world.research_apex());
  net::Rng rng(net::hash_tag("resolver-churn"));

  uint64_t device_id = 100;
  uint64_t probe_counter = 0;
  for (const auto& carrier : world.carriers()) {
    const net::GeoPoint home = carrier->profile().country == "KR"
                                   ? net::GeoPoint{37.57, 126.98}   // Seoul
                                   : net::GeoPoint{33.75, -84.39};  // Atlanta
    cellular::Fleet fleet(carrier.get(), 1, /*travel_probability=*/0.0);
    fleet.enroll(0, device_id++, home);
    cellular::Device device = fleet.device(0);

    std::printf("%s (stationary device, 30 days of hourly probes)\n",
                carrier->profile().name.c_str());
    net::Ipv4Addr last_external;
    int changes = 0;
    int prefix_changes = 0;
    for (int hour = 0; hour < 24 * 30; ++hour) {
      const auto now = net::SimTime::from_hours(hour);
      const auto snapshot = device.begin_experiment(now, rng);
      dns::StubResolver stub(device.gateway_node(), snapshot.public_ip,
                             world.topology(), world.registry());
      const auto probe = identifier.probe_name(device.id(), probe_counter++);
      const auto result =
          stub.query(snapshot.configured_resolver, probe, dns::RRType::kA, now,
                     rng, device.access_rtt_ms(now, rng));
      const auto external = measure::ResolverIdentifier::extract(result.answers);
      if (!external) continue;
      if (*external != last_external) {
        const bool new_prefix = external->slash24() != last_external.slash24();
        if (!last_external.is_unspecified()) {
          ++changes;
          prefix_changes += new_prefix ? 1 : 0;
          std::printf("  %-7s external resolver -> %-15s %s\n",
                      net::CampaignCalendar::day_label(now).c_str(),
                      external->to_string().c_str(),
                      new_prefix ? "(new /24!)" : "(same /24)");
        }
        last_external = *external;
      }
    }
    std::printf("  => %d resolver changes, %d of them across /24s\n\n", changes,
                prefix_changes);
  }
  std::printf("A CDN keying replica selection on the resolver /24 re-maps the\n"
              "client on every '(new /24!)' line above — without the client\n"
              "moving an inch (paper §4.5, §5.1).\n");
  return 0;
}
