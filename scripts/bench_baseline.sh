#!/usr/bin/env bash
# Records the simulation-core perf trajectory (ISSUE 5) and the campaign
# cohort-scaling sweep (ISSUE 6).
#
#   scripts/bench_baseline.sh [label]     # label defaults to "run"
#
# Default suite (core_hotpath): runs the three micro benches plus one
# small campaign bench and appends their machine-readable results to
# BENCH_core_hotpath.json as JSON lines:
#
#   {"bench_series":...,"label":...,"benchmark":...,"real_ns_per_op":...}
#     one line per google-benchmark case (normalized to ns/op), and
#   {"bench_record":...}  the bench's own one-line run record (see
#     bench/bench_common.h), annotated with the label.
#
# CURTAIN_BENCH_SUITE=cohort_scaling instead runs the micro_shards
# worker/cohort sweep into BENCH_cohort_scaling.json; its series field
# distinguishes the carrier-capped "before" partition from the cohort
# "after" partition at every worker count.
#
# Run it once before a perf change ("before") and once after ("after");
# the paired series lines are the repo's recorded perf trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-run}"
SUITE="${CURTAIN_BENCH_SUITE:-core_hotpath}"
BUILD="${CURTAIN_BENCH_BUILD:-build}"
# Small but stable campaign: fixed scale/seed/shards so labels compare.
CAMPAIGN_SCALE="${CURTAIN_BENCH_SCALE:-0.02}"

# Normalizes one google-benchmark console line to a JSON series line.
#   BM_CacheLookupHit        123 ns        123 ns   5673126
emit_series() {  # $1 = bench name, reads console output on stdin
  awk -v bench="$1" -v label="$LABEL" '
    $1 ~ /^BM_/ && ($3 == "ns" || $3 == "us" || $3 == "ms" || $3 == "s") {
      ns = $2
      if ($3 == "us") ns = $2 * 1000
      if ($3 == "ms") ns = $2 * 1000000
      if ($3 == "s")  ns = $2 * 1000000000
      printf("{\"bench_series\":\"%s\",\"label\":\"%s\",\"benchmark\":\"%s\",\"real_ns_per_op\":%.1f}\n",
             bench, label, $1, ns)
    }'
}

annotate_records() {  # reads bench stdout, re-emits bench_record lines + label
  grep '^{"bench_record"' |
    sed "s/^{\"bench_record\":/{\"label\":\"$LABEL\",\"bench_record\":/"
}

if [ "$SUITE" = "cohort_scaling" ]; then
  OUT="${CURTAIN_BENCH_OUT:-BENCH_cohort_scaling.json}"
  # Fixed scale so labels compare; the sweep sets workers/cohorts itself.
  SWEEP_SCALE="${CURTAIN_BENCH_SCALE:-0.1}"
  cmake --build "$BUILD" -j "$(nproc)" --target micro_shards >/dev/null
  echo "[bench_baseline] label=$LABEL suite=cohort_scaling scale=$SWEEP_SCALE -> $OUT" >&2
  CURTAIN_SCALE="$SWEEP_SCALE" "./$BUILD/bench/micro_shards" \
    | tee /dev/stderr | annotate_records >>"$OUT"
  echo "[bench_baseline] appended $(grep -c . "$OUT") total lines in $OUT" >&2
  exit 0
fi

OUT="${CURTAIN_BENCH_OUT:-BENCH_core_hotpath.json}"
cmake --build "$BUILD" -j "$(nproc)" \
  --target micro_net micro_dns micro_study table1_clients >/dev/null

echo "[bench_baseline] label=$LABEL -> $OUT" >&2
for bench in micro_net micro_dns micro_study; do
  echo "[bench_baseline] running $bench ..." >&2
  raw="$("./$BUILD/bench/$bench" 2>/dev/null)"
  {
    emit_series "$bench" <<<"$raw"
    annotate_records <<<"$raw"
  } >>"$OUT"
done

echo "[bench_baseline] running campaign (table1_clients, scale=$CAMPAIGN_SCALE) ..." >&2
CURTAIN_SCALE="$CAMPAIGN_SCALE" CURTAIN_SHARDS="${CURTAIN_SHARDS:-1}" \
  "./$BUILD/bench/table1_clients" 2>/dev/null | annotate_records >>"$OUT"

echo "[bench_baseline] appended $(grep -c . "$OUT") total lines in $OUT" >&2
