#!/usr/bin/env bash
# One-command CI matrix for the curtain tree.
#
#   scripts/check.sh          # full matrix (plain, asan+ubsan, tsan, lint,
#                             # bench-smoke, profile-smoke, rss-smoke)
#   scripts/check.sh plain    # just one leg: plain | sanitize | tsan | lint
#                             #   | bench-smoke | profile-smoke | rss-smoke
#
# Legs:
#   plain     default build (all warnings + -Werror) and the full ctest
#             suite — the tier-1 gate.
#   sanitize  ASan+UBSan build tree (build-asan/) and the full ctest suite.
#   tsan      TSan build tree (build-tsan/) running shard_determinism_test,
#             which drives real worker thread pools against the shared
#             World — including the 16-cohort × 16-worker stress case
#             (96 shards, more cohorts than any carrier has devices) that
#             exercises the laned-state partitioning under maximum
#             interleaving.
#   lint      curtain_lint over src/ bench/ examples/ tools/ plus the
#             waiver-inventory diff: `curtain_lint --waivers` must match
#             the committed tools/lint/WAIVERS.txt exactly, so every new
#             `// lint:` waiver shows up in review (also runs inside every
#             ctest leg as LintTree/LintWaiversSynced; kept separate so a
#             lint check doesn't need a test run).
#   bench-smoke
#             runs each micro bench for a fraction of a second per case and
#             fails unless every binary emits a well-formed one-line
#             bench_record JSON — catches bit-rot in the perf evidence
#             pipeline (scripts/bench_baseline.sh) without a full bench run.
#   profile-smoke
#             runs a small campaign with CURTAIN_PROFILE_OUT set and fails
#             unless the chrome trace parses as JSON and every worker lane
#             carries at least one shard span — catches bit-rot in the
#             flight-recorder pipeline (obs/flight_recorder.h).
#   rss-smoke
#             runs bench/micro_fleet on a scaled-down fleet (CURTAIN_SCALE,
#             default 0.1 = 100k devices) under CURTAIN_RSS_CEILING_MB; the
#             bench exits nonzero if peak RSS breaches the ceiling or if
#             record-path memory grows with campaign length — the
#             bounded-memory gate for the streaming record pipeline.
#
# Every leg uses its own build directory, so re-runs are incremental.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
LEG="${1:-all}"

run_leg() {
  echo
  echo "=== check.sh: $1 ==="
}

plain_leg() {
  run_leg "plain build + full ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

sanitize_leg() {
  run_leg "ASan+UBSan build + full ctest"
  cmake -B build-asan -S . -DCURTAIN_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

tsan_leg() {
  run_leg "TSan build + shard determinism (incl. 16x16 cohort stress)"
  cmake -B build-tsan -S . -DCURTAIN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target shard_determinism_test
  ctest --test-dir build-tsan --output-on-failure -R ShardDeterminism
  # The stress case must have actually run: it is the leg's reason to exist.
  ./build-tsan/tests/shard_determinism_test \
    --gtest_filter='ShardDeterminism.StressManyCohortsManyWorkers' \
    --gtest_brief=1
}

lint_leg() {
  run_leg "curtain_lint + waiver inventory"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target curtain_lint
  ./build/tools/curtain_lint src bench examples tools
  # Waiver growth is reviewed, not silent: the committed inventory must
  # match the tree. Regenerate with
  #   ./build/tools/curtain_lint --waivers src bench examples tools \
  #       > tools/lint/WAIVERS.txt
  if ! diff -u tools/lint/WAIVERS.txt \
      <(./build/tools/curtain_lint --waivers src bench examples tools); then
    echo "lint: tools/lint/WAIVERS.txt is out of date (see diff above)" >&2
    exit 1
  fi
}

bench_smoke_leg() {
  run_leg "bench smoke (tiny micro benches + bench_record shape)"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target micro_net micro_dns micro_study
  local bench out
  for bench in micro_net micro_dns micro_study; do
    out="$("./build/bench/$bench" --benchmark_min_time=0.01 2>/dev/null)"
    # Every bench must emit exactly one bench_record line carrying the
    # wall-clock field plus at least one curtain_* metric (bench_common.h).
    if ! grep -c '^{"bench_record":"' <<<"$out" | grep -qx 1; then
      echo "bench-smoke: $bench emitted no (or multiple) bench_record lines" >&2
      exit 1
    fi
    if ! grep '^{"bench_record":"' <<<"$out" |
        grep -q '"wall_ms":[0-9.]*,"peak_rss_mb":[0-9.]*,"curtain_'; then
      echo "bench-smoke: $bench bench_record JSON is malformed:" >&2
      grep '^{"bench_record":"' <<<"$out" >&2 || true
      exit 1
    fi
    echo "bench-smoke: $bench ok"
  done
}

profile_smoke_leg() {
  run_leg "profile smoke (flight recorder -> chrome trace)"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target table1_clients
  local trace
  trace="$(mktemp -t curtain_trace.XXXXXX.json)"
  CURTAIN_SCALE=0.02 CURTAIN_SHARDS=2 CURTAIN_PROFILE_OUT="$trace" \
    ./build/bench/table1_clients >/dev/null
  # The trace must parse and show >=1 shard span on every worker lane —
  # a recorder that silently drops a lane would still produce valid JSON.
  python3 - "$trace" <<'PYEOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
workers = trace["otherData"]["workers"]
spans_by_lane = {}
for e in events:
    if e["ph"] == "X" and e.get("tid", 0) > 0:
        spans_by_lane.setdefault(e["tid"], 0)
        spans_by_lane[e["tid"]] += 1
missing = [lane for lane in range(1, workers + 1) if lane not in spans_by_lane]
if missing:
    sys.exit(f"profile-smoke: worker lanes {missing} have no shard spans "
             f"(lanes seen: {sorted(spans_by_lane)})")
print(f"profile-smoke: ok ({sum(spans_by_lane.values())} spans across "
      f"{len(spans_by_lane)} worker lanes)")
PYEOF
  rm -f "$trace"
}

rss_smoke_leg() {
  run_leg "rss smoke (scaled-down fleet sweep under an RSS ceiling)"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target micro_fleet
  # micro_fleet itself fails the run on a ceiling breach or if record-path
  # memory grows with campaign length; the leg picks a 10% fleet (100k
  # devices) and a proportional ceiling so the gate stays cheap. Run the
  # full million-device sweep with CURTAIN_SCALE=1 CURTAIN_RSS_CEILING_MB=6144
  # when regenerating BENCH_fleet_memory.json.
  CURTAIN_SCALE="${CURTAIN_SCALE:-0.1}" \
  CURTAIN_RSS_CEILING_MB="${CURTAIN_RSS_CEILING_MB:-1024}" \
    ./build/bench/micro_fleet
}

case "$LEG" in
  plain)    plain_leg ;;
  sanitize) sanitize_leg ;;
  tsan)     tsan_leg ;;
  lint)     lint_leg ;;
  bench-smoke) bench_smoke_leg ;;
  profile-smoke) profile_smoke_leg ;;
  rss-smoke) rss_smoke_leg ;;
  all)
    plain_leg
    sanitize_leg
    tsan_leg
    lint_leg
    bench_smoke_leg
    profile_smoke_leg
    rss_smoke_leg
    echo
    echo "=== check.sh: all legs green ==="
    ;;
  *)
    echo "usage: scripts/check.sh [plain|sanitize|tsan|lint|bench-smoke|profile-smoke|rss-smoke|all]" >&2
    exit 2
    ;;
esac
