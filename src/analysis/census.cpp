#include "analysis/census.h"

#include <set>

#include "cellular/carrier_profile.h"

namespace curtain::analysis {

std::vector<ResolverCensusRow> resolver_census(const measure::RecordStore& dataset) {
  const size_t carriers = cellular::study_carriers().size();
  std::vector<std::array<std::set<uint32_t>, measure::kNumResolverKinds>> ips(
      carriers);
  std::vector<std::array<std::set<uint32_t>, measure::kNumResolverKinds>>
      prefixes(carriers);

  for (const auto& observation : dataset.observations()) {
    if (!observation.responded) continue;
    const auto& context = dataset.context_of(observation.experiment_id);
    const auto carrier = static_cast<size_t>(context.carrier_index);
    const auto kind = static_cast<size_t>(observation.resolver);
    ips[carrier][kind].insert(observation.external_ip.value());
    prefixes[carrier][kind].insert(observation.external_ip.slash24().value());
  }

  std::vector<ResolverCensusRow> out(carriers);
  for (size_t c = 0; c < carriers; ++c) {
    out[c].carrier_index = static_cast<int>(c);
    for (size_t k = 0; k < measure::kNumResolverKinds; ++k) {
      out[c].unique_ips[k] = ips[c][k].size();
      out[c].unique_slash24s[k] = prefixes[c][k].size();
    }
  }
  return out;
}

}  // namespace curtain::analysis
