// Resolver census (paper Table 5): distinct resolver addresses and /24s
// observed per carrier for the local, Google and OpenDNS resolver groups.
#pragma once

#include <array>
#include <vector>

#include "measure/record_store.h"

namespace curtain::analysis {

struct ResolverCensusRow {
  int carrier_index = 0;
  /// Indexed by measure::ResolverKind.
  std::array<size_t, measure::kNumResolverKinds> unique_ips{};
  std::array<size_t, measure::kNumResolverKinds> unique_slash24s{};
};

std::vector<ResolverCensusRow> resolver_census(const measure::RecordStore& dataset);

}  // namespace curtain::analysis
