#include "analysis/export.h"

#include "cellular/carrier_profile.h"
#include "cdn/domains.h"
#include "util/contract.h"
#include "util/csv.h"

namespace curtain::analysis {
namespace {

const std::string& carrier_name(int carrier_index) {
  return cellular::study_carriers()[static_cast<size_t>(carrier_index)].name;
}

const char* target_kind_name(measure::ProbeTargetKind kind) {
  switch (kind) {
    case measure::ProbeTargetKind::kReplica: return "replica";
    case measure::ProbeTargetKind::kClientResolver: return "client_resolver";
    case measure::ProbeTargetKind::kExternalResolver: return "external_resolver";
    case measure::ProbeTargetKind::kPublicVip: return "public_vip";
    case measure::ProbeTargetKind::kBootstrap: return "bootstrap";
  }
  return "?";
}

// --- the shared row writers ----------------------------------------------
// Both export paths (cursor walk and streaming sink) funnel every row
// through these, which is what guarantees their files match byte for byte.

void write_experiments_header(util::CsvWriter& csv) {
  csv.row({"experiment_id", "device_id", "carrier", "started_hours", "radio",
           "lat", "lon", "gateway", "public_ip", "configured_resolver"});
}

void write_experiment_row(util::CsvWriter& csv,
                          const measure::ExperimentContext& context,
                          const std::string& carrier) {
  csv.typed_row(context.experiment_id, context.device_id, carrier,
                context.started.hours(),
                std::string(cellular::radio_tech_name(context.radio)),
                context.location.lat_deg, context.location.lon_deg,
                context.gateway_index, context.public_ip.to_string(),
                context.configured_resolver.to_string());
}

void write_resolutions_header(util::CsvWriter& csv) {
  csv.row({"experiment_id", "carrier", "resolver", "domain", "second_lookup",
           "responded", "resolution_ms", "addresses"});
}

void write_resolution_row(util::CsvWriter& csv,
                          const measure::ResolutionRow& r,
                          const std::string& carrier) {
  std::string addresses;
  for (const auto address : r.addresses) {
    if (!addresses.empty()) addresses += ' ';
    addresses += address.to_string();
  }
  csv.typed_row(r.experiment_id, carrier,
                std::string(measure::resolver_kind_name(r.resolver)),
                cdn::study_domains()[r.domain_index].host, int(r.second_lookup),
                int(r.responded), r.resolution_ms, addresses);
}

void write_probes_header(util::CsvWriter& csv) {
  csv.row({"experiment_id", "carrier", "target_kind", "resolver", "domain",
           "target_ip", "probe", "responded", "rtt_ms"});
}

void write_probe_row(util::CsvWriter& csv, const measure::ProbeRow& p,
                     const std::string& carrier) {
  csv.typed_row(p.experiment_id, carrier,
                std::string(target_kind_name(p.target_kind)),
                std::string(measure::resolver_kind_name(p.resolver)),
                p.target_kind == measure::ProbeTargetKind::kReplica
                    ? cdn::study_domains()[p.domain_index].host
                    : std::string(),
                p.target_ip.to_string(),
                std::string(p.is_http ? "http" : "ping"), int(p.responded),
                p.rtt_ms);
}

void write_traceroutes_header(util::CsvWriter& csv) {
  csv.row({"experiment_id", "carrier", "target_ip", "target_kind", "reached",
           "hops"});
}

void write_traceroute_row(util::CsvWriter& csv,
                          const measure::TracerouteRow& t,
                          const std::string& carrier) {
  std::string hops;
  for (size_t i = 0; i < t.hop_count; ++i) {
    if (!hops.empty()) hops += '|';
    hops += t.hop(i);
  }
  csv.typed_row(t.experiment_id, carrier, t.target_ip.to_string(),
                std::string(target_kind_name(t.target_kind)), int(t.reached),
                hops);
}

void write_observations_header(util::CsvWriter& csv) {
  csv.row({"experiment_id", "carrier", "resolver", "responded", "external_ip",
           "external_slash24", "resolution_ms"});
}

void write_observation_row(util::CsvWriter& csv,
                           const measure::ResolverObservation& o,
                           const std::string& carrier) {
  csv.typed_row(o.experiment_id, carrier,
                std::string(measure::resolver_kind_name(o.resolver)),
                int(o.responded), o.external_ip.to_string(),
                net::Prefix(o.external_ip.slash24(), 24).to_string(),
                o.resolution_ms);
}

void write_vantage_header(util::CsvWriter& csv) {
  csv.row({"carrier", "target_ip", "ping_responded", "traceroute_reached"});
}

void write_vantage_row(util::CsvWriter& csv, const measure::VantageProbe& v) {
  csv.typed_row(carrier_name(v.carrier_index), v.target_ip.to_string(),
                int(v.ping_responded), int(v.traceroute_reached));
}

void write_manifest(std::ostream& out, size_t experiments, size_t resolutions,
                    size_t probes, size_t traceroutes, size_t observations,
                    size_t vantage) {
  out << "curtain dataset export\n"
      << "experiments: " << experiments << "\n"
      << "resolutions: " << resolutions << "\n"
      << "probes: " << probes << "\n"
      << "traceroutes: " << traceroutes << "\n"
      << "resolver_observations: " << observations << "\n"
      << "vantage_probes: " << vantage << "\n";
}

/// The referential invariants every exporter relies on; violating any of
/// them means the campaign merge (exec/engine.cpp, measure/record_store.h)
/// is broken, and a loud abort beats shipping silently inconsistent files.
void check_records_integrity(const measure::RecordStore& records) {
  size_t ordinal = 0;
  for (const auto& context : records.experiments()) {
    CURTAIN_CHECK(context.experiment_id == ordinal)
        << "experiment record " << ordinal << " carries id "
        << context.experiment_id << "; context_of() indexing is broken";
    ++ordinal;
  }
  for (const auto r : records.resolutions()) {
    CURTAIN_CHECK(r.experiment_id < records.experiment_count())
        << "resolution references unknown experiment " << r.experiment_id;
    CURTAIN_CHECK(r.trace_index >= -1 &&
                  (r.trace_index < 0 || static_cast<size_t>(r.trace_index) <
                                            records.trace_count()))
        << "resolution trace_index " << r.trace_index << " out of range ("
        << records.trace_count() << " traces)";
  }
  for (const auto p : records.probes()) {
    CURTAIN_CHECK(p.experiment_id < records.experiment_count())
        << "probe references unknown experiment " << p.experiment_id;
  }
  for (const auto t : records.traceroutes()) {
    CURTAIN_CHECK(t.experiment_id < records.experiment_count())
        << "traceroute references unknown experiment " << t.experiment_id;
  }
  for (const auto& o : records.observations()) {
    CURTAIN_CHECK(o.experiment_id < records.experiment_count())
        << "resolver observation references unknown experiment "
        << o.experiment_id;
  }
}

const std::string& carrier_of(const measure::RecordStore& records,
                              uint32_t experiment_id) {
  return carrier_name(records.context_of(experiment_id).carrier_index);
}

}  // namespace

void export_experiments_csv(const measure::RecordStore& records,
                            std::ostream& out) {
  util::CsvWriter csv(out);
  write_experiments_header(csv);
  for (const auto& context : records.experiments()) {
    write_experiment_row(csv, context,
                         carrier_name(context.carrier_index));
  }
}

void export_resolutions_csv(const measure::RecordStore& records,
                            std::ostream& out) {
  util::CsvWriter csv(out);
  write_resolutions_header(csv);
  for (const auto r : records.resolutions()) {
    write_resolution_row(csv, r, carrier_of(records, r.experiment_id));
  }
}

void export_probes_csv(const measure::RecordStore& records,
                       std::ostream& out) {
  util::CsvWriter csv(out);
  write_probes_header(csv);
  for (const auto p : records.probes()) {
    write_probe_row(csv, p, carrier_of(records, p.experiment_id));
  }
}

void export_traceroutes_csv(const measure::RecordStore& records,
                            std::ostream& out) {
  util::CsvWriter csv(out);
  write_traceroutes_header(csv);
  for (const auto t : records.traceroutes()) {
    write_traceroute_row(csv, t, carrier_of(records, t.experiment_id));
  }
}

void export_resolver_observations_csv(const measure::RecordStore& records,
                                      std::ostream& out) {
  util::CsvWriter csv(out);
  write_observations_header(csv);
  for (const auto& o : records.observations()) {
    write_observation_row(csv, o, carrier_of(records, o.experiment_id));
  }
}

void export_vantage_probes_csv(const measure::RecordStore& records,
                               std::ostream& out) {
  util::CsvWriter csv(out);
  write_vantage_header(csv);
  for (const auto& v : records.vantage_probes()) {
    write_vantage_row(csv, v);
  }
}

int export_records(const measure::RecordStore& records,
                   const std::string& directory) {
  check_records_integrity(records);
  struct FileSpec {
    const char* name;
    void (*write)(const measure::RecordStore&, std::ostream&);
  };
  const FileSpec files[] = {
      {"experiments.csv", export_experiments_csv},
      {"resolutions.csv", export_resolutions_csv},
      {"probes.csv", export_probes_csv},
      {"traceroutes.csv", export_traceroutes_csv},
      {"resolver_observations.csv", export_resolver_observations_csv},
      {"vantage_probes.csv", export_vantage_probes_csv},
  };
  int written = 0;
  for (const auto& spec : files) {
    std::ofstream out(directory + "/" + spec.name);
    if (!out.good()) continue;
    spec.write(records, out);
    if (out.good()) ++written;
  }
  std::ofstream manifest(directory + "/MANIFEST.txt");
  if (manifest.good()) {
    write_manifest(manifest, records.experiment_count(),
                   records.resolution_count(), records.probe_count(),
                   records.traceroute_count(), records.observation_count(),
                   records.vantage_count());
    if (manifest.good()) ++written;
  }
  return written;
}

StreamingCsvExporter::StreamingCsvExporter(const std::string& directory)
    : directory_(directory),
      experiments_(directory + "/experiments.csv"),
      resolutions_(directory + "/resolutions.csv"),
      probes_(directory + "/probes.csv"),
      traceroutes_(directory + "/traceroutes.csv"),
      observations_(directory + "/resolver_observations.csv"),
      vantage_(directory + "/vantage_probes.csv") {
  if (experiments_.good()) {
    util::CsvWriter csv(experiments_);
    write_experiments_header(csv);
  }
  if (resolutions_.good()) {
    util::CsvWriter csv(resolutions_);
    write_resolutions_header(csv);
  }
  if (probes_.good()) {
    util::CsvWriter csv(probes_);
    write_probes_header(csv);
  }
  if (traceroutes_.good()) {
    util::CsvWriter csv(traceroutes_);
    write_traceroutes_header(csv);
  }
  if (observations_.good()) {
    util::CsvWriter csv(observations_);
    write_observations_header(csv);
  }
  if (vantage_.good()) {
    util::CsvWriter csv(vantage_);
    write_vantage_header(csv);
  }
}

void StreamingCsvExporter::consume(measure::RecordBlock&& block) {
  for (const auto& context : block.experiments) {
    CURTAIN_CHECK(context.experiment_id == experiment_carrier_.size())
        << "streamed experiment ids must arrive dense: got "
        << context.experiment_id << " at ordinal "
        << experiment_carrier_.size();
    experiment_carrier_.push_back(context.carrier_index);
    if (experiments_.good()) {
      util::CsvWriter csv(experiments_);
      write_experiment_row(csv, context, carrier_name(context.carrier_index));
    }
  }
  experiment_count_ += block.experiments.size();

  const auto carrier_of_id = [&](uint32_t experiment_id) -> const std::string& {
    CURTAIN_CHECK(experiment_id < experiment_carrier_.size())
        << "record references unseen experiment " << experiment_id;
    return carrier_name(experiment_carrier_[experiment_id]);
  };

  if (resolutions_.good()) {
    util::CsvWriter csv(resolutions_);
    for (size_t i = 0; i < block.resolutions.size(); ++i) {
      const measure::ResolutionRow r = block.resolution_row(i);
      write_resolution_row(csv, r, carrier_of_id(r.experiment_id));
    }
  }
  resolution_count_ += block.resolutions.size();

  if (probes_.good()) {
    util::CsvWriter csv(probes_);
    for (size_t i = 0; i < block.probes.size(); ++i) {
      const measure::ProbeRow p = block.probe_row(i);
      write_probe_row(csv, p, carrier_of_id(p.experiment_id));
    }
  }
  probe_count_ += block.probes.size();

  if (traceroutes_.good()) {
    util::CsvWriter csv(traceroutes_);
    for (size_t i = 0; i < block.traceroutes.size(); ++i) {
      const measure::TracerouteRow t = block.traceroute_row(i);
      write_traceroute_row(csv, t, carrier_of_id(t.experiment_id));
    }
  }
  traceroute_count_ += block.traceroutes.size();

  if (observations_.good()) {
    util::CsvWriter csv(observations_);
    for (const auto& o : block.observations) {
      write_observation_row(csv, o, carrier_of_id(o.experiment_id));
    }
  }
  observation_count_ += block.observations.size();

  if (vantage_.good()) {
    util::CsvWriter csv(vantage_);
    for (const auto& v : block.vantage_probes) {
      write_vantage_row(csv, v);
    }
  }
  vantage_count_ += block.vantage_probes.size();
}

void StreamingCsvExporter::finish() {
  files_written_ = 0;
  const auto close_counted = [this](std::ofstream& stream) {
    if (stream.is_open() && stream.good()) ++files_written_;
    stream.close();
  };
  close_counted(experiments_);
  close_counted(resolutions_);
  close_counted(probes_);
  close_counted(traceroutes_);
  close_counted(observations_);
  close_counted(vantage_);
  std::ofstream manifest(directory_ + "/MANIFEST.txt");
  if (manifest.good()) {
    write_manifest(manifest, experiment_count_, resolution_count_,
                   probe_count_, traceroute_count_, observation_count_,
                   vantage_count_);
    if (manifest.good()) ++files_written_;
  }
}

}  // namespace curtain::analysis
