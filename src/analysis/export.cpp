#include "analysis/export.h"

#include <fstream>

#include "cellular/carrier_profile.h"
#include "cdn/domains.h"
#include "util/contract.h"
#include "util/csv.h"

namespace curtain::analysis {
namespace {

const std::string& carrier_of(const measure::Dataset& dataset,
                              uint32_t experiment_id) {
  const auto& context = dataset.context_of(experiment_id);
  return cellular::study_carriers()[static_cast<size_t>(context.carrier_index)]
      .name;
}

const char* target_kind_name(measure::ProbeTargetKind kind) {
  switch (kind) {
    case measure::ProbeTargetKind::kReplica: return "replica";
    case measure::ProbeTargetKind::kClientResolver: return "client_resolver";
    case measure::ProbeTargetKind::kExternalResolver: return "external_resolver";
    case measure::ProbeTargetKind::kPublicVip: return "public_vip";
    case measure::ProbeTargetKind::kBootstrap: return "bootstrap";
  }
  return "?";
}

/// The referential invariants every exporter relies on; violating any of
/// them means the campaign merge (exec/engine.cpp) is broken, and a loud
/// abort beats shipping a silently inconsistent dataset.
void check_dataset_integrity(const measure::Dataset& dataset) {
  for (size_t i = 0; i < dataset.experiments.size(); ++i) {
    CURTAIN_CHECK(dataset.experiments[i].experiment_id == i)
        << "experiment record " << i << " carries id "
        << dataset.experiments[i].experiment_id
        << "; context_of() indexing is broken";
  }
  for (const auto& r : dataset.resolutions) {
    CURTAIN_CHECK(r.experiment_id < dataset.experiments.size())
        << "resolution references unknown experiment " << r.experiment_id;
    CURTAIN_CHECK(r.trace_index >= -1 &&
                  (r.trace_index < 0 ||
                   static_cast<size_t>(r.trace_index) <
                       dataset.resolution_traces.size()))
        << "resolution trace_index " << r.trace_index << " out of range ("
        << dataset.resolution_traces.size() << " traces)";
  }
  for (const auto& p : dataset.probes) {
    CURTAIN_CHECK(p.experiment_id < dataset.experiments.size())
        << "probe references unknown experiment " << p.experiment_id;
  }
  for (const auto& t : dataset.traceroutes) {
    CURTAIN_CHECK(t.experiment_id < dataset.experiments.size())
        << "traceroute references unknown experiment " << t.experiment_id;
  }
  for (const auto& o : dataset.resolver_observations) {
    CURTAIN_CHECK(o.experiment_id < dataset.experiments.size())
        << "resolver observation references unknown experiment "
        << o.experiment_id;
  }
}

}  // namespace

void export_experiments_csv(const measure::Dataset& dataset,
                            std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"experiment_id", "device_id", "carrier", "started_hours", "radio",
           "lat", "lon", "gateway", "public_ip", "configured_resolver"});
  for (const auto& context : dataset.experiments) {
    csv.typed_row(context.experiment_id, context.device_id,
                  carrier_of(dataset, context.experiment_id),
                  context.started.hours(),
                  std::string(cellular::radio_tech_name(context.radio)),
                  context.location.lat_deg, context.location.lon_deg,
                  context.gateway_index, context.public_ip.to_string(),
                  context.configured_resolver.to_string());
  }
}

void export_resolutions_csv(const measure::Dataset& dataset,
                            std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"experiment_id", "carrier", "resolver", "domain", "second_lookup",
           "responded", "resolution_ms", "addresses"});
  const auto& domains = cdn::study_domains();
  for (const auto& r : dataset.resolutions) {
    std::string addresses;
    for (const auto address : r.addresses) {
      if (!addresses.empty()) addresses += ' ';
      addresses += address.to_string();
    }
    csv.typed_row(r.experiment_id, carrier_of(dataset, r.experiment_id),
                  std::string(measure::resolver_kind_name(r.resolver)),
                  domains[r.domain_index].host, int(r.second_lookup),
                  int(r.responded), r.resolution_ms, addresses);
  }
}

void export_probes_csv(const measure::Dataset& dataset, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"experiment_id", "carrier", "target_kind", "resolver", "domain",
           "target_ip", "probe", "responded", "rtt_ms"});
  const auto& domains = cdn::study_domains();
  for (const auto& p : dataset.probes) {
    csv.typed_row(p.experiment_id, carrier_of(dataset, p.experiment_id),
                  std::string(target_kind_name(p.target_kind)),
                  std::string(measure::resolver_kind_name(p.resolver)),
                  p.target_kind == measure::ProbeTargetKind::kReplica
                      ? domains[p.domain_index].host
                      : std::string(),
                  p.target_ip.to_string(),
                  std::string(p.is_http ? "http" : "ping"), int(p.responded),
                  p.rtt_ms);
  }
}

void export_traceroutes_csv(const measure::Dataset& dataset,
                            std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"experiment_id", "carrier", "target_ip", "target_kind", "reached",
           "hops"});
  for (const auto& t : dataset.traceroutes) {
    std::string hops;
    for (const auto& hop : t.hop_names) {
      if (!hops.empty()) hops += '|';
      hops += hop;
    }
    csv.typed_row(t.experiment_id, carrier_of(dataset, t.experiment_id),
                  t.target_ip.to_string(),
                  std::string(target_kind_name(t.target_kind)), int(t.reached),
                  hops);
  }
}

void export_resolver_observations_csv(const measure::Dataset& dataset,
                                      std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"experiment_id", "carrier", "resolver", "responded", "external_ip",
           "external_slash24", "resolution_ms"});
  for (const auto& o : dataset.resolver_observations) {
    csv.typed_row(o.experiment_id, carrier_of(dataset, o.experiment_id),
                  std::string(measure::resolver_kind_name(o.resolver)),
                  int(o.responded), o.external_ip.to_string(),
                  net::Prefix(o.external_ip.slash24(), 24).to_string(),
                  o.resolution_ms);
  }
}

void export_vantage_probes_csv(const measure::Dataset& dataset,
                               std::ostream& out) {
  util::CsvWriter csv(out);
  csv.row({"carrier", "target_ip", "ping_responded", "traceroute_reached"});
  for (const auto& v : dataset.vantage_probes) {
    csv.typed_row(
        cellular::study_carriers()[static_cast<size_t>(v.carrier_index)].name,
        v.target_ip.to_string(), int(v.ping_responded),
        int(v.traceroute_reached));
  }
}

int export_dataset(const measure::Dataset& dataset,
                   const std::string& directory) {
  check_dataset_integrity(dataset);
  struct FileSpec {
    const char* name;
    void (*write)(const measure::Dataset&, std::ostream&);
  };
  const FileSpec files[] = {
      {"experiments.csv", export_experiments_csv},
      {"resolutions.csv", export_resolutions_csv},
      {"probes.csv", export_probes_csv},
      {"traceroutes.csv", export_traceroutes_csv},
      {"resolver_observations.csv", export_resolver_observations_csv},
      {"vantage_probes.csv", export_vantage_probes_csv},
  };
  int written = 0;
  for (const auto& spec : files) {
    std::ofstream out(directory + "/" + spec.name);
    if (!out.good()) continue;
    spec.write(dataset, out);
    if (out.good()) ++written;
  }
  std::ofstream manifest(directory + "/MANIFEST.txt");
  if (manifest.good()) {
    manifest << "curtain dataset export\n"
             << "experiments: " << dataset.experiments.size() << "\n"
             << "resolutions: " << dataset.resolutions.size() << "\n"
             << "probes: " << dataset.probes.size() << "\n"
             << "traceroutes: " << dataset.traceroutes.size() << "\n"
             << "resolver_observations: "
             << dataset.resolver_observations.size() << "\n"
             << "vantage_probes: " << dataset.vantage_probes.size() << "\n";
    if (manifest.good()) ++written;
  }
  return written;
}

}  // namespace curtain::analysis
