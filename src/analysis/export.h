// Record export: CSV dumps of the campaign's measurement records.
//
// The paper released its dataset from the project website; this module is
// the equivalent facility — one CSV per record type plus a manifest, so
// external tooling (pandas/R/gnuplot) can re-analyze the campaign.
//
// Two entry points over one set of row writers:
//   * export_records(store, dir): walks a retained RecordStore through its
//     cursor ranges — the in-memory path;
//   * StreamingCsvExporter: a RecordSink that writes each block's rows as
//     it arrives — the bounded-memory path (engine run_streaming, or
//     RecordStore::replay). Holding only a carrier-index byte per
//     experiment, it never retains a record.
// Both paths emit byte-identical files for the same record stream
// (export_test exercises the equivalence).
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "measure/record_store.h"

namespace curtain::analysis {

/// Writers for each record type. Each emits a header row followed by one
/// row per record; experiment context is denormalized into every row.
void export_experiments_csv(const measure::RecordStore& records,
                            std::ostream& out);
void export_resolutions_csv(const measure::RecordStore& records,
                            std::ostream& out);
void export_probes_csv(const measure::RecordStore& records, std::ostream& out);
void export_traceroutes_csv(const measure::RecordStore& records,
                            std::ostream& out);
void export_resolver_observations_csv(const measure::RecordStore& records,
                                      std::ostream& out);
void export_vantage_probes_csv(const measure::RecordStore& records,
                               std::ostream& out);

/// Writes the whole record stream into `directory` (experiments.csv,
/// resolutions.csv, probes.csv, traceroutes.csv, resolver_observations.csv,
/// vantage_probes.csv, MANIFEST.txt). Returns the number of files written
/// successfully.
int export_records(const measure::RecordStore& records,
                   const std::string& directory);

/// RecordSink writing the same seven files incrementally, one block at a
/// time. Files open (and CSV headers land) at construction; MANIFEST.txt
/// is written by finish(). Memory held: one open file per stream plus one
/// carrier-index byte per experiment seen (resolution/probe rows reference
/// experiments from earlier blocks, so the carrier denormalization needs
/// that much history — nothing else is retained).
class StreamingCsvExporter final : public measure::RecordSink {
 public:
  explicit StreamingCsvExporter(const std::string& directory);

  void consume(measure::RecordBlock&& block) override;
  void finish() override;

  /// Files successfully written; meaningful after finish(). Matches
  /// export_records' return value for the same stream.
  int files_written() const { return files_written_; }

 private:
  std::string directory_;
  std::ofstream experiments_;
  std::ofstream resolutions_;
  std::ofstream probes_;
  std::ofstream traceroutes_;
  std::ofstream observations_;
  std::ofstream vantage_;
  /// Carrier table index of experiment id `i` (ids arrive dense).
  std::vector<int32_t> experiment_carrier_;
  size_t experiment_count_ = 0;
  size_t resolution_count_ = 0;
  size_t probe_count_ = 0;
  size_t traceroute_count_ = 0;
  size_t observation_count_ = 0;
  size_t vantage_count_ = 0;
  int files_written_ = 0;
};

}  // namespace curtain::analysis
