// Dataset export: CSV dumps of the campaign's measurement records.
//
// The paper released its dataset from the project website; this module is
// the equivalent facility — one CSV per record type plus a manifest, so
// external tooling (pandas/R/gnuplot) can re-analyze the campaign.
#pragma once

#include <ostream>
#include <string>

#include "measure/records.h"

namespace curtain::analysis {

/// Writers for each record type. Each emits a header row followed by one
/// row per record; experiment context is denormalized into every row.
void export_experiments_csv(const measure::Dataset& dataset, std::ostream& out);
void export_resolutions_csv(const measure::Dataset& dataset, std::ostream& out);
void export_probes_csv(const measure::Dataset& dataset, std::ostream& out);
void export_traceroutes_csv(const measure::Dataset& dataset, std::ostream& out);
void export_resolver_observations_csv(const measure::Dataset& dataset,
                                      std::ostream& out);
void export_vantage_probes_csv(const measure::Dataset& dataset,
                               std::ostream& out);

/// Writes the whole dataset into `directory` (experiments.csv,
/// resolutions.csv, probes.csv, traceroutes.csv, resolver_observations.csv,
/// vantage_probes.csv, MANIFEST.txt). Returns the number of files written
/// successfully.
int export_dataset(const measure::Dataset& dataset,
                   const std::string& directory);

}  // namespace curtain::analysis
