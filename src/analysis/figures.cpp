#include "analysis/figures.h"

#include <algorithm>
#include <set>

#include "cellular/carrier_profile.h"
#include "util/contract.h"

namespace curtain::analysis {
namespace {

using measure::RecordStore;
using measure::ProbeTargetKind;
using measure::ResolverKind;

int num_carriers() {
  return static_cast<int>(cellular::study_carriers().size());
}

}  // namespace

const std::string& carrier_name(int carrier_index) {
  CURTAIN_CHECK(carrier_index >= 0 &&
                static_cast<size_t>(carrier_index) <
                    cellular::study_carriers().size())
      << "carrier index " << carrier_index << " outside the study set";
  return cellular::study_carriers()[static_cast<size_t>(carrier_index)].name;
}

std::map<std::string, Ecdf> fig2_replica_penalty(const RecordStore& d) {
  // The paper shows four domains; use the four CNAME-heavy consumer sites.
  const std::vector<uint16_t> domains = {2, 5, 6, 7};  // fb, buzzfeed, yelp, twitter
  auto by_carrier = replica_penalty_by_carrier(d, domains);
  std::map<std::string, Ecdf> out;
  for (auto& [carrier, cdf] : by_carrier) {
    out[carrier_name(carrier)] = std::move(cdf);
  }
  return out;
}

std::map<std::string, CdfGroup> fig3_radio_bands(const RecordStore& d) {
  std::map<std::string, CdfGroup> out;
  for (const auto& resolution : d.resolutions()) {
    if (resolution.resolver != ResolverKind::kLocal || resolution.second_lookup ||
        !resolution.responded) {
      continue;
    }
    const auto& context = d.context_of(resolution.experiment_id);
    out[carrier_name(context.carrier_index)]
       [cellular::radio_tech_name(context.radio)]
           .add(resolution.resolution_ms);
  }
  return out;
}

std::map<std::string, CdfGroup> fig4_resolver_distance(const RecordStore& d) {
  std::map<std::string, CdfGroup> out;
  for (const auto& probe : d.probes()) {
    if (probe.is_http || !probe.responded) continue;
    const bool client = probe.target_kind == ProbeTargetKind::kClientResolver;
    const bool external =
        probe.target_kind == ProbeTargetKind::kExternalResolver &&
        probe.resolver == ResolverKind::kLocal;
    if (!client && !external) continue;
    const auto& context = d.context_of(probe.experiment_id);
    out[carrier_name(context.carrier_index)][client ? "Client" : "External"].add(
        probe.rtt_ms);
  }
  return out;
}

CdfGroup fig5_fig6_resolution_times(const RecordStore& d,
                                    const std::string& country) {
  const auto& carriers = cellular::study_carriers();
  CdfGroup out;
  for (const auto& resolution : d.resolutions()) {
    if (resolution.resolver != ResolverKind::kLocal || resolution.second_lookup ||
        !resolution.responded) {
      continue;
    }
    const auto& context = d.context_of(resolution.experiment_id);
    const auto& profile =
        carriers[static_cast<size_t>(context.carrier_index)];
    if (profile.country != country) continue;
    out[profile.name].add(resolution.resolution_ms);
  }
  return out;
}

CdfGroup fig7_cache_effect(const RecordStore& d) {
  const auto& carriers = cellular::study_carriers();
  CdfGroup out;
  for (const auto& resolution : d.resolutions()) {
    if (resolution.resolver != ResolverKind::kLocal || !resolution.responded) {
      continue;
    }
    const auto& context = d.context_of(resolution.experiment_id);
    if (carriers[static_cast<size_t>(context.carrier_index)].country != "US") {
      continue;
    }
    out[resolution.second_lookup ? "2nd Lookup" : "1st Lookup"].add(
        resolution.resolution_ms);
  }
  return out;
}

std::map<std::string, CosineSplit> fig10_cosine(const RecordStore& d,
                                                uint16_t domain_index) {
  std::map<std::string, CosineSplit> out;
  for (int c = 0; c < num_carriers(); ++c) {
    out[carrier_name(c)] = cosine_by_prefix(d, domain_index, c);
  }
  return out;
}

std::map<std::string, CdfGroup> fig11_public_distance(const RecordStore& d) {
  std::map<std::string, CdfGroup> out;
  for (const auto& probe : d.probes()) {
    if (probe.is_http || !probe.responded) continue;
    const auto& context = d.context_of(probe.experiment_id);
    const std::string& carrier = carrier_name(context.carrier_index);
    if (probe.target_kind == ProbeTargetKind::kExternalResolver &&
        probe.resolver == ResolverKind::kLocal) {
      out[carrier]["Cell LDNS"].add(probe.rtt_ms);
    } else if (probe.target_kind == ProbeTargetKind::kPublicVip) {
      out[carrier][probe.resolver == ResolverKind::kGoogle ? "GoogleDNS"
                                                           : "OpenDNS"]
          .add(probe.rtt_ms);
    }
  }
  return out;
}

std::map<std::string, CdfGroup> fig13_public_resolution(const RecordStore& d) {
  std::map<std::string, CdfGroup> out;
  for (const auto& resolution : d.resolutions()) {
    if (resolution.second_lookup || !resolution.responded) continue;
    const auto& context = d.context_of(resolution.experiment_id);
    out[carrier_name(context.carrier_index)]
       [measure::resolver_kind_name(resolution.resolver)]
           .add(resolution.resolution_ms);
  }
  return out;
}

namespace {

/// Per (experiment, domain, resolver kind): mean replica HTTP latency and
/// the /24 set of the probed replicas.
struct ReplicaSample {
  double latency_sum = 0.0;
  int count = 0;
  std::set<uint32_t> slash24s;

  double mean() const { return count == 0 ? 0.0 : latency_sum / count; }
};

using SampleKey = std::tuple<uint32_t, uint16_t, int>;

std::map<SampleKey, ReplicaSample> collect_replica_samples(const RecordStore& d) {
  std::map<SampleKey, ReplicaSample> samples;
  for (const auto& probe : d.probes()) {
    if (probe.target_kind != ProbeTargetKind::kReplica || !probe.is_http ||
        !probe.responded) {
      continue;
    }
    ReplicaSample& sample =
        samples[{probe.experiment_id, probe.domain_index,
                 static_cast<int>(probe.resolver)}];
    sample.latency_sum += probe.rtt_ms;
    ++sample.count;
    sample.slash24s.insert(probe.target_ip.slash24().value());
  }
  return samples;
}

}  // namespace

std::map<std::string, CdfGroup> fig14_public_replica_delta(const RecordStore& d) {
  const auto samples = collect_replica_samples(d);
  std::map<std::string, CdfGroup> out;
  for (const auto& [key, local] : samples) {
    const auto [experiment, domain, kind] = key;
    if (kind != static_cast<int>(ResolverKind::kLocal) || local.count == 0) {
      continue;
    }
    const auto& context = d.context_of(experiment);
    const std::string& carrier = carrier_name(context.carrier_index);
    for (const ResolverKind public_kind :
         {ResolverKind::kGoogle, ResolverKind::kOpenDns}) {
      const auto it =
          samples.find({experiment, domain, static_cast<int>(public_kind)});
      if (it == samples.end() || it->second.count == 0) continue;
      const ReplicaSample& pub = it->second;
      // /24 aggregation: overlapping replica /24 sets count as equal.
      const bool same_cluster = std::any_of(
          pub.slash24s.begin(), pub.slash24s.end(), [&](uint32_t p) {
            return local.slash24s.find(p) != local.slash24s.end();
          });
      const double delta =
          same_cluster ? 0.0
                       : (pub.mean() - local.mean()) / local.mean() * 100.0;
      out[carrier][measure::resolver_kind_name(public_kind)].add(delta);
    }
  }
  return out;
}

double headline_public_equal_or_better(const RecordStore& d) {
  const auto groups = fig14_public_replica_delta(d);
  uint64_t total = 0;
  uint64_t equal_or_better = 0;
  for (const auto& [carrier, group] : groups) {
    for (const auto& [kind, cdf] : group) {
      total += cdf.size();
      equal_or_better += static_cast<uint64_t>(
          cdf.fraction_at_or_below(0.0) * static_cast<double>(cdf.size()) + 0.5);
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(equal_or_better) /
                          static_cast<double>(total);
}

}  // namespace curtain::analysis
