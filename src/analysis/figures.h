// Figure generators: one entry point per paper figure, turning the raw
// dataset into the CDFs/series each figure plots. Benches print these.
#pragma once

#include <map>
#include <string>

#include "analysis/census.h"
#include "analysis/ldns.h"
#include "analysis/reach.h"
#include "analysis/replica.h"
#include "analysis/stats.h"

namespace curtain::analysis {

/// A group of labelled CDFs (one figure panel).
using CdfGroup = std::map<std::string, Ecdf>;

/// Fig. 2: per carrier, CDF of percent increase in replica HTTP latency
/// vs the best replica each user saw (four domains, like the paper).
std::map<std::string, Ecdf> fig2_replica_penalty(const measure::RecordStore& d);

/// Fig. 3: per carrier, DNS resolution time grouped by radio technology
/// (local resolver, first lookups).
std::map<std::string, CdfGroup> fig3_radio_bands(const measure::RecordStore& d);

/// Fig. 4: per carrier, ping RTT to the configured (client-facing) vs the
/// identified external-facing resolver.
std::map<std::string, CdfGroup> fig4_resolver_distance(const measure::RecordStore& d);

/// Figs. 5/6: resolution-time CDFs for the given country ("US" or "KR"),
/// local resolver, first lookups.
CdfGroup fig5_fig6_resolution_times(const measure::RecordStore& d,
                                    const std::string& country);

/// Fig. 7: 1st vs 2nd back-to-back lookups, US carriers combined.
CdfGroup fig7_cache_effect(const measure::RecordStore& d);

/// Fig. 10: same-/24 vs different-/24 cosine similarity for one domain
/// (the paper uses buzzfeed.com), per carrier.
std::map<std::string, CosineSplit> fig10_cosine(const measure::RecordStore& d,
                                                uint16_t domain_index);

/// Fig. 11: per carrier, ping RTT to the cell external resolver vs the
/// public VIPs.
std::map<std::string, CdfGroup> fig11_public_distance(const measure::RecordStore& d);

/// Fig. 13: per carrier, resolution times local vs Google vs OpenDNS.
std::map<std::string, CdfGroup> fig13_public_resolution(const measure::RecordStore& d);

/// Fig. 14: per carrier and public service, CDF of the percent difference
/// between public-DNS-selected and local-DNS-selected replica latency,
/// replicas aggregated by /24 (intersecting /24 sets count as equal).
std::map<std::string, CdfGroup> fig14_public_replica_delta(
    const measure::RecordStore& d);

/// Headline number (abstract): fraction of comparisons where public DNS
/// replicas performed equal-or-better than the cell DNS replicas.
double headline_public_equal_or_better(const measure::RecordStore& d);

/// Carrier display name for an index.
const std::string& carrier_name(int carrier_index);

}  // namespace curtain::analysis
