#include "analysis/ldns.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "cellular/carrier_profile.h"
#include "net/geo.h"

namespace curtain::analysis {
namespace {

struct Joined {
  const measure::ExperimentContext* context;
  const measure::ResolverObservation* observation;
};

std::vector<Joined> joined_observations(const measure::RecordStore& dataset,
                                        int carrier_index,
                                        measure::ResolverKind kind) {
  std::vector<Joined> out;
  for (const auto& observation : dataset.observations()) {
    if (observation.resolver != kind || !observation.responded) continue;
    const auto& context = dataset.context_of(observation.experiment_id);
    if (context.carrier_index != carrier_index) continue;
    out.push_back(Joined{&context, &observation});
  }
  std::sort(out.begin(), out.end(), [](const Joined& a, const Joined& b) {
    return a.context->started < b.context->started;
  });
  return out;
}

ResolverTimeline build_timeline(uint64_t device_id, int carrier_index,
                                const std::vector<Joined>& observations) {
  ResolverTimeline timeline;
  timeline.device_id = device_id;
  timeline.carrier_index = carrier_index;
  std::unordered_map<uint32_t, int> ip_ranks;
  std::unordered_map<uint32_t, int> prefix_ranks;
  for (const auto& joined : observations) {
    const net::Ipv4Addr ip = joined.observation->external_ip;
    auto [ip_it, ip_new] =
        ip_ranks.emplace(ip.value(), static_cast<int>(ip_ranks.size()) + 1);
    auto [p_it, p_new] = prefix_ranks.emplace(
        ip.slash24().value(), static_cast<int>(prefix_ranks.size()) + 1);
    (void)ip_new;
    (void)p_new;
    timeline.times.push_back(joined.context->started);
    timeline.ip_rank.push_back(ip_it->second);
    timeline.slash24_rank.push_back(p_it->second);
  }
  return timeline;
}

}  // namespace

size_t ResolverTimeline::unique_ips() const {
  return ip_rank.empty() ? 0
                         : static_cast<size_t>(
                               *std::max_element(ip_rank.begin(), ip_rank.end()));
}

size_t ResolverTimeline::unique_slash24s() const {
  return slash24_rank.empty()
             ? 0
             : static_cast<size_t>(*std::max_element(slash24_rank.begin(),
                                                     slash24_rank.end()));
}

std::vector<LdnsPairStats> ldns_pair_stats(const measure::RecordStore& dataset) {
  const int carriers = static_cast<int>(cellular::study_carriers().size());
  std::vector<LdnsPairStats> out;
  for (int c = 0; c < carriers; ++c) {
    const auto joined =
        joined_observations(dataset, c, measure::ResolverKind::kLocal);
    LdnsPairStats stats;
    stats.carrier_index = c;
    std::set<uint32_t> clients;
    std::set<uint32_t> externals;
    std::set<std::pair<uint32_t, uint32_t>> pairs;
    // client resolver -> external -> count, for modal consistency.
    std::map<uint32_t, std::map<uint32_t, uint64_t>> pair_counts;
    for (const auto& j : joined) {
      const uint32_t client = j.context->configured_resolver.value();
      const uint32_t external = j.observation->external_ip.value();
      clients.insert(client);
      externals.insert(external);
      pairs.emplace(client, external);
      ++pair_counts[client][external];
    }
    stats.client_resolvers = clients.size();
    stats.external_resolvers = externals.size();
    stats.pairs = pairs.size();

    uint64_t total = 0;
    uint64_t modal = 0;
    for (const auto& [client, counts] : pair_counts) {
      uint64_t client_total = 0;
      uint64_t client_modal = 0;
      for (const auto& [external, count] : counts) {
        client_total += count;
        client_modal = std::max(client_modal, count);
      }
      total += client_total;
      modal += client_modal;
    }
    stats.consistency_percent =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(modal) /
                         static_cast<double>(total);
    out.push_back(stats);
  }
  return out;
}

std::vector<ResolverTimeline> resolver_timelines(
    const measure::RecordStore& dataset, int carrier_index,
    measure::ResolverKind kind) {
  const auto joined = joined_observations(dataset, carrier_index, kind);
  std::map<uint64_t, std::vector<Joined>> by_device;
  for (const auto& j : joined) by_device[j.context->device_id].push_back(j);
  std::vector<ResolverTimeline> out;
  out.reserve(by_device.size());
  for (const auto& [device, observations] : by_device) {
    out.push_back(build_timeline(device, carrier_index, observations));
  }
  return out;
}

std::vector<ResolverTimeline> static_resolver_timelines(
    const measure::RecordStore& dataset, int carrier_index,
    measure::ResolverKind kind, double radius_km) {
  const auto joined = joined_observations(dataset, carrier_index, kind);
  std::map<uint64_t, std::vector<Joined>> by_device;
  for (const auto& j : joined) by_device[j.context->device_id].push_back(j);

  std::vector<ResolverTimeline> out;
  for (auto& [device, observations] : by_device) {
    // Modal location: bucket observations onto a ~10 km grid, take the
    // densest cell's centroid. Robust to any fraction of travel episodes.
    std::map<std::pair<int, int>, std::vector<const Joined*>> cells;
    for (const auto& j : observations) {
      const int lat_cell = static_cast<int>(j.context->location.lat_deg * 10.0);
      const int lon_cell = static_cast<int>(j.context->location.lon_deg * 10.0);
      cells[{lat_cell, lon_cell}].push_back(&j);
    }
    const std::vector<const Joined*>* densest = nullptr;
    for (const auto& [cell, members] : cells) {
      if (densest == nullptr || members.size() > densest->size()) {
        densest = &members;
      }
    }
    net::GeoPoint modal{0.0, 0.0};
    for (const auto* j : *densest) {
      modal.lat_deg += j->context->location.lat_deg;
      modal.lon_deg += j->context->location.lon_deg;
    }
    modal.lat_deg /= static_cast<double>(densest->size());
    modal.lon_deg /= static_cast<double>(densest->size());

    std::vector<Joined> at_home;
    for (const auto& j : observations) {
      if (net::distance_km(j.context->location, modal) <= radius_km) {
        at_home.push_back(j);
      }
    }
    if (!at_home.empty()) {
      out.push_back(build_timeline(device, carrier_index, at_home));
    }
  }
  return out;
}

}  // namespace curtain::analysis
