// LDNS structure and consistency analyses (paper §4.1, §4.5; Table 3,
// Figs. 8, 9 and 12).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "measure/record_store.h"

namespace curtain::analysis {

/// Table 3 row: one carrier's LDNS pairing structure as measured.
struct LdnsPairStats {
  int carrier_index = 0;
  size_t client_resolvers = 0;    ///< distinct configured addresses seen
  size_t external_resolvers = 0;  ///< distinct external addresses seen
  size_t pairs = 0;               ///< distinct (client, external) pairs
  /// % of measurements in which a client resolver was paired with its
  /// modal external resolver (the paper's "consistency").
  double consistency_percent = 0.0;
};

/// Computes Table 3 from the dataset (local resolver kind only).
std::vector<LdnsPairStats> ldns_pair_stats(const measure::RecordStore& dataset);

/// One device's resolver-association history (the Fig. 8 / Fig. 9 / Fig. 12
/// timelines): for each observation, the time and the first-appearance
/// rank of the external IP and of its /24.
struct ResolverTimeline {
  uint64_t device_id = 0;
  int carrier_index = 0;
  std::vector<net::SimTime> times;
  std::vector<int> ip_rank;       ///< 1-based enumeration of distinct IPs
  std::vector<int> slash24_rank;  ///< 1-based enumeration of distinct /24s
  size_t unique_ips() const;
  size_t unique_slash24s() const;
};

/// Timelines for all devices of a carrier, for the given resolver kind
/// (kLocal reproduces Figs. 8/9; kGoogle reproduces Fig. 12).
std::vector<ResolverTimeline> resolver_timelines(
    const measure::RecordStore& dataset, int carrier_index,
    measure::ResolverKind kind);

/// Same, but keeping only observations within `radius_km` of the device's
/// modal location — the paper's "static location" filter (Fig. 9 uses
/// 10 km).
std::vector<ResolverTimeline> static_resolver_timelines(
    const measure::RecordStore& dataset, int carrier_index,
    measure::ResolverKind kind, double radius_km = 10.0);

}  // namespace curtain::analysis
