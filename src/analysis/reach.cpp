#include "analysis/reach.h"

#include <string_view>

#include "cellular/carrier_profile.h"
#include "util/strings.h"

namespace curtain::analysis {

std::vector<ReachabilityStats> external_reachability(
    const measure::RecordStore& dataset) {
  const int carriers = static_cast<int>(cellular::study_carriers().size());
  std::vector<ReachabilityStats> out(static_cast<size_t>(carriers));
  for (int c = 0; c < carriers; ++c) out[static_cast<size_t>(c)].carrier_index = c;
  for (const auto& probe : dataset.vantage_probes()) {
    auto& stats = out[static_cast<size_t>(probe.carrier_index)];
    ++stats.total;
    if (probe.ping_responded) ++stats.ping_responded;
    if (probe.traceroute_reached) ++stats.traceroute_reached;
  }
  return out;
}

std::vector<EgressStats> egress_points(const measure::RecordStore& dataset) {
  const auto& carriers = cellular::study_carriers();
  std::vector<EgressStats> out(carriers.size());
  for (size_t c = 0; c < carriers.size(); ++c) {
    out[c].carrier_index = static_cast<int>(c);
  }

  for (const auto& trace : dataset.traceroutes()) {
    const auto& context = dataset.context_of(trace.experiment_id);
    const auto carrier_index = static_cast<size_t>(context.carrier_index);
    const std::string& carrier_name = carriers[carrier_index].name;

    // Last hop carrying the carrier's name before the first foreign hop.
    // Traces that never leave the carrier (probes to in-network resolvers)
    // reveal no egress and are skipped, exactly as in the paper's method.
    std::string last_in_carrier;
    bool saw_foreign = false;
    for (size_t h = 0; h < trace.hop_count; ++h) {
      const std::string_view hop = trace.hop(h);
      if (hop == "*") continue;
      if (util::starts_with(hop, carrier_name)) {
        last_in_carrier = std::string(hop);
      } else {
        saw_foreign = true;
        break;  // first hop outside the carrier network
      }
    }
    if (saw_foreign && !last_in_carrier.empty()) {
      out[carrier_index].egress_names.insert(last_in_carrier);
    }
  }
  for (auto& stats : out) stats.egress_points = stats.egress_names.size();
  return out;
}

}  // namespace curtain::analysis
