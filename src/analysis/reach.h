// Opaqueness and egress analyses (paper §4.4 Table 4, §5.2).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "measure/record_store.h"

namespace curtain::analysis {

/// Table 4 row: how many observed external resolvers answered the wired
/// vantage point.
struct ReachabilityStats {
  int carrier_index = 0;
  size_t total = 0;
  size_t ping_responded = 0;
  size_t traceroute_reached = 0;
};

std::vector<ReachabilityStats> external_reachability(
    const measure::RecordStore& dataset);

/// §5.2: egress points per carrier, extracted the way the paper did —
/// from client traceroutes, take the last in-carrier hop before the first
/// hop outside the carrier's network. Hops are classified by name prefix
/// (the client-visible analogue of the paper's IP-to-AS mapping).
struct EgressStats {
  int carrier_index = 0;
  size_t egress_points = 0;
  std::set<std::string> egress_names;
};

std::vector<EgressStats> egress_points(const measure::RecordStore& dataset);

}  // namespace curtain::analysis
