#include "analysis/replica.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace curtain::analysis {
namespace {

/// experiment_id -> external resolver IP (local kind) for joins.
std::map<uint32_t, uint32_t> local_external_by_experiment(
    const measure::RecordStore& dataset) {
  std::map<uint32_t, uint32_t> out;
  for (const auto& observation : dataset.observations()) {
    if (observation.resolver == measure::ResolverKind::kLocal &&
        observation.responded) {
      out[observation.experiment_id] = observation.external_ip.value();
    }
  }
  return out;
}

}  // namespace

double ReplicaMap::ratio(net::Ipv4Addr replica) const {
  if (total_ == 0) return 0.0;
  const auto it = counts_.find(replica.value());
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

double ReplicaMap::cosine_similarity(const ReplicaMap& other) const {
  if (total_ == 0 || other.total_ == 0) return 0.0;
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [ip, count] : counts_) {
    const double a = static_cast<double>(count) / static_cast<double>(total_);
    norm_a += a * a;
    const auto it = other.counts_.find(ip);
    if (it != other.counts_.end()) {
      const double b =
          static_cast<double>(it->second) / static_cast<double>(other.total_);
      dot += a * b;
    }
  }
  for (const auto& [ip, count] : other.counts_) {
    const double b =
        static_cast<double>(count) / static_cast<double>(other.total_);
    norm_b += b * b;
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  return denom > 0.0 ? dot / denom : 0.0;
}

std::map<int, Ecdf> replica_penalty_by_carrier(
    const measure::RecordStore& dataset,
    const std::vector<uint16_t>& domain_filter) {
  // (device, domain, replica) -> running mean of HTTP TTFB.
  struct Acc {
    double sum = 0.0;
    uint64_t n = 0;
  };
  std::map<std::tuple<uint64_t, uint16_t, uint32_t>, Acc> latency;
  std::map<uint64_t, int> device_carrier;

  for (const auto& probe : dataset.probes()) {
    if (probe.target_kind != measure::ProbeTargetKind::kReplica ||
        !probe.is_http || !probe.responded ||
        probe.resolver != measure::ResolverKind::kLocal) {
      continue;
    }
    if (!domain_filter.empty() &&
        std::find(domain_filter.begin(), domain_filter.end(),
                  probe.domain_index) == domain_filter.end()) {
      continue;
    }
    const auto& context = dataset.context_of(probe.experiment_id);
    device_carrier[context.device_id] = context.carrier_index;
    Acc& acc = latency[{context.device_id, probe.domain_index,
                        probe.target_ip.value()}];
    acc.sum += probe.rtt_ms;
    ++acc.n;
  }

  // Per (device, domain): percent increase of each replica vs the best.
  std::map<int, Ecdf> by_carrier;
  auto it = latency.begin();
  while (it != latency.end()) {
    const auto [device, domain, first_ip] = it->first;
    (void)first_ip;
    double best = 1e18;
    std::vector<double> means;
    auto end = it;
    while (end != latency.end() && std::get<0>(end->first) == device &&
           std::get<1>(end->first) == domain) {
      const double mean = end->second.sum / static_cast<double>(end->second.n);
      means.push_back(mean);
      best = std::min(best, mean);
      ++end;
    }
    if (means.size() >= 2) {  // a lone replica has no differential
      Ecdf& cdf = by_carrier[device_carrier[device]];
      for (const double mean : means) {
        cdf.add((mean / best - 1.0) * 100.0);
      }
    }
    it = end;
  }
  return by_carrier;
}

std::map<uint32_t, ReplicaMap> replica_maps_by_resolver(
    const measure::RecordStore& dataset, uint16_t domain_index, int carrier_index) {
  const auto externals = local_external_by_experiment(dataset);
  std::map<uint32_t, ReplicaMap> maps;
  for (const auto& resolution : dataset.resolutions()) {
    if (resolution.resolver != measure::ResolverKind::kLocal ||
        resolution.second_lookup || !resolution.responded ||
        resolution.domain_index != domain_index) {
      continue;
    }
    const auto& context = dataset.context_of(resolution.experiment_id);
    if (context.carrier_index != carrier_index) continue;
    const auto external = externals.find(resolution.experiment_id);
    if (external == externals.end()) continue;
    ReplicaMap& map = maps[external->second];
    for (const net::Ipv4Addr address : resolution.addresses) {
      map.observe(address);
    }
  }
  return maps;
}

CosineSplit cosine_by_prefix(const measure::RecordStore& dataset,
                             uint16_t domain_index, int carrier_index) {
  const auto maps = replica_maps_by_resolver(dataset, domain_index, carrier_index);
  // maps is ordered by resolver IP, so the pairwise sweep below visits
  // pairs in a reproducible order with no extra sort.
  std::vector<std::pair<uint32_t, const ReplicaMap*>> entries;
  entries.reserve(maps.size());
  for (const auto& [ip, map] : maps) {
    if (!map.empty()) entries.emplace_back(ip, &map);
  }

  CosineSplit split;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double sim = entries[i].second->cosine_similarity(*entries[j].second);
      const bool same24 = net::Ipv4Addr(entries[i].first).slash24() ==
                          net::Ipv4Addr(entries[j].first).slash24();
      (same24 ? split.same_slash24 : split.different_slash24).add(sim);
    }
  }
  return split;
}

}  // namespace curtain::analysis
