// Replica-selection analyses (paper §5, Figs. 2 and 10).
//
// A "replica map" is the paper's <replicaIP, ratio> vector: for one
// observer (a user, or a resolver), the fraction of resolutions that
// returned each replica. Cosine similarity between maps quantifies how
// much two observers' replica sets overlap.
// Containers here are ordered (std::map, not unordered_map) on purpose:
// cosine_similarity accumulates floating point over the key order, and the
// figure pipelines iterate these maps straight into printed/exported rows,
// so iteration order is part of the reproducibility contract
// (tools/curtain_lint rule unordered-iter).
#pragma once

#include <map>

#include "analysis/stats.h"
#include "measure/record_store.h"

namespace curtain::analysis {

/// Normalized <replica, ratio> vector.
class ReplicaMap {
 public:
  void observe(net::Ipv4Addr replica) { ++counts_[replica.value()]; ++total_; }

  bool empty() const { return total_ == 0; }
  uint64_t total() const { return total_; }
  size_t distinct() const { return counts_.size(); }

  /// ratio for one replica.
  double ratio(net::Ipv4Addr replica) const;

  /// cos_sim in [0,1]: 0 = disjoint sets, 1 = identical distributions.
  double cosine_similarity(const ReplicaMap& other) const;

  const std::map<uint32_t, uint64_t>& counts() const { return counts_; }

 private:
  std::map<uint32_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Fig. 2: per carrier, the percent increase of each replica's mean HTTP
/// latency over the best replica the same user saw for the same domain.
/// `domain_filter` restricts to specific domain indices (Fig. 2 shows 4
/// domains); empty = all.
std::map<int, Ecdf> replica_penalty_by_carrier(
    const measure::RecordStore& dataset, const std::vector<uint16_t>& domain_filter);

/// Fig. 10 input: replica maps keyed by the *external resolver* (local
/// kind) that served the experiment, for one domain.
std::map<uint32_t, ReplicaMap> replica_maps_by_resolver(
    const measure::RecordStore& dataset, uint16_t domain_index, int carrier_index);

struct CosineSplit {
  Ecdf same_slash24;
  Ecdf different_slash24;
};

/// Fig. 10: pairwise cosine similarity between resolver replica maps,
/// split by whether the two resolvers share a /24.
CosineSplit cosine_by_prefix(const measure::RecordStore& dataset,
                             uint16_t domain_index, int carrier_index);

}  // namespace curtain::analysis
