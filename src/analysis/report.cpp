#include "analysis/report.h"

#include <iomanip>

#include "analysis/figures.h"
#include "cdn/domains.h"
#include "cellular/carrier_profile.h"
#include "util/strings.h"

namespace curtain::analysis {
namespace {

using measure::RecordStore;

std::string ms(double v) { return util::format_double(v, 1) + " ms"; }
std::string pct(double v) { return util::format_double(v * 100.0, 1) + "%"; }

void section(std::ostream& out, const std::string& title) {
  out << "\n## " << title << "\n\n";
}

void table_header(std::ostream& out, const std::vector<std::string>& columns) {
  out << "|";
  for (const auto& column : columns) out << " " << column << " |";
  out << "\n|";
  for (size_t i = 0; i < columns.size(); ++i) out << "---|";
  out << "\n";
}

void table_row(std::ostream& out, const std::vector<std::string>& cells) {
  out << "|";
  for (const auto& cell : cells) out << " " << cell << " |";
  out << "\n";
}

}  // namespace

void write_report(const RecordStore& dataset, const ReportConfig& config,
                  std::ostream& out) {
  const auto& carriers = cellular::study_carriers();

  out << "# EXPERIMENTS — paper vs measured\n\n"
      << "Reproduction record for *Behind the Curtain: Cellular DNS and "
         "Content Replica Selection* (IMC 2014). Regenerate with "
         "`./build/examples/full_report > EXPERIMENTS.md`.\n\n"
      << "- campaign scale: " << util::format_double(config.scale, 3)
      << " of the paper's five months (CURTAIN_SCALE), seed " << config.seed
      << "\n"
      << "- dataset: " << dataset.experiment_count() << " experiments, "
      << dataset.resolution_count() << " resolutions, "
      << dataset.total_probes() << " probes/traceroutes (paper: ~28k / 8.1M / "
         "2.4M at full scale)\n"
      << "- shape, not absolute numbers, is the reproduction target: the "
         "substrate is a calibrated simulator, not the authors' fleet.\n"
      << "- set `CURTAIN_METRICS_OUT=<path>` on any run to dump the obs "
         "metrics registry (per-layer counters, latency histograms, "
         "per-phase wall-clock) as JSON — or Prometheus text with a "
         "`.prom` path (DESIGN.md §9).\n"
      << "- set `CURTAIN_SHARDS=<n>` to run the campaign on n worker "
         "threads (0 = one per hardware thread) and `CURTAIN_COHORTS=<c>` "
         "to split each carrier's fleet into c device cohorts (0 = auto); "
         "the dataset and every number below are byte-identical "
         "regardless (DESIGN.md §13).\n"
      << "- set `CURTAIN_PROFILE_OUT=<path>` to record an execution "
         "profile of the run (per-worker shard timeline, queue waits, "
         "memory) as a chrome://tracing trace — also byte-invisible in "
         "the exports (DESIGN.md §14).\n"
      << "- memory is bounded by fleet size, not campaign length: shards "
         "stream fixed-budget record blocks (`CURTAIN_BLOCK_ROWS`) "
         "through `measure::RecordSink`, and `CURTAIN_RSS_CEILING_MB` "
         "gates `bench/micro_fleet`'s million-device sweep "
         "(`BENCH_fleet_memory.json`, DESIGN.md §15).\n";

  // --- Table 1 ---------------------------------------------------------
  section(out, "Table 1 — measurement clients per carrier");
  table_header(out, {"Carrier", "Country", "Paper clients", "Built devices"});
  for (const auto& profile : carriers) {
    table_row(out, {profile.name, profile.country,
                    std::to_string(profile.study_clients),
                    std::to_string(profile.study_clients)});
  }
  out << "\nPaper total: 158; fleet is constructed to match exactly.\n";

  // --- Table 2 ---------------------------------------------------------
  section(out, "Table 2 — measured domains");
  out << "Nine CNAME-fronted popular mobile sites. The OCR of the paper "
         "preserved only `m.yelp.com` (and `buzzfeed.com` via Fig. 10); the "
         "set is completed with era-accurate domains (DESIGN.md §4):\n\n";
  for (const auto& domain : cdn::study_domains()) {
    out << "- `" << domain.host << "` (via " << domain.cdn << ")\n";
  }

  // --- Fig 2 -----------------------------------------------------------
  section(out, "Figure 2 — replica latency penalty vs best replica");
  out << "Paper: users are consistently directed to replicas 50%+ slower "
         "than the best they ever see; extreme cases exceed 400% for >40% "
         "of accesses.\n\n";
  table_header(out, {"Carrier", "p50 penalty", "p90 penalty", ">50% share"});
  for (const auto& [carrier, cdf] : fig2_replica_penalty(dataset)) {
    table_row(out, {carrier, util::format_double(cdf.quantile(0.5), 0) + "%",
                    util::format_double(cdf.quantile(0.9), 0) + "%",
                    pct(1.0 - cdf.fraction_at_or_below(50.0))});
  }

  // --- Fig 3 -----------------------------------------------------------
  section(out, "Figure 3 — resolution time by radio technology");
  out << "Paper: distinct bands — LTE fastest, 3G ~50 ms slower at the "
         "median, 2G near 1 s.\n\n";
  table_header(out, {"Carrier", "LTE p50", "3G band p50", "2G band p50"});
  for (const auto& [carrier, by_tech] : fig3_radio_bands(dataset)) {
    Ecdf g3;
    Ecdf g2;
    double lte = 0.0;
    for (const auto& [tech_name, cdf] : by_tech) {
      if (tech_name == "LTE") {
        lte = cdf.median();
      } else if (tech_name == "1xRTT" || tech_name == "GPRS" ||
                 tech_name == "EDGE") {
        g2.add_all(cdf.sorted_values());
      } else {
        g3.add_all(cdf.sorted_values());
      }
    }
    table_row(out, {carrier, ms(lte), g3.empty() ? "-" : ms(g3.median()),
                    g2.empty() ? "-" : ms(g2.median())});
  }

  // --- Table 3 ---------------------------------------------------------
  section(out, "Table 3 — LDNS pairs and consistency");
  out << "Paper: indirect resolution in every carrier; Sprint's pools "
         "consistent >60% of the time; Verizon the only 100% carrier.\n\n";
  table_header(out,
               {"Provider", "Client", "External", "Pairs", "Consistency"});
  for (const auto& row : ldns_pair_stats(dataset)) {
    table_row(out, {carrier_name(row.carrier_index),
                    std::to_string(row.client_resolvers),
                    std::to_string(row.external_resolvers),
                    std::to_string(row.pairs),
                    util::format_double(row.consistency_percent, 1) + "%"});
  }

  // --- Fig 4 -----------------------------------------------------------
  section(out, "Figure 4 — latency to client- vs external-facing resolvers");
  out << "Paper: externals measurably farther (Sprint/T-Mobile/AT&T), "
         "collocated for SK Telecom, unresponsive for Verizon and LG U+.\n\n";
  table_header(out, {"Carrier", "Client p50", "External p50"});
  for (const auto& [carrier, group] : fig4_resolver_distance(dataset)) {
    table_row(out, {carrier,
                    group.count("Client") ? ms(group.at("Client").median())
                                          : "-",
                    group.count("External") ? ms(group.at("External").median())
                                            : "(no response)"});
  }

  // --- Figs 5/6 --------------------------------------------------------
  section(out, "Figures 5/6 — resolution time per carrier (cell LDNS)");
  out << "Paper: medians 30-50 ms, comparable to wired broadband, long "
         "tails past p80.\n\n";
  table_header(out, {"Carrier", "p50", "p90", "p99"});
  for (const std::string country : {"US", "KR"}) {
    for (const auto& [carrier, cdf] :
         fig5_fig6_resolution_times(dataset, country)) {
      table_row(out, {carrier, ms(cdf.quantile(0.5)), ms(cdf.quantile(0.9)),
                      ms(cdf.quantile(0.99))});
    }
  }

  // --- Fig 7 -----------------------------------------------------------
  section(out, "Figure 7 — back-to-back lookups (cache effect)");
  const auto fig7 = fig7_cache_effect(dataset);
  const auto& first = fig7.at("1st Lookup");
  const auto& second = fig7.at("2nd Lookup");
  const double miss_tail =
      1.0 - second.fraction_at_or_below(first.quantile(0.75));
  out << "Paper: ~20% of repeats still miss (short CDN TTLs). Measured: "
      << "1st p50 " << ms(first.median()) << ", 2nd p50 "
      << ms(second.median()) << ", repeat miss tail " << pct(miss_tail)
      << ".\n";

  // --- Table 4 ---------------------------------------------------------
  section(out, "Table 4 — external reachability of cellular resolvers");
  out << "Paper: only Verizon and AT&T answer a majority of pings (plus a "
         "small fraction of T-Mobile); no resolver ever completes a "
         "traceroute.\n\n";
  table_header(out, {"Provider", "Observed", "Ping", "Traceroute"});
  for (const auto& row : external_reachability(dataset)) {
    table_row(out, {carrier_name(row.carrier_index), std::to_string(row.total),
                    std::to_string(row.ping_responded),
                    std::to_string(row.traceroute_reached)});
  }

  // --- Figs 8/9 --------------------------------------------------------
  section(out, "Figures 8/9 — resolver churn (all clients / stationary)");
  out << "Paper: AT&T-class and Verizon relatively stable; Sprint/T-Mobile "
         "churn across /24s; SK carriers churn many IPs inside 1-2 /24s; "
         "stationary clients still churn.\n\n";
  table_header(out, {"Carrier", "mean IPs/client", "max IPs", "max /24s",
                     "static clients w/ churn"});
  for (int c = 0; c < static_cast<int>(carriers.size()); ++c) {
    const auto timelines =
        resolver_timelines(dataset, c, measure::ResolverKind::kLocal);
    double mean_ips = 0.0;
    size_t max_ips = 0;
    size_t max_prefixes = 0;
    for (const auto& timeline : timelines) {
      mean_ips += static_cast<double>(timeline.unique_ips());
      max_ips = std::max(max_ips, timeline.unique_ips());
      max_prefixes = std::max(max_prefixes, timeline.unique_slash24s());
    }
    if (!timelines.empty()) mean_ips /= static_cast<double>(timelines.size());
    const auto static_timelines =
        static_resolver_timelines(dataset, c, measure::ResolverKind::kLocal);
    size_t churning = 0;
    for (const auto& timeline : static_timelines) {
      if (timeline.unique_ips() > 1) ++churning;
    }
    table_row(out, {carrier_name(c), util::format_double(mean_ips, 1),
                    std::to_string(max_ips), std::to_string(max_prefixes),
                    std::to_string(churning) + "/" +
                        std::to_string(static_timelines.size())});
  }

  // --- Fig 10 ----------------------------------------------------------
  section(out, "Figure 10 — replica-set cosine similarity by resolver /24");
  out << "Paper (buzzfeed.com): same-/24 resolvers see near-identical "
         "replica sets; >60% of cross-/24 pairs have similarity exactly "
         "0.\n\n";
  table_header(out, {"Carrier", "same-/24 p50", "cross-/24 p50",
                     "cross-/24 at 0"});
  for (const auto& [carrier, split] : fig10_cosine(dataset, 5)) {
    table_row(out,
              {carrier,
               split.same_slash24.empty()
                   ? "-"
                   : util::format_double(split.same_slash24.median(), 2),
               split.different_slash24.empty()
                   ? "-"
                   : util::format_double(split.different_slash24.median(), 2),
               split.different_slash24.empty()
                   ? "-"
                   : pct(split.different_slash24.fraction_at_or_below(1e-9))});
  }

  // --- §5.2 ------------------------------------------------------------
  section(out, "Section 5.2 — egress points");
  out << "Paper: 110 (AT&T), 45 (Sprint), 62 (Verizon), 49 (T-Mobile) — a "
         "2-10x increase over the 3G era. Discovery grows with campaign "
         "length.\n\n";
  table_header(out, {"Carrier", "Discovered", "Provisioned"});
  for (const auto& row : egress_points(dataset)) {
    table_row(out,
              {carrier_name(row.carrier_index),
               std::to_string(row.egress_points),
               std::to_string(
                   carriers[static_cast<size_t>(row.carrier_index)]
                       .egress_points)});
  }

  // --- Table 5 ---------------------------------------------------------
  section(out, "Table 5 — resolver census (unique IPs / /24s)");
  out << "Paper: public resolvers show ~4x the addresses of cell DNS but "
         "comparable /24 counts (Google = 30 geographic /24s).\n\n";
  table_header(out, {"Provider", "Local", "GoogleDNS", "OpenDNS"});
  for (const auto& row : resolver_census(dataset)) {
    const auto cell = [&](measure::ResolverKind kind) {
      const auto k = static_cast<size_t>(kind);
      return std::to_string(row.unique_ips[k]) + " / " +
             std::to_string(row.unique_slash24s[k]);
    };
    table_row(out, {carrier_name(row.carrier_index),
                    cell(measure::ResolverKind::kLocal),
                    cell(measure::ResolverKind::kGoogle),
                    cell(measure::ResolverKind::kOpenDns)});
  }

  // --- Fig 11 ----------------------------------------------------------
  section(out, "Figure 11 — distance to cell LDNS vs public DNS");
  out << "Paper: the cell LDNS is closer by ~10-25 ms at the median "
         "(except Verizon/LG U+, whose externals do not respond).\n\n";
  table_header(out, {"Carrier", "Cell LDNS p50", "GoogleDNS p50",
                     "OpenDNS p50"});
  for (const auto& [carrier, group] : fig11_public_distance(dataset)) {
    table_row(out, {carrier,
                    group.count("Cell LDNS") ? ms(group.at("Cell LDNS").median())
                                             : "(no response)",
                    group.count("GoogleDNS") ? ms(group.at("GoogleDNS").median())
                                             : "-",
                    group.count("OpenDNS") ? ms(group.at("OpenDNS").median())
                                           : "-"});
  }

  // --- Fig 12 ----------------------------------------------------------
  section(out, "Figure 12 — Google DNS resolver consistency");
  out << "Paper: despite one anycast VIP, clients drift across several of "
         "Google's 30 geographic /24s over time.\n\n";
  table_header(out, {"Carrier", "clients seeing >1 Google /24", "max /24s"});
  for (int c = 0; c < static_cast<int>(carriers.size()); ++c) {
    const auto timelines =
        resolver_timelines(dataset, c, measure::ResolverKind::kGoogle);
    size_t multi = 0;
    size_t max_prefixes = 0;
    for (const auto& timeline : timelines) {
      if (timeline.unique_slash24s() > 1) ++multi;
      max_prefixes = std::max(max_prefixes, timeline.unique_slash24s());
    }
    table_row(out, {carrier_name(c),
                    std::to_string(multi) + "/" +
                        std::to_string(timelines.size()),
                    std::to_string(max_prefixes)});
  }

  // --- Fig 13 ----------------------------------------------------------
  section(out, "Figure 13 — resolution time: cell vs public DNS");
  out << "Paper: cell DNS faster at the median; public DNS lower variance "
         "and shorter tail.\n\n";
  table_header(out, {"Carrier", "local p50", "Google p50", "local tail "
                     "(p99-p50)", "Google tail (p99-p50)"});
  for (const auto& [carrier, group] : fig13_public_resolution(dataset)) {
    if (!group.count("local") || !group.count("GoogleDNS")) continue;
    const auto& local = group.at("local");
    const auto& google = group.at("GoogleDNS");
    table_row(out, {carrier, ms(local.median()), ms(google.median()),
                    ms(local.quantile(0.99) - local.median()),
                    ms(google.quantile(0.99) - google.median())});
  }

  // --- Fig 14 ----------------------------------------------------------
  section(out, "Figure 14 — relative replica performance (headline)");
  out << "Paper: 60-80% of comparisons land exactly at 0 after /24 "
         "aggregation; public DNS replicas equal-or-better **>75%** of the "
         "time.\n\n";
  table_header(out, {"Carrier", "Service", "exactly 0", "equal-or-better"});
  for (const auto& [carrier, group] : fig14_public_replica_delta(dataset)) {
    for (const auto& [kind, cdf] : group) {
      size_t zeros = 0;
      for (const double v : cdf.sorted_values()) {
        if (v == 0.0) ++zeros;
      }
      table_row(out, {carrier, kind,
                      pct(static_cast<double>(zeros) /
                          static_cast<double>(cdf.size())),
                      pct(cdf.fraction_at_or_below(0.0))});
    }
  }
  {
    Ecdf pooled;
    for (const auto& [carrier, group] : fig14_public_replica_delta(dataset)) {
      for (const auto& [kind, cdf] : group) pooled.add_all(cdf.sorted_values());
    }
    const auto interval = bootstrap_fraction_at_or_below(pooled, 0.0, 500, 7);
    out << "\n**Measured headline: public DNS equal-or-better in "
        << pct(interval.point) << " of comparisons [95% bootstrap CI "
        << pct(interval.low) << "-" << pct(interval.high)
        << "] (paper: >75%).**\n";
  }

  section(out, "Beyond the paper — baselines, ablations, extensions");
  out << "Not regenerated here (each runs its own scenario); see the "
         "binaries and DESIGN.md §7:\n\n"
      << "- `bench/baseline_3g_era` — the Xu et al. 3G-era world: replica "
         "mislocalization is several times less significant relative to "
         "end-to-end latency than under LTE.\n"
      << "- `bench/ablation_ecs` — EDNS client-subnet on Google DNS "
         "restores near-oracle replica mapping through a remote public "
         "resolver.\n"
      << "- `bench/ablation_cdn_ttl` — CDN answer TTL against cache "
         "effectiveness (the Fig. 7 mechanism, swept causally).\n"
      << "- `bench/ext_page_load` — page-load time vs ping as replica "
         "metrics (the §3.3 methodology choice).\n"
      << "- `bench/sec22_ip_geolocation` — ephemeral, geographically "
         "smeared client IPs (the §2.2 motivation).\n";
}

}  // namespace curtain::analysis
