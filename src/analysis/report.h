// Markdown report generator: paper-vs-measured for every table and figure.
//
// Produces the EXPERIMENTS.md-style document from a campaign's dataset, so
// the reproduction record can be regenerated from any run:
//
//   ./build/examples/full_report > EXPERIMENTS.md
#pragma once

#include <ostream>

#include "measure/record_store.h"

namespace curtain::analysis {

struct ReportConfig {
  double scale = 0.05;
  uint64_t seed = 0;
};

/// Writes the full reproduction report for `dataset` as markdown.
void write_report(const measure::RecordStore& dataset, const ReportConfig& config,
                  std::ostream& out);

}  // namespace curtain::analysis
