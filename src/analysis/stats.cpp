#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "net/rng.h"
#include "util/strings.h"

namespace curtain::analysis {

void Ecdf::add_all(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
  sorted_ = false;
}

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Ecdf::quantile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return values_.front();
  if (p >= 1.0) return values_.back();
  const double position = p * static_cast<double>(values_.size() - 1);
  const size_t lower = static_cast<size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= values_.size()) return values_.back();
  return values_[lower] * (1.0 - fraction) + values_[lower + 1] * fraction;
}

double Ecdf::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Ecdf::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Ecdf::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Ecdf::fraction_at_or_below(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Ecdf::curve(int points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2) points = 2;
  out.reserve(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(p, quantile(p));
  }
  return out;
}

const std::vector<double>& Ecdf::sorted_values() const {
  ensure_sorted();
  return values_;
}

ConfidenceInterval bootstrap_fraction_at_or_below(const Ecdf& cdf, double x,
                                                  int resamples, uint64_t seed,
                                                  double confidence) {
  ConfidenceInterval interval;
  interval.point = cdf.fraction_at_or_below(x);
  const auto& samples = cdf.sorted_values();
  if (samples.size() < 2) {
    interval.low = interval.high = interval.point;
    return interval;
  }
  net::Rng rng(seed);
  std::vector<double> fractions;
  fractions.reserve(static_cast<size_t>(resamples));
  const auto n = samples.size();
  for (int r = 0; r < resamples; ++r) {
    size_t at_or_below = 0;
    for (size_t i = 0; i < n; ++i) {
      if (samples[static_cast<size_t>(rng.uniform_u64(0, n - 1))] <= x) {
        ++at_or_below;
      }
    }
    fractions.push_back(static_cast<double>(at_or_below) /
                        static_cast<double>(n));
  }
  std::sort(fractions.begin(), fractions.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto index = [&](double q) {
    return fractions[std::min(
        fractions.size() - 1,
        static_cast<size_t>(q * static_cast<double>(fractions.size())))];
  };
  interval.low = index(alpha);
  interval.high = index(1.0 - alpha);
  return interval;
}

std::string describe_cdf(const Ecdf& cdf) {
  if (cdf.empty()) return "(no samples)";
  std::string out = "n=" + std::to_string(cdf.size());
  static constexpr std::pair<const char*, double> kPoints[] = {
      {"p10", 0.10}, {"p25", 0.25}, {"p50", 0.50},
      {"p75", 0.75}, {"p90", 0.90}, {"p99", 0.99}};
  for (const auto& [label, p] : kPoints) {
    out += "  ";
    out += label;
    out += "=";
    out += util::format_double(cdf.quantile(p), 1);
  }
  return out;
}

}  // namespace curtain::analysis
