// Empirical CDFs and summary statistics.
//
// Every figure in the paper is a CDF; Ecdf is the workhorse the figure
// generators and benches share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace curtain::analysis {

class Ecdf {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& values);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Value at cumulative probability p in [0,1] (linear interpolation).
  double quantile(double p) const;
  double median() const { return quantile(0.5); }
  double min() const;
  double max() const;
  double mean() const;

  /// P(X <= x).
  double fraction_at_or_below(double x) const;

  /// (quantile, value) pairs on a uniform probability grid — the series a
  /// bench prints for one CDF curve.
  std::vector<std::pair<double, double>> curve(int points = 21) const;

  const std::vector<double>& sorted_values() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Renders one CDF as aligned text rows: "p10 12.3  p25 14.0 ..." for
/// bench output.
std::string describe_cdf(const Ecdf& cdf);

/// A percentile-bootstrap confidence interval.
struct ConfidenceInterval {
  double point = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// Bootstrap CI for P(X <= x) over the sample behind `cdf` — used to put
/// error bars on the headline "equal-or-better" fraction. Deterministic
/// for a given seed.
ConfidenceInterval bootstrap_fraction_at_or_below(const Ecdf& cdf, double x,
                                                  int resamples = 1000,
                                                  uint64_t seed = 1,
                                                  double confidence = 0.95);

}  // namespace curtain::analysis
