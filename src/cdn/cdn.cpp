#include "cdn/cdn.h"

#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/index.h"

namespace curtain::cdn {
namespace {

using net::GeoPoint;
using net::LatencyModel;

struct CdnMetrics {
  obs::Counter& lookups = obs::metrics().counter(
      "curtain_cdn_mapping_lookups_total",
      "replica-selection decisions made by CDN mapping systems");
  obs::Counter& ecs_mapped = obs::metrics().counter(
      "curtain_cdn_ecs_mapped_total",
      "mapping decisions keyed on an EDNS client subnet");
  obs::Counter& hinted = obs::metrics().counter(
      "curtain_cdn_hinted_prefix_total",
      "mapping decisions with a measurable (latency-mapped) prefix");
  obs::Histogram& answer_size = obs::metrics().histogram(
      "curtain_cdn_answer_size", obs::Histogram::small_count_buckets(),
      "A records returned per CDN response");
};

CdnMetrics& cdn_metrics() {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
  static thread_local obs::SheafLocal<CdnMetrics> metrics;
  return metrics.get();
}

// How many A records one response carries; production CDNs typically
// return a couple of addresses from the selected cluster.
constexpr size_t kAnswersPerResponse = 2;

// Rotation bucket: answers rotate through the cluster on this period, so
// repeated queries inside one bucket (and one TTL) see the same replicas.
constexpr double kRotationBucketSeconds = 30.0;

}  // namespace

CdnProvider::CdnProvider(std::string name, dns::DnsName zone_apex,
                         const CdnBuildContext& context,
                         int replicas_per_cluster, uint32_t answer_ttl_s)
    : provider_name_(std::move(name)),
      zone_apex_(std::move(zone_apex)),
      seed_(net::mix_key(context.build_seed, net::hash_tag(provider_name_))),
      answer_ttl_s_(answer_ttl_s) {
  build_clusters(context, replicas_per_cluster);

  // The provider's ADNS lives near a large US metro; its address comes
  // from the first cluster's block neighbourhood.
  const net::Ipv4Addr adns_ip = context.allocator->alloc_host(
      context.allocator->alloc_block(24));
  adns_ = &context.hierarchy->create_zone(zone_apex_, {40.71, -74.01}, adns_ip);
  adns_->set_dynamic_handler(
      [this](const dns::Question& question, net::Ipv4Addr resolver_ip,
             const std::optional<dns::EdnsClientSubnet>& ecs, net::SimTime now,
             net::Rng& rng) {
        auto answers = answer_query(question, resolver_ip, ecs, now, rng);
        return answers.empty()
                   ? std::optional<std::vector<dns::ResourceRecord>>{}
                   : std::optional<std::vector<dns::ResourceRecord>>{
                         std::move(answers)};
      },
      answer_ttl_s_);
}

void CdnProvider::build_clusters(const CdnBuildContext& context,
                                 int replicas_per_cluster) {
  const auto add_metro = [&](const net::Metro& metro, const std::string& country) {
    ReplicaCluster cluster;
    cluster.index = static_cast<int>(clusters_.size());
    cluster.metro = metro.name;
    cluster.location = metro.location;
    cluster.country = country;
    cluster.prefix = context.allocator->alloc_block(24);
    const net::NodeId backbone = context.nearest_backbone(metro.location);
    for (int r = 0; r < replicas_per_cluster; ++r) {
      const net::Ipv4Addr ip = context.allocator->alloc_host(cluster.prefix);
      net::Node node;
      node.name = provider_name_ + "-" + metro.name + "-r" + std::to_string(r);
      node.kind = net::NodeKind::kReplica;
      node.zone = net::Topology::internet_zone();
      node.location = metro.location;
      node.ip = ip;
      // HTTP service time dominates a replica's contribution to TTFB.
      node.processing = LatencyModel::jittered(3.0, 0.4);
      const net::NodeId id = context.topology->add_node(node);
      context.topology->add_link(id, backbone, LatencyModel::jittered(0.8, 0.3),
                                 0.0005, false);
      cluster.replica_nodes.push_back(id);
      cluster.replica_ips.push_back(ip);
    }
    cluster_by_replica_slash24_[cluster.prefix.address().value()] =
        cluster.index;
    clusters_.push_back(std::move(cluster));
  };
  // 2014-era CDNs served mobile eyeballs from a modest number of large
  // POPs; a footprint of 8 US + 2 KR metros keeps the replica geography
  // coarse enough that two reasonable mappings often agree (Fig. 14's
  // mass at zero) while disagreements still cost tens of ms (Fig. 2).
  const std::vector<std::string> us_sites{"New York",   "Los Angeles",
                                          "Chicago",    "Dallas",
                                          "Washington DC", "Atlanta",
                                          "San Francisco", "Seattle"};
  for (const auto& metro : net::us_metros()) {
    if (std::find(us_sites.begin(), us_sites.end(), metro.name) !=
        us_sites.end()) {
      add_metro(metro, "US");
    }
  }
  const std::vector<std::string> kr_sites{"Seoul", "Busan"};
  for (const auto& metro : net::kr_metros()) {
    if (std::find(kr_sites.begin(), kr_sites.end(), metro.name) !=
        kr_sites.end()) {
      add_metro(metro, "KR");
    }
  }
}

dns::DnsName CdnProvider::add_customer(const std::string& label) {
  customers_[label] = true;
  return *zone_apex_.child(label);
}

void CdnProvider::add_prefix_hint(net::Prefix slash24,
                                  const net::GeoPoint& location,
                                  const std::string& country) {
  prefix_hints_[slash24.address().value()] = Hint{location, country};
}

void CdnProvider::add_prefix_country(net::Prefix slash24,
                                     const std::string& country) {
  prefix_countries_[slash24.address().value()] = country;
}

const ReplicaCluster& CdnProvider::nearest_cluster(
    const net::GeoPoint& location, const std::string& country) const {
  const ReplicaCluster* best = &clusters_.front();
  double best_distance = std::numeric_limits<double>::infinity();
  for (const auto& cluster : clusters_) {
    if (!country.empty() && cluster.country != country) continue;
    const double d = net::distance_km(location, cluster.location);
    if (d < best_distance) {
      best_distance = d;
      best = &cluster;
    }
  }
  return *best;
}

const ReplicaCluster& CdnProvider::cluster_for_resolver(
    net::Ipv4Addr resolver_ip) const {
  const uint32_t slash24 = resolver_ip.slash24().value();
  const auto hint = prefix_hints_.find(slash24);
  if (hint != prefix_hints_.end()) {
    // Measurable prefix: latency-aware mapping to the nearest cluster.
    return nearest_cluster(hint->second.location, hint->second.country);
  }
  // Opaque prefix (cellular): nothing to measure behind the ingress.
  // Address registration (WHOIS) still reveals the country, so the
  // assignment is a sticky hash over that country's clusters — stable per
  // /24 (Fig. 10) but uncorrelated with where the clients actually are
  // (Fig. 2's penalties).
  const uint64_t h = net::mix_key(seed_, slash24);
  const auto country_it = prefix_countries_.find(slash24);
  const std::string country =
      country_it == prefix_countries_.end() ? "US" : country_it->second;
  std::vector<int> pool;
  for (const auto& cluster : clusters_) {
    if (cluster.country == country) pool.push_back(cluster.index);
  }
  return clusters_[util::idx(pool[h % pool.size()])];
}

const ReplicaCluster* CdnProvider::cluster_of_replica(
    net::Ipv4Addr replica_ip) const {
  const auto it = cluster_by_replica_slash24_.find(replica_ip.slash24().value());
  return it == cluster_by_replica_slash24_.end() ? nullptr
                                                 : &clusters_[util::idx(it->second)];
}

std::vector<dns::ResourceRecord> CdnProvider::answer_query(
    const dns::Question& question, net::Ipv4Addr resolver_ip,
    const std::optional<dns::EdnsClientSubnet>& ecs, net::SimTime now,
    net::Rng& rng) {
  (void)rng;
  if (question.type != dns::RRType::kA) return {};
  // Expect <customer>.<zone_apex>.
  if (!question.name.is_within(zone_apex_) ||
      question.name.label_count() != zone_apex_.label_count() + 1) {
    return {};
  }
  const std::string customer(question.name.label(0));
  if (customers_.find(customer) == customers_.end()) return {};

  // RFC 7871: when the resolver discloses the client's subnet, map by the
  // client; otherwise fall back to the resolver's address — the paper-era
  // status quo that mislocalizes cellular users.
  const net::Ipv4Addr map_key = ecs ? ecs->address : resolver_ip;
  obs::ScopedSpan span("cdn_mapping", now.millis());
  span.finish(now.millis());  // hop marker; cost charged by the transport
  cdn_metrics().lookups.inc();
  if (ecs) cdn_metrics().ecs_mapped.inc();
  if (prefix_hints_.find(map_key.slash24().value()) != prefix_hints_.end()) {
    cdn_metrics().hinted.inc();
  }
  const ReplicaCluster& cluster = cluster_for_resolver(map_key);
  // Rotate through the cluster per (mapped /24, name, time bucket).
  const auto bucket = static_cast<uint64_t>(now.seconds() / kRotationBucketSeconds);
  const uint64_t base = net::mix_key(
      net::mix_key(seed_, map_key.slash24().value() ^ question.name.hash()),
      bucket);
  std::vector<dns::ResourceRecord> answers;
  const size_t n = std::min(kAnswersPerResponse, cluster.replica_ips.size());
  for (size_t i = 0; i < n; ++i) {
    const size_t index = (base + i) % cluster.replica_ips.size();
    answers.push_back(dns::ResourceRecord::a(
        question.name, cluster.replica_ips[index], answer_ttl_s_));
  }
  cdn_metrics().answer_size.observe(static_cast<double>(answers.size()));
  return answers;
}

}  // namespace curtain::cdn
