// CDN simulator: replica clusters plus a resolver-aware authoritative DNS.
//
// Replica selection works the way the paper describes production CDNs
// working (§2.2, §5.1):
//   * the ADNS sees only the *recursive resolver's* address, never the
//     client's;
//   * resolvers are aggregated by /24 — all resolvers in one /24 get the
//     same replica cluster (Fig. 10's cosine-similarity structure);
//   * for /24s the CDN can measure (public DNS sites, DMZ-hosted carrier
//     resolvers) the mapping is latency-aware; for opaque cellular /24s
//     (§4.4) the CDN has nothing to measure and the assignment is
//     effectively arbitrary within the country — the root cause of the
//     replica penalties in Fig. 2;
//   * answers rotate through the cluster with short TTLs.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/hierarchy.h"
#include "net/ip_allocator.h"

namespace curtain::cdn {

struct ReplicaCluster {
  int index = 0;
  std::string metro;
  net::GeoPoint location;
  net::Prefix prefix;  ///< replicas of a cluster share one /24
  std::vector<net::NodeId> replica_nodes;
  std::vector<net::Ipv4Addr> replica_ips;
  std::string country;  ///< "US" or "KR" (mapping candidate pools)
};

struct CdnBuildContext {
  net::Topology* topology = nullptr;
  dns::ServerRegistry* registry = nullptr;
  net::IpAllocator* allocator = nullptr;
  dns::DnsHierarchy* hierarchy = nullptr;
  std::function<net::NodeId(const net::GeoPoint&)> nearest_backbone;
  uint64_t build_seed = 0;
};

class CdnProvider {
 public:
  /// Builds clusters in every US and KR metro and registers the provider's
  /// ADNS (for `zone_apex`, e.g. "curtaincdn.net") with the hierarchy.
  CdnProvider(std::string name, dns::DnsName zone_apex,
              const CdnBuildContext& context, int replicas_per_cluster = 3,
              uint32_t answer_ttl_s = 30);

  const std::string& name() const { return provider_name_; }
  const dns::DnsName& zone_apex() const { return zone_apex_; }

  /// Registers a customer hostname; returns the edge name the customer's
  /// origin zone should CNAME to (<label>.<zone_apex>).
  dns::DnsName add_customer(const std::string& label);

  /// Tells the mapper where a resolver /24 *measurably* is. Registered for
  /// public-DNS sites and externally reachable (DMZ) carrier resolvers;
  /// opaque cellular prefixes never get hints.
  void add_prefix_hint(net::Prefix slash24, const net::GeoPoint& location,
                       const std::string& country);

  /// Registers only the WHOIS country of a /24 (always available even for
  /// opaque cellular prefixes). Without a full hint, mapping falls back to
  /// a sticky per-/24 hash over this country's clusters.
  void add_prefix_country(net::Prefix slash24, const std::string& country);

  /// The cluster the mapper assigns to `resolver_ip`'s /24.
  const ReplicaCluster& cluster_for_resolver(net::Ipv4Addr resolver_ip) const;

  const std::vector<ReplicaCluster>& clusters() const { return clusters_; }

  /// Cluster containing `replica_ip`; nullptr if not one of ours.
  const ReplicaCluster* cluster_of_replica(net::Ipv4Addr replica_ip) const;

  /// Lowest possible client RTT estimate support: cluster nearest to a
  /// location (what a perfectly informed mapping would pick).
  const ReplicaCluster& nearest_cluster(const net::GeoPoint& location,
                                        const std::string& country) const;

 private:
  std::vector<dns::ResourceRecord> answer_query(
      const dns::Question& question, net::Ipv4Addr resolver_ip,
      const std::optional<dns::EdnsClientSubnet>& ecs, net::SimTime now,
      net::Rng& rng);

  void build_clusters(const CdnBuildContext& context, int replicas_per_cluster);

  std::string provider_name_;
  dns::DnsName zone_apex_;
  uint64_t seed_ = 0;
  uint32_t answer_ttl_s_;
  std::vector<ReplicaCluster> clusters_;
  std::unordered_map<uint32_t, int> cluster_by_replica_slash24_;
  struct Hint {
    net::GeoPoint location;
    std::string country;
  };
  std::unordered_map<uint32_t, Hint> prefix_hints_;  ///< /24 base -> hint
  std::unordered_map<uint32_t, std::string> prefix_countries_;
  std::unordered_map<std::string, bool> customers_;
  dns::AuthoritativeServer* adns_ = nullptr;  ///< owned by the hierarchy
};

}  // namespace curtain::cdn
