#include "cdn/domains.h"

namespace curtain::cdn {

const std::vector<StudyDomain>& study_domains() {
  static const std::vector<StudyDomain> domains = {
      {"www.google.com", "google.com", "gcache", "www-google"},
      {"www.youtube.com", "youtube.com", "gcache", "www-youtube"},
      {"www.facebook.com", "facebook.com", "fastedge", "fb-star"},
      {"www.amazon.com", "amazon.com", "curtaincdn", "amazon-www"},
      {"www.bing.com", "bing.com", "curtaincdn", "bing-www"},
      {"www.buzzfeed.com", "buzzfeed.com", "fastedge", "buzzfeed-www"},
      {"m.yelp.com", "yelp.com", "curtaincdn", "yelp-m"},
      {"mobile.twitter.com", "twitter.com", "fastedge", "twitter-mobile"},
      {"en.m.wikipedia.org", "wikipedia.org", "curtaincdn", "wikipedia-m"},
  };
  return domains;
}

std::vector<std::string> study_cdn_names() {
  return {"curtaincdn", "gcache", "fastedge"};
}

void wire_origin_zones(
    const std::map<std::string, CdnProvider*>& cdns,
    dns::DnsHierarchy& hierarchy, net::IpAllocator& allocator,
    uint32_t cname_ttl_s) {
  // One origin ADNS per registrable zone; several hosts may share a zone.
  std::map<std::string, dns::AuthoritativeServer*> origin_servers;
  for (const auto& domain : study_domains()) {
    auto* cdn = cdns.at(domain.cdn);
    const dns::DnsName edge = cdn->add_customer(domain.customer);

    auto& server = [&]() -> dns::AuthoritativeServer& {
      const auto it = origin_servers.find(domain.origin_zone);
      if (it != origin_servers.end()) return *it->second;
      const net::Ipv4Addr ip = allocator.alloc_host(allocator.alloc_block(24));
      // Origin ADNSes sit in large US metros; their location barely
      // matters (resolvers cache the NS and the CNAME for minutes).
      auto& created = hierarchy.create_zone(*dns::DnsName::parse(domain.origin_zone),
                                            {37.77, -122.42}, ip);
      origin_servers[domain.origin_zone] = &created;
      return created;
    }();

    const auto host = dns::DnsName::parse(domain.host);
    server.add_record(dns::ResourceRecord::cname(*host, edge, cname_ttl_s));
  }
}

}  // namespace curtain::cdn
