// The study's measured domains (paper Table 2) and their CDN wiring.
//
// The paper chose nine popular mobile sites whose resolution goes through
// a CNAME — the tell-tale of DNS-based load balancing. The OCR of Table 2
// preserved only m.yelp.com (plus buzzfeed.com from Fig. 10); the rest of
// the set is completed with popular 2014 mobile domains (see DESIGN.md §4).
#pragma once

#include <string>
#include <map>
#include <vector>

#include "cdn/cdn.h"
#include "dns/hierarchy.h"

namespace curtain::cdn {

struct StudyDomain {
  std::string host;         ///< what devices resolve ("m.yelp.com")
  std::string origin_zone;  ///< registrable zone ("yelp.com")
  std::string cdn;          ///< CDN provider name carrying the content
  std::string customer;     ///< customer label inside the CDN zone
};

/// The nine measured domains.
const std::vector<StudyDomain>& study_domains();

/// Names of the CDN providers the domains ride on.
std::vector<std::string> study_cdn_names();

/// Creates each domain's origin zone (via the hierarchy) with the
/// CNAME host → <customer>.<cdn zone>, registering customers with their
/// CDN. `cdns` maps provider name → provider.
void wire_origin_zones(
    const std::map<std::string, CdnProvider*>& cdns,
    dns::DnsHierarchy& hierarchy, net::IpAllocator& allocator,
    uint32_t cname_ttl_s = 300);

}  // namespace curtain::cdn
