#include "cellular/carrier.h"

#include <algorithm>

#include "dns/message.h"
#include "net/geo.h"
#include "net/shard_slot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/index.h"

namespace curtain::cellular {
namespace {

using net::GeoPoint;
using net::LatencyModel;
using net::NodeId;
using net::SimTime;

// Internal-link latencies (ms, one way). All carrier-internal links are
// tunneled (MPLS/VPN), matching §4.2's observation that traceroute reveals
// no internal structure.
constexpr double kGatewayToHubMs = 2.0;
constexpr double kHubToResolverMs = 1.0;
constexpr double kEgressLinkMs = 1.5;

// Mean per-name background re-fetch interval at a carrier's external
// resolvers. With the CDNs' 30 s TTLs this leaves entries warm
// 30/(30+4.9) ~ 86% of the time — the residual misses are Fig. 7's tail.
constexpr double kCarrierBgInterarrivalS = 4.9;

// Client-facing addresses front pools of machines; this is the chance a
// query lands on a machine whose cache has not seen the name (drives the
// ~20% slow back-to-back repeats of Fig. 7).
constexpr double kColdPoolMachineP = 0.18;

// Local processing when a client-facing instance answers from cache.
constexpr double kClientCacheHitMs = 0.4;

struct CarrierMetrics {
  obs::Counter& client_queries = obs::metrics().counter(
      "curtain_cell_client_queries_total",
      "queries arriving at client-facing carrier resolvers");
  obs::Counter& client_cache_hits = obs::metrics().counter(
      "curtain_cell_client_cache_hits_total",
      "queries answered from a client-facing instance cache");
  obs::Counter& cold_pool = obs::metrics().counter(
      "curtain_cell_cold_pool_machine_total",
      "queries that hashed onto a cold pool machine (Fig. 7 misses)");
  obs::Counter& forwards = obs::metrics().counter(
      "curtain_cell_forwards_total",
      "queries forwarded to an external-tier resolver");
  obs::Counter& servfail = obs::metrics().counter(
      "curtain_cell_servfail_total",
      "queries failed inside the carrier (no external pair)");
  obs::Counter& churn = obs::metrics().counter(
      "curtain_cell_resolver_churn_total",
      "pair selections that deviated from the sticky home resolver");
};

CarrierMetrics& carrier_metrics() {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
  static thread_local obs::SheafLocal<CarrierMetrics> metrics;
  return metrics.get();
}

}  // namespace

// --- ClientFacingResolver ---------------------------------------------------

ClientFacingResolver::ClientFacingResolver(CellularNetwork* carrier, int index,
                                           net::Ipv4Addr ip)
    : carrier_(carrier), index_(index), ip_(ip) {
  lane_caches_.reset(static_cast<size_t>(carrier->state_lanes()));
}

dns::Cache& ClientFacingResolver::cache_for(net::NodeId instance) {
  const auto lane = static_cast<size_t>(net::current_state_lane());
  return lane_caches_[lane][instance];  // default-constructed on first use
}

obs::LaneMemory ClientFacingResolver::approx_lane_bytes() const {
  obs::LaneMemory memory;
  memory.state_bytes += lane_caches_.approx_container_bytes();
  constexpr size_t kMapNodeOverhead =
      2 * sizeof(void*) + obs::kAllocOverheadBytes;
  // Commutative integer sums: hash order cannot leak into the result.
  for (const auto& [lane, caches] : lane_caches_) {  // lint: order-insensitive
    memory.state_bytes +=
        caches.size() *
            (sizeof(net::NodeId) + sizeof(dns::Cache) + kMapNodeOverhead) +
        caches.bucket_count() * sizeof(void*);
    for (const auto& [node, cache] : caches) {  // lint: order-insensitive
      memory.cache_bytes += cache.approx_bytes();
    }
  }
  return memory;
}

dns::ServedResponse ClientFacingResolver::handle_query(
    std::span<const uint8_t> query_wire, net::Ipv4Addr source_ip,
    net::SimTime now, net::Rng& rng) {
  const auto query = dns::decode(query_wire);
  if (!query || query->questions.empty()) {
    dns::Message failure;
    failure.header.id = query ? query->header.id : 0;
    failure.header.qr = true;
    failure.header.rcode = dns::Rcode::kFormErr;
    return dns::ServedResponse{dns::encode(failure), 0.0};
  }
  const dns::Question& question = query->questions.front();
  const net::NodeId instance = carrier_->client_instance_node(index_, source_ip);
  dns::Cache& cache = cache_for(instance);
  carrier_metrics().client_queries.inc();

  // Serve from this instance's cache unless the query hashed onto a cold
  // pool machine.
  if (!rng.bernoulli(kColdPoolMachineP)) {
    if (auto hit = cache.lookup(question.name, question.type, now);
        hit && !hit->negative() && !hit->records().empty()) {
      carrier_metrics().client_cache_hits.inc();
      obs::ScopedSpan span("cell_ldns_cache", now.millis());
      span.finish(now.millis() + kClientCacheHitMs);
      dns::Message response = query->make_response();
      response.header.ra = true;
      hit->append_aged(response.answers);
      return dns::ServedResponse{dns::encode(response), kClientCacheHitMs};
    }
  } else {
    carrier_metrics().cold_pool.inc();
  }

  auto selection = carrier_->select_pair(index_, source_ip, now, rng);
  if (selection.external == nullptr) {
    carrier_metrics().servfail.inc();
    dns::Message failure = query->make_response();
    failure.header.rcode = dns::Rcode::kServFail;
    return dns::ServedResponse{dns::encode(failure), 0.0};
  }
  carrier_metrics().forwards.inc();
  obs::ScopedSpan span("forward_external", now.millis());
  dns::ServedResponse served =
      selection.external->handle_query(query_wire, source_ip, now, rng);
  // Forwarding leg: client-facing instance to the external resolver and
  // back. Collocated architectures (SK Telecom) contribute ~0 here.
  served.server_side_ms += carrier_->internal_forward_ms(
      selection.client_node, selection.external->node(), rng);
  span.finish(now.millis() + served.server_side_ms);

  // Cache the whole answer chain under the question key (forwarder-style;
  // the TTL is the chain minimum, so short CDN TTLs dominate).
  if (const auto response = dns::decode(served.wire);
      response && response->header.rcode == dns::Rcode::kNoError &&
      !response->answers.empty()) {
    cache.insert(question.name, question.type, response->answers, now);
  }
  return served;
}

net::NodeId ClientFacingResolver::node() const {
  return carrier_->client_instance_node(index_, net::Ipv4Addr{});
}

net::NodeId ClientFacingResolver::node_for(net::Ipv4Addr source,
                                           net::SimTime /*now*/) const {
  return carrier_->client_instance_node(index_, source);
}

// --- CellularNetwork --------------------------------------------------------

CellularNetwork::CellularNetwork(CarrierProfile profile, uint32_t owner_tag,
                                 const CarrierBuildContext& context)
    : profile_(std::move(profile)),
      owner_tag_(owner_tag),
      state_lanes_(context.state_lanes < 1 ? 1 : context.state_lanes),
      topology_(context.topology),
      allocator_(context.allocator),
      seed_(net::mix_key(context.build_seed, net::hash_tag(profile_.name))) {
  profile_.owner_tag = owner_tag;
  zone_ = topology_->add_zone(profile_.name, /*blocks_inbound_probes=*/true);
  if (profile_.reach.externals_in_dmz) {
    dmz_zone_ = topology_->add_zone(profile_.name + "-dns-dmz",
                                    /*blocks_inbound_probes=*/false);
  }
  build_regions(context);
  build_gateways(context);
  build_dns(context);
  for (auto& client : client_resolvers_) context.registry->add(client.get());
}

CellularNetwork::~CellularNetwork() = default;

obs::LaneMemory CellularNetwork::approx_lane_state_bytes() const {
  obs::LaneMemory memory;
  for (const auto& resolver : client_resolvers_) {
    memory += resolver->approx_lane_bytes();
  }
  for (const auto& resolver : external_resolvers_) {
    memory += resolver->approx_lane_bytes();
  }
  for (const Gateway& gateway : gateways_) {
    memory.state_bytes += gateway.nat_cursors.approx_container_bytes();
  }
  return memory;
}

void CellularNetwork::build_regions(const CarrierBuildContext& /*context*/) {
  const auto& metros =
      profile_.country == "KR" ? net::kr_metros() : net::us_metros();
  const int count = std::min<int>(profile_.regions,
                                  static_cast<int>(metros.size()));
  regions_.resize(util::idx(count));
  for (int r = 0; r < count; ++r) {
    Region& region = regions_[util::idx(r)];
    region.location = metros[util::idx(r)].location;
    net::Node hub;
    hub.name = profile_.name + "-hub-" + metros[util::idx(r)].name;
    hub.kind = net::NodeKind::kRouter;
    hub.zone = zone_;
    hub.location = region.location;
    hub.owner_tag = owner_tag_;
    hub.responds_to_traceroute = false;  // tunneled core
    region.hub = topology_->add_node(hub);
  }
  // Star topology on the first region's hub; hub-to-hub links are tunneled.
  for (int r = 1; r < count; ++r) {
    const double prop =
        net::propagation_ms(regions_[0].location, regions_[util::idx(r)].location);
    topology_->add_link(regions_[0].hub, regions_[util::idx(r)].hub,
                        LatencyModel::wan(prop, 1.5), /*loss=*/0.0005,
                        /*tunneled=*/true);
  }
}

void CellularNetwork::build_gateways(const CarrierBuildContext& context) {
  net::Rng rng(net::mix_key(seed_, net::hash_tag("gateways")));
  gateways_.resize(util::idx(profile_.egress_points));
  // Gateways carry addresses so their traceroute hops are PTR-resolvable.
  net::Prefix infra_block = allocator_->alloc_block(24);
  int hosts_in_block = 0;
  for (int g = 0; g < profile_.egress_points; ++g) {
    Gateway& gateway = gateways_[util::idx(g)];
    gateway.region = g % static_cast<int>(regions_.size());
    const Region& region = regions_[util::idx(gateway.region)];
    const GeoPoint location = net::offset_km(
        region.location, rng.uniform(-30, 30), rng.uniform(-30, 30));

    net::Node node;
    node.name = profile_.name + "-pgw-" + std::to_string(g);
    node.kind = net::NodeKind::kGateway;
    node.zone = zone_;
    node.location = location;
    node.owner_tag = owner_tag_;
    if (++hosts_in_block > 250) {
      infra_block = allocator_->alloc_block(24);
      hosts_in_block = 1;
    }
    node.ip = allocator_->alloc_host(infra_block);
    // Gateways are the one visible carrier hop: they terminate the tunnel
    // and sit right at the ingress/egress boundary.
    node.responds_to_traceroute = true;
    gateway.node = topology_->add_node(node);

    topology_->add_link(gateway.node, region.hub,
                        LatencyModel::jittered(kGatewayToHubMs, 0.3), 0.0005,
                        /*tunneled=*/true);
    const NodeId backbone = context.nearest_backbone(location);
    topology_->add_link(gateway.node, backbone,
                        LatencyModel::jittered(kEgressLinkMs, 0.3), 0.0005,
                        /*tunneled=*/false);

    gateway.nat_pool = allocator_->alloc_block(24);
    gateway.nat_cursors.reset(static_cast<size_t>(state_lanes_),
                              Gateway::kUnseededCursor);
    gateway_by_pool_[gateway.nat_pool.address().value()] = g;
  }
}

void CellularNetwork::build_dns(const CarrierBuildContext& context) {
  net::Rng rng(net::mix_key(seed_, net::hash_tag("dns")));
  const auto& dns_cfg = profile_.dns;

  // External address blocks. Same-/24 architectures share blocks between
  // client and external entries (SK carriers, §4.1).
  std::vector<net::Prefix> external_blocks;
  for (int b = 0; b < dns_cfg.external_slash24s; ++b) {
    external_blocks.push_back(allocator_->alloc_block(24));
  }
  std::vector<net::Prefix> client_blocks;
  if (dns_cfg.paired_same_slash24) {
    client_blocks = external_blocks;
  } else {
    client_blocks.push_back(allocator_->alloc_block(24));
  }

  // External resolver sites: collocated with every region, or a handful of
  // central sites (this is what makes externals measurably farther from
  // clients than the client tier, Fig. 4).
  std::vector<int> site_regions;
  if (dns_cfg.externals_collocated) {
    for (size_t r = 0; r < regions_.size(); ++r) site_regions.push_back(int(r));
  } else {
    // Sites are spread geographically (farthest-point sampling from the
    // largest region) so every subscriber has a site within regional
    // distance (Fig. 4's moderate client/external latency gap) and sites
    // are genuinely distinct locations (Fig. 10's disjoint replica sets).
    const int sites =
        std::min<int>(dns_cfg.external_sites, static_cast<int>(regions_.size()));
    site_regions.push_back(0);
    while (static_cast<int>(site_regions.size()) < sites) {
      int best_region = -1;
      double best_spread = -1.0;
      for (size_t r = 0; r < regions_.size(); ++r) {
        double nearest_site = 1e18;
        for (const int s : site_regions) {
          nearest_site = std::min(
              nearest_site,
              net::distance_km(regions_[r].location, regions_[util::idx(s)].location));
        }
        if (nearest_site > best_spread) {
          best_spread = nearest_site;
          best_region = static_cast<int>(r);
        }
      }
      site_regions.push_back(best_region);
    }
    std::sort(site_regions.begin(), site_regions.end());
  }

  const int externally_reachable = static_cast<int>(
      profile_.reach.external_answers_external_fraction *
      dns_cfg.external_resolvers);

  // A /24 is announced at one site (BGP reality); partition the blocks
  // among sites, falling back to sharing when there are fewer blocks than
  // sites (the SK collocated deployments).
  const size_t num_sites = site_regions.size();
  std::vector<std::vector<size_t>> site_blocks(num_sites);
  for (size_t b = 0; b < external_blocks.size(); ++b) {
    site_blocks[b % num_sites].push_back(b);
  }
  for (size_t s = 0; s < num_sites; ++s) {
    if (site_blocks[s].empty()) {
      site_blocks[s].push_back(s % external_blocks.size());
    }
  }
  std::vector<size_t> site_block_cursor(num_sites, 0);

  for (int e = 0; e < dns_cfg.external_resolvers; ++e) {
    const size_t site_index = static_cast<size_t>(e) % num_sites;
    const int region_index = site_regions[site_index];
    Region& region = regions_[util::idx(region_index)];
    const auto& blocks_here = site_blocks[site_index];
    const net::Prefix& block =
        external_blocks[blocks_here[site_block_cursor[site_index]++ %
                                    blocks_here.size()]];
    const net::Ipv4Addr ip = allocator_->alloc_host(block);

    net::Node node;
    node.name = profile_.name + "-ldns-ext-" + std::to_string(e) +
                (profile_.external_as != 0
                     ? "-as" + std::to_string(profile_.external_as)
                     : "");
    node.kind = net::NodeKind::kResolver;
    node.location = region.location;
    node.ip = ip;
    node.owner_tag = owner_tag_;
    node.ping_from_same_owner = profile_.reach.external_answers_internal;
    node.ping_from_other_owner = e < externally_reachable;
    node.responds_to_traceroute = false;
    node.processing = LatencyModel::jittered(0.8, 0.3);

    if (profile_.reach.externals_in_dmz) {
      node.zone = dmz_zone_;
      const NodeId id = topology_->add_node(node);
      topology_->add_link(id, context.nearest_backbone(region.location),
                          LatencyModel::jittered(1.0, 0.3), 0.0005, false);
      // Internal path for forwarded queries from the carrier core.
      topology_->add_link(id, region.hub,
                          LatencyModel::jittered(kHubToResolverMs + 1.0, 0.3),
                          0.0005, /*tunneled=*/true);
      region.externals.push_back(e);
      external_resolvers_.push_back(std::make_unique<dns::RecursiveResolver>(
          node.name, id, ip, topology_, context.registry, context.root_dns_ip));
    } else {
      node.zone = zone_;
      const NodeId id = topology_->add_node(node);
      topology_->add_link(id, region.hub,
                          LatencyModel::jittered(kHubToResolverMs, 0.3), 0.0005,
                          /*tunneled=*/true);
      region.externals.push_back(e);
      external_resolvers_.push_back(std::make_unique<dns::RecursiveResolver>(
          node.name, id, ip, topology_, context.registry, context.root_dns_ip));
    }
    external_resolvers_.back()->set_state_lanes(
        static_cast<size_t>(state_lanes_));
    external_resolvers_.back()->set_background_load(kCarrierBgInterarrivalS,
                                                    context.warm_eligible);
    context.registry->add(external_resolvers_.back().get());
  }

  // Client-facing tier.
  if (dns_cfg.kind == DnsArchKind::kAnycast) {
    // Per-region anycast instances; the VIP address itself is not bound to
    // any single node.
    for (auto& region : regions_) {
      net::Node node;
      node.name = profile_.name + "-ldns-anycast-" +
                  std::to_string(&region - regions_.data());
      node.kind = net::NodeKind::kResolver;
      node.zone = zone_;
      node.location = region.location;
      node.owner_tag = owner_tag_;
      node.responds_to_traceroute = false;
      node.processing = LatencyModel::jittered(0.5, 0.3);
      region.client_instance = topology_->add_node(node);
      topology_->add_link(region.client_instance, region.hub,
                          LatencyModel::jittered(kHubToResolverMs, 0.3), 0.0005,
                          /*tunneled=*/true);
    }
    for (int c = 0; c < dns_cfg.client_resolvers; ++c) {
      const net::Ipv4Addr vip = allocator_->alloc_host(client_blocks.front());
      client_resolvers_.push_back(
          std::make_unique<ClientFacingResolver>(this, c, vip));
    }
  } else {
    // Pool / tiered: each client address is a concrete host in a region.
    for (int c = 0; c < dns_cfg.client_resolvers; ++c) {
      const int region_index = c % static_cast<int>(regions_.size());
      Region& region = regions_[util::idx(region_index)];
      const net::Prefix& block = client_blocks[util::idx(c) % client_blocks.size()];
      const net::Ipv4Addr ip = allocator_->alloc_host(block);
      net::Node node;
      node.name = profile_.name + "-ldns-client-" + std::to_string(c) +
                  (profile_.client_as != 0
                       ? "-as" + std::to_string(profile_.client_as)
                       : "");
      node.kind = net::NodeKind::kResolver;
      node.zone = zone_;
      node.location = region.location;
      node.ip = ip;
      node.owner_tag = owner_tag_;
      node.ping_from_same_owner = profile_.reach.client_answers_internal;
      node.ping_from_other_owner = false;  // behind the carrier firewall
      node.responds_to_traceroute = false;
      node.processing = LatencyModel::jittered(0.5, 0.3);
      const NodeId id = topology_->add_node(node);
      topology_->add_link(id, region.hub,
                          LatencyModel::jittered(kHubToResolverMs, 0.3), 0.0005,
                          /*tunneled=*/true);
      client_resolver_nodes_.push_back(id);
      client_resolvers_.push_back(
          std::make_unique<ClientFacingResolver>(this, c, ip));
    }
    if (dns_cfg.kind == DnsArchKind::kTiered) {
      // Fixed pairing (Verizon): each client-facing front forwards to its
      // own dedicated external-tier resolver — a strict 1:1 matching,
      // greedily assigned by proximity, that never changes.
      tiered_pairing_.resize(util::idx(dns_cfg.client_resolvers));
      std::vector<bool> taken(external_resolvers_.size(), false);
      for (int c = 0; c < dns_cfg.client_resolvers; ++c) {
        const auto& client_node = topology_->node(client_resolver_nodes_[util::idx(c)]);
        double nearest = 1e18;
        int best = c % static_cast<int>(external_resolvers_.size());
        for (size_t e = 0; e < external_resolvers_.size(); ++e) {
          if (taken[e]) continue;
          const auto& node = topology_->node(external_resolvers_[e]->node());
          const double d =
              net::distance_km(client_node.location, node.location);
          if (d < nearest) {
            nearest = d;
            best = static_cast<int>(e);
          }
        }
        taken[static_cast<size_t>(best)] = true;
        tiered_pairing_[util::idx(c)] = best;
      }
    }
  }
  // Direct (tunneled) trunks from every region hub to every external-site
  // hub, and the per-region serving assignments.
  for (size_t r = 0; r < regions_.size(); ++r) {
    int nearest_site = site_regions.front();
    double nearest_distance = 1e18;
    for (const int s : site_regions) {
      const double d =
          net::distance_km(regions_[r].location, regions_[util::idx(s)].location);
      if (d < nearest_distance) {
        nearest_distance = d;
        nearest_site = s;
      }
      if (static_cast<int>(r) != s) {
        const double prop =
            net::propagation_ms(regions_[r].location, regions_[util::idx(s)].location);
        topology_->add_link(regions_[r].hub, regions_[util::idx(s)].hub,
                            LatencyModel::wan(prop, 1.0), 0.0005,
                            /*tunneled=*/true);
      }
    }
    regions_[r].nearest_site_region = nearest_site;
  }
  if (!client_resolver_nodes_.empty()) {
    // DHCP hands out the pool/tiered entry nearest the subscriber's region.
    client_for_region_.resize(regions_.size(), 0);
    for (size_t r = 0; r < regions_.size(); ++r) {
      double nearest_distance = 1e18;
      for (size_t c = 0; c < client_resolver_nodes_.size(); ++c) {
        const auto& node = topology_->node(client_resolver_nodes_[c]);
        const double d = net::distance_km(regions_[r].location, node.location);
        if (d < nearest_distance) {
          nearest_distance = d;
          client_for_region_[r] = static_cast<int>(c);
        }
      }
    }
  }
  (void)rng;
}

int CellularNetwork::pick_gateway(const GeoPoint& location,
                                  net::Rng& rng) const {
  // Rank regions by distance; attach to the nearest most of the time.
  int best_region = 0;
  double best = 1e18;
  int second_region = 0;
  double second = 1e18;
  for (size_t r = 0; r < regions_.size(); ++r) {
    const double d = net::distance_km(location, regions_[r].location);
    if (d < best) {
      second = best;
      second_region = best_region;
      best = d;
      best_region = static_cast<int>(r);
    } else if (d < second) {
      second = d;
      second_region = static_cast<int>(r);
    }
  }
  const int region = rng.bernoulli(0.85) ? best_region : second_region;
  // Uniform among the region's gateways.
  std::vector<int> candidates;
  for (size_t g = 0; g < gateways_.size(); ++g) {
    if (gateways_[g].region == region) candidates.push_back(static_cast<int>(g));
  }
  if (candidates.empty()) return 0;
  return candidates[static_cast<size_t>(
      rng.uniform_u64(0, candidates.size() - 1))];
}

net::Ipv4Addr CellularNetwork::assign_ip(int gateway_index, net::Rng& rng) {
  (void)rng;
  // Same walk as IpAllocator::alloc_host, but on per-(gateway, lane)
  // cursors: subscriber address churn is carrier-private runtime state,
  // kept out of the shared (post-construction immutable) world allocator,
  // and laned per device so one device's address sequence never depends
  // on how many cohorts share its carrier. A lane's cursor is seeded from
  // (carrier seed, gateway, lane) on first use, then walks sequentially —
  // the same churn pattern the shared cursor produced, minus the
  // cross-device interleaving.
  Gateway& gateway = gateways_[static_cast<size_t>(gateway_index)];
  const auto raw_lane = static_cast<size_t>(net::current_state_lane());
  const size_t lane =
      raw_lane < gateway.nat_cursors.lane_count() ? raw_lane : 0;
  uint64_t& cursor = gateway.nat_cursors[lane];
  const uint64_t hosts = gateway.nat_pool.size() - 1;
  if (cursor == Gateway::kUnseededCursor) {
    cursor = net::mix_key(net::mix_key(seed_, net::hash_tag("nat-cursor")),
                          (static_cast<uint64_t>(gateway_index) << 32) |
                              static_cast<uint64_t>(lane)) %
             hosts;
  }
  cursor = cursor % hosts + 1;
  return gateway.nat_pool.host(cursor);
}

int CellularNetwork::gateway_of_ip(net::Ipv4Addr public_ip) const {
  const auto it = gateway_by_pool_.find(public_ip.slash24().value());
  return it == gateway_by_pool_.end() ? -1 : it->second;
}

net::Ipv4Addr CellularNetwork::configured_resolver(uint64_t device_key,
                                                   int gateway_index) const {
  const auto& dns_cfg = profile_.dns;
  switch (dns_cfg.kind) {
    case DnsArchKind::kAnycast:
      // Every subscriber gets one of the few VIPs, stable per device.
      return client_resolvers_[device_key % client_resolvers_.size()]->ip();
    case DnsArchKind::kPool:
    case DnsArchKind::kTiered: {
      // Regional assignment: the entry nearest the subscriber's region.
      (void)device_key;
      const int region = gateways_[util::idx(gateway_index)].region;
      return client_resolvers_[static_cast<size_t>(client_for_region_[util::idx(region)])]
          ->ip();
    }
  }
  return client_resolvers_.front()->ip();
}

RadioTech CellularNetwork::sample_radio(net::Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(profile_.radio_mix.size());
  for (const auto& [tech, weight] : profile_.radio_mix) weights.push_back(weight);
  return profile_.radio_mix[rng.weighted_index(weights)].first;
}

net::NodeId CellularNetwork::gateway_node(int gateway_index) const {
  return gateways_[util::idx(gateway_index)].node;
}

int CellularNetwork::region_of_gateway(int gateway_index) const {
  return gateways_[util::idx(gateway_index)].region;
}

net::NodeId CellularNetwork::client_instance_node(
    int client_index, net::Ipv4Addr source_ip) const {
  if (profile_.dns.kind == DnsArchKind::kAnycast) {
    int region = 0;
    const int gateway = gateway_of_ip(source_ip);
    if (gateway >= 0) region = gateways_[util::idx(gateway)].region;
    return regions_[util::idx(region)].client_instance;
  }
  return client_resolver_nodes_[util::idx(client_index)];
}

double CellularNetwork::internal_forward_ms(net::NodeId client_node,
                                            net::NodeId external_node,
                                            net::Rng& rng) const {
  if (client_node == external_node) return 0.0;
  const auto rtt = topology_->transport_rtt_ms(client_node, external_node, rng);
  return rtt.value_or(0.0);
}

int CellularNetwork::home_external(uint64_t pair_key, net::SimTime now,
                                   const std::vector<int>& candidates) const {
  // Epoch index advances on the profile's re-pairing cadence with a
  // per-key phase so the whole fleet does not re-pair simultaneously.
  const int64_t epoch_len = profile_.dns.repair_epoch_mean.micros;
  const int64_t phase =
      static_cast<int64_t>(net::mix_key(seed_, pair_key) % uint64_t(epoch_len));
  const int64_t epoch = (now.micros + phase) / epoch_len;
  const uint64_t draw =
      net::mix_key(net::mix_key(seed_, pair_key), static_cast<uint64_t>(epoch));
  return candidates[draw % candidates.size()];
}

CellularNetwork::PairSelection CellularNetwork::select_pair(
    int client_index, net::Ipv4Addr source_ip, net::SimTime now,
    net::Rng& rng) {
  PairSelection selection;
  selection.client_node = client_instance_node(client_index, source_ip);
  if (external_resolvers_.empty()) return selection;

  const auto& dns_cfg = profile_.dns;
  if (dns_cfg.kind == DnsArchKind::kTiered) {
    selection.external =
        external_resolvers_[util::idx(tiered_pairing_[util::idx(client_index)])].get();
    return selection;
  }

  // Candidate set: anycast pairs within the subscriber's region when the
  // region hosts externals; pools load-balance across the whole set.
  std::vector<int> candidates;
  uint64_t pair_key = 0;
  {
    int region = 0;
    const int gateway = gateway_of_ip(source_ip);
    if (gateway >= 0) region = gateways_[util::idx(gateway)].region;
    const int site = regions_[util::idx(region)].nearest_site_region;
    candidates = regions_[util::idx(site)].externals;
    const char* tag =
        dns_cfg.kind == DnsArchKind::kAnycast ? "anycast-pair" : "pool-pair";
    pair_key = net::mix_key(net::hash_tag(tag),
                            (static_cast<uint64_t>(region) << 8) |
                                static_cast<uint64_t>(client_index));
  }
  if (candidates.empty()) {
    candidates.resize(external_resolvers_.size());
    for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = int(i);
  }

  // Flow-sticky load balancing: the carrier's balancers hash flows onto
  // pool members, so all of a client's queries inside a short window land
  // on the same external resolver. The paper's per-measurement
  // consistency emerges across windows, and one experiment's
  // identification query agrees with its domain queries.
  (void)rng;
  const int home = home_external(pair_key, now, candidates);
  int chosen = home;
  constexpr int64_t kFlowWindowMicros = 10LL * 60 * 1000 * 1000;
  const auto window = static_cast<uint64_t>(now.micros / kFlowWindowMicros);
  const uint64_t draw =
      net::mix_key(net::mix_key(seed_ ^ 0x10adba1ace5ULL, pair_key), window);
  const auto threshold =
      static_cast<uint64_t>(dns_cfg.pairing_consistency * 100000.0);
  if (candidates.size() > 1 && draw % 100000 >= threshold) {
    size_t alt = (draw >> 17) % candidates.size();
    if (candidates[alt] == home) alt = (alt + 1) % candidates.size();
    chosen = candidates[alt];
    carrier_metrics().churn.inc();
  }
  selection.external = external_resolvers_[util::idx(chosen)].get();
  return selection;
}

}  // namespace curtain::cellular
