// CellularNetwork: one carrier's runtime presence in a world.
//
// Builds the carrier's firewalled zone — regions, egress gateways with NAT
// address pools, client-facing resolvers (anycast VIPs, pool members or
// tiered fronts) and external-facing recursive resolvers — and implements
// the client→external pairing policy whose (in)consistency the paper
// measures (§4.1, §4.5). The DNS data path is fully wire-level: a device's
// stub query hits a ClientFacingResolver, which forwards to the selected
// external RecursiveResolver, which iterates the public hierarchy; the
// external resolver's address is what CDN and research ADNSes observe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cellular/carrier_profile.h"
#include "dns/resolver.h"
#include "dns/server.h"
#include "net/ip_allocator.h"
#include "net/ipv4.h"
#include "net/shard_slot.h"
#include "net/topology.h"
#include "obs/memory.h"

namespace curtain::cellular {

class CellularNetwork;

/// A client-facing resolver address. For anycast VIPs one instance exists
/// per region and `node_for` picks by the querying subscriber's gateway;
/// pool/tiered entries are single nodes.
///
/// Each instance is a *caching* forwarder: hits are served locally, misses
/// are forwarded to the external tier chosen by the carrier's pairing
/// policy. Instances are pools of machines behind one address (Alzoubi et
/// al.), so a fraction of queries lands on a machine whose cache has not
/// seen the name — the residual miss tail of Fig. 7.
///
/// Caches are partitioned by state lane (net/shard_slot.h): each enrolled
/// device sees its own copy of every instance cache, so cohorts of the
/// same carrier never contend and a device's cache-hit pattern is
/// independent of the cohort partition. Population-level warmth is the
/// external tier's background-load model; what a device's *own* queries
/// left behind (the Fig. 7 back-to-back repeat) stays in its lane.
class ClientFacingResolver : public dns::DnsServer {
 public:
  ClientFacingResolver(CellularNetwork* carrier, int index, net::Ipv4Addr ip);

  dns::ServedResponse handle_query(std::span<const uint8_t> query_wire,
                                   net::Ipv4Addr source_ip, net::SimTime now,
                                   net::Rng& rng) override;
  net::NodeId node() const override;
  net::Ipv4Addr ip() const override { return ip_; }
  net::NodeId node_for(net::Ipv4Addr source, net::SimTime now) const override;

  int index() const { return index_; }

  /// Approximate heap bytes of the laned per-instance caches. A
  /// profiling gauge — see obs/memory.h.
  obs::LaneMemory approx_lane_bytes() const;

 private:
  using InstanceCaches = std::unordered_map<net::NodeId, dns::Cache>;

  /// The calling lane's cache for `instance`; materialized on first touch
  /// (sparse-table rules — clamping, race-freedom — are LaneTable's).
  dns::Cache& cache_for(net::NodeId instance);

  CellularNetwork* carrier_;
  int index_;
  net::Ipv4Addr ip_;
  net::LaneTable<InstanceCaches> lane_caches_;
};

/// Everything the world builder must provide to a carrier.
struct CarrierBuildContext {
  net::Topology* topology = nullptr;
  dns::ServerRegistry* registry = nullptr;
  net::IpAllocator* allocator = nullptr;
  /// Backbone router nearest a location (gateways/DMZ hosts link to it).
  std::function<net::NodeId(const net::GeoPoint&)> nearest_backbone;
  net::Ipv4Addr root_dns_ip;
  /// Which names background subscriber load keeps warm in resolver caches
  /// (measurement-unique names must stay cold); empty = all names.
  std::function<bool(const dns::DnsName&)> warm_eligible;
  /// State lanes carrier-private mutable state (NAT cursors, resolver
  /// caches) is partitioned into: one per enrolled device fleet-wide plus
  /// one for the main thread (net/shard_slot.h); 1 = unlaned.
  int state_lanes = 1;
  uint64_t build_seed = 0;
};

class CellularNetwork {
 public:
  CellularNetwork(CarrierProfile profile, uint32_t owner_tag,
                  const CarrierBuildContext& context);
  ~CellularNetwork();
  CellularNetwork(const CellularNetwork&) = delete;
  CellularNetwork& operator=(const CellularNetwork&) = delete;

  const CarrierProfile& profile() const { return profile_; }
  uint32_t owner_tag() const { return owner_tag_; }
  net::ZoneId zone() const { return zone_; }
  /// State lanes carrier-private mutable state is partitioned into.
  int state_lanes() const { return state_lanes_; }

  // --- device attachment ------------------------------------------------
  /// Gateway index a device at `location` attaches to; weighted toward
  /// the nearest region with occasional spill-over to neighbours.
  int pick_gateway(const net::GeoPoint& location, net::Rng& rng) const;
  /// A fresh public IP from the gateway's NAT pool.
  net::Ipv4Addr assign_ip(int gateway_index, net::Rng& rng);
  /// Gateway owning `public_ip`'s /24; -1 if not a subscriber address.
  int gateway_of_ip(net::Ipv4Addr public_ip) const;
  /// Resolver address DHCP hands to `device_key` attached at `gateway`.
  net::Ipv4Addr configured_resolver(uint64_t device_key, int gateway_index) const;
  /// Per-experiment radio technology draw from the carrier's mix.
  RadioTech sample_radio(net::Rng& rng) const;

  net::NodeId gateway_node(int gateway_index) const;
  int num_gateways() const { return static_cast<int>(gateways_.size()); }
  int region_of_gateway(int gateway_index) const;

  // --- DNS architecture ------------------------------------------------
  /// Pairing policy: the external resolver serving a query from
  /// `source_ip` through client resolver `client_index` at `now`, plus the
  /// client-facing instance node the query lands on.
  struct PairSelection {
    dns::RecursiveResolver* external = nullptr;
    net::NodeId client_node = net::kInvalidNode;
  };
  PairSelection select_pair(int client_index, net::Ipv4Addr source_ip,
                            net::SimTime now, net::Rng& rng);

  /// Client-facing instance node serving `source_ip` for resolver `index`.
  net::NodeId client_instance_node(int client_index,
                                   net::Ipv4Addr source_ip) const;

  /// RTT of the forwarding leg between a client-facing instance and an
  /// external resolver (0 when collocated on the same node).
  double internal_forward_ms(net::NodeId client_node, net::NodeId external_node,
                             net::Rng& rng) const;

  const std::vector<std::unique_ptr<ClientFacingResolver>>& client_resolvers()
      const {
    return client_resolvers_;
  }
  const std::vector<std::unique_ptr<dns::RecursiveResolver>>&
  external_resolvers() const {
    return external_resolvers_;
  }

  /// Approximate heap bytes of the carrier's laned mutable state: DNS
  /// caches (client-facing instance caches + external resolver lanes)
  /// vs the rest (NAT cursors, lane containers). A profiling gauge —
  /// see obs/memory.h.
  obs::LaneMemory approx_lane_state_bytes() const;

 private:
  struct Gateway {
    /// Sentinel for a lane whose NAT cursor has not been seeded yet.
    static constexpr uint64_t kUnseededCursor = ~uint64_t{0};

    net::NodeId node = net::kInvalidNode;
    int region = 0;
    net::Prefix nat_pool;
    /// Per-lane NAT host cursors, advanced by assign_ip. They live here
    /// (not in the world's IpAllocator) so address churn is
    /// carrier-private state campaign shards can mutate without touching
    /// the shared world, and they are laned per device so a device's
    /// address sequence is independent of the cohort partition. Sparse:
    /// a cursor materializes (unseeded) the first time its device
    /// attaches through this gateway.
    net::LaneTable<uint64_t> nat_cursors;
  };
  struct Region {
    net::GeoPoint location;
    net::NodeId hub = net::kInvalidNode;
    std::vector<int> externals;  ///< external resolver indices homed here
    net::NodeId client_instance = net::kInvalidNode;  ///< anycast instance
    int nearest_site_region = 0;  ///< external site serving this region
  };

  void build_regions(const CarrierBuildContext& context);
  void build_gateways(const CarrierBuildContext& context);
  void build_dns(const CarrierBuildContext& context);

  /// Deterministic "home" external for a pairing key at a point in time.
  int home_external(uint64_t pair_key, net::SimTime now,
                    const std::vector<int>& candidates) const;

  CarrierProfile profile_;
  uint32_t owner_tag_;
  int state_lanes_ = 1;
  net::ZoneId zone_ = 0;
  net::ZoneId dmz_zone_ = 0;
  net::Topology* topology_ = nullptr;
  net::IpAllocator* allocator_ = nullptr;
  uint64_t seed_ = 0;

  std::vector<Region> regions_;
  std::vector<Gateway> gateways_;
  std::unordered_map<uint32_t, int> gateway_by_pool_;  ///< /24 base -> index

  std::vector<std::unique_ptr<ClientFacingResolver>> client_resolvers_;
  std::vector<net::NodeId> client_resolver_nodes_;  ///< pool/tiered entries
  std::vector<int> client_for_region_;  ///< nearest pool/tiered entry
  std::vector<std::unique_ptr<dns::RecursiveResolver>> external_resolvers_;
  std::vector<int> tiered_pairing_;  ///< client index -> external index
};

}  // namespace curtain::cellular
