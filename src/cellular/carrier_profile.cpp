#include "cellular/carrier_profile.h"

namespace curtain::cellular {
namespace {

using net::SimTime;

CarrierProfile att() {
  CarrierProfile p;
  p.name = "AT&T";
  p.country = "US";
  p.study_clients = 33;
  p.egress_points = 110;
  p.regions = 12;
  // GSM family: LTE dominant, HSPA fallbacks, EDGE/GPRS tail (Fig. 3).
  p.radio_mix = {{RadioTech::kLte, 0.80}, {RadioTech::kHspap, 0.09},
                 {RadioTech::kHspa, 0.04}, {RadioTech::kHsdpa, 0.03},
                 {RadioTech::kUmts, 0.02}, {RadioTech::kEdge, 0.015},
                 {RadioTech::kGprs, 0.005}};
  p.dns.kind = DnsArchKind::kAnycast;
  p.dns.client_resolvers = 2;  // anycast VIPs
  p.dns.external_resolvers = 36;
  p.dns.external_slash24s = 9;
  // §4.5: AT&T's mappings churn, and IP changes come with /24 changes.
  p.dns.pairing_consistency = 0.60;
  p.dns.repair_epoch_mean = SimTime::from_days(2);
  p.dns.external_sites = 6;
  p.reach.external_answers_internal = true;
  p.reach.external_answers_external_fraction = 0.85;  // Table 4 majority
  p.reach.externals_in_dmz = true;
  p.ip_reassign_mean = SimTime::from_hours(8);
  p.gateway_change_on_reassign = 0.35;
  return p;
}

CarrierProfile sprint() {
  CarrierProfile p;
  p.name = "Sprint";
  p.country = "US";
  p.study_clients = 9;
  p.egress_points = 45;
  p.regions = 8;
  // CDMA family: LTE plus eHRPD/EV-DO fallback and a 1xRTT tail.
  p.radio_mix = {{RadioTech::kLte, 0.70}, {RadioTech::kEhrpd, 0.16},
                 {RadioTech::kEvdoA, 0.11}, {RadioTech::kOneXRtt, 0.03}};
  p.dns.kind = DnsArchKind::kPool;
  p.dns.client_resolvers = 6;
  p.dns.external_resolvers = 24;
  p.dns.external_slash24s = 8;  // churn spans /24s (§4.5)
  // §4.1: Sprint's pools keep "a fairly consistent mapping between client
  // and external resolvers, over 60% of the time".
  p.dns.pairing_consistency = 0.75;
  p.dns.repair_epoch_mean = SimTime::from_days(30);
  p.dns.external_sites = 6;
  p.reach.external_answers_internal = true;
  p.reach.external_answers_external_fraction = 0.0;
  p.ip_reassign_mean = SimTime::from_hours(5);
  p.gateway_change_on_reassign = 0.5;
  return p;
}

CarrierProfile tmobile() {
  CarrierProfile p;
  p.name = "T-Mobile";
  p.country = "US";
  p.study_clients = 31;
  p.egress_points = 49;
  p.regions = 10;
  p.radio_mix = {{RadioTech::kLte, 0.74}, {RadioTech::kHspap, 0.14},
                 {RadioTech::kHspa, 0.05}, {RadioTech::kHsdpa, 0.03},
                 {RadioTech::kUmts, 0.02}, {RadioTech::kEdge, 0.015},
                 {RadioTech::kGprs, 0.005}};
  p.dns.kind = DnsArchKind::kAnycast;
  // One VIP observed mapping to ~40 external addresses (§4.1).
  p.dns.client_resolvers = 1;
  p.dns.external_resolvers = 40;
  p.dns.external_slash24s = 12;
  p.dns.pairing_consistency = 0.30;  // "high degree of load balancing"
  p.dns.repair_epoch_mean = SimTime::from_days(1);
  p.dns.external_sites = 6;
  p.reach.external_answers_internal = true;
  p.reach.external_answers_external_fraction = 0.12;  // "small fraction"
  p.reach.externals_in_dmz = true;
  p.ip_reassign_mean = SimTime::from_hours(4);
  p.gateway_change_on_reassign = 0.55;
  return p;
}

CarrierProfile verizon() {
  CarrierProfile p;
  p.name = "Verizon";
  p.country = "US";
  p.study_clients = 64;
  p.egress_points = 62;
  p.regions = 12;
  p.radio_mix = {{RadioTech::kLte, 0.78}, {RadioTech::kEhrpd, 0.12},
                 {RadioTech::kEvdoA, 0.08}, {RadioTech::kOneXRtt, 0.02}};
  p.dns.kind = DnsArchKind::kTiered;
  p.dns.client_resolvers = 12;
  p.dns.external_resolvers = 12;  // fixed 1:1 pairing
  p.dns.external_slash24s = 6;    // two externals share each AS22394 /24
  p.dns.pairing_consistency = 1.0;  // the only 100%-consistent carrier
  p.dns.repair_epoch_mean = SimTime::from_days(10000);  // effectively never
  p.dns.external_sites = 6;
  // External tier answers the open Internet but not subscribers (§4.1:
  // client probes to external resolvers went unanswered; Table 4: majority
  // answered the university).
  p.reach.external_answers_internal = false;
  p.reach.external_answers_external_fraction = 0.9;
  p.reach.externals_in_dmz = true;
  p.ip_reassign_mean = SimTime::from_hours(10);
  p.gateway_change_on_reassign = 0.25;
  p.client_as = 6167;
  p.external_as = 22394;
  return p;
}

CarrierProfile sk_telecom() {
  CarrierProfile p;
  p.name = "SK Telecom";
  p.country = "KR";
  p.study_clients = 17;
  p.egress_points = 10;
  p.regions = 5;
  p.radio_mix = {{RadioTech::kLte, 0.86}, {RadioTech::kHspap, 0.06},
                 {RadioTech::kHspa, 0.04}, {RadioTech::kHsupa, 0.02},
                 {RadioTech::kUmts, 0.02}};
  p.dns.kind = DnsArchKind::kPool;
  p.dns.client_resolvers = 2;     // §4.1: 2 client-configured addresses
  p.dns.external_resolvers = 24;  // and 24 publicly visible
  p.dns.external_slash24s = 2;    // pairs within the same /24
  p.dns.paired_same_slash24 = true;
  p.dns.pairing_consistency = 0.45;
  p.dns.repair_epoch_mean = SimTime::from_hours(18);
  // Two sites, one per /24 (Seoul/Busan). South Korea is small enough
  // that clients measure client- and external-facing resolvers as nearly
  // collocated (Fig. 4).
  p.dns.external_sites = 2;
  p.reach.external_answers_internal = true;
  p.reach.external_answers_external_fraction = 0.0;
  p.ip_reassign_mean = SimTime::from_hours(4);
  p.gateway_change_on_reassign = 0.4;
  return p;
}

CarrierProfile lg_uplus() {
  CarrierProfile p;
  p.name = "LG U+";
  p.country = "KR";
  p.study_clients = 4;
  p.egress_points = 8;
  p.regions = 4;
  p.radio_mix = {{RadioTech::kLte, 0.92}, {RadioTech::kHspap, 0.05},
                 {RadioTech::kUmts, 0.03}};
  p.dns.kind = DnsArchKind::kPool;
  p.dns.client_resolvers = 5;     // §4.1: 5 client, 89 external
  p.dns.external_resolvers = 89;
  p.dns.external_slash24s = 2;    // "all within only 2 /24 prefixes"
  p.dns.paired_same_slash24 = true;
  p.dns.pairing_consistency = 0.20;
  // A client saw 65 external IPs inside two weeks (§4.5).
  p.dns.repair_epoch_mean = SimTime::from_hours(5);
  p.dns.external_sites = 2;
  p.reach.external_answers_internal = false;  // Fig. 11: no responses
  p.reach.external_answers_external_fraction = 0.0;
  p.ip_reassign_mean = SimTime::from_hours(3);
  p.gateway_change_on_reassign = 0.5;
  return p;
}

}  // namespace

const std::vector<CarrierProfile>& study_carriers() {
  static const std::vector<CarrierProfile> carriers = {
      att(), sprint(), tmobile(), verizon(), sk_telecom(), lg_uplus()};
  return carriers;
}

const std::vector<CarrierProfile>& xu_era_carriers() {
  static const std::vector<CarrierProfile> carriers = [] {
    // Start from the modern profiles, then wind the clock back to 2011.
    std::vector<CarrierProfile> out;
    for (const auto& modern : study_carriers()) {
      if (modern.country != "US") continue;  // Xu et al. studied US 3G
      CarrierProfile p = modern;
      // "The number of egress points in each cellular network numbered
      // between 4 and 6" (paper §5.2 summarizing Xu et al.).
      p.egress_points = 4 + static_cast<int>(out.size() % 3);
      p.regions = p.egress_points;
      // No LTE: 3G technologies dominate, with a heavier 2G tail.
      if (p.name == "Sprint" || p.name == "Verizon") {
        p.radio_mix = {{RadioTech::kEvdoA, 0.62},
                       {RadioTech::kEhrpd, 0.18},
                       {RadioTech::kOneXRtt, 0.20}};
      } else {
        p.radio_mix = {{RadioTech::kHspa, 0.38},
                       {RadioTech::kHsdpa, 0.22},
                       {RadioTech::kUmts, 0.25},
                       {RadioTech::kEdge, 0.10},
                       {RadioTech::kGprs, 0.05}};
      }
      // Fewer, more centralized resolvers: DNS infrastructure followed the
      // handful of GGSN sites.
      p.dns.external_resolvers = std::min(p.dns.external_resolvers, 8);
      p.dns.external_slash24s = std::min(p.dns.external_slash24s, 4);
      p.dns.external_sites = std::min(p.dns.external_sites, p.regions);
      out.push_back(std::move(p));
    }
    return out;
  }();
  return carriers;
}

const CarrierProfile* find_carrier(const std::string& name) {
  for (const auto& carrier : study_carriers()) {
    if (carrier.name == name) return &carrier;
  }
  return nullptr;
}

}  // namespace curtain::cellular
