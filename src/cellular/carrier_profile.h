// Per-carrier configuration.
//
// Each profile encodes what the paper *measured* about a carrier — its DNS
// architecture (Table 3 and §4.1), probe reachability (Table 4, Figs. 4
// and 11), egress-point count (§5.2), radio mix (Fig. 3) and the
// client↔resolver churn behaviour (§4.5, Figs. 8-9) — as generative
// parameters. Numeric cells lost by the OCR pass are calibrated from the
// surviving prose; see DESIGN.md §4.
#pragma once

#include <string>
#include <vector>

#include "cellular/radio.h"
#include "net/ipv4.h"
#include "net/time.h"

namespace curtain::cellular {

enum class DnsArchKind {
  kAnycast,  ///< few client VIPs, many externals behind them (AT&T, T-Mobile)
  kPool,     ///< client-facing pool load-balancing over externals (Sprint, SKT, LG U+)
  kTiered,   ///< fixed 1:1 client/external pairing in separate ASes (Verizon)
};

struct DnsArchitecture {
  DnsArchKind kind = DnsArchKind::kPool;
  int client_resolvers = 2;    ///< addresses configurable on devices
  int external_resolvers = 8;  ///< distinct external-facing addresses
  /// Number of /24 blocks the external addresses occupy.
  int external_slash24s = 4;
  /// Client and external resolvers share each /24 (SK carriers).
  bool paired_same_slash24 = false;
  /// Probability a query uses its epoch's "home" external resolver.
  double pairing_consistency = 0.8;
  /// Mean interval between re-draws of a device's home external resolver.
  net::SimTime repair_epoch_mean = net::SimTime::from_days(3);
  /// Externals are collocated with every region's client instances, vs
  /// pulled back to a handful of sites (the usual deployment; SK Telecom
  /// uses two sites whose small-country distances read as collocated).
  bool externals_collocated = false;
  /// Central external sites when not collocated.
  int external_sites = 4;
};

struct ReachabilityPolicy {
  /// Client-facing resolvers answer subscriber pings (all carriers do).
  bool client_answers_internal = true;
  /// External-facing resolvers answer subscriber pings (false for
  /// Verizon and LG U+ — Figs. 4/11 could not measure them).
  bool external_answers_internal = true;
  /// External-facing resolvers answer pings from the open Internet
  /// (Table 4: true for Verizon and AT&T, a small fraction of T-Mobile).
  double external_answers_external_fraction = 0.0;
  /// Externals live outside the carrier's firewalled zone (separate
  /// AS/DMZ) — necessary for any external reachability at all.
  bool externals_in_dmz = false;
};

struct CarrierProfile {
  std::string name;
  std::string country;  ///< "US" or "KR"
  uint32_t owner_tag = 0;  ///< assigned at world build
  int study_clients = 0;   ///< Table 1 fleet size

  /// Egress/ingress points (§5.2: 110 / 45 / 62 / 49 for the US four).
  int egress_points = 8;
  /// Metro regions the carrier groups its infrastructure into.
  int regions = 8;

  /// (technology, weight) mix across experiments (Fig. 3's per-carrier
  /// technology sets; LTE dominates in every studied carrier).
  std::vector<std::pair<RadioTech, double>> radio_mix;

  DnsArchitecture dns;
  ReachabilityPolicy reach;

  /// Mean interval between public-IP reassignments for an attached device
  /// (Balakrishnan et al.: cellular IPs are ephemeral).
  net::SimTime ip_reassign_mean = net::SimTime::from_hours(6);
  /// Probability that an IP reassignment also moves the device to a
  /// different gateway (drives egress and resolver churn for stationary
  /// clients, Fig. 9).
  double gateway_change_on_reassign = 0.5;

  /// Documentation: client/external-facing resolver ASes (Verizon's tiers
  /// live in AS6167 / AS22394 per §4.1).
  int client_as = 0;
  int external_as = 0;
};

/// The six carriers of the study, in the paper's habitual order:
/// AT&T, Sprint, T-Mobile, Verizon, SK Telecom, LG U+.
const std::vector<CarrierProfile>& study_carriers();

/// Profile by name; nullptr if unknown.
const CarrierProfile* find_carrier(const std::string& name);

/// The 3G-era baseline the paper positions itself against (Xu et al.,
/// SIGMETRICS'11): the same four US carriers circa 2011 — 4-6 egress
/// points each, no LTE (UMTS/HSPA/EV-DO mixes with a fat 2G tail), and
/// coarser DNS deployments. In that world radio latency dominates and
/// "choosing content servers based on local DNS servers is sufficiently
/// accurate" — the claim bench/baseline_3g_era re-examines.
const std::vector<CarrierProfile>& xu_era_carriers();

}  // namespace curtain::cellular
