#include "cellular/device.h"

namespace curtain::cellular {
namespace {

// Reattach when the device has moved beyond a metro radius.
constexpr double kReattachDistanceKm = 100.0;

}  // namespace

Device::Device(uint64_t device_id, CellularNetwork* carrier, net::GeoPoint home,
               double travel_probability)
    : id_(device_id),
      carrier_(carrier),
      home_(home),
      travel_probability_(travel_probability) {}

void Device::reattach(const net::GeoPoint& where, bool allow_gateway_change,
                      net::SimTime now, net::Rng& rng) {
  const auto& profile = carrier_->profile();
  if (!attached_ || (allow_gateway_change &&
                     rng.bernoulli(profile.gateway_change_on_reassign))) {
    snapshot_.gateway_index = carrier_->pick_gateway(where, rng);
  }
  snapshot_.public_ip = carrier_->assign_ip(snapshot_.gateway_index, rng);
  snapshot_.configured_resolver =
      carrier_->configured_resolver(id_, snapshot_.gateway_index);
  attach_location_ = where;
  attached_ = true;
  next_reassign_ =
      now + net::SimTime::from_seconds(
                rng.exponential(profile.ip_reassign_mean.seconds()));
}

DeviceSnapshot Device::begin_experiment(net::SimTime now, net::Rng& rng) {
  // Mobility: mostly at home (scattered within a neighborhood so Fig. 9's
  // 10 km static-location filter keeps these), sometimes travelling.
  net::GeoPoint where = net::offset_km(home_, rng.normal(0.0, 2.0),
                                       rng.normal(0.0, 2.0));
  if (rng.bernoulli(travel_probability_)) {
    const auto& metros = carrier_->profile().country == "KR"
                             ? net::kr_metros()
                             : net::us_metros();
    const auto& away = metros[static_cast<size_t>(
        rng.uniform_u64(0, metros.size() - 1))];
    where = net::offset_km(away.location, rng.normal(0.0, 5.0),
                           rng.normal(0.0, 5.0));
  }
  snapshot_.location = where;

  const bool moved_far =
      attached_ && net::distance_km(where, attach_location_) > kReattachDistanceKm;
  if (!attached_ || moved_far) {
    reattach(where, /*allow_gateway_change=*/true, now, rng);
  } else if (now >= next_reassign_) {
    // Periodic IP reassignment; may or may not change the gateway.
    reattach(attach_location_, /*allow_gateway_change=*/true, now, rng);
  }

  snapshot_.radio = carrier_->sample_radio(rng);
  return snapshot_;
}

double Device::access_rtt_ms(net::SimTime now, net::Rng& rng) {
  return rrc_.access_rtt_ms(snapshot_.radio, now, rng);
}

net::NodeId Device::gateway_node() const {
  return carrier_->gateway_node(snapshot_.gateway_index);
}

}  // namespace curtain::cellular
