#include "cellular/device.h"

#include <memory>
#include <new>
#include <type_traits>

#include "util/contract.h"

namespace curtain::cellular {
namespace {

// Reattach when the device has moved beyond a metro radius.
constexpr double kReattachDistanceKm = 100.0;

/// Carves a value-constructed column of `count` Ts out of the arena at
/// `offset` (which must be aligned for T) and advances the offset.
template <typename T>
std::span<T> carve(std::byte* arena, size_t& offset, size_t count) {
  static_assert(std::is_trivially_destructible_v<T>);
  CURTAIN_DCHECK(offset % alignof(T) == 0) << "misaligned column at " << offset;
  T* first = reinterpret_cast<T*>(arena + offset);
  for (size_t i = 0; i < count; ++i) new (first + i) T();
  offset += count * sizeof(T);
  return std::span<T>(first, count);
}

}  // namespace

Fleet::Fleet(CellularNetwork* carrier, size_t device_count,
             double travel_probability)
    : carrier_(carrier),
      size_(device_count),
      travel_probability_(travel_probability) {
  // One allocation for every column; columns are laid out in descending
  // alignment order so each starts aligned without padding bookkeeping.
  arena_bytes_ = device_count * (sizeof(uint64_t) + 3 * sizeof(net::GeoPoint) +
                                 sizeof(net::SimTime) + sizeof(RrcState) +
                                 2 * sizeof(net::Ipv4Addr) + sizeof(int) +
                                 sizeof(RadioTech) + sizeof(uint8_t));
  arena_ = std::make_unique<std::byte[]>(arena_bytes_);
  size_t offset = 0;
  id_ = carve<uint64_t>(arena_.get(), offset, device_count);
  home_ = carve<net::GeoPoint>(arena_.get(), offset, device_count);
  location_ = carve<net::GeoPoint>(arena_.get(), offset, device_count);
  attach_location_ = carve<net::GeoPoint>(arena_.get(), offset, device_count);
  next_reassign_ = carve<net::SimTime>(arena_.get(), offset, device_count);
  rrc_ = carve<RrcState>(arena_.get(), offset, device_count);
  public_ip_ = carve<net::Ipv4Addr>(arena_.get(), offset, device_count);
  configured_resolver_ =
      carve<net::Ipv4Addr>(arena_.get(), offset, device_count);
  gateway_index_ = carve<int>(arena_.get(), offset, device_count);
  radio_ = carve<RadioTech>(arena_.get(), offset, device_count);
  attached_ = carve<uint8_t>(arena_.get(), offset, device_count);
  CURTAIN_DCHECK(offset == arena_bytes_) << offset << " != " << arena_bytes_;
  for (size_t i = 0; i < device_count; ++i) {
    next_reassign_[i] = net::SimTime{-1};
  }
}

void Fleet::enroll(size_t index, uint64_t device_id, net::GeoPoint home) {
  CURTAIN_DCHECK(index < size_) << "device " << index << " of " << size_;
  id_[index] = device_id;
  home_[index] = home;
}

void Device::reattach(const net::GeoPoint& where, bool allow_gateway_change,
                      net::SimTime now, net::Rng& rng) {
  Fleet& f = *fleet_;
  const auto& profile = f.carrier_->profile();
  const bool attached = f.attached_[index_] != 0;
  if (!attached || (allow_gateway_change &&
                    rng.bernoulli(profile.gateway_change_on_reassign))) {
    f.gateway_index_[index_] = f.carrier_->pick_gateway(where, rng);
  }
  f.public_ip_[index_] = f.carrier_->assign_ip(f.gateway_index_[index_], rng);
  f.configured_resolver_[index_] =
      f.carrier_->configured_resolver(f.id_[index_], f.gateway_index_[index_]);
  f.attach_location_[index_] = where;
  f.attached_[index_] = 1;
  f.next_reassign_[index_] =
      now + net::SimTime::from_seconds(
                rng.exponential(profile.ip_reassign_mean.seconds()));
}

DeviceSnapshot Device::begin_experiment(net::SimTime now, net::Rng& rng) {
  Fleet& f = *fleet_;
  // Mobility: mostly at home (scattered within a neighborhood so Fig. 9's
  // 10 km static-location filter keeps these), sometimes travelling.
  net::GeoPoint where = net::offset_km(f.home_[index_], rng.normal(0.0, 2.0),
                                       rng.normal(0.0, 2.0));
  if (rng.bernoulli(f.travel_probability_)) {
    const auto& metros = f.carrier_->profile().country == "KR"
                             ? net::kr_metros()
                             : net::us_metros();
    const auto& away = metros[static_cast<size_t>(
        rng.uniform_u64(0, metros.size() - 1))];
    where = net::offset_km(away.location, rng.normal(0.0, 5.0),
                           rng.normal(0.0, 5.0));
  }
  f.location_[index_] = where;

  const bool attached = f.attached_[index_] != 0;
  const bool moved_far =
      attached &&
      net::distance_km(where, f.attach_location_[index_]) > kReattachDistanceKm;
  if (!attached || moved_far) {
    reattach(where, /*allow_gateway_change=*/true, now, rng);
  } else if (now >= f.next_reassign_[index_]) {
    // Periodic IP reassignment; may or may not change the gateway.
    reattach(f.attach_location_[index_], /*allow_gateway_change=*/true, now,
             rng);
  }

  f.radio_[index_] = f.carrier_->sample_radio(rng);
  return snapshot();
}

double Device::access_rtt_ms(net::SimTime now, net::Rng& rng) {
  Fleet& f = *fleet_;
  return f.rrc_[index_].access_rtt_ms(f.radio_[index_], now, rng);
}

net::NodeId Device::gateway_node() const {
  return fleet_->carrier_->gateway_node(fleet_->gateway_index_[index_]);
}

}  // namespace curtain::cellular
