// A measurement device: one volunteer handset of the fleet.
//
// The mutable client-side state the paper's analyses depend on — current
// gateway attachment, ephemeral public IP, DHCP-configured resolver,
// active radio technology and RRC state — lives in the carrier Fleet's
// struct-of-arrays columns, carved out of one arena allocation per
// carrier. A Device is a cheap handle (fleet pointer + index) exposing the
// per-device API over those columns; the mobility / reattachment processes
// that churn the state are unchanged. Stationary devices still churn
// resolvers (Fig. 9) because reattachment and carrier-side re-pairing are
// time-driven, not movement-driven.
//
// The SoA layout is what lets a 10^6-device fleet fit in a few flat
// buffers (~100 B/device, no per-device heap object), and concurrent
// cohorts of one carrier touch disjoint index ranges of the shared
// columns, so the partition stays race-free.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "cellular/carrier.h"
#include "cellular/radio.h"
#include "net/geo.h"

namespace curtain::cellular {

class Device;

/// The device's network context at the start of one experiment. Captured
/// in every measurement record (the paper logs the same context fields).
struct DeviceSnapshot {
  net::GeoPoint location;
  int gateway_index = 0;
  net::Ipv4Addr public_ip;
  net::Ipv4Addr configured_resolver;
  RadioTech radio = RadioTech::kLte;
};

/// One carrier's enrolled devices, as struct-of-arrays columns in a
/// single arena allocation. Built by cellular::build_carrier_fleet and
/// sliced into cohorts by the campaign engine; Device handles index into
/// it. Movable (the columns view the heap arena, not the Fleet object);
/// not copyable.
class Fleet {
 public:
  /// `travel_probability` is the chance an experiment runs away from home.
  Fleet(CellularNetwork* carrier, size_t device_count,
        double travel_probability = 0.10);

  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  size_t size() const { return size_; }
  CellularNetwork& carrier() const { return *carrier_; }

  /// Handle for device `index`; valid while the Fleet is alive.
  Device device(size_t index);

  /// Sets the identity columns of device `index` (fleet construction).
  void enroll(size_t index, uint64_t device_id, net::GeoPoint home);

  /// Bytes of the fleet arena (all columns; one allocation). A profiling
  /// gauge — see obs/memory.h.
  size_t arena_bytes() const { return arena_bytes_; }

 private:
  friend class Device;

  CellularNetwork* carrier_;
  size_t size_;
  double travel_probability_;
  size_t arena_bytes_ = 0;
  std::unique_ptr<std::byte[]> arena_;

  // Columns, descending alignment so every offset stays aligned.
  std::span<uint64_t> id_;
  std::span<net::GeoPoint> home_;
  std::span<net::GeoPoint> location_;
  std::span<net::GeoPoint> attach_location_;
  std::span<net::SimTime> next_reassign_;
  std::span<RrcState> rrc_;
  std::span<net::Ipv4Addr> public_ip_;
  std::span<net::Ipv4Addr> configured_resolver_;
  std::span<int> gateway_index_;
  std::span<RadioTech> radio_;
  std::span<uint8_t> attached_;
};

class Device {
 public:
  Device() = default;
  Device(Fleet* fleet, size_t index) : fleet_(fleet), index_(index) {}

  uint64_t id() const { return fleet_->id_[index_]; }
  CellularNetwork& carrier() { return *fleet_->carrier_; }
  const CellularNetwork& carrier() const { return *fleet_->carrier_; }
  const net::GeoPoint& home() const { return fleet_->home_[index_]; }

  /// Advances attachment state to `now` (reassignment, mobility, radio
  /// draw) and returns the experiment context.
  DeviceSnapshot begin_experiment(net::SimTime now, net::Rng& rng);

  /// Radio access RTT for one probe at `now` on the current technology,
  /// paying RRC promotion if the radio idled.
  double access_rtt_ms(net::SimTime now, net::Rng& rng);

  /// Topology anchor for the device's traffic (its gateway).
  net::NodeId gateway_node() const;

  DeviceSnapshot snapshot() const {
    DeviceSnapshot snapshot;
    snapshot.location = fleet_->location_[index_];
    snapshot.gateway_index = fleet_->gateway_index_[index_];
    snapshot.public_ip = fleet_->public_ip_[index_];
    snapshot.configured_resolver = fleet_->configured_resolver_[index_];
    snapshot.radio = fleet_->radio_[index_];
    return snapshot;
  }

 private:
  void reattach(const net::GeoPoint& where, bool allow_gateway_change,
                net::SimTime now, net::Rng& rng);

  Fleet* fleet_ = nullptr;
  size_t index_ = 0;
};

inline Device Fleet::device(size_t index) { return Device(this, index); }

}  // namespace curtain::cellular
