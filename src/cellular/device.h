// A measurement device: one volunteer handset of the fleet.
//
// Owns the mutable client-side state the paper's analyses depend on —
// current gateway attachment, ephemeral public IP, DHCP-configured
// resolver, active radio technology and RRC state — and the mobility /
// reattachment processes that churn it. Stationary devices still churn
// resolvers (Fig. 9) because reattachment and carrier-side re-pairing are
// time-driven, not movement-driven.
#pragma once

#include "cellular/carrier.h"
#include "cellular/radio.h"
#include "net/geo.h"

namespace curtain::cellular {

/// The device's network context at the start of one experiment. Captured
/// in every measurement record (the paper logs the same context fields).
struct DeviceSnapshot {
  net::GeoPoint location;
  int gateway_index = 0;
  net::Ipv4Addr public_ip;
  net::Ipv4Addr configured_resolver;
  RadioTech radio = RadioTech::kLte;
};

class Device {
 public:
  /// `device_id` is fleet-unique; `home` anchors the device's location.
  /// `travel_probability` is the chance an experiment runs away from home.
  Device(uint64_t device_id, CellularNetwork* carrier, net::GeoPoint home,
         double travel_probability = 0.10);

  uint64_t id() const { return id_; }
  CellularNetwork& carrier() { return *carrier_; }
  const CellularNetwork& carrier() const { return *carrier_; }
  const net::GeoPoint& home() const { return home_; }

  /// Advances attachment state to `now` (reassignment, mobility, radio
  /// draw) and returns the experiment context.
  DeviceSnapshot begin_experiment(net::SimTime now, net::Rng& rng);

  /// Radio access RTT for one probe at `now` on the current technology,
  /// paying RRC promotion if the radio idled.
  double access_rtt_ms(net::SimTime now, net::Rng& rng);

  /// Topology anchor for the device's traffic (its gateway).
  net::NodeId gateway_node() const;

  const DeviceSnapshot& snapshot() const { return snapshot_; }

 private:
  void reattach(const net::GeoPoint& where, bool allow_gateway_change,
                net::SimTime now, net::Rng& rng);

  uint64_t id_;
  CellularNetwork* carrier_;
  net::GeoPoint home_;
  double travel_probability_;

  DeviceSnapshot snapshot_;
  net::GeoPoint attach_location_;
  net::SimTime next_reassign_{-1};
  bool attached_ = false;
  RrcState rrc_;
};

}  // namespace curtain::cellular
