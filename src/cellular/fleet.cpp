#include "cellular/fleet.h"

#include "net/geo.h"
#include "net/rng.h"
#include "util/contract.h"

namespace curtain::cellular {

Fleet build_carrier_fleet(CellularNetwork& network, int carrier_index,
                          uint64_t study_seed, uint64_t id_band) {
  // Per-carrier device stream: volunteers cluster in large metros, with
  // scatter within a suburb. Keying by carrier index (not a fleet-wide
  // cursor) keeps every carrier's draws independent of the others'.
  net::Rng rng(net::mix_key(net::mix_key(study_seed, net::hash_tag("fleet")),
                            static_cast<uint64_t>(carrier_index)));
  const auto& profile = network.profile();
  const auto& metros =
      profile.country == "KR" ? net::kr_metros() : net::us_metros();
  CURTAIN_CHECK(!metros.empty()) << "no metros for country " << profile.country;
  // Device ids are banded per carrier in blocks of id_band; a larger
  // fleet would collide ids across carriers.
  CURTAIN_CHECK(static_cast<uint64_t>(profile.study_clients) < id_band)
      << profile.name << " exceeds the " << (id_band - 1) << "-device id band";
  Fleet fleet(&network, static_cast<size_t>(profile.study_clients));
  for (int d = 0; d < profile.study_clients; ++d) {
    const auto& metro =
        metros[static_cast<size_t>(rng.uniform_u64(0, metros.size() - 1))];
    const net::GeoPoint home = net::offset_km(
        metro.location, rng.uniform(-15, 15), rng.uniform(-15, 15));
    const uint64_t device_id = static_cast<uint64_t>(carrier_index) * id_band +
                               static_cast<uint64_t>(d) + 1;
    fleet.enroll(static_cast<size_t>(d), device_id, home);
  }
  return fleet;
}

}  // namespace curtain::cellular
