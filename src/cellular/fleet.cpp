#include "cellular/fleet.h"

#include "net/geo.h"
#include "net/rng.h"
#include "util/contract.h"

namespace curtain::cellular {

std::vector<std::unique_ptr<Device>> build_carrier_fleet(
    CellularNetwork& network, int carrier_index, uint64_t study_seed) {
  // Per-carrier device stream: volunteers cluster in large metros, with
  // scatter within a suburb. Keying by carrier index (not a fleet-wide
  // cursor) keeps every carrier's draws independent of the others'.
  net::Rng rng(net::mix_key(net::mix_key(study_seed, net::hash_tag("fleet")),
                            static_cast<uint64_t>(carrier_index)));
  const auto& profile = network.profile();
  const auto& metros =
      profile.country == "KR" ? net::kr_metros() : net::us_metros();
  CURTAIN_CHECK(!metros.empty()) << "no metros for country " << profile.country;
  // Device ids are banded per carrier in blocks of 1000; a larger fleet
  // would collide ids across carriers.
  CURTAIN_CHECK(profile.study_clients < 1000)
      << profile.name << " exceeds the 999-device id band";
  std::vector<std::unique_ptr<Device>> fleet;
  fleet.reserve(static_cast<size_t>(profile.study_clients));
  for (int d = 0; d < profile.study_clients; ++d) {
    const auto& metro =
        metros[static_cast<size_t>(rng.uniform_u64(0, metros.size() - 1))];
    const net::GeoPoint home = net::offset_km(
        metro.location, rng.uniform(-15, 15), rng.uniform(-15, 15));
    const uint64_t device_id = static_cast<uint64_t>(carrier_index) * 1000 +
                               static_cast<uint64_t>(d) + 1;
    fleet.push_back(std::make_unique<Device>(device_id, &network, home));
  }
  return fleet;
}

}  // namespace curtain::cellular
