// Fleet construction: the volunteer devices enrolled with one carrier.
//
// Built once per carrier from a stream keyed by (study seed, carrier
// index) and then sliced into cohorts by the campaign engine
// (exec/engine.h). Keeping construction carrier-keyed — never cohort- or
// shard-keyed — is what makes the fleet, the device ids and every
// per-device RNG stream identical for any cohort count.
#pragma once

#include <cstdint>

#include "cellular/carrier.h"
#include "cellular/device.h"

namespace curtain::cellular {

/// Builds `network`'s study fleet as one SoA arena: profile().study_clients
/// devices homed near the carrier's country metros, with ids banded per
/// carrier (carrier_index * id_band + d + 1) so they stay stable and
/// unique no matter how the fleet is later partitioned. The default band
/// of 1000 matches the paper-scale study; million-device runs pass a
/// wider band (the engine widens it until every carrier's fleet fits).
Fleet build_carrier_fleet(CellularNetwork& network, int carrier_index,
                          uint64_t study_seed, uint64_t id_band = 1000);

}  // namespace curtain::cellular
