#include "cellular/radio.h"

namespace curtain::cellular {
namespace {

using net::LatencyModel;
using net::SimTime;

// Medians chosen so DNS resolution (access RTT + core RTT to the resolver)
// lands in Fig. 3's bands: LTE ~30-50 ms, 3G ~+50 ms, 2G near 1 s.
const std::vector<RadioProfile>& profiles() {
  static const std::vector<RadioProfile> table = {
      {RadioTech::kLte, "LTE", RadioGeneration::k4G,
       LatencyModel::jittered(28.0, 0.22), LatencyModel::jittered(260.0, 0.2),
       SimTime::from_seconds(10)},
      {RadioTech::kHspap, "HSPAP", RadioGeneration::k3G,
       LatencyModel::jittered(55.0, 0.30), LatencyModel::jittered(900.0, 0.3),
       SimTime::from_seconds(6)},
      {RadioTech::kHsupa, "HSUPA", RadioGeneration::k3G,
       LatencyModel::jittered(70.0, 0.32), LatencyModel::jittered(1200.0, 0.3),
       SimTime::from_seconds(6)},
      {RadioTech::kHsdpa, "HSDPA", RadioGeneration::k3G,
       LatencyModel::jittered(75.0, 0.32), LatencyModel::jittered(1200.0, 0.3),
       SimTime::from_seconds(6)},
      {RadioTech::kHspa, "HSPA", RadioGeneration::k3G,
       LatencyModel::jittered(80.0, 0.33), LatencyModel::jittered(1300.0, 0.3),
       SimTime::from_seconds(6)},
      {RadioTech::kUmts, "UTMS", RadioGeneration::k3G,  // paper's spelling
       LatencyModel::jittered(110.0, 0.35), LatencyModel::jittered(1800.0, 0.3),
       SimTime::from_seconds(6)},
      {RadioTech::kEhrpd, "EHRPD", RadioGeneration::k3G,
       LatencyModel::jittered(78.0, 0.30), LatencyModel::jittered(1500.0, 0.3),
       SimTime::from_seconds(8)},
      {RadioTech::kEvdoA, "EVDO_A", RadioGeneration::k3G,
       LatencyModel::jittered(82.0, 0.30), LatencyModel::jittered(1500.0, 0.3),
       SimTime::from_seconds(8)},
      {RadioTech::kEdge, "EDGE", RadioGeneration::k2G,
       LatencyModel::jittered(420.0, 0.35), LatencyModel::jittered(2500.0, 0.3),
       SimTime::from_seconds(5)},
      {RadioTech::kGprs, "GPRS", RadioGeneration::k2G,
       LatencyModel::jittered(600.0, 0.35), LatencyModel::jittered(3000.0, 0.3),
       SimTime::from_seconds(5)},
      {RadioTech::kOneXRtt, "1xRTT", RadioGeneration::k2G,
       LatencyModel::jittered(900.0, 0.30), LatencyModel::jittered(3500.0, 0.3),
       SimTime::from_seconds(5)},
  };
  return table;
}

}  // namespace

const RadioProfile& radio_profile(RadioTech tech) {
  for (const auto& profile : profiles()) {
    if (profile.tech == tech) return profile;
  }
  return profiles().front();  // unreachable for valid enum values
}

const std::vector<RadioTech>& all_radio_techs() {
  static const std::vector<RadioTech> techs = [] {
    std::vector<RadioTech> out;
    for (const auto& profile : profiles()) out.push_back(profile.tech);
    return out;
  }();
  return techs;
}

const char* radio_tech_name(RadioTech tech) {
  return radio_profile(tech).name.c_str();
}

RadioGeneration radio_generation(RadioTech tech) {
  return radio_profile(tech).generation;
}

bool RrcState::is_idle(RadioTech tech, net::SimTime now) const {
  return now - last_activity_ > radio_profile(tech).inactivity_timeout;
}

double RrcState::access_rtt_ms(RadioTech tech, net::SimTime now, net::Rng& rng) {
  const RadioProfile& profile = radio_profile(tech);
  double rtt = profile.access_rtt.sample(rng);
  if (is_idle(tech, now)) rtt += profile.promotion.sample(rng);
  last_activity_ = now;
  return rtt;
}

}  // namespace curtain::cellular
