// Radio access technologies and their latency behaviour.
//
// Figure 3 of the paper shows DNS resolution time forming distinct bands
// per radio technology: LTE fastest, 3G (EVDO-A/EHRPD/HSPA*) roughly 50 ms
// slower at the median, and 2G (1xRTT/GPRS/EDGE) near a full second. We
// model each technology as a round-trip access-latency distribution plus
// an RRC state machine whose promotion delay is paid after idle periods
// (Huang et al., MobiSys'12), which the paper's experiment script avoids
// with a bootstrap ping.
#pragma once

#include <string>
#include <vector>

#include "net/latency.h"
#include "net/rng.h"
#include "net/time.h"

namespace curtain::cellular {

enum class RadioTech {
  kLte,
  kHspap,  ///< HSPA+
  kHsupa,
  kHsdpa,
  kHspa,
  kUmts,
  kEhrpd,  ///< eHRPD (CDMA carriers' LTE fallback)
  kEvdoA,  ///< EV-DO Rev. A
  kEdge,
  kGprs,
  kOneXRtt,  ///< CDMA2000 1xRTT
};

enum class RadioGeneration { k2G, k3G, k4G };

struct RadioProfile {
  RadioTech tech;
  std::string name;
  RadioGeneration generation;
  /// Round-trip radio access latency while the radio is in its high-power
  /// (connected/DCH) state.
  net::LatencyModel access_rtt;
  /// Extra delay when the radio must be promoted from idle.
  net::LatencyModel promotion;
  /// Inactivity period after which the radio demotes to idle.
  net::SimTime inactivity_timeout;
};

/// Static profile for a technology (calibrated to Fig. 3's bands).
const RadioProfile& radio_profile(RadioTech tech);

/// All modeled technologies.
const std::vector<RadioTech>& all_radio_techs();

const char* radio_tech_name(RadioTech tech);
RadioGeneration radio_generation(RadioTech tech);

/// Per-device radio resource control state. Tracks the last traffic time;
/// activity after the inactivity timeout pays the promotion delay.
class RrcState {
 public:
  /// Registers traffic at `now` on technology `tech` and returns the
  /// access RTT to charge, including promotion if the radio was idle.
  double access_rtt_ms(RadioTech tech, net::SimTime now, net::Rng& rng);

  /// True if the radio would need promotion for traffic at `now`.
  bool is_idle(RadioTech tech, net::SimTime now) const;

  net::SimTime last_activity() const { return last_activity_; }

 private:
  net::SimTime last_activity_{-1'000'000'000};  // long idle at birth
};

}  // namespace curtain::cellular
