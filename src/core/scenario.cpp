#include "core/scenario.h"

#include "util/contract.h"
#include "util/flags.h"
#include "util/logging.h"

namespace curtain::core {

Scenario Scenario::paper_2014() { return Scenario{}; }

Scenario Scenario::from_env() {
  util::init_log_level_from_env();
  Scenario scenario;
  scenario.seed = util::study_seed();
  scenario.scale = util::campaign_scale();
  scenario.shards = util::campaign_shards();
  scenario.cohorts = util::campaign_cohorts();
  scenario.metrics_out = util::env_string("CURTAIN_METRICS_OUT", "");
  scenario.profile_out = util::profile_out();
  return scenario;
}

Scenario& Scenario::with_seed(uint64_t value) {
  seed = value;
  return *this;
}

Scenario& Scenario::with_scale(double value) {
  if (value <= 0.0) value = 0.05;
  scale = value > 1.0 ? 1.0 : value;
  return *this;
}

Scenario& Scenario::with_shards(int value) {
  shards = value < 1 ? 1 : value;
  return *this;
}

Scenario& Scenario::with_cohorts(int value) {
  if (value < 0) value = 0;
  cohorts = value > 64 ? 64 : value;
  return *this;
}

Scenario& Scenario::with_metrics_out(std::string path) {
  metrics_out = std::move(path);
  return *this;
}

Scenario& Scenario::with_profile_out(std::string path) {
  profile_out = std::move(path);
  return *this;
}

Scenario& Scenario::with_google_ecs(bool enabled) {
  google_ecs = enabled;
  return *this;
}

Scenario& Scenario::with_cdn_answer_ttl(uint32_t ttl_s) {
  cdn_answer_ttl_s = ttl_s;
  return *this;
}

Scenario& Scenario::with_carriers(
    std::vector<cellular::CarrierProfile> profiles) {
  carrier_profiles = std::move(profiles);
  return *this;
}

measure::CampaignConfig Scenario::campaign_config() const {
  // with_scale() clamps, but `scale` is a public field: catch direct writes.
  CURTAIN_CHECK(scale > 0.0 && scale <= 1.0)
      << "scenario scale " << scale << " outside (0, 1]";
  CURTAIN_CHECK(shards >= 1) << "scenario shards " << shards << " < 1";
  CURTAIN_CHECK(cohorts >= 0 && cohorts <= 64)
      << "scenario cohorts " << cohorts << " outside [0, 64]";
  return measure::CampaignConfig::scaled(scale);
}

size_t Scenario::carrier_count() const {
  return carrier_profiles.empty() ? cellular::study_carriers().size()
                                  : carrier_profiles.size();
}

}  // namespace curtain::core
