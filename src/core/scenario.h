// Scenario: the single value type describing one study configuration.
//
// It collapses the old StudyConfig / WorldConfig / CampaignConfig trio —
// which duplicated the seed three times and scattered knobs across layers
// — into one flat, copyable description with exactly one seed, one scale
// and one shards knob. Everything derived (campaign duration, shard RNG
// streams, per-service build seeds) is mixed from Scenario::seed via
// net::mix_key / net::hash_tag; no component reads a second seed field.
//
//   core::Study study(core::Scenario::paper_2014()
//                         .with_scale(0.05)
//                         .with_shards(4));
//   study.run();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellular/carrier_profile.h"
#include "measure/campaign.h"
#include "measure/experiment.h"

namespace curtain::core {

struct Scenario {
  // --- the one seed, scale and parallelism knob -------------------------
  uint64_t seed = 20141105;  ///< study-wide RNG seed (the IMC'14 date)
  /// Campaign scale in (0,1]: 1.0 reproduces the paper's five-month,
  /// ~28k-experiment campaign; smaller values shorten the window.
  double scale = 0.05;
  /// Worker threads in the campaign shard pool (CURTAIN_SHARDS; 0 in the
  /// environment means one per hardware thread). The fleet is partitioned
  /// into device cohorts per carrier (see `cohorts`); workers pull shards
  /// from a deterministic queue, so results are byte-identical for every
  /// value (see exec/engine.h).
  int shards = 1;
  /// Device cohorts per carrier (CURTAIN_COHORTS); 0 auto-sizes from the
  /// worker count. Like `shards`, purely a wall-clock knob: exports are
  /// byte-identical for every cohort count (see exec/engine.h).
  int cohorts = 0;

  // --- measurement ------------------------------------------------------
  measure::ExperimentConfig experiment;
  /// When non-empty, Study::run() writes the metrics registry there on
  /// completion (".prom" suffix: Prometheus text; anything else: JSON).
  std::string metrics_out;
  /// When non-empty, Study::run() arms the flight recorder and writes a
  /// chrome://tracing trace_event JSON file there on completion
  /// (CURTAIN_PROFILE_OUT; obs/flight_recorder.h). Profiling never
  /// perturbs results: exports are byte-identical either way.
  std::string profile_out;

  // --- world shape ------------------------------------------------------
  int google_sites = 30;  ///< paper §6.1: 30 distributed /24s
  int google_instances_per_site = 8;
  int opendns_sites = 20;
  int opendns_instances_per_site = 6;
  int replicas_per_cluster = 3;
  uint32_t cdn_answer_ttl_s = 30;  ///< the short TTLs behind Fig. 7
  /// Enable EDNS client-subnet on Google Public DNS (RFC 7871) — the
  /// "natural evolution of DNS" remedy; off in the paper-era baseline.
  bool google_ecs = false;
  /// Carrier set to build; empty = the six study carriers. Pass
  /// cellular::xu_era_carriers() to build the 3G-era baseline world.
  std::vector<cellular::CarrierProfile> carrier_profiles;

  /// The paper's baseline configuration (identical to `Scenario{}`;
  /// spelled out for readable call sites).
  static Scenario paper_2014();

  /// Reads CURTAIN_SEED / CURTAIN_SCALE / CURTAIN_SHARDS /
  /// CURTAIN_COHORTS / CURTAIN_METRICS_OUT / CURTAIN_PROFILE_OUT from
  /// the environment and applies CURTAIN_LOG to the logger.
  static Scenario from_env();

  // --- chainable setters ------------------------------------------------
  Scenario& with_seed(uint64_t value);
  Scenario& with_scale(double value);
  Scenario& with_shards(int value);
  Scenario& with_cohorts(int value);
  Scenario& with_metrics_out(std::string path);
  Scenario& with_profile_out(std::string path);
  Scenario& with_google_ecs(bool enabled);
  Scenario& with_cdn_answer_ttl(uint32_t ttl_s);
  Scenario& with_carriers(std::vector<cellular::CarrierProfile> profiles);

  /// Campaign tunables derived from `scale` (the only way a campaign
  /// config is ever produced).
  measure::CampaignConfig campaign_config() const;

  /// Carriers this scenario builds (resolves the empty-profiles default).
  size_t carrier_count() const;
};

}  // namespace curtain::core
