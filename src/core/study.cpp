#include "core/study.h"

#include <chrono>

#include "measure/vantage.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/logging.h"

namespace curtain::core {
namespace {

// Wall-clock use here is waived for the linter: it times the run phases
// for the RunReport only and never feeds a simulated result.

/// Real (not simulated) elapsed milliseconds since `start`.
double wall_ms_since(std::chrono::steady_clock::time_point start) {  // lint: wallclock
  const auto elapsed = std::chrono::steady_clock::now() - start;  // lint: wallclock
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

/// "NAME=value (kind, default D, range R) — help", one per knob.
std::vector<std::string> flag_listing() {
  std::vector<std::string> lines;
  for (const util::FlagInfo& flag : util::describe_flags()) {
    std::string line = flag.name;
    line += "=";
    line += flag.value;
    line += " (";
    line += flag.kind;
    line += ", default ";
    line += flag.fallback;
    if (flag.range[0] != '-' || flag.range[1] != '\0') {
      line += ", range ";
      line += flag.range;
    }
    line += ") — ";
    line += flag.help;
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace

Study::Study(Scenario scenario)
    : scenario_(std::move(scenario)), campaign_(scenario_.campaign_config()) {
  // Arm the flight recorder before anything allocates, so the world-build
  // phase and the build's memory growth land on the timeline. Profiling
  // is result-invisible: the recorder only ever *observes* the run.
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  if (!scenario_.profile_out.empty()) {
    recorder.enable();
    armed_recorder_ = true;
  }
  const bool profiling = armed_recorder_ && recorder.enabled();
  const int64_t build_start_us = profiling ? recorder.now_us() : 0;

  const auto build_start = std::chrono::steady_clock::now();  // lint: wallclock
  world_ = std::make_unique<World>(scenario_);
  report_.add_phase("world_build", wall_ms_since(build_start));
  if (profiling) {
    recorder.record_phase(0, "world_build", build_start_us,
                          recorder.now_us());
  }

  exec::EngineConfig engine_config;
  engine_config.seed = scenario_.seed;
  engine_config.workers = scenario_.shards;
  engine_config.cohorts = scenario_.cohorts;
  engine_config.campaign = campaign_;
  engine_config.experiment = scenario_.experiment;
  std::vector<exec::CampaignEngine::CarrierRef> carriers;
  for (size_t c = 0; c < world_->carriers().size(); ++c) {
    carriers.push_back(exec::CampaignEngine::CarrierRef{
        world_->carrier(c), static_cast<int>(c)});
  }
  engine_ = std::make_unique<exec::CampaignEngine>(
      measure::WorldView{world_->topology(), world_->registry()},
      world_->research_apex(), std::move(carriers), engine_config);
  // The route cache is keyed by shard slot; give every shard its own way
  // (slot 0 stays reserved for the main thread). Routes are
  // deterministic, so this cache is result-invisible and may key off the
  // partition-dependent slot.
  world_->topology().set_route_cache_ways(engine_->shard_count() + 1);
}

Study::~Study() {
  // A profiled study that never ran must not leave the process-wide
  // recorder armed for an unrelated later study.
  if (armed_recorder_ && !ran_) {
    obs::FlightRecorder::instance().disable();
    obs::FlightRecorder::instance().clear();
  }
}

void Study::run() {
  if (ran_) return;
  ran_ = true;

  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  const bool profiling = armed_recorder_ && recorder.enabled();

  const int64_t campaign_start_us = profiling ? recorder.now_us() : 0;
  const auto campaign_start = std::chrono::steady_clock::now();  // lint: wallclock
  engine_->run(records_);
  report_.add_phase("campaign", wall_ms_since(campaign_start));
  if (profiling) {
    recorder.record_phase(0, "campaign", campaign_start_us,
                          recorder.now_us());
  }

  // Table 4's sweep: probe every observed external resolver from the
  // wired vantage point at the end of the campaign.
  const int64_t sweep_start_us = profiling ? recorder.now_us() : 0;
  const auto sweep_start = std::chrono::steady_clock::now();  // lint: wallclock
  net::Rng vantage_rng(net::mix_key(scenario_.seed, net::hash_tag("vantage")));
  measure::VantageProber prober(
      measure::WorldView{world_->topology(), world_->registry()},
      world_->vantage_node(), world_->vantage_ip());
  prober.probe_observed_resolvers(
      records_, net::SimTime::from_days(campaign_.duration_days), vantage_rng);
  report_.add_phase("vantage_sweep", wall_ms_since(sweep_start));
  if (profiling) {
    recorder.record_phase(0, "vantage_sweep", sweep_start_us,
                          recorder.now_us());
  }

  report_.add_total("experiments",
                    static_cast<double>(records_.experiment_count()));
  report_.add_total("resolutions",
                    static_cast<double>(records_.resolution_count()));
  report_.add_total("probes", static_cast<double>(records_.total_probes()));
  report_.add_total("traces", static_cast<double>(records_.trace_count()));

  // Self-describing reports: a committed report is meaningless without
  // the execution configuration that produced it.
  report_.config.workers = scenario_.shards;
  report_.config.cohorts = engine_->cohorts_per_carrier();
  report_.config.shards = engine_->shard_count();
  report_.config.flags = flag_listing();

  if (profiling) {
    // Memory gauges are host-dependent, so they are registered only on
    // profiled runs: the default metrics export must stay byte-identical
    // across hosts and across recorder on/off.
    obs::metrics()
        .gauge("curtain_mem_records_bytes",
               "merged record-block heap bytes (approx, profiled runs only)")
        .set(static_cast<double>(records_.approx_bytes()));
    obs::metrics()
        .gauge("curtain_mem_fleet_arena_bytes",
               "SoA fleet arena bytes across all carriers")
        .set(static_cast<double>(engine_->fleet_arena_bytes()));
    const obs::LaneMemory lanes = world_->approx_lane_state_bytes();
    obs::metrics()
        .gauge("curtain_mem_dns_cache_bytes",
               "DNS cache bytes across all state lanes (approx)")
        .set(static_cast<double>(lanes.cache_bytes));
    obs::metrics()
        .gauge("curtain_mem_lane_state_bytes",
               "non-cache laned fleet state bytes (approx)")
        .set(static_cast<double>(lanes.state_bytes));
    obs::metrics()
        .gauge("curtain_mem_rss_bytes", "resident set size at end of run")
        .set(static_cast<double>(obs::read_current_rss_bytes()));
    obs::metrics()
        .gauge("curtain_mem_rss_peak_bytes", "peak resident set size")
        .set(static_cast<double>(obs::read_peak_rss_bytes()));

    const obs::FlightRecorder::Dump dump = recorder.dump();
    report_.profile = obs::build_profile(dump, util::profile_stall_factor(),
                                         obs::read_peak_rss_bytes());
    for (const std::string& label : report_.profile.stalled_labels()) {
      CURTAIN_WARN() << "stall watchdog: shard " << label << " exceeded "
                     << report_.profile.stall_factor
                     << "x the median shard wall ("
                     << report_.profile.median_shard_wall_ms << " ms)";
    }
    if (!obs::write_chrome_trace(scenario_.profile_out, dump)) {
      CURTAIN_WARN() << "failed to write chrome trace to "
                     << scenario_.profile_out;
    } else {
      CURTAIN_INFO() << "wrote chrome trace to " << scenario_.profile_out;
    }
    recorder.disable();
    recorder.clear();
  }

  if (!scenario_.metrics_out.empty()) {
    const bool ok = obs::write_metrics_file(scenario_.metrics_out,
                                            obs::metrics().snapshot(), &report_);
    if (!ok) {
      CURTAIN_WARN() << "failed to write metrics to " << scenario_.metrics_out;
    } else {
      CURTAIN_INFO() << "wrote metrics to " << scenario_.metrics_out;
    }
  }
}

std::string Study::summary() const {
  std::string out;
  out += "devices=" + std::to_string(device_count());
  out += " experiments=" + std::to_string(records_.experiment_count());
  out += " resolutions=" + std::to_string(records_.resolution_count());
  out += " probes=" + std::to_string(records_.probe_count());
  out += " traceroutes=" + std::to_string(records_.traceroute_count());
  out += " days=" + std::to_string(campaign_.duration_days);
  if (!report_.empty()) out += report_.summary_suffix();
  return out;
}

}  // namespace curtain::core
