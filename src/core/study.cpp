#include "core/study.h"

#include <chrono>

#include "measure/vantage.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace curtain::core {
namespace {

// Wall-clock use here is waived for the linter: it times the run phases
// for the RunReport only and never feeds a simulated result.

/// Real (not simulated) elapsed milliseconds since `start`.
double wall_ms_since(std::chrono::steady_clock::time_point start) {  // lint: wallclock
  const auto elapsed = std::chrono::steady_clock::now() - start;  // lint: wallclock
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

}  // namespace

Study::Study(Scenario scenario)
    : scenario_(std::move(scenario)), campaign_(scenario_.campaign_config()) {
  const auto build_start = std::chrono::steady_clock::now();  // lint: wallclock
  world_ = std::make_unique<World>(scenario_);
  report_.add_phase("world_build", wall_ms_since(build_start));

  exec::EngineConfig engine_config;
  engine_config.seed = scenario_.seed;
  engine_config.workers = scenario_.shards;
  engine_config.cohorts = scenario_.cohorts;
  engine_config.campaign = campaign_;
  engine_config.experiment = scenario_.experiment;
  std::vector<exec::CampaignEngine::CarrierRef> carriers;
  for (size_t c = 0; c < world_->carriers().size(); ++c) {
    carriers.push_back(exec::CampaignEngine::CarrierRef{
        world_->carrier(c), static_cast<int>(c)});
  }
  engine_ = std::make_unique<exec::CampaignEngine>(
      measure::WorldView{world_->topology(), world_->registry()},
      world_->research_apex(), std::move(carriers), engine_config);
  // The route cache is keyed by shard slot; give every shard its own way
  // (slot 0 stays reserved for the main thread). Routes are
  // deterministic, so this cache is result-invisible and may key off the
  // partition-dependent slot.
  world_->topology().set_route_cache_ways(engine_->shard_count() + 1);
}

Study::~Study() = default;

void Study::run() {
  if (ran_) return;
  ran_ = true;

  const auto campaign_start = std::chrono::steady_clock::now();  // lint: wallclock
  engine_->run(dataset_);
  report_.add_phase("campaign", wall_ms_since(campaign_start));

  // Table 4's sweep: probe every observed external resolver from the
  // wired vantage point at the end of the campaign.
  const auto sweep_start = std::chrono::steady_clock::now();  // lint: wallclock
  net::Rng vantage_rng(net::mix_key(scenario_.seed, net::hash_tag("vantage")));
  measure::VantageProber prober(
      measure::WorldView{world_->topology(), world_->registry()},
      world_->vantage_node(), world_->vantage_ip());
  prober.probe_observed_resolvers(
      dataset_, net::SimTime::from_days(campaign_.duration_days), vantage_rng);
  report_.add_phase("vantage_sweep", wall_ms_since(sweep_start));

  report_.add_total("experiments", static_cast<double>(dataset_.experiments.size()));
  report_.add_total("resolutions", static_cast<double>(dataset_.resolutions.size()));
  report_.add_total("probes", static_cast<double>(dataset_.total_probes()));
  report_.add_total("traces", static_cast<double>(dataset_.resolution_traces.size()));

  if (!scenario_.metrics_out.empty()) {
    const bool ok = obs::write_metrics_file(scenario_.metrics_out,
                                            obs::metrics().snapshot(), &report_);
    if (!ok) {
      CURTAIN_WARN() << "failed to write metrics to " << scenario_.metrics_out;
    } else {
      CURTAIN_INFO() << "wrote metrics to " << scenario_.metrics_out;
    }
  }
}

std::string Study::summary() const {
  std::string out;
  out += "devices=" + std::to_string(device_count());
  out += " experiments=" + std::to_string(dataset_.experiments.size());
  out += " resolutions=" + std::to_string(dataset_.resolutions.size());
  out += " probes=" + std::to_string(dataset_.probes.size());
  out += " traceroutes=" + std::to_string(dataset_.traceroutes.size());
  out += " days=" + std::to_string(campaign_.duration_days);
  if (!report_.empty()) out += report_.summary_suffix();
  return out;
}

}  // namespace curtain::core
