#include "core/study.h"

#include <chrono>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/logging.h"

namespace curtain::core {
namespace {

/// Real (not simulated) elapsed milliseconds since `start`.
double wall_ms_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

}  // namespace

StudyConfig StudyConfig::from_env() {
  util::init_log_level_from_env();
  StudyConfig config;
  config.seed = util::study_seed();
  config.scale = util::campaign_scale();
  config.world.seed = config.seed;
  config.metrics_out = util::env_string("CURTAIN_METRICS_OUT", "");
  return config;
}

Study::Study(StudyConfig config)
    : config_(config),
      campaign_(measure::CampaignConfig::scaled(config.scale, config.seed)) {
  const auto build_start = std::chrono::steady_clock::now();
  world_ = std::make_unique<World>(config.world);
  report_.add_phase("world_build", wall_ms_since(build_start));
  runner_ = std::make_unique<measure::ExperimentRunner>(
      &world_->topology(), &world_->registry(),
      measure::ResolverIdentifier(world_->research_apex()), config.experiment);

  std::vector<measure::Fleet::CarrierEntry> entries;
  for (size_t c = 0; c < world_->carriers().size(); ++c) {
    entries.push_back(
        measure::Fleet::CarrierEntry{&world_->carrier(c), static_cast<int>(c)});
  }
  fleet_ = std::make_unique<measure::Fleet>(std::move(entries), runner_.get(),
                                            campaign_);
}

Study::~Study() = default;

void Study::run() {
  if (ran_) return;
  ran_ = true;

  const auto campaign_start = std::chrono::steady_clock::now();
  fleet_->run_campaign(dataset_);
  report_.add_phase("campaign", wall_ms_since(campaign_start));

  // Table 4's sweep: probe every observed external resolver from the
  // wired vantage point at the end of the campaign.
  const auto sweep_start = std::chrono::steady_clock::now();
  net::Rng vantage_rng(net::mix_key(config_.seed, net::hash_tag("vantage")));
  measure::VantageProber prober(&world_->topology(), &world_->registry(),
                                world_->vantage_node(), world_->vantage_ip());
  prober.probe_observed_resolvers(
      dataset_, net::SimTime::from_days(campaign_.duration_days), vantage_rng);
  report_.add_phase("vantage_sweep", wall_ms_since(sweep_start));

  report_.add_total("experiments", static_cast<double>(dataset_.experiments.size()));
  report_.add_total("resolutions", static_cast<double>(dataset_.resolutions.size()));
  report_.add_total("probes", static_cast<double>(dataset_.total_probes()));
  report_.add_total("traces", static_cast<double>(dataset_.resolution_traces.size()));

  if (!config_.metrics_out.empty()) {
    const bool ok = obs::write_metrics_file(config_.metrics_out,
                                            obs::metrics().snapshot(), &report_);
    if (!ok) {
      CURTAIN_WARN() << "failed to write metrics to " << config_.metrics_out;
    } else {
      CURTAIN_INFO() << "wrote metrics to " << config_.metrics_out;
    }
  }
}

std::string Study::summary() const {
  std::string out;
  out += "devices=" + std::to_string(fleet_->device_count());
  out += " experiments=" + std::to_string(dataset_.experiments.size());
  out += " resolutions=" + std::to_string(dataset_.resolutions.size());
  out += " probes=" + std::to_string(dataset_.probes.size());
  out += " traceroutes=" + std::to_string(dataset_.traceroutes.size());
  out += " days=" + std::to_string(campaign_.duration_days);
  if (!report_.empty()) out += report_.summary_suffix();
  return out;
}

}  // namespace curtain::core
