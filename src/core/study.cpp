#include "core/study.h"

#include "util/flags.h"

namespace curtain::core {

StudyConfig StudyConfig::from_env() {
  StudyConfig config;
  config.seed = util::study_seed();
  config.scale = util::campaign_scale();
  config.world.seed = config.seed;
  return config;
}

Study::Study(StudyConfig config)
    : config_(config),
      world_(std::make_unique<World>(config.world)),
      campaign_(measure::CampaignConfig::scaled(config.scale, config.seed)) {
  runner_ = std::make_unique<measure::ExperimentRunner>(
      &world_->topology(), &world_->registry(),
      measure::ResolverIdentifier(world_->research_apex()), config.experiment);

  std::vector<measure::Fleet::CarrierEntry> entries;
  for (size_t c = 0; c < world_->carriers().size(); ++c) {
    entries.push_back(
        measure::Fleet::CarrierEntry{&world_->carrier(c), static_cast<int>(c)});
  }
  fleet_ = std::make_unique<measure::Fleet>(std::move(entries), runner_.get(),
                                            campaign_);
}

Study::~Study() = default;

void Study::run() {
  if (ran_) return;
  ran_ = true;
  fleet_->run_campaign(dataset_);

  // Table 4's sweep: probe every observed external resolver from the
  // wired vantage point at the end of the campaign.
  net::Rng vantage_rng(net::mix_key(config_.seed, net::hash_tag("vantage")));
  measure::VantageProber prober(&world_->topology(), &world_->registry(),
                                world_->vantage_node(), world_->vantage_ip());
  prober.probe_observed_resolvers(
      dataset_, net::SimTime::from_days(campaign_.duration_days), vantage_rng);
}

std::string Study::summary() const {
  std::string out;
  out += "devices=" + std::to_string(fleet_->device_count());
  out += " experiments=" + std::to_string(dataset_.experiments.size());
  out += " resolutions=" + std::to_string(dataset_.resolutions.size());
  out += " probes=" + std::to_string(dataset_.probes.size());
  out += " traceroutes=" + std::to_string(dataset_.traceroutes.size());
  out += " days=" + std::to_string(campaign_.duration_days);
  return out;
}

}  // namespace curtain::core
