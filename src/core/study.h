// Study: the top-level entry point tying world, fleet and campaign
// together. This is what examples and benches instantiate.
#pragma once

#include <memory>

#include "core/world.h"
#include "measure/fleet.h"
#include "measure/vantage.h"

namespace curtain::core {

struct StudyConfig {
  uint64_t seed = 20141105;
  /// Campaign scale in (0,1]: 1.0 reproduces the paper's five-month,
  /// ~28k-experiment campaign; smaller values shorten the window.
  double scale = 0.05;
  measure::ExperimentConfig experiment;
  WorldConfig world;

  /// Reads CURTAIN_SEED / CURTAIN_SCALE from the environment.
  static StudyConfig from_env();
};

class Study {
 public:
  explicit Study(StudyConfig config = StudyConfig::from_env());
  ~Study();
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Runs the full campaign plus the vantage-point reachability sweep.
  void run();

  World& world() { return *world_; }
  const measure::Dataset& dataset() const { return dataset_; }
  measure::Fleet& fleet() { return *fleet_; }
  const StudyConfig& config() const { return config_; }
  const measure::CampaignConfig& campaign() const { return campaign_; }

  /// One-line dataset summary (§3.1-style totals).
  std::string summary() const;

 private:
  StudyConfig config_;
  std::unique_ptr<World> world_;
  std::unique_ptr<measure::ExperimentRunner> runner_;
  measure::CampaignConfig campaign_;
  std::unique_ptr<measure::Fleet> fleet_;
  measure::Dataset dataset_;
  bool ran_ = false;
};

}  // namespace curtain::core
