// Study: the top-level entry point tying world, campaign engine and
// vantage sweep together. This is what examples and benches instantiate.
//
//   core::Study study(core::Scenario::paper_2014().with_shards(4));
//   study.run();
#pragma once

#include <memory>
#include <string>

#include "core/scenario.h"
#include "core/world.h"
#include "exec/engine.h"
#include "measure/record_store.h"
#include "obs/report.h"

namespace curtain::core {

class Study {
 public:
  explicit Study(Scenario scenario = Scenario::from_env());
  ~Study();
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Runs the full sharded campaign plus the vantage-point reachability
  /// sweep; the merged record stream is byte-identical for every
  /// Scenario::shards and Scenario::cohorts setting.
  void run();

  World& world() { return *world_; }
  /// The merged campaign records (retained mode); filled by run().
  const measure::RecordStore& records() const { return records_; }
  /// Devices enrolled across every campaign shard (Table 1 totals).
  size_t device_count() const { return engine_->device_count(); }
  /// (carrier, cohort) shards in the campaign partition.
  size_t shard_count() const { return engine_->shard_count(); }
  /// Per-shard execution records (label, sizes, wall-clock); see
  /// exec::ShardStat. Filled by run().
  const std::vector<exec::ShardStat>& shard_stats() const {
    return engine_->shard_stats();
  }
  const Scenario& scenario() const { return scenario_; }
  const measure::CampaignConfig& campaign() const { return campaign_; }

  /// One-line record-stream summary (§3.1-style totals), with per-phase
  /// wall-clock appended once run() has completed.
  std::string summary() const;

  /// Per-phase wall-clock and record totals; filled by run().
  const obs::RunReport& report() const { return report_; }

 private:
  Scenario scenario_;
  std::unique_ptr<World> world_;
  measure::CampaignConfig campaign_;
  std::unique_ptr<exec::CampaignEngine> engine_;
  measure::RecordStore records_;
  obs::RunReport report_;
  bool ran_ = false;
  /// True when this study armed the flight recorder (profile_out set).
  bool armed_recorder_ = false;
};

}  // namespace curtain::core
