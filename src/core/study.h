// Study: the top-level entry point tying world, fleet and campaign
// together. This is what examples and benches instantiate.
#pragma once

#include <memory>
#include <string>

#include "core/world.h"
#include "measure/fleet.h"
#include "measure/vantage.h"
#include "obs/report.h"

namespace curtain::core {

struct StudyConfig {
  uint64_t seed = 20141105;
  /// Campaign scale in (0,1]: 1.0 reproduces the paper's five-month,
  /// ~28k-experiment campaign; smaller values shorten the window.
  double scale = 0.05;
  measure::ExperimentConfig experiment;
  WorldConfig world;
  /// When non-empty, run() writes the metrics registry there on completion
  /// (".prom" suffix: Prometheus text; anything else: JSON).
  std::string metrics_out;

  /// Reads CURTAIN_SEED / CURTAIN_SCALE / CURTAIN_METRICS_OUT from the
  /// environment and applies CURTAIN_LOG to the logger.
  static StudyConfig from_env();
};

class Study {
 public:
  explicit Study(StudyConfig config = StudyConfig::from_env());
  ~Study();
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Runs the full campaign plus the vantage-point reachability sweep.
  void run();

  World& world() { return *world_; }
  const measure::Dataset& dataset() const { return dataset_; }
  measure::Fleet& fleet() { return *fleet_; }
  const StudyConfig& config() const { return config_; }
  const measure::CampaignConfig& campaign() const { return campaign_; }

  /// One-line dataset summary (§3.1-style totals), with per-phase
  /// wall-clock appended once run() has completed.
  std::string summary() const;

  /// Per-phase wall-clock and dataset totals; filled by run().
  const obs::RunReport& report() const { return report_; }

 private:
  StudyConfig config_;
  std::unique_ptr<World> world_;
  std::unique_ptr<measure::ExperimentRunner> runner_;
  measure::CampaignConfig campaign_;
  std::unique_ptr<measure::Fleet> fleet_;
  measure::Dataset dataset_;
  obs::RunReport report_;
  bool ran_ = false;
};

}  // namespace curtain::core
