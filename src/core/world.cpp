#include "core/world.h"

#include <limits>

#include "dns/reverse.h"

namespace curtain::core {
namespace {

using net::GeoPoint;
using net::LatencyModel;

// The vantage point is a university host in Evanston, IL — an homage to
// the authors' institution.
const GeoPoint kVantageLocation{42.05, -87.68};
const net::Ipv4Addr kVantageIp{129, 105, 0, 5};

std::string metro_country(const std::string& metro_name) {
  for (const auto& metro : net::us_metros()) {
    if (metro.name == metro_name) return "US";
  }
  for (const auto& metro : net::kr_metros()) {
    if (metro.name == metro_name) return "KR";
  }
  return "";
}

/// Result-visible mutable state is keyed by global device state lanes
/// (net/shard_slot.h): one lane per enrolled device across every carrier,
/// plus lane 0 for the main thread. The lane count depends only on the
/// carrier table — never on cohort or worker counts.
int state_lane_count(const Scenario& config) {
  const auto& profiles = config.carrier_profiles.empty()
                             ? cellular::study_carriers()
                             : config.carrier_profiles;
  int devices = 0;
  for (const auto& profile : profiles) devices += profile.study_clients;
  return devices + 1;
}

}  // namespace

World::World(Scenario config)
    : config_(std::move(config)),
      allocator_(std::make_unique<net::IpAllocator>(
          net::Prefix(net::Ipv4Addr{20, 0, 0, 0}, 6))),
      vantage_ip_(kVantageIp) {
  build_backbone();
  build_vantage();
  build_hierarchy_and_research_zone();
  build_cdns();
  build_public_dns();
  build_carriers();
  register_cdn_hints();
  // The route cache stays at its single-way default here: the cache is
  // keyed by shard slot, and only the campaign engine knows how many
  // shards the cohort partition produces. Study widens it to
  // shard_count + 1 ways after building the engine (slot 0 stays
  // reserved for the main thread).
}

World::~World() = default;

obs::LaneMemory World::approx_lane_state_bytes() const {
  obs::LaneMemory memory;
  for (const auto& carrier : carriers_) {
    memory += carrier->approx_lane_state_bytes();
  }
  if (google_) memory += google_->approx_lane_bytes();
  if (opendns_) memory += opendns_->approx_lane_bytes();
  return memory;
}

void World::build_backbone() {
  const auto& metros = net::world_metros();
  backbone_nodes_.reserve(metros.size());
  const net::Prefix backbone_block = allocator_->alloc_block(24);
  for (const auto& metro : metros) {
    net::Node node;
    node.name = "ix-" + metro.name;
    node.kind = net::NodeKind::kRouter;
    node.zone = net::Topology::internet_zone();
    node.location = metro.location;
    node.ip = allocator_->alloc_host(backbone_block);  // PTR-resolvable hop
    node.processing = LatencyModel::fixed(0.05);
    backbone_nodes_.push_back(topology_.add_node(node));
  }
  // Full mesh: inter-metro latency is dominated by propagation, so the
  // shortest path is always the (near-)direct link, as on real backbones.
  for (size_t i = 0; i < backbone_nodes_.size(); ++i) {
    for (size_t j = i + 1; j < backbone_nodes_.size(); ++j) {
      const double prop =
          net::propagation_ms(metros[i].location, metros[j].location);
      topology_.add_link(backbone_nodes_[i], backbone_nodes_[j],
                         LatencyModel::wan(prop, 0.8), /*loss=*/0.0002);
    }
  }
}

net::NodeId World::nearest_backbone(const GeoPoint& location) const {
  net::NodeId best = backbone_nodes_.front();
  double best_distance = std::numeric_limits<double>::infinity();
  for (const net::NodeId id : backbone_nodes_) {
    const double d = net::distance_km(location, topology_.node(id).location);
    if (d < best_distance) {
      best_distance = d;
      best = id;
    }
  }
  return best;
}

dns::HostFactory World::host_factory() {
  return [this](const std::string& name, net::NodeKind kind,
                const GeoPoint& location, net::Ipv4Addr ip) {
    net::Node node;
    node.name = name;
    node.kind = kind;
    node.zone = net::Topology::internet_zone();
    node.location = location;
    node.ip = ip;
    node.processing = LatencyModel::jittered(0.5, 0.3);
    const net::NodeId id = topology_.add_node(node);
    topology_.add_link(id, nearest_backbone(location),
                       LatencyModel::jittered(0.8, 0.3), 0.0002);
    return id;
  };
}

void World::build_vantage() {
  net::Node node;
  node.name = "vantage-university";
  node.kind = net::NodeKind::kVantagePoint;
  node.zone = net::Topology::internet_zone();
  node.location = kVantageLocation;
  node.ip = vantage_ip_;
  vantage_node_ = topology_.add_node(node);
  topology_.add_link(vantage_node_, nearest_backbone(kVantageLocation),
                     LatencyModel::jittered(1.0, 0.3), 0.0002);
}

void World::build_hierarchy_and_research_zone() {
  hierarchy_ = std::make_unique<dns::DnsHierarchy>(host_factory(), &registry_);
  research_apex_ = *dns::DnsName::parse("curtain-study.net");
  auto& research_adns = hierarchy_->create_zone(
      research_apex_, kVantageLocation, net::Ipv4Addr{129, 105, 100, 53});
  measure::ResolverIdentifier::install_handler(research_adns);

  // Reverse DNS: traceroute hop identification resolves in-addr.arpa PTRs
  // published from the topology's IP index (every addressable node).
  auto& reverse_zone = hierarchy_->create_zone(
      *dns::DnsName::parse("in-addr.arpa"), {38.9, -77.5},
      net::Ipv4Addr{198, 51, 100, 53});
  dns::install_reverse_zone(reverse_zone, &topology_,
                            *dns::DnsName::parse("rev.curtain-study.net"));
}

void World::build_cdns() {
  cdn::CdnBuildContext context;
  context.topology = &topology_;
  context.registry = &registry_;
  context.allocator = allocator_.get();
  context.hierarchy = hierarchy_.get();
  context.nearest_backbone = [this](const GeoPoint& location) {
    return nearest_backbone(location);
  };
  context.build_seed = config_.seed;

  std::map<std::string, cdn::CdnProvider*> providers;
  for (const std::string& name : cdn::study_cdn_names()) {
    auto apex = dns::DnsName::parse(name + ".net");
    auto provider = std::make_unique<cdn::CdnProvider>(
        name, *apex, context, config_.replicas_per_cluster,
        config_.cdn_answer_ttl_s);
    providers[name] = provider.get();
    cdns_[name] = std::move(provider);
  }
  cdn::wire_origin_zones(providers, *hierarchy_, *allocator_);
}

void World::build_public_dns() {
  publicdns::PublicDnsBuildContext context;
  context.topology = &topology_;
  context.registry = &registry_;
  context.allocator = allocator_.get();
  context.nearest_backbone = [this](const GeoPoint& location) {
    return nearest_backbone(location);
  };
  context.root_dns_ip = hierarchy_->root_ip();
  context.build_seed = config_.seed;
  // One mutable-state lane per enrolled device plus the main thread's
  // lane 0: public resolvers serve every device's timeline independently.
  context.state_lanes = state_lane_count(config_);
  const dns::DnsName research = research_apex_;
  context.warm_eligible = [research](const dns::DnsName& name) {
    return !name.is_within(research);
  };
  // Anycast ingress follows the querying prefix's egress location, which
  // for subscribers is their carrier gateway.
  context.locate_source =
      [this](net::Ipv4Addr source) -> std::optional<GeoPoint> {
    for (const auto& carrier : carriers_) {
      const int gateway = carrier->gateway_of_ip(source);
      if (gateway >= 0) {
        return topology_.node(carrier->gateway_node(gateway)).location;
      }
    }
    const net::NodeId node = topology_.find_by_ip(source);
    if (node != net::kInvalidNode) return topology_.node(node).location;
    return std::nullopt;
  };

  context.ecs_enabled = config_.google_ecs;
  google_ = std::make_unique<publicdns::PublicDnsService>(
      "GoogleDNS", net::Ipv4Addr{8, 8, 8, 8}, config_.google_sites,
      config_.google_instances_per_site, context);
  context.ecs_enabled = false;  // OpenDNS did not send ECS in the era
  opendns_ = std::make_unique<publicdns::PublicDnsService>(
      "OpenDNS", net::Ipv4Addr{208, 67, 222, 222}, config_.opendns_sites,
      config_.opendns_instances_per_site, context);
}

void World::build_carriers() {
  cellular::CarrierBuildContext context;
  context.topology = &topology_;
  context.registry = &registry_;
  context.allocator = allocator_.get();
  context.nearest_backbone = [this](const GeoPoint& location) {
    return nearest_backbone(location);
  };
  context.root_dns_ip = hierarchy_->root_ip();
  const dns::DnsName research = research_apex_;
  context.warm_eligible = [research](const dns::DnsName& name) {
    return !name.is_within(research);
  };
  context.build_seed = config_.seed;
  context.state_lanes = state_lane_count(config_);

  uint32_t owner_tag = 1;
  const auto& profiles = config_.carrier_profiles.empty()
                             ? cellular::study_carriers()
                             : config_.carrier_profiles;
  for (const auto& profile : profiles) {
    carriers_.push_back(std::make_unique<cellular::CellularNetwork>(
        profile, owner_tag++, context));
  }
}

void World::register_cdn_hints() {
  for (auto& [name, provider] : cdns_) {
    // Public DNS sites are on the open Internet: fully measurable.
    for (const auto* service :
         {google_.get(), opendns_.get()}) {
      for (const auto& site : service->sites()) {
        provider->add_prefix_hint(site.prefix, site.location,
                                  metro_country(site.metro));
      }
    }
    // Carrier resolver prefixes. A CDN cannot probe behind the cellular
    // ingress (§4.4), but BGP and registration data still place a /24
    // coarsely near where it is announced — so opaque prefixes get a
    // *noisy* location hint at the resolver's site, while DMZ-hosted
    // tiers (ping-measurable from outside) get a precise one. The
    // resolver's site is still a poor proxy for the *client*, which is
    // exactly the mislocalization the paper quantifies.
    net::Rng hint_rng(net::mix_key(config_.seed, net::hash_tag("cdn-hints")));
    for (const auto& carrier : carriers_) {
      const auto& profile = carrier->profile();
      // Subscriber NAT pools: each /24 is announced at one gateway, so —
      // unlike the resolver tier — *client* subnets are geolocatable from
      // BGP. This is what makes EDNS client-subnet effective: when a
      // resolver discloses the client /24, the CDN has a good hint for it.
      for (int g = 0; g < carrier->num_gateways(); ++g) {
        const auto& gateway_node = topology_.node(carrier->gateway_node(g));
        const net::Prefix pool(
            carrier->assign_ip(g, hint_rng).slash24(), 24);
        provider->add_prefix_country(pool, profile.country);
        provider->add_prefix_hint(
            pool,
            net::offset_km(gateway_node.location, hint_rng.normal(0.0, 50.0),
                           hint_rng.normal(0.0, 50.0)),
            profile.country);
      }
      for (const auto& resolver : carrier->external_resolvers()) {
        const net::Prefix slash24(resolver->ip().slash24(), 24);
        provider->add_prefix_country(slash24, profile.country);
        const net::GeoPoint site = topology_.node(resolver->node()).location;
        const double noise_km = profile.reach.externals_in_dmz ? 40.0 : 100.0;
        const net::GeoPoint hinted = net::offset_km(
            site, hint_rng.normal(0.0, noise_km),
            hint_rng.normal(0.0, noise_km));
        provider->add_prefix_hint(slash24, hinted, profile.country);
      }
    }
  }
}

}  // namespace curtain::core
