// World: the complete simulated environment of the study.
//
// Assembles every substrate into one consistent universe:
//   * an Internet backbone over 30 world metros,
//   * the DNS delegation hierarchy (root, TLDs),
//   * three CDN providers carrying the nine study domains,
//   * Google Public DNS (30 sites) and OpenDNS (20 sites),
//   * the six study carriers with their firewalled zones and LDNS
//     architectures,
//   * the research ADNS used for resolver identification, and
//   * the wired university vantage point.
// After construction the world is immutable; campaigns only thread RNG
// and virtual time through it.
#pragma once

#include <map>
#include <memory>

#include "cdn/cdn.h"
#include "cdn/domains.h"
#include "cellular/carrier.h"
#include "core/scenario.h"
#include "dns/hierarchy.h"
#include "measure/resolver_ident.h"
#include "util/contract.h"
#include "publicdns/public_dns.h"

namespace curtain::core {

class World {
 public:
  /// Builds the world a Scenario describes (only the seed and world-shape
  /// fields are read; scale/shards belong to execution).
  explicit World(Scenario config = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  net::Topology& topology() { return topology_; }
  const net::Topology& topology() const { return topology_; }
  dns::ServerRegistry& registry() { return registry_; }
  const dns::ServerRegistry& registry() const { return registry_; }
  dns::DnsHierarchy& hierarchy() { return *hierarchy_; }

  net::NodeId nearest_backbone(const net::GeoPoint& location) const;

  const std::vector<std::unique_ptr<cellular::CellularNetwork>>& carriers()
      const {
    return carriers_;
  }
  cellular::CellularNetwork& carrier(size_t index) {
    CURTAIN_CHECK(index < carriers_.size())
        << "carrier " << index << " of " << carriers_.size();
    return *carriers_[index];
  }

  publicdns::PublicDnsService& google_dns() { return *google_; }
  publicdns::PublicDnsService& open_dns() { return *opendns_; }
  cdn::CdnProvider& cdn(const std::string& name) { return *cdns_.at(name); }
  /// Ordered by provider name so tools that print or export the CDN set
  /// walk it in a reproducible order.
  const std::map<std::string, std::unique_ptr<cdn::CdnProvider>>& cdns()
      const {
    return cdns_;
  }

  const dns::DnsName& research_apex() const { return research_apex_; }
  net::NodeId vantage_node() const { return vantage_node_; }
  net::Ipv4Addr vantage_ip() const { return vantage_ip_; }
  net::Ipv4Addr root_dns_ip() const { return hierarchy_->root_ip(); }

  const Scenario& config() const { return config_; }

  /// Approximate heap bytes of all laned (per-device) mutable state:
  /// carrier NAT cursors and resolver caches plus public-DNS instance
  /// lanes. A profiling gauge for the flight recorder — see obs/memory.h.
  obs::LaneMemory approx_lane_state_bytes() const;

 private:
  void build_backbone();
  void build_vantage();
  void build_hierarchy_and_research_zone();
  void build_cdns();
  void build_public_dns();
  void build_carriers();
  void register_cdn_hints();

  dns::HostFactory host_factory();

  Scenario config_;
  net::Topology topology_;
  dns::ServerRegistry registry_;
  std::unique_ptr<net::IpAllocator> allocator_;
  std::vector<net::NodeId> backbone_nodes_;
  std::unique_ptr<dns::DnsHierarchy> hierarchy_;
  dns::DnsName research_apex_;
  net::NodeId vantage_node_ = net::kInvalidNode;
  net::Ipv4Addr vantage_ip_;
  std::map<std::string, std::unique_ptr<cdn::CdnProvider>> cdns_;
  std::unique_ptr<publicdns::PublicDnsService> google_;
  std::unique_ptr<publicdns::PublicDnsService> opendns_;
  std::vector<std::unique_ptr<cellular::CellularNetwork>> carriers_;
};

}  // namespace curtain::core
