#include "dns/authoritative.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace curtain::dns {
namespace {

constexpr size_t kMaxCnameChase = 8;

}  // namespace

AuthoritativeServer::AuthoritativeServer(DnsName apex, net::NodeId node,
                                         net::Ipv4Addr ip)
    : apex_(std::move(apex)), node_(node), ip_(ip) {
  SoaRecord soa;
  soa.mname = *apex_.child("ns1");
  soa.rname = *apex_.child("hostmaster");
  soa.serial = 2014030100;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 300;
  soa_rr_ = ResourceRecord::soa(apex_, soa, 3600);
}

void AuthoritativeServer::add_record(ResourceRecord rr) {
  records_[{rr.name, rr.type()}].push_back(std::move(rr));
}

void AuthoritativeServer::delegate(const DnsName& child_apex,
                                   const DnsName& ns_name, net::Ipv4Addr ns_addr,
                                   uint32_t ttl_s) {
  Delegation d;
  d.apex = child_apex;
  d.ns = ResourceRecord::ns(child_apex, ns_name, ttl_s);
  d.glue = ResourceRecord::a(ns_name, ns_addr, ttl_s);
  delegations_.push_back(std::move(d));
}

void AuthoritativeServer::set_dynamic_handler(DynamicHandler handler,
                                              uint32_t dynamic_ttl_s) {
  dynamic_handler_ = std::move(handler);
  dynamic_ttl_s_ = dynamic_ttl_s;
}

void AuthoritativeServer::set_soa(SoaRecord soa, uint32_t ttl_s) {
  soa_rr_ = ResourceRecord::soa(apex_, std::move(soa), ttl_s);
}

const AuthoritativeServer::Delegation* AuthoritativeServer::find_delegation(
    const DnsName& name) const {
  for (const auto& d : delegations_) {
    if (name.is_within(d.apex)) return &d;
  }
  return nullptr;
}

std::vector<ResourceRecord> AuthoritativeServer::find_static(
    const DnsName& name, RRType type) const {
  const auto it = records_.find({name, type});
  return it == records_.end() ? std::vector<ResourceRecord>{} : it->second;
}

bool AuthoritativeServer::name_exists(const DnsName& name) const {
  for (const auto& [key, rrs] : records_) {
    if (key.first == name && !rrs.empty()) return true;
  }
  return false;
}

void AuthoritativeServer::answer_question(
    const Question& question, net::Ipv4Addr source_ip,
    const std::optional<EdnsClientSubnet>& ecs, net::SimTime now,
    net::Rng& rng, Message& response) {
  DnsName qname = question.name;
  if (!qname.is_within(apex_)) {
    response.header.rcode = Rcode::kRefused;
    return;
  }

  for (size_t chase = 0; chase < kMaxCnameChase; ++chase) {
    if (const Delegation* d = find_delegation(qname)) {
      // Referral: not authoritative for the child zone.
      response.header.aa = false;
      response.authorities.push_back(d->ns);
      response.additionals.push_back(d->glue);
      return;
    }

    response.header.aa = true;
    auto exact = find_static(qname, question.type);
    if (!exact.empty()) {
      for (auto& rr : exact) response.answers.push_back(std::move(rr));
      return;
    }

    // In-zone CNAME: append and chase if the target stays in-zone.
    auto cnames = find_static(qname, RRType::kCNAME);
    if (!cnames.empty() && question.type != RRType::kCNAME) {
      const auto& target = std::get<CnameRecord>(cnames.front().rdata).target;
      response.answers.push_back(cnames.front());
      if (!target.is_within(apex_)) return;  // resolver continues elsewhere
      qname = target;
      continue;
    }

    if (dynamic_handler_) {
      auto dynamic = dynamic_handler_(Question{qname, question.type, question.klass},
                                      source_ip, ecs, now, rng);
      if (dynamic) {
        for (auto& rr : *dynamic) {
          if (rr.ttl == 0) rr.ttl = dynamic_ttl_s_;
          response.answers.push_back(std::move(rr));
        }
        return;
      }
    }

    // NODATA (name exists, type doesn't) vs NXDOMAIN.
    if (!name_exists(qname)) response.header.rcode = Rcode::kNxDomain;
    response.authorities.push_back(soa_rr_);
    return;
  }
  response.header.rcode = Rcode::kServFail;  // CNAME chain too long
}

ServedResponse AuthoritativeServer::handle_query(
    std::span<const uint8_t> query_wire, net::Ipv4Addr source_ip,
    net::SimTime now, net::Rng& rng) {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  {
    // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
    struct AdnsMetrics {
      obs::Counter& queries = obs::metrics().counter(
          "curtain_dns_authoritative_queries_total",
          "queries answered by authoritative servers");
    };
    static thread_local obs::SheafLocal<AdnsMetrics> adns_metrics;
    adns_metrics.get().queries.inc();
  }
  // Hop marker: server-side cost is charged by the caller's transport
  // accounting, so the span is instantaneous in virtual time; it exists to
  // show the hop (and to parent the CDN mapping span) in the trace tree.
  obs::ScopedSpan span("authoritative", now.millis());
  ServedResponse served;
  const auto query = decode(query_wire);
  if (!query || query->questions.empty()) {
    Message response;
    response.header.id = query ? query->header.id : 0;
    response.header.qr = true;
    response.header.rcode = Rcode::kFormErr;
    served.wire = encode(response);
    return served;
  }
  Message response = query->make_response();
  response.header.ra = false;  // authoritative servers do not recurse
  answer_question(query->questions.front(), source_ip, query->ecs, now, rng,
                  response);
  served.wire = encode(response);
  span.finish(now.millis());
  return served;
}

}  // namespace curtain::dns
