// Authoritative DNS server.
//
// Serves one zone from static records plus an optional dynamic handler.
// Dynamic handlers are how the study's two special ADNSes work:
//   * the CDN ADNS computes A records from the *querying resolver's* IP
//     (replica selection, paper §2.2), and
//   * the research ADNS answers with the querying resolver's own address
//     (resolver identification à la Mao et al., §3.2).
// The server also publishes NS delegations for child zones so recursive
// resolvers can walk root → TLD → zone like the real hierarchy.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <optional>

#include "dns/cache.h"
#include "dns/message.h"
#include "dns/server.h"

namespace curtain::dns {

/// Computes an answer for a question the static zone data does not cover.
/// Returning nullopt yields NXDOMAIN.
using DynamicHandler = std::function<std::optional<std::vector<ResourceRecord>>(
    const Question& question, net::Ipv4Addr resolver_ip,
    const std::optional<EdnsClientSubnet>& ecs, net::SimTime now,
    net::Rng& rng)>;

class AuthoritativeServer : public DnsServer {
 public:
  /// `apex` is the zone this server is authoritative for; `node` / `ip`
  /// bind it to the topology.
  AuthoritativeServer(DnsName apex, net::NodeId node, net::Ipv4Addr ip);

  const DnsName& apex() const { return apex_; }

  /// Adds a static record; the record's name must be within the apex.
  void add_record(ResourceRecord rr);

  /// Registers a delegation: queries for names within `child_apex` get a
  /// referral (authority NS + glue A) instead of an answer.
  void delegate(const DnsName& child_apex, const DnsName& ns_name,
                net::Ipv4Addr ns_addr, uint32_t ttl_s = 172800);

  /// Handler consulted when static data has no records for the qname.
  void set_dynamic_handler(DynamicHandler handler, uint32_t dynamic_ttl_s);

  /// SOA used in negative responses (a default is synthesized if unset).
  void set_soa(SoaRecord soa, uint32_t ttl_s = 3600);

  // DnsServer:
  ServedResponse handle_query(std::span<const uint8_t> query_wire,
                              net::Ipv4Addr source_ip, net::SimTime now,
                              net::Rng& rng) override;
  net::NodeId node() const override { return node_; }
  net::Ipv4Addr ip() const override { return ip_; }

  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Delegation {
    DnsName apex;
    ResourceRecord ns;
    ResourceRecord glue;
  };

  /// Fills `response` for `question`; follows in-zone CNAME chains.
  void answer_question(const Question& question, net::Ipv4Addr source_ip,
                       const std::optional<EdnsClientSubnet>& ecs,
                       net::SimTime now, net::Rng& rng, Message& response);

  const Delegation* find_delegation(const DnsName& name) const;
  std::vector<ResourceRecord> find_static(const DnsName& name, RRType type) const;
  bool name_exists(const DnsName& name) const;

  DnsName apex_;
  net::NodeId node_;
  net::Ipv4Addr ip_;
  // Keyed by (name, type); std::map keeps deterministic iteration for tests.
  std::map<std::pair<DnsName, RRType>, std::vector<ResourceRecord>> records_;
  std::vector<Delegation> delegations_;
  DynamicHandler dynamic_handler_;
  uint32_t dynamic_ttl_s_ = 30;
  ResourceRecord soa_rr_;
  /// Atomic: authoritative servers are shared world state queried by
  /// concurrent campaign shards.
  std::atomic<uint64_t> queries_served_{0};
};

}  // namespace curtain::dns
