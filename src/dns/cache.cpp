#include "dns/cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace curtain::dns {
namespace {

// Process-wide totals across every cache instance (recursive resolvers,
// client-facing pool machines, public DNS sites); per-instance numbers
// stay in CacheStats.
struct CacheMetrics {
  obs::Counter& hits = obs::metrics().counter(
      "curtain_dns_cache_hits_total", "DNS cache lookups served from cache");
  obs::Counter& misses = obs::metrics().counter(
      "curtain_dns_cache_misses_total", "DNS cache lookups that missed");
  obs::Counter& expired = obs::metrics().counter(
      "curtain_dns_cache_expired_evictions_total",
      "cache entries evicted on TTL expiry");
  obs::Counter& capacity = obs::metrics().counter(
      "curtain_dns_cache_capacity_evictions_total",
      "cache entries evicted by the size cap");
};

CacheMetrics& cache_metrics() {
  // Per thread: handles must bind to the shard's sheaf (obs/metrics.h).
  static thread_local CacheMetrics metrics;
  return metrics;
}

}  // namespace

std::optional<CachedRrset> Cache::lookup(const DnsName& name, RRType type,
                                         net::SimTime now, uint32_t scope) {
  const auto it = entries_.find(Key{name, type, scope});
  if (it == entries_.end()) {
    ++stats_.misses;
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  if (it->second.expires <= now) {
    entries_.erase(it);
    ++stats_.expired_evictions;
    ++stats_.misses;
    cache_metrics().expired.inc();
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  ++stats_.hits;
  cache_metrics().hits.inc();
  CachedRrset aged = it->second;
  const auto elapsed_s =
      static_cast<uint32_t>((now - aged.inserted).seconds());
  for (auto& rr : aged.records) {
    rr.ttl = rr.ttl > elapsed_s ? rr.ttl - elapsed_s : 0;
  }
  return aged;
}

void Cache::insert(const DnsName& name, RRType type,
                   std::vector<ResourceRecord> records, net::SimTime now,
                   uint32_t scope) {
  if (records.empty()) return;
  uint32_t ttl = UINT32_MAX;
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl);
  ttl = std::clamp(ttl, min_ttl_s_, max_ttl_s_);
  if (ttl == 0) return;
  CachedRrset entry;
  entry.records = std::move(records);
  entry.inserted = now;
  entry.expires = now + net::SimTime::from_seconds(ttl);
  insert_entry(Key{name, type, scope}, std::move(entry));
}

void Cache::insert_negative(const DnsName& name, RRType type, uint32_t ttl_s,
                            net::SimTime now, uint32_t scope) {
  ttl_s = std::clamp(ttl_s, min_ttl_s_, max_ttl_s_);
  if (ttl_s == 0) return;
  CachedRrset entry;
  entry.negative = true;
  entry.inserted = now;
  entry.expires = now + net::SimTime::from_seconds(ttl_s);
  insert_entry(Key{name, type, scope}, std::move(entry));
}

void Cache::insert_entry(Key key, CachedRrset entry) {
  if (entries_.size() >= max_entries_ && entries_.find(key) == entries_.end()) {
    evict_one(entry.inserted);
  }
  entries_[std::move(key)] = std::move(entry);
}

void Cache::evict_one(net::SimTime now) {
  if (entries_.empty()) return;
  // Prefer an expired entry; otherwise drop the soonest-to-expire one.
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.expires <= now) {
      victim = it;
      break;
    }
    if (it->second.expires < victim->second.expires) victim = it;
  }
  if (victim->second.expires <= now) {
    ++stats_.expired_evictions;
    cache_metrics().expired.inc();
  } else {
    ++stats_.capacity_evictions;
    cache_metrics().capacity.inc();
  }
  entries_.erase(victim);
}

void Cache::clear() { entries_.clear(); }

void Cache::set_ttl_bounds(uint32_t min_ttl_s, uint32_t max_ttl_s) {
  min_ttl_s_ = min_ttl_s;
  max_ttl_s_ = std::max(min_ttl_s, max_ttl_s);
}

}  // namespace curtain::dns
