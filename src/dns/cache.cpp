// lint-hot-path (cache lookup/insert path; see dns/cache.h)
#include "dns/cache.h"

#include <algorithm>

#include "obs/memory.h"
#include "obs/metrics.h"

namespace curtain::dns {
namespace {

// Process-wide totals across every cache instance (recursive resolvers,
// client-facing pool machines, public DNS sites); per-instance numbers
// stay in CacheStats.
struct CacheMetrics {
  obs::Counter& hits = obs::metrics().counter(
      "curtain_dns_cache_hits_total", "DNS cache lookups served from cache");
  obs::Counter& misses = obs::metrics().counter(
      "curtain_dns_cache_misses_total", "DNS cache lookups that missed");
  obs::Counter& expired = obs::metrics().counter(
      "curtain_dns_cache_expired_evictions_total",
      "cache entries evicted on TTL expiry");
  obs::Counter& capacity = obs::metrics().counter(
      "curtain_dns_cache_capacity_evictions_total",
      "cache entries evicted by the size cap");
};

CacheMetrics& cache_metrics() {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
  static thread_local obs::SheafLocal<CacheMetrics> metrics;
  return metrics.get();
}

}  // namespace

std::optional<CacheHit> Cache::lookup(const DnsName& name, RRType type,
                                      net::SimTime now, uint32_t scope) {
  const auto it = entries_.find(Key{name, type, scope});
  if (it == entries_.end()) {
    ++stats_.misses;
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  if (it->second.data.expires <= now) {
    erase_expired_entry(it);
    ++stats_.misses;
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  ++stats_.hits;
  cache_metrics().hits.inc();
  const auto elapsed_s =
      static_cast<uint32_t>((now - it->second.data.inserted).seconds());
  return CacheHit(&it->second.data, elapsed_s);
}

void Cache::insert(const DnsName& name, RRType type,
                   std::vector<ResourceRecord> records, net::SimTime now,
                   uint32_t scope) {
  if (records.empty()) return;
  uint32_t ttl = UINT32_MAX;
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl);
  // Uncacheable before the clamp: a min_ttl floor must not turn an
  // authority's explicit "do not cache" (TTL 0) into a cached entry.
  if (ttl == 0) return;
  ttl = std::clamp(ttl, min_ttl_s_, max_ttl_s_);
  if (ttl == 0) return;  // max_ttl of zero disables caching entirely
  CachedRrset entry;
  entry.records = std::move(records);
  entry.inserted = now;
  entry.expires = now + net::SimTime::from_seconds(ttl);
  insert_entry(Key{name, type, scope}, std::move(entry));
}

void Cache::insert_negative(const DnsName& name, RRType type, uint32_t ttl_s,
                            net::SimTime now, uint32_t scope) {
  if (ttl_s == 0) return;  // same pre-clamp rule as positive entries
  ttl_s = std::clamp(ttl_s, min_ttl_s_, max_ttl_s_);
  if (ttl_s == 0) return;
  CachedRrset entry;
  entry.negative = true;
  entry.inserted = now;
  entry.expires = now + net::SimTime::from_seconds(ttl_s);
  insert_entry(Key{name, type, scope}, std::move(entry));
}

void Cache::insert_entry(Key key, CachedRrset entry) {
  // Eager sweep: every insert drops entries already past their TTL. A
  // dead entry can only ever read as a miss, so reclaiming it here is
  // invisible to lookups — but without the sweep, long campaigns strand
  // megabytes of expired short-TTL rrsets in every device's lane caches
  // (the cache is only consulted again if that device resolves again).
  purge_expired(entry.inserted);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Overwrite: drop the stale index slot; the map node stays put.
    expiry_.erase(it->second.expiry_it);
  } else {
    // The sweep above already cleared dead entries, so anything evicted
    // for capacity now is genuinely live.
    while (entries_.size() >= max_entries_) evict_for_capacity();
    it = entries_.emplace(std::move(key), Entry{}).first;
  }
  it->second.data = std::move(entry);
  it->second.expiry_it = expiry_.emplace(it->second.data.expires, &it->first);
}

void Cache::purge_expired(net::SimTime now) {
  while (!expiry_.empty() && expiry_.begin()->first <= now) {
    erase_expired_entry(entries_.find(*expiry_.begin()->second));
  }
}

void Cache::evict_for_capacity() {
  if (expiry_.empty()) return;
  const auto victim = expiry_.begin();
  entries_.erase(*victim->second);
  expiry_.erase(victim);
  ++stats_.capacity_evictions;
  cache_metrics().capacity.inc();
}

void Cache::erase_expired_entry(EntryMap::iterator it) {
  expiry_.erase(it->second.expiry_it);
  entries_.erase(it);
  ++stats_.expired_evictions;
  cache_metrics().expired.inc();
}

void Cache::clear() {
  entries_.clear();
  expiry_.clear();
}

size_t Cache::approx_bytes() const {
  // Hash-map node ≈ key + entry + bucket/next pointers; the multimap node
  // carries the usual rb-tree overhead. Every node and record vector is a
  // separate allocation, so each is charged obs::kAllocOverheadBytes, and
  // the rrsets' owned heap (name/rdata spill) is counted per record.
  // Commutative integer sum, so the hash iteration order cannot leak into
  // the result.
  constexpr size_t kMapNodeOverhead =
      2 * sizeof(void*) + obs::kAllocOverheadBytes;
  constexpr size_t kTreeNodeOverhead =
      4 * sizeof(void*) + obs::kAllocOverheadBytes;
  size_t bytes =
      entries_.size() *
          (sizeof(Key) + sizeof(Entry) + kMapNodeOverhead) +
      expiry_.size() *
          (sizeof(net::SimTime) + sizeof(const Key*) + kTreeNodeOverhead) +
      entries_.bucket_count() * sizeof(void*);
  for (const auto& [key, entry] : entries_) {  // lint: order-insensitive
    bytes += key.name.approx_heap_bytes();
    if (entry.data.records.capacity() != 0) {
      bytes += entry.data.records.capacity() * sizeof(ResourceRecord) +
               obs::kAllocOverheadBytes;
    }
    for (const auto& rr : entry.data.records) bytes += rr.approx_heap_bytes();
  }
  return bytes;
}

void Cache::set_ttl_bounds(uint32_t min_ttl_s, uint32_t max_ttl_s) {
  min_ttl_s_ = min_ttl_s;
  max_ttl_s_ = std::max(min_ttl_s, max_ttl_s);
}

}  // namespace curtain::dns
