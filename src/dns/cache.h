// TTL-driven DNS cache (RFC 1034 §5.3, RFC 2308 negative caching).
//
// Cache behaviour is load-bearing for the study: CDNs use very short TTLs
// (tens of seconds) so that redirection stays responsive, which makes
// cellular resolvers miss ~20% of even very popular names (paper Fig. 7)
// and puts the full recursion cost in the resolution-time tail (Fig. 5).
//
// Hits are served as borrowed views (CacheHit): the record vector is never
// copied on lookup; TTL aging is computed once per hit and applied lazily
// by the caller. Eviction runs off an expiry-ordered index (multimap, so
// equal expiries keep insertion order and eviction stays deterministic)
// instead of the old O(n) scan per capacity-bound insert. Every insert
// also sweeps entries already past their TTL: expired entries can only
// read as misses, so the sweep is invisible to lookups, and it keeps a
// lane's cache sized by what is *live* — million-device campaigns would
// otherwise strand expired short-TTL rrsets in every touched lane.
//
// lint-hot-path: lookup/insert run on every simulated resolution, so
// curtain_lint holds this file to the hot-alloc rule.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/record.h"
#include "net/time.h"

namespace curtain::dns {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expired_evictions = 0;
  uint64_t capacity_evictions = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// A positive or negative cached entry for one (name, type).
struct CachedRrset {
  std::vector<ResourceRecord> records;  ///< empty for a negative entry
  bool negative = false;                ///< NXDOMAIN / NODATA marker
  net::SimTime inserted;
  net::SimTime expires;
};

/// A borrowed view of a cache hit. Valid until the cache is next mutated
/// for this key (overwrite, expiry, eviction, clear); lookups and inserts
/// of *other* keys do not invalidate it (node-based storage).
///
/// TTL aging (RFC 1035 §3.2.1) is carried as a single elapsed-seconds
/// value instead of a re-written record copy; callers that need aged
/// records materialize them with aged_records()/append_aged().
class CacheHit {
 public:
  bool negative() const { return entry_->negative; }
  /// The stored records with their *original* (un-aged) TTLs.
  const std::vector<ResourceRecord>& records() const {
    return entry_->records;
  }
  /// Seconds the entry has spent in cache at lookup time.
  uint32_t elapsed_s() const { return elapsed_s_; }
  /// Ages one stored TTL by the time spent in cache.
  uint32_t aged_ttl(uint32_t ttl) const {
    return ttl > elapsed_s_ ? ttl - elapsed_s_ : 0;
  }

  /// Appends copies of the records with aged TTLs.
  void append_aged(std::vector<ResourceRecord>& out) const {
    out.reserve(out.size() + entry_->records.size());
    for (const auto& rr : entry_->records) {
      out.push_back(rr);
      out.back().ttl = aged_ttl(rr.ttl);
    }
  }
  /// Materializes an aged copy (the pre-view lookup() return value).
  std::vector<ResourceRecord> aged_records() const {
    std::vector<ResourceRecord> out;
    append_aged(out);
    return out;
  }

 private:
  friend class Cache;
  CacheHit(const CachedRrset* entry, uint32_t elapsed_s)
      : entry_(entry), elapsed_s_(elapsed_s) {}

  const CachedRrset* entry_;
  uint32_t elapsed_s_;
};

class Cache {
 public:
  explicit Cache(size_t max_entries = 100000) : max_entries_(max_entries) {}

  /// Returns a borrowed view of the entry if present and unexpired (see
  /// CacheHit for lifetime and TTL-aging semantics).
  /// `scope` partitions entries by client subnet for ECS-tailored answers
  /// (RFC 7871 §7.3.1); 0 = subnet-independent data.
  std::optional<CacheHit> lookup(const DnsName& name, RRType type,
                                 net::SimTime now, uint32_t scope = 0);

  /// Inserts a positive rrset; entry TTL = min record TTL, clamped to
  /// [min_ttl_, max_ttl_]. Zero-TTL rrsets are uncacheable (RFC 1035
  /// §3.2.1) and are rejected *before* the clamp — a floor must not
  /// launder "do not cache" into a cacheable TTL.
  void insert(const DnsName& name, RRType type,
              std::vector<ResourceRecord> records, net::SimTime now,
              uint32_t scope = 0);

  /// Inserts a negative entry with the given TTL (SOA minimum).
  void insert_negative(const DnsName& name, RRType type, uint32_t ttl_s,
                       net::SimTime now, uint32_t scope = 0);

  void clear();
  size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// Approximate heap bytes held by the entry map, the expiry index and
  /// the cached rrsets. A profiling gauge (obs/memory.h) — counts node
  /// and record-vector capacities, not exact allocator accounting.
  size_t approx_bytes() const;

  /// TTL clamps; exposed so tests can exercise the bounds.
  void set_ttl_bounds(uint32_t min_ttl_s, uint32_t max_ttl_s);

 private:
  struct Key {
    DnsName name;
    RRType type;
    uint32_t scope = 0;  ///< ECS client-subnet partition; 0 = global
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (k.name.hash() * 31 + static_cast<size_t>(k.type)) * 31 + k.scope;
    }
  };

  /// Expiry-ordered eviction index. multimap inserts equal keys at the
  /// upper bound, so entries sharing an expiry stay in insertion order —
  /// eviction order is deterministic by construction. Values point at the
  /// owning map node's key (stable: unordered_map storage is node-based).
  using ExpiryIndex = std::multimap<net::SimTime, const Key*>;
  struct Entry {
    CachedRrset data;
    ExpiryIndex::iterator expiry_it;
  };
  using EntryMap = std::unordered_map<Key, Entry, KeyHash>;

  void insert_entry(Key key, CachedRrset entry);
  /// Removes every entry whose expiry is <= now, charging expired stats.
  void purge_expired(net::SimTime now);
  /// Removes the soonest-to-expire (live) entry, charging capacity stats.
  void evict_for_capacity();
  void erase_expired_entry(EntryMap::iterator it);

  size_t max_entries_;
  uint32_t min_ttl_s_ = 0;
  uint32_t max_ttl_s_ = 86400;
  EntryMap entries_;
  ExpiryIndex expiry_;
  CacheStats stats_;
};

}  // namespace curtain::dns
