// TTL-driven DNS cache (RFC 1034 §5.3, RFC 2308 negative caching).
//
// Cache behaviour is load-bearing for the study: CDNs use very short TTLs
// (tens of seconds) so that redirection stays responsive, which makes
// cellular resolvers miss ~20% of even very popular names (paper Fig. 7)
// and puts the full recursion cost in the resolution-time tail (Fig. 5).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/record.h"
#include "net/time.h"

namespace curtain::dns {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expired_evictions = 0;
  uint64_t capacity_evictions = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// A positive or negative cached entry for one (name, type).
struct CachedRrset {
  std::vector<ResourceRecord> records;  ///< empty for a negative entry
  bool negative = false;                ///< NXDOMAIN / NODATA marker
  net::SimTime inserted;
  net::SimTime expires;
};

class Cache {
 public:
  explicit Cache(size_t max_entries = 100000) : max_entries_(max_entries) {}

  /// Returns the entry if present and unexpired; record TTLs are aged by
  /// the time already spent in cache (RFC 1035 §3.2.1 semantics).
  /// `scope` partitions entries by client subnet for ECS-tailored answers
  /// (RFC 7871 §7.3.1); 0 = subnet-independent data.
  std::optional<CachedRrset> lookup(const DnsName& name, RRType type,
                                    net::SimTime now, uint32_t scope = 0);

  /// Inserts a positive rrset; entry TTL = min record TTL, clamped to
  /// [min_ttl_, max_ttl_]. Zero-TTL rrsets are not cached.
  void insert(const DnsName& name, RRType type,
              std::vector<ResourceRecord> records, net::SimTime now,
              uint32_t scope = 0);

  /// Inserts a negative entry with the given TTL (SOA minimum).
  void insert_negative(const DnsName& name, RRType type, uint32_t ttl_s,
                       net::SimTime now, uint32_t scope = 0);

  void clear();
  size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// TTL clamps; exposed so tests can exercise the bounds.
  void set_ttl_bounds(uint32_t min_ttl_s, uint32_t max_ttl_s);

 private:
  struct Key {
    DnsName name;
    RRType type;
    uint32_t scope = 0;  ///< ECS client-subnet partition; 0 = global
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (k.name.hash() * 31 + static_cast<size_t>(k.type)) * 31 + k.scope;
    }
  };

  void insert_entry(Key key, CachedRrset entry);
  void evict_one(net::SimTime now);

  size_t max_entries_;
  uint32_t min_ttl_s_ = 0;
  uint32_t max_ttl_s_ = 86400;
  std::unordered_map<Key, CachedRrset, KeyHash> entries_;
  CacheStats stats_;
};

}  // namespace curtain::dns
