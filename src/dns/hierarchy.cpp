#include "dns/hierarchy.h"

namespace curtain::dns {
namespace {

// Conventional well-known infrastructure addresses for the simulation.
const net::Ipv4Addr kRootIp{198, 41, 0, 4};  // a.root-servers.net's real IP

net::Ipv4Addr tld_ip(uint32_t index) {
  // 192.5.6.0/24 hosts TLD servers (gtld-servers style).
  return net::Ipv4Addr{192, 5, 6, static_cast<uint8_t>(10 + index)};
}

}  // namespace

DnsHierarchy::DnsHierarchy(HostFactory make_host, ServerRegistry* registry)
    : make_host_(std::move(make_host)), registry_(registry) {
  // The root sits in northern Virginia, as a nod to a.root-servers.net.
  const net::GeoPoint location{38.9, -77.5};
  const net::NodeId node =
      make_host_("root-server", net::NodeKind::kAuthServer, location, kRootIp);
  root_ = std::make_unique<AuthoritativeServer>(DnsName{}, node, kRootIp);
  registry_->add(root_.get());
}

AuthoritativeServer& DnsHierarchy::tld(const std::string& label) {
  const auto it = tlds_.find(label);
  if (it != tlds_.end()) return *it->second;

  const net::Ipv4Addr ip = tld_ip(next_tld_host_++);
  // Spread TLD servers across a few US metros; exact placement is
  // immaterial (resolvers cache TLD NS within one query).
  const auto& metros = net::us_metros();
  const net::GeoPoint location = metros[tlds_.size() % metros.size()].location;
  const net::NodeId node = make_host_("tld-" + label, net::NodeKind::kAuthServer,
                                      location, ip);
  const DnsName apex = *DnsName::parse(label);
  auto server = std::make_unique<AuthoritativeServer>(apex, node, ip);
  registry_->add(server.get());

  const DnsName ns_name = *apex.child("tld-ns");
  root_->delegate(apex, ns_name, ip);

  return *tlds_.emplace(label, std::move(server)).first->second;
}

AuthoritativeServer& DnsHierarchy::create_zone(const DnsName& apex,
                                               const net::GeoPoint& location,
                                               net::Ipv4Addr ip) {
  const net::NodeId node = make_host_("adns-" + apex.to_string(),
                                      net::NodeKind::kAuthServer, location, ip);
  zones_.push_back(std::make_unique<AuthoritativeServer>(apex, node, ip));
  AuthoritativeServer& server = *zones_.back();
  registry_->add(&server);
  delegate_zone(server);
  return server;
}

void DnsHierarchy::delegate_zone(AuthoritativeServer& zone_server) {
  const DnsName& apex = zone_server.apex();
  const std::string tld_label(apex.label(apex.label_count() - 1));
  const DnsName ns_name = *apex.child("ns1");
  tld(tld_label).delegate(apex, ns_name, zone_server.ip());
}

}  // namespace curtain::dns
