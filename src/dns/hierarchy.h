// The DNS delegation hierarchy: a root server, TLD servers created on
// demand, and zone registration that wires NS + glue delegations so a
// RecursiveResolver can iterate root → TLD → zone exactly like production
// resolvers do.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/authoritative.h"
#include "dns/server.h"
#include "net/geo.h"

namespace curtain::dns {

/// World-builder callback: creates a topology node for an infrastructure
/// host (attaching it to the backbone) and returns its id.
using HostFactory = std::function<net::NodeId(
    const std::string& name, net::NodeKind kind, const net::GeoPoint& location,
    net::Ipv4Addr ip)>;

class DnsHierarchy {
 public:
  /// `make_host` is invoked for the root and each TLD server; the registry
  /// is borrowed and receives every server created here.
  DnsHierarchy(HostFactory make_host, ServerRegistry* registry);

  net::Ipv4Addr root_ip() const { return root_->ip(); }
  AuthoritativeServer& root() { return *root_; }

  /// TLD server for `label` ("com", "net", "kr"), created on first use.
  AuthoritativeServer& tld(const std::string& label);

  /// Creates an authoritative server for `apex` at `location` with address
  /// `ip`, and delegates to it from the appropriate TLD. The hierarchy
  /// retains ownership; the returned reference stays valid for its life.
  AuthoritativeServer& create_zone(const DnsName& apex,
                                   const net::GeoPoint& location,
                                   net::Ipv4Addr ip);

  /// Delegates to an externally owned zone server (must already be
  /// registered with the ServerRegistry).
  void delegate_zone(AuthoritativeServer& zone_server);

 private:
  HostFactory make_host_;
  ServerRegistry* registry_;
  std::unique_ptr<AuthoritativeServer> root_;
  std::unordered_map<std::string, std::unique_ptr<AuthoritativeServer>> tlds_;
  std::vector<std::unique_ptr<AuthoritativeServer>> zones_;
  uint32_t next_tld_host_ = 0;
};

}  // namespace curtain::dns
