#include "dns/message.h"

#include <unordered_map>

#include "util/bytes.h"

namespace curtain::dns {
namespace {

using util::ByteReader;
using util::ByteWriter;

constexpr uint16_t kPointerMask = 0xc000;
constexpr size_t kMaxPointerChases = 32;

// --- encoding -------------------------------------------------------------

/// Tracks previously written names so later occurrences compress to
/// two-byte pointers (RFC 1035 §4.1.4). Keys are dotted suffixes.
class NameCompressor {
 public:
  void write_name(ByteWriter& out, const DnsName& name) {
    for (size_t i = 0; i < name.label_count(); ++i) {
      const std::string suffix = suffix_key(name, i);
      const auto it = offsets_.find(suffix);
      if (it != offsets_.end()) {
        out.put_u16(static_cast<uint16_t>(kPointerMask | it->second));
        return;
      }
      // Only offsets expressible in 14 bits may be pointer targets.
      if (out.size() < 0x4000) {
        offsets_.emplace(suffix, static_cast<uint16_t>(out.size()));
      }
      const std::string_view label = name.label(i);
      out.put_u8(static_cast<uint8_t>(label.size()));
      out.put_string(label);
    }
    out.put_u8(0);  // root
  }

 private:
  static std::string suffix_key(const DnsName& name, size_t from) {
    std::string key;
    for (size_t i = from; i < name.label_count(); ++i) {
      key += name.label(i);
      key += '.';
    }
    return key;
  }

  std::unordered_map<std::string, uint16_t> offsets_;
};

void write_rdata(ByteWriter& out, NameCompressor& names, const Rdata& rdata) {
  const size_t len_offset = out.size();
  out.put_u16(0);  // RDLENGTH placeholder
  const size_t rdata_start = out.size();
  struct Visitor {
    ByteWriter& out;
    NameCompressor& names;
    void operator()(const ARecord& r) { out.put_u32(r.address.value()); }
    void operator()(const CnameRecord& r) { names.write_name(out, r.target); }
    void operator()(const NsRecord& r) { names.write_name(out, r.nameserver); }
    void operator()(const PtrRecord& r) { names.write_name(out, r.target); }
    void operator()(const TxtRecord& r) {
      for (const auto& s : r.strings) {
        const size_t n = s.size() > 255 ? 255 : s.size();
        out.put_u8(static_cast<uint8_t>(n));
        out.put_string(std::string_view(s).substr(0, n));
      }
    }
    void operator()(const SoaRecord& r) {
      names.write_name(out, r.mname);
      names.write_name(out, r.rname);
      out.put_u32(r.serial);
      out.put_u32(r.refresh);
      out.put_u32(r.retry);
      out.put_u32(r.expire);
      out.put_u32(r.minimum);
    }
  };
  std::visit(Visitor{out, names}, rdata);
  out.patch_u16(len_offset, static_cast<uint16_t>(out.size() - rdata_start));
}

void write_record(ByteWriter& out, NameCompressor& names,
                  const ResourceRecord& rr) {
  names.write_name(out, rr.name);
  out.put_u16(static_cast<uint16_t>(rr.type()));
  out.put_u16(static_cast<uint16_t>(rr.klass));
  out.put_u32(rr.ttl);
  write_rdata(out, names, rr.rdata);
}

uint16_t encode_flags(const Header& h) {
  uint16_t flags = 0;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<uint16_t>(static_cast<uint8_t>(h.opcode) & 0x0f) << 11;
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  flags |= static_cast<uint16_t>(static_cast<uint8_t>(h.rcode) & 0x0f);
  return flags;
}

// --- decoding -------------------------------------------------------------

/// Reads a possibly-compressed name starting at the reader's cursor,
/// leaving the cursor just past the name's in-place bytes.
std::optional<DnsName> read_name(ByteReader& reader) {
  DnsName name;
  size_t pointer_chases = 0;
  size_t resume_offset = 0;  // set on first pointer
  bool jumped = false;

  while (true) {
    const uint8_t len = reader.get_u8();
    if (!reader.ok()) return std::nullopt;
    if ((len & 0xc0) == 0xc0) {
      const uint8_t low = reader.get_u8();
      if (!reader.ok()) return std::nullopt;
      if (!jumped) {
        resume_offset = reader.offset();
        jumped = true;
      }
      if (++pointer_chases > kMaxPointerChases) return std::nullopt;
      const size_t target = static_cast<size_t>(len & 0x3f) << 8 | low;
      // Pointers must reference earlier data; forward pointers could loop.
      if (target >= reader.offset() - 2) return std::nullopt;
      reader.seek(target);
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // 0x40/0x80 reserved
    if (len == 0) break;
    const std::string_view label = reader.get_view(len);
    if (!reader.ok()) return std::nullopt;
    // append_label enforces the 255-byte wire cap, so an over-long or
    // pointer-inflated name fails here.
    if (!name.append_label(label)) return std::nullopt;
  }
  if (jumped) reader.seek(resume_offset);
  return name;
}

std::optional<Question> read_question(ByteReader& reader) {
  auto name = read_name(reader);
  if (!name) return std::nullopt;
  const uint16_t type = reader.get_u16();
  const uint16_t klass = reader.get_u16();
  if (!reader.ok() || klass != static_cast<uint16_t>(RRClass::kIN)) {
    return std::nullopt;
  }
  return Question{std::move(*name), static_cast<RRType>(type), RRClass::kIN};
}

std::optional<Rdata> read_rdata(ByteReader& reader, RRType type,
                                uint16_t rdlength) {
  const size_t end = reader.offset() + rdlength;
  std::optional<Rdata> rdata;
  switch (type) {
    case RRType::kA: {
      if (rdlength != 4) return std::nullopt;
      rdata = ARecord{net::Ipv4Addr(reader.get_u32())};
      break;
    }
    case RRType::kCNAME: {
      auto target = read_name(reader);
      if (!target) return std::nullopt;
      rdata = CnameRecord{std::move(*target)};
      break;
    }
    case RRType::kNS: {
      auto target = read_name(reader);
      if (!target) return std::nullopt;
      rdata = NsRecord{std::move(*target)};
      break;
    }
    case RRType::kPTR: {
      auto target = read_name(reader);
      if (!target) return std::nullopt;
      rdata = PtrRecord{std::move(*target)};
      break;
    }
    case RRType::kTXT: {
      TxtRecord txt;
      while (reader.ok() && reader.offset() < end) {
        const uint8_t n = reader.get_u8();
        if (reader.offset() + n > end) return std::nullopt;
        txt.strings.push_back(reader.get_string(n));
      }
      rdata = std::move(txt);
      break;
    }
    case RRType::kSOA: {
      SoaRecord soa;
      auto mname = read_name(reader);
      auto rname = read_name(reader);
      if (!mname || !rname) return std::nullopt;
      soa.mname = std::move(*mname);
      soa.rname = std::move(*rname);
      soa.serial = reader.get_u32();
      soa.refresh = reader.get_u32();
      soa.retry = reader.get_u32();
      soa.expire = reader.get_u32();
      soa.minimum = reader.get_u32();
      rdata = std::move(soa);
      break;
    }
  }
  if (!rdata || !reader.ok() || reader.offset() != end) return std::nullopt;
  return rdata;
}

constexpr uint16_t kOptType = 41;       // OPT pseudo-RR (RFC 6891)
constexpr uint16_t kEcsOptionCode = 8;   // CLIENT-SUBNET (RFC 7871)
constexpr uint16_t kEdnsUdpPayload = 4096;

/// Parses the OPT pseudo-RR's RDATA, extracting a client-subnet option.
std::optional<EdnsClientSubnet> read_opt_rdata(ByteReader& reader,
                                               uint16_t rdlength) {
  const size_t end = reader.offset() + rdlength;
  std::optional<EdnsClientSubnet> ecs;
  while (reader.ok() && reader.offset() + 4 <= end) {
    const uint16_t code = reader.get_u16();
    const uint16_t length = reader.get_u16();
    if (reader.offset() + length > end) return std::nullopt;
    if (code == kEcsOptionCode) {
      if (length < 4) return std::nullopt;
      const uint16_t family = reader.get_u16();
      EdnsClientSubnet option;
      option.source_prefix_len = reader.get_u8();
      option.scope_prefix_len = reader.get_u8();
      const size_t addr_bytes = length - 4;
      if (family != 1 || addr_bytes > 4 ||
          addr_bytes != (option.source_prefix_len + 7u) / 8u) {
        return std::nullopt;
      }
      uint32_t addr = 0;
      for (size_t i = 0; i < addr_bytes; ++i) {
        addr |= static_cast<uint32_t>(reader.get_u8()) << (8 * (3 - i));
      }
      option.address = net::Ipv4Addr(addr);
      ecs = option;
    } else {
      reader.get_bytes(length);  // skip unknown option
    }
  }
  if (!reader.ok() || reader.offset() != end) return std::nullopt;
  return ecs ? ecs : std::optional<EdnsClientSubnet>{};
}

/// Reads one record. Ordinary records are appended to `section`; an OPT
/// pseudo-RR is folded into `message.ecs` instead.
bool read_record_into(ByteReader& reader, Message& message,
                      std::vector<ResourceRecord>& section) {
  auto name = read_name(reader);
  if (!name) return false;
  const uint16_t type = reader.get_u16();
  if (!reader.ok()) return false;

  if (type == kOptType) {
    if (!name->is_root()) return false;       // RFC 6891: owner is root
    reader.get_u16();                         // requestor payload size
    reader.get_u32();                         // extended rcode/flags
    const uint16_t rdlength = reader.get_u16();
    if (!reader.ok() || reader.remaining() < rdlength) return false;
    // A second OPT in one message is a protocol violation.
    const auto option = read_opt_rdata(reader, rdlength);
    if (!reader.ok()) return false;
    if (option) {
      if (message.ecs) return false;
      message.ecs = option;
    }
    return true;
  }

  const uint16_t klass = reader.get_u16();
  const uint32_t ttl = reader.get_u32();
  const uint16_t rdlength = reader.get_u16();
  if (!reader.ok() || klass != static_cast<uint16_t>(RRClass::kIN)) {
    return false;
  }
  if (reader.remaining() < rdlength) return false;
  auto rdata = read_rdata(reader, static_cast<RRType>(type), rdlength);
  if (!rdata) return false;
  section.push_back(
      ResourceRecord{std::move(*name), RRClass::kIN, ttl, std::move(*rdata)});
  return true;
}

/// Writes the OPT pseudo-RR carrying a client-subnet option.
void write_opt_record(ByteWriter& out, const EdnsClientSubnet& ecs) {
  out.put_u8(0);  // root owner name
  out.put_u16(kOptType);
  out.put_u16(kEdnsUdpPayload);
  out.put_u32(0);  // extended rcode/flags
  const size_t addr_bytes = (ecs.source_prefix_len + 7u) / 8u;
  out.put_u16(static_cast<uint16_t>(4 + 4 + addr_bytes));  // RDLENGTH
  out.put_u16(kEcsOptionCode);
  out.put_u16(static_cast<uint16_t>(4 + addr_bytes));
  out.put_u16(1);  // family: IPv4
  out.put_u8(ecs.source_prefix_len);
  out.put_u8(ecs.scope_prefix_len);
  const uint32_t masked =
      ecs.source_prefix_len == 0
          ? 0
          : ecs.address.value() & (0xffffffffu << (32 - ecs.source_prefix_len));
  for (size_t i = 0; i < addr_bytes; ++i) {
    out.put_u8(static_cast<uint8_t>(masked >> (8 * (3 - i))));
  }
}

}  // namespace

Message Message::query(uint16_t id, const DnsName& name, RRType type) {
  Message m;
  m.header.id = id;
  m.header.rd = true;
  m.questions.push_back(Question{name, type, RRClass::kIN});
  return m;
}

Message Message::make_response() const {
  Message m;
  m.header = header;
  m.header.qr = true;
  m.questions = questions;
  return m;
}

const ResourceRecord* Message::first_answer(RRType type) const {
  for (const auto& rr : answers) {
    if (rr.type() == type) return &rr;
  }
  return nullptr;
}

std::vector<net::Ipv4Addr> Message::answer_addresses() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARecord>(&rr.rdata)) out.push_back(a->address);
  }
  return out;
}

std::vector<uint8_t> encode(const Message& message) {
  ByteWriter out;
  NameCompressor names;
  out.put_u16(message.header.id);
  out.put_u16(encode_flags(message.header));
  out.put_u16(static_cast<uint16_t>(message.questions.size()));
  out.put_u16(static_cast<uint16_t>(message.answers.size()));
  out.put_u16(static_cast<uint16_t>(message.authorities.size()));
  out.put_u16(static_cast<uint16_t>(message.additionals.size() +
                                    (message.ecs ? 1 : 0)));
  for (const auto& q : message.questions) {
    names.write_name(out, q.name);
    out.put_u16(static_cast<uint16_t>(q.type));
    out.put_u16(static_cast<uint16_t>(q.klass));
  }
  for (const auto& rr : message.answers) write_record(out, names, rr);
  for (const auto& rr : message.authorities) write_record(out, names, rr);
  for (const auto& rr : message.additionals) write_record(out, names, rr);
  if (message.ecs) write_opt_record(out, *message.ecs);
  return out.take();
}

std::optional<Message> decode(std::span<const uint8_t> wire) {
  ByteReader reader(wire);
  Message m;
  m.header.id = reader.get_u16();
  const uint16_t flags = reader.get_u16();
  const uint16_t qdcount = reader.get_u16();
  const uint16_t ancount = reader.get_u16();
  const uint16_t nscount = reader.get_u16();
  const uint16_t arcount = reader.get_u16();
  if (!reader.ok()) return std::nullopt;

  m.header.qr = (flags & 0x8000) != 0;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0x0f);
  m.header.aa = (flags & 0x0400) != 0;
  m.header.tc = (flags & 0x0200) != 0;
  m.header.rd = (flags & 0x0100) != 0;
  m.header.ra = (flags & 0x0080) != 0;
  m.header.rcode = static_cast<Rcode>(flags & 0x0f);

  for (uint16_t i = 0; i < qdcount; ++i) {
    auto q = read_question(reader);
    if (!q) return std::nullopt;
    m.questions.push_back(std::move(*q));
  }
  const auto read_section = [&](uint16_t count,
                                std::vector<ResourceRecord>& section) {
    for (uint16_t i = 0; i < count; ++i) {
      if (!read_record_into(reader, m, section)) return false;
    }
    return true;
  };
  if (!read_section(ancount, m.answers)) return std::nullopt;
  if (!read_section(nscount, m.authorities)) return std::nullopt;
  if (!read_section(arcount, m.additionals)) return std::nullopt;
  return m;
}

}  // namespace curtain::dns
