// DNS messages and the RFC 1035 wire codec (§4.1), including name
// compression (§4.1.4).
//
// Every resolution in the simulator round-trips through this codec — the
// stub encodes a real query packet, resolvers decode it, build a response
// and encode it back — so the codec is exercised by all 8M+ resolutions of
// a full campaign, not just by unit tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/record.h"

namespace curtain::dns {

enum class Opcode : uint8_t { kQuery = 0, kStatus = 2 };

enum class Rcode : uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct Header {
  uint16_t id = 0;
  bool qr = false;  ///< response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = true;   ///< recursion desired
  bool ra = false;  ///< recursion available
  Rcode rcode = Rcode::kNoError;

  bool operator==(const Header&) const = default;
};

struct Question {
  DnsName name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;

  bool operator==(const Question&) const = default;
};

/// EDNS Client Subnet (RFC 7871): lets a recursive resolver disclose the
/// *client's* network to authoritative servers, so replica selection can
/// key on the client rather than on the resolver. This is the remedy the
/// paper's related work (Otto et al., IMC'12) anticipates; Google Public
/// DNS deployed it for opted-in CDNs in the study's era.
struct EdnsClientSubnet {
  net::Ipv4Addr address;       ///< client address, truncated to the prefix
  uint8_t source_prefix_len = 24;
  uint8_t scope_prefix_len = 0;  ///< set by the authority in responses

  bool operator==(const EdnsClientSubnet&) const = default;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
  /// EDNS(0) client-subnet option, carried in an OPT pseudo-RR on the
  /// wire (never stored in `additionals`).
  std::optional<EdnsClientSubnet> ecs;

  /// A recursion-desired query for (name, type).
  static Message query(uint16_t id, const DnsName& name, RRType type);

  /// Response skeleton echoing this query's id and question.
  Message make_response() const;

  /// First answer of the given type, or nullptr.
  const ResourceRecord* first_answer(RRType type) const;

  /// All A-record addresses in the answer section, in order.
  std::vector<net::Ipv4Addr> answer_addresses() const;

  bool operator==(const Message&) const = default;
};

/// Encodes to wire format with name compression. Counts are derived from
/// the section vectors.
std::vector<uint8_t> encode(const Message& message);

/// Decodes a wire-format message. nullopt on truncation, malformed labels,
/// forward/looping compression pointers, or unknown RR types.
std::optional<Message> decode(std::span<const uint8_t> wire);

}  // namespace curtain::dns
