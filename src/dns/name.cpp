// lint-hot-path (cache key construction/hashing; see dns/name.h)
#include "dns/name.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace curtain::dns {
namespace {

constexpr size_t kMaxLabel = 63;
constexpr size_t kMaxWire = 255;

}  // namespace

std::optional<DnsName> DnsName::parse(std::string_view text) {
  text = util::trim(text);
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  DnsName name;
  if (text.empty()) return name;  // root
  // For n labels the wire form is label bytes + n length octets + root =
  // text.size() + 2 (the n-1 dots become length octets); reject oversized
  // input before touching the buffer.
  if (text.size() + 2 > kMaxWire) return std::nullopt;
  name.bytes_.reserve(text.size());
  size_t start = 0;
  for (;;) {
    const size_t dot = text.find('.', start);
    const size_t len =
        dot == std::string_view::npos ? std::string_view::npos : dot - start;
    if (!name.append_label(text.substr(start, len))) return std::nullopt;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return name;
}

std::optional<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  DnsName name;
  for (const auto& label : labels) {
    if (!name.append_label(label)) return std::nullopt;
  }
  return name;
}

bool DnsName::append_label(std::string_view label) {
  if (label.empty() || label.size() > kMaxLabel) return false;
  // +1 length octet for this label, +1 for the root terminator.
  if (bytes_.size() + ends_.size() + label.size() + 2 > kMaxWire) return false;
  for (const char c : label) {
    bytes_.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  ends_.push_back(static_cast<uint8_t>(bytes_.size()));
  return true;
}

std::vector<std::string> DnsName::labels() const {
  std::vector<std::string> out;
  out.reserve(ends_.size());
  for (size_t i = 0; i < ends_.size(); ++i) out.emplace_back(label(i));
  return out;
}

std::string DnsName::to_string() const {
  std::string out;
  if (is_root()) return out;
  out.reserve(bytes_.size() + ends_.size() - 1);
  for (size_t i = 0; i < ends_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out.append(label(i));
  }
  return out;
}

bool DnsName::is_within(const DnsName& ancestor) const {
  const size_t count = ancestor.ends_.size();
  if (count == 0) return true;  // everything is within the root
  if (count > ends_.size()) return false;
  const size_t label_off = ends_.size() - count;
  const size_t byte_off = label_off == 0 ? 0 : ends_[label_off - 1];
  // The suffix must match byte-for-byte AND break at the same label
  // boundaries ("ab.c" is not within "a.bc" despite equal bytes).
  if (bytes_.size() - byte_off != ancestor.bytes_.size()) return false;
  for (size_t i = 0; i < count; ++i) {
    if (static_cast<size_t>(ends_[label_off + i]) - byte_off !=
        static_cast<size_t>(ancestor.ends_[i])) {
      return false;
    }
  }
  return std::string_view(bytes_).substr(byte_off) == ancestor.bytes_;
}

DnsName DnsName::parent() const {
  DnsName out;
  if (ends_.size() <= 1) return out;
  const uint8_t cut = ends_[0];
  out.bytes_ = bytes_.substr(cut);
  for (size_t i = 1; i < ends_.size(); ++i) {
    out.ends_.push_back(static_cast<uint8_t>(ends_[i] - cut));
  }
  return out;
}

std::optional<DnsName> DnsName::child(std::string_view label) const {
  // Validate before building: append_label would otherwise push offsets
  // for a name we are about to reject.
  if (label.empty() || label.size() > kMaxLabel) return std::nullopt;
  if (wire_length() + 1 + label.size() > kMaxWire) return std::nullopt;
  DnsName out;
  out.bytes_.reserve(label.size() + bytes_.size());
  out.append_label(label);
  out.bytes_.append(bytes_);
  const auto shift = static_cast<uint8_t>(label.size());
  for (const uint8_t end : ends_) {
    out.ends_.push_back(static_cast<uint8_t>(end + shift));
  }
  return out;
}

bool DnsName::operator<(const DnsName& other) const {
  const size_t n = std::min(ends_.size(), other.ends_.size());
  for (size_t i = 0; i < n; ++i) {
    const int cmp = label(i).compare(other.label(i));
    if (cmp != 0) return cmp < 0;
  }
  return ends_.size() < other.ends_.size();
}

size_t DnsName::hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  size_t begin = 0;
  for (const uint8_t end : ends_) {
    for (size_t i = begin; i < end; ++i) {
      h ^= static_cast<uint8_t>(bytes_[i]);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // label separator so {"ab","c"} != {"a","bc"}
    h *= 0x100000001b3ULL;
    begin = end;
  }
  return h;
}

}  // namespace curtain::dns
