#include "dns/name.h"

#include "util/strings.h"

namespace curtain::dns {
namespace {

constexpr size_t kMaxLabel = 63;
constexpr size_t kMaxWire = 255;

bool valid_label(std::string_view label) {
  return !label.empty() && label.size() <= kMaxLabel;
}

}  // namespace

std::optional<DnsName> DnsName::parse(std::string_view text) {
  text = util::trim(text);
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return DnsName{};  // root
  std::vector<std::string> labels;
  for (auto& label : util::split(text, '.')) {
    if (!valid_label(label)) return std::nullopt;
    labels.push_back(util::to_lower(label));
  }
  return from_labels(std::move(labels));
}

std::optional<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  size_t wire = 1;  // root terminator
  for (auto& label : labels) {
    if (!valid_label(label)) return std::nullopt;
    label = util::to_lower(label);
    wire += 1 + label.size();
  }
  if (wire > kMaxWire) return std::nullopt;
  DnsName name;
  name.labels_ = std::move(labels);
  return name;
}

size_t DnsName::wire_length() const {
  size_t wire = 1;
  for (const auto& label : labels_) wire += 1 + label.size();
  return wire;
}

std::string DnsName::to_string() const {
  return util::join(labels_, ".");
}

bool DnsName::is_within(const DnsName& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const size_t offset = labels_.size() - ancestor.labels_.size();
  for (size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (labels_[offset + i] != ancestor.labels_[i]) return false;
  }
  return true;
}

DnsName DnsName::parent() const {
  DnsName out;
  if (labels_.size() > 1) {
    out.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return out;
}

std::optional<DnsName> DnsName::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

size_t DnsName::hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const auto& label : labels_) {
    for (const char c : label) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // label separator so {"ab","c"} != {"a","bc"}
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace curtain::dns
