// DNS domain names (RFC 1035 §2.3 / §3.1).
//
// A name is a sequence of labels; comparisons are case-insensitive and
// names are stored lowercased. Limits enforced: labels 1..63 octets, whole
// name <= 255 octets in wire form.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace curtain::dns {

class DnsName {
 public:
  DnsName() = default;  ///< the root name (empty label sequence)

  /// Parses presentation format ("www.example.com", trailing dot optional,
  /// lowercased on input). nullopt if any label is empty/oversized or the
  /// total wire length would exceed 255.
  static std::optional<DnsName> parse(std::string_view text);

  /// Builds from pre-validated labels (asserts the same limits).
  static std::optional<DnsName> from_labels(std::vector<std::string> labels);

  const std::vector<std::string>& labels() const { return labels_; }
  bool is_root() const { return labels_.empty(); }
  size_t label_count() const { return labels_.size(); }

  /// Wire-format length: one length octet per label + label bytes + root.
  size_t wire_length() const;

  /// Presentation format without trailing dot ("" for the root).
  std::string to_string() const;

  /// True if this name equals `ancestor` or is beneath it
  /// ("a.b.example.com" is within "example.com"; everything is within root).
  bool is_within(const DnsName& ancestor) const;

  /// The name minus its leftmost label ("www.example.com" -> "example.com").
  /// Returns the root when called on a single-label name.
  DnsName parent() const;

  /// A child name: `label` prepended ("cdn" + "example.com" ->
  /// "cdn.example.com"). nullopt if limits would be violated.
  std::optional<DnsName> child(std::string_view label) const;

  bool operator==(const DnsName& other) const { return labels_ == other.labels_; }
  /// Lexicographic order over lowercased labels; suitable for map keys.
  bool operator<(const DnsName& other) const { return labels_ < other.labels_; }

  /// Hash compatible with operator== (labels are canonically lowercased).
  size_t hash() const;

 private:
  std::vector<std::string> labels_;  // each already lowercased
};

struct DnsNameHash {
  size_t operator()(const DnsName& name) const { return name.hash(); }
};

}  // namespace curtain::dns
