// DNS domain names (RFC 1035 §2.3 / §3.1).
//
// A name is a sequence of labels; comparisons are case-insensitive and
// names are stored lowercased. Limits enforced: labels 1..63 octets, whole
// name <= 255 octets in wire form.
//
// Storage is flat: one contiguous byte buffer holding the concatenated
// labels plus a small inline vector of label end offsets. Typical names
// ("www.example.com" is 13 label bytes) fit entirely in the std::string
// small-buffer and the inline offset array, so constructing, copying and
// hashing a name — the DNS cache's key path — touches no heap at all,
// where the old std::vector<std::string> cost one allocation per label.
//
// lint-hot-path: names are the DNS cache's key type, so curtain_lint holds
// this file to the hot-alloc rule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/memory.h"
#include "util/smallvec.h"

namespace curtain::dns {

class DnsName {
 public:
  DnsName() = default;  ///< the root name (empty label sequence)

  /// Parses presentation format ("www.example.com", trailing dot optional,
  /// lowercased on input). nullopt if any label is empty/oversized or the
  /// total wire length would exceed 255.
  static std::optional<DnsName> parse(std::string_view text);

  /// Builds from pre-validated labels (asserts the same limits).
  static std::optional<DnsName> from_labels(std::vector<std::string> labels);

  /// Validates and appends one label at the rightmost position,
  /// lowercasing it ("www" then "example" then "com" builds
  /// "www.example.com"); false if the label or the resulting wire length
  /// would break the RFC limits. This is the allocation-light way to
  /// build a name incrementally (the wire decoder's hot path).
  bool append_label(std::string_view label);

  /// The i-th label (0 = leftmost), viewing the name's own buffer.
  std::string_view label(size_t i) const {
    const size_t begin = i == 0 ? 0 : ends_[i - 1];
    return std::string_view(bytes_).substr(begin, ends_[i] - begin);
  }
  /// Materialized copy of the labels (prefer label()/label_count() on hot
  /// paths; this exists for call sites that want owned strings).
  std::vector<std::string> labels() const;

  bool is_root() const { return ends_.empty(); }
  size_t label_count() const { return ends_.size(); }

  /// Wire-format length: one length octet per label + label bytes + root.
  size_t wire_length() const { return 1 + ends_.size() + bytes_.size(); }

  /// Presentation format without trailing dot ("" for the root).
  std::string to_string() const;

  /// True if this name equals `ancestor` or is beneath it
  /// ("a.b.example.com" is within "example.com"; everything is within root).
  bool is_within(const DnsName& ancestor) const;

  /// The name minus its leftmost label ("www.example.com" -> "example.com").
  /// Returns the root when called on a single-label name.
  DnsName parent() const;

  /// A child name: `label` prepended ("cdn" + "example.com" ->
  /// "cdn.example.com"). nullopt if limits would be violated.
  std::optional<DnsName> child(std::string_view label) const;

  bool operator==(const DnsName& other) const {
    return ends_ == other.ends_ && bytes_ == other.bytes_;
  }
  /// Lexicographic order over lowercased labels; suitable for map keys.
  /// Label-wise, not flat-byte-wise: {"ab","c"} and {"a","bc"} order by
  /// their first labels, exactly as the old vector<string> compare did
  /// (map iteration order feeds the exported datasets).
  bool operator<(const DnsName& other) const;

  /// Hash compatible with operator== (labels are canonically lowercased).
  size_t hash() const;

  /// Heap bytes this name owns beyond its object footprint: the label
  /// buffer once it spills the std::string small-buffer and the offset
  /// array once it spills the inline slots, each charged
  /// obs::kAllocOverheadBytes. Zero for typical short names — a profiling
  /// gauge (obs/memory.h), not an exact audit.
  size_t approx_heap_bytes() const {
    size_t heap = 0;
    if (bytes_.capacity() > std::string().capacity())
      heap += bytes_.capacity() + 1 + obs::kAllocOverheadBytes;
    if (!ends_.inlined())
      heap += ends_.capacity() * sizeof(uint8_t) + obs::kAllocOverheadBytes;
    return heap;
  }

 private:
  std::string bytes_;  ///< concatenated lowercased labels, no separators
  /// End offset of each label in bytes_. Wire max 255 keeps every offset
  /// <= 253, so uint8_t is exact; 8 inline slots cover real hostnames.
  util::SmallVec<uint8_t, 8> ends_;
};

struct DnsNameHash {
  size_t operator()(const DnsName& name) const { return name.hash(); }
};

}  // namespace curtain::dns
