#include "dns/record.h"

#include "util/strings.h"

namespace curtain::dns {

const char* rrtype_name(RRType type) {
  switch (type) {
    case RRType::kA: return "A";
    case RRType::kNS: return "NS";
    case RRType::kCNAME: return "CNAME";
    case RRType::kSOA: return "SOA";
    case RRType::kPTR: return "PTR";
    case RRType::kTXT: return "TXT";
  }
  return "TYPE?";
}

RRType rdata_type(const Rdata& rdata) {
  struct Visitor {
    RRType operator()(const ARecord&) const { return RRType::kA; }
    RRType operator()(const CnameRecord&) const { return RRType::kCNAME; }
    RRType operator()(const NsRecord&) const { return RRType::kNS; }
    RRType operator()(const PtrRecord&) const { return RRType::kPTR; }
    RRType operator()(const TxtRecord&) const { return RRType::kTXT; }
    RRType operator()(const SoaRecord&) const { return RRType::kSOA; }
  };
  return std::visit(Visitor{}, rdata);
}

ResourceRecord ResourceRecord::a(const DnsName& name, net::Ipv4Addr addr,
                                 uint32_t ttl) {
  return ResourceRecord{name, RRClass::kIN, ttl, ARecord{addr}};
}

ResourceRecord ResourceRecord::cname(const DnsName& name, const DnsName& target,
                                     uint32_t ttl) {
  return ResourceRecord{name, RRClass::kIN, ttl, CnameRecord{target}};
}

ResourceRecord ResourceRecord::ns(const DnsName& zone, const DnsName& server,
                                  uint32_t ttl) {
  return ResourceRecord{zone, RRClass::kIN, ttl, NsRecord{server}};
}

ResourceRecord ResourceRecord::txt(const DnsName& name,
                                   std::vector<std::string> strings,
                                   uint32_t ttl) {
  return ResourceRecord{name, RRClass::kIN, ttl, TxtRecord{std::move(strings)}};
}

ResourceRecord ResourceRecord::soa(const DnsName& zone, SoaRecord soa,
                                   uint32_t ttl) {
  return ResourceRecord{zone, RRClass::kIN, ttl, std::move(soa)};
}

size_t ResourceRecord::approx_heap_bytes() const {
  struct Visitor {
    size_t operator()(const ARecord&) const { return 0; }
    size_t operator()(const CnameRecord& r) const {
      return r.target.approx_heap_bytes();
    }
    size_t operator()(const NsRecord& r) const {
      return r.nameserver.approx_heap_bytes();
    }
    size_t operator()(const PtrRecord& r) const {
      return r.target.approx_heap_bytes();
    }
    size_t operator()(const TxtRecord& r) const {
      size_t bytes = r.strings.capacity() == 0
                         ? 0
                         : r.strings.capacity() * sizeof(std::string) +
                               obs::kAllocOverheadBytes;
      for (const auto& s : r.strings) {
        if (s.capacity() > std::string().capacity())
          bytes += s.capacity() + 1 + obs::kAllocOverheadBytes;
      }
      return bytes;
    }
    size_t operator()(const SoaRecord& r) const {
      return r.mname.approx_heap_bytes() + r.rname.approx_heap_bytes();
    }
  };
  return name.approx_heap_bytes() + std::visit(Visitor{}, rdata);
}

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " IN " +
                    rrtype_name(type()) + " ";
  struct Visitor {
    std::string operator()(const ARecord& r) const { return r.address.to_string(); }
    std::string operator()(const CnameRecord& r) const { return r.target.to_string(); }
    std::string operator()(const NsRecord& r) const { return r.nameserver.to_string(); }
    std::string operator()(const PtrRecord& r) const { return r.target.to_string(); }
    std::string operator()(const TxtRecord& r) const {
      std::string s;
      for (size_t i = 0; i < r.strings.size(); ++i) {
        if (i != 0) s += ' ';
        s += '"' + r.strings[i] + '"';
      }
      return s;
    }
    std::string operator()(const SoaRecord& r) const {
      return r.mname.to_string() + " " + r.rname.to_string() + " " +
             std::to_string(r.serial);
    }
  };
  return out + std::visit(Visitor{}, rdata);
}

}  // namespace curtain::dns
