// Resource records (RFC 1035 §3.2, §3.3, §3.4).
//
// RDATA is a closed variant over the types the study exercises: A (replica
// addresses), CNAME (CDN indirection — the paper selected domains *because*
// they resolve through CNAMEs), NS/SOA (delegation and zone metadata) and
// TXT (the resolver-identification ADNS answers TXT + A).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "net/ipv4.h"

namespace curtain::dns {

enum class RRType : uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kTXT = 16,
};

enum class RRClass : uint16_t { kIN = 1 };

const char* rrtype_name(RRType type);

struct ARecord {
  net::Ipv4Addr address;
  bool operator==(const ARecord&) const = default;
};

struct CnameRecord {
  DnsName target;
  bool operator==(const CnameRecord&) const = default;
};

struct NsRecord {
  DnsName nameserver;
  bool operator==(const NsRecord&) const = default;
};

struct PtrRecord {
  DnsName target;
  bool operator==(const PtrRecord&) const = default;
};

struct TxtRecord {
  // RFC 1035: one or more <character-string>s, each up to 255 octets.
  std::vector<std::string> strings;
  bool operator==(const TxtRecord&) const = default;
};

struct SoaRecord {
  DnsName mname;   ///< primary nameserver
  DnsName rname;   ///< responsible mailbox
  uint32_t serial = 0;
  uint32_t refresh = 0;
  uint32_t retry = 0;
  uint32_t expire = 0;
  uint32_t minimum = 0;  ///< negative-caching TTL (RFC 2308)
  bool operator==(const SoaRecord&) const = default;
};

using Rdata = std::variant<ARecord, CnameRecord, NsRecord, PtrRecord, TxtRecord,
                           SoaRecord>;

/// The RRType implied by an Rdata alternative.
RRType rdata_type(const Rdata& rdata);

struct ResourceRecord {
  DnsName name;
  RRClass klass = RRClass::kIN;
  uint32_t ttl = 0;  ///< seconds
  Rdata rdata = ARecord{};

  RRType type() const { return rdata_type(rdata); }

  static ResourceRecord a(const DnsName& name, net::Ipv4Addr addr, uint32_t ttl);
  static ResourceRecord cname(const DnsName& name, const DnsName& target,
                              uint32_t ttl);
  static ResourceRecord ns(const DnsName& zone, const DnsName& server,
                           uint32_t ttl);
  static ResourceRecord txt(const DnsName& name, std::vector<std::string> strings,
                            uint32_t ttl);
  static ResourceRecord soa(const DnsName& zone, SoaRecord soa, uint32_t ttl);

  bool operator==(const ResourceRecord&) const = default;

  /// Heap bytes the record owns beyond sizeof(ResourceRecord): name and
  /// rdata-name spill, TXT string storage. A profiling gauge
  /// (obs/memory.h) for cache accounting, not an exact audit.
  size_t approx_heap_bytes() const;

  /// Human-readable zone-file-ish line for logs and tests.
  std::string to_string() const;
};

}  // namespace curtain::dns
