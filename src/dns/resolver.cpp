#include "dns/resolver.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace curtain::dns {
namespace {

constexpr size_t kMaxCnameChase = 8;
constexpr size_t kMaxReferrals = 16;
// Cost charged for a query that gets no reply before the client retries.
constexpr double kTimeoutMs = 1000.0;

struct ResolverMetrics {
  obs::Counter& queries = obs::metrics().counter(
      "curtain_dns_queries_total", "resolutions started by recursive resolvers");
  obs::Counter& upstream = obs::metrics().counter(
      "curtain_dns_upstream_queries_total",
      "queries sent to upstream authoritative servers");
  obs::Counter& timeouts = obs::metrics().counter(
      "curtain_dns_upstream_timeouts_total",
      "upstream queries charged the timeout cost (unknown/unreachable server)");
  obs::Counter& nxdomain = obs::metrics().counter(
      "curtain_dns_nxdomain_total", "resolutions ending NXDOMAIN");
  obs::Counter& servfail = obs::metrics().counter(
      "curtain_dns_servfail_total", "resolutions ending SERVFAIL");
  obs::Counter& warm_hits = obs::metrics().counter(
      "curtain_dns_warm_hits_total",
      "cache misses converted to hits by the background-load model");
  obs::Histogram& upstream_ms = obs::metrics().histogram(
      "curtain_dns_recursion_ms", obs::Histogram::latency_ms_buckets(),
      "upstream time spent per recursive resolution");
};

ResolverMetrics& resolver_metrics() {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
  static thread_local obs::SheafLocal<ResolverMetrics> metrics;
  return metrics.get();
}

}  // namespace

std::vector<net::Ipv4Addr> ResolutionResult::addresses() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARecord>(&rr.rdata)) out.push_back(a->address);
  }
  return out;
}

RecursiveResolver::RecursiveResolver(std::string name, net::NodeId node,
                                     net::Ipv4Addr ip,
                                     const net::Topology* topology,
                                     const ServerRegistry* registry,
                                     net::Ipv4Addr root_ip)
    : name_(std::move(name)),
      node_(node),
      ip_(ip),
      topology_(topology),
      registry_(registry),
      root_ip_(root_ip) {
  set_state_lanes(1);
}

void RecursiveResolver::set_state_lanes(size_t lanes) { lanes_.reset(lanes); }

obs::LaneMemory RecursiveResolver::approx_lane_bytes() const {
  obs::LaneMemory memory;
  memory.state_bytes += lanes_.approx_container_bytes();
  // Commutative integer sum: hash order cannot leak into the result.
  for (const auto& [lane, state] : lanes_) {  // lint: order-insensitive
    memory.cache_bytes += state.cache.approx_bytes();
  }
  return memory;
}

RecursiveResolver::LaneState& RecursiveResolver::lane_state() const {
  return lanes_[static_cast<size_t>(net::current_state_lane())];
}

ResolutionResult RecursiveResolver::resolve(const DnsName& name, RRType type,
                                            net::SimTime now, net::Rng& rng,
                                            net::Ipv4Addr ecs_client) {
  LaneState& state = lane_state();
  ResolutionResult result;
  result.rcode = Rcode::kNoError;
  if (!state.warming) resolver_metrics().queries.inc();
  obs::ScopedSpan span("recursion", now.millis());
  const uint32_t scope = (ecs_enabled_ && !ecs_client.is_unspecified())
                             ? ecs_client.slash24().value()
                             : 0;
  DnsName qname = name;
  bool resolved = false;
  for (size_t chase = 0; chase <= kMaxCnameChase && !resolved; ++chase) {
    const auto next =
        resolve_step(qname, type, now, rng, ecs_client, scope, result);
    if (!next) resolved = true;
    else qname = *next;
  }
  if (!resolved) result.rcode = Rcode::kServFail;  // CNAME chain too long
  span.finish(now.millis() + result.upstream_ms);
  if (!state.warming) {
    resolver_metrics().upstream_ms.observe(result.upstream_ms);
    if (result.rcode == Rcode::kNxDomain) {
      resolver_metrics().nxdomain.inc();
    } else if (result.rcode == Rcode::kServFail) {
      resolver_metrics().servfail.inc();
    }
  }
  return result;
}

std::optional<DnsName> RecursiveResolver::resolve_step(
    const DnsName& qname, RRType type, net::SimTime now, net::Rng& rng,
    net::Ipv4Addr ecs_client, uint32_t scope, ResolutionResult& result) {
  LaneState& state = lane_state();
  // Terminal rrset cached (within this client's subnet partition)?
  if (auto cached = state.cache.lookup(qname, type, now, scope)) {
    if (cached->negative()) {
      result.rcode = Rcode::kNxDomain;
      return std::nullopt;
    }
    cached->append_aged(result.answers);
    return std::nullopt;
  }
  // Cached CNAME link?
  if (type != RRType::kCNAME) {
    if (auto cached = state.cache.lookup(qname, RRType::kCNAME, now, scope);
        cached && !cached->negative() && !cached->records().empty()) {
      result.answers.push_back(cached->records().front());
      result.answers.back().ttl = cached->aged_ttl(result.answers.back().ttl);
      return std::get<CnameRecord>(cached->records().front().rdata).target;
    }
  }
  // Background-load model: subscribers may have refreshed this name
  // already, in which case our query is a hit at zero charged latency.
  // Applies only to subnet-independent data — an ECS-scoped answer is
  // specific to this client's subnet, which background users don't share.
  if (scope == 0 && !state.warming &&
      (warm_hit_p_ > 0.0 || bg_interarrival_s_ > 0.0) &&
      (!warm_eligible_ || warm_eligible_(qname))) {
    state.warming = true;
    // The shadow recursion models work other subscribers already did; its
    // spans are not part of this client's resolution timeline.
    obs::Tracer::instance().pause();
    ResolutionResult shadow = resolve(qname, type, now, rng);
    obs::Tracer::instance().resume();
    state.warming = false;
    // Warm probability: fixed, or TTL-driven — an entry with TTL T that
    // background users re-fetch every I seconds is fresh a T/(T+I)
    // fraction of the time.
    double warm_p = warm_hit_p_;
    if (bg_interarrival_s_ > 0.0) {
      uint32_t ttl = 300;  // NXDOMAIN / empty answers: negative-cache TTL
      for (const auto& rr : shadow.answers) ttl = std::min(ttl, rr.ttl);
      warm_p = ttl / (ttl + bg_interarrival_s_);
    }
    if (!rng.bernoulli(warm_p)) {
      // Cold after all: the client pays the recursion the shadow ran.
      result.upstream_ms += shadow.upstream_ms;
      result.upstream_queries += shadow.upstream_queries;
      result.from_cache = false;
    } else {
      resolver_metrics().warm_hits.inc();
    }
    result.rcode = shadow.rcode;
    for (auto& rr : shadow.answers) result.answers.push_back(std::move(rr));
    return std::nullopt;  // the shadow resolution followed the whole chain
  }
  result.from_cache = false;
  return iterate(qname, type, now, rng, ecs_client, scope, result);
}

net::Ipv4Addr RecursiveResolver::best_server_for(const DnsName& qname,
                                                 net::SimTime now) {
  Cache& cache = lane_state().cache;
  // Walk qname, qname's parent, ... looking for a cached NS whose glue we
  // also have. The root primes the walk when nothing deeper is known.
  DnsName zone = qname;
  while (true) {
    // Borrowed views are safe across the nested glue lookup: it touches a
    // different key, so the NS entry's node (and record vector) stay put.
    if (auto ns_set = cache.lookup(zone, RRType::kNS, now);
        ns_set && !ns_set->negative()) {
      for (const auto& rr : ns_set->records()) {
        const auto& ns_name = std::get<NsRecord>(rr.rdata).nameserver;
        if (auto glue = cache.lookup(ns_name, RRType::kA, now);
            glue && !glue->negative() && !glue->records().empty()) {
          return std::get<ARecord>(glue->records().front().rdata).address;
        }
      }
    }
    if (zone.is_root()) return root_ip_;
    zone = zone.parent();
  }
}

std::optional<Message> RecursiveResolver::query_server(
    net::Ipv4Addr server_ip, const DnsName& qname, RRType type, net::SimTime now,
    net::Rng& rng, net::Ipv4Addr ecs_client, ResolutionResult& result) {
  ++result.upstream_queries;
  resolver_metrics().upstream.inc();
  obs::ScopedSpan span("upstream_query", now.millis() + result.upstream_ms);
  DnsServer* server = registry_->find(server_ip);
  if (server == nullptr) {
    result.upstream_ms += kTimeoutMs;
    resolver_metrics().timeouts.inc();
    span.finish(now.millis() + result.upstream_ms);
    return std::nullopt;
  }
  const auto rtt = topology_->transport_rtt_ms(node_, server->node(), rng);
  if (!rtt) {
    result.upstream_ms += kTimeoutMs;
    resolver_metrics().timeouts.inc();
    span.finish(now.millis() + result.upstream_ms);
    return std::nullopt;
  }
  Message query = Message::query(lane_state().next_query_id++, qname, type);
  if (ecs_enabled_ && !ecs_client.is_unspecified()) {
    query.ecs = EdnsClientSubnet{ecs_client.slash24(), ecs_prefix_len_, 0};
  }
  const auto wire = encode(query);
  const ServedResponse served = server->handle_query(wire, ip_, now, rng);
  result.upstream_ms += *rtt + served.server_side_ms;
  span.finish(now.millis() + result.upstream_ms);
  auto response = decode(served.wire);
  if (!response || response->header.id != query.header.id) return std::nullopt;
  return response;
}

void RecursiveResolver::cache_response_sections(const Message& response,
                                                net::SimTime now,
                                                uint32_t answer_scope) {
  std::map<std::pair<DnsName, RRType>, std::vector<ResourceRecord>> answers;
  std::map<std::pair<DnsName, RRType>, std::vector<ResourceRecord>> metadata;
  for (const auto& rr : response.answers) {
    answers[{rr.name, rr.type()}].push_back(rr);
  }
  for (const auto* section : {&response.authorities, &response.additionals}) {
    for (const auto& rr : *section) {
      metadata[{rr.name, rr.type()}].push_back(rr);
    }
  }
  // Tailored answers are valid only for this client's subnet; referral
  // metadata (NS, glue) is subnet-independent.
  Cache& cache = lane_state().cache;
  for (auto& [key, rrs] : answers) {
    cache.insert(key.first, key.second, std::move(rrs), now, answer_scope);
  }
  for (auto& [key, rrs] : metadata) {
    if (key.second == RRType::kSOA) continue;  // negative-caching metadata
    cache.insert(key.first, key.second, std::move(rrs), now);
  }
}

std::optional<DnsName> RecursiveResolver::iterate(
    const DnsName& qname, RRType type, net::SimTime now, net::Rng& rng,
    net::Ipv4Addr ecs_client, uint32_t scope, ResolutionResult& result) {
  net::Ipv4Addr server_ip = best_server_for(qname, now);
  for (size_t step = 0; step < kMaxReferrals; ++step) {
    auto response =
        query_server(server_ip, qname, type, now, rng, ecs_client, result);
    if (!response) {
      result.rcode = Rcode::kServFail;
      return std::nullopt;
    }
    cache_response_sections(*response, now, scope);

    if (!response->answers.empty()) {
      // Either the terminal rrset, a CNAME link, or a mix ending in one.
      std::optional<DnsName> continue_with;
      for (const auto& rr : response->answers) {
        result.answers.push_back(rr);
        if (rr.type() == RRType::kCNAME && type != RRType::kCNAME) {
          continue_with = std::get<CnameRecord>(rr.rdata).target;
        }
        if (rr.type() == type) continue_with.reset();
      }
      return continue_with;
    }

    if (response->header.rcode == Rcode::kNxDomain) {
      uint32_t neg_ttl = 300;
      for (const auto& rr : response->authorities) {
        if (const auto* soa = std::get_if<SoaRecord>(&rr.rdata)) {
          neg_ttl = std::min(rr.ttl, soa->minimum);
        }
      }
      lane_state().cache.insert_negative(qname, type, neg_ttl, now, scope);
      result.rcode = Rcode::kNxDomain;
      return std::nullopt;
    }

    // Referral: follow the first NS with glue.
    net::Ipv4Addr next{};
    for (const auto& ns_rr : response->authorities) {
      const auto* ns = std::get_if<NsRecord>(&ns_rr.rdata);
      if (ns == nullptr) continue;
      for (const auto& add_rr : response->additionals) {
        const auto* a = std::get_if<ARecord>(&add_rr.rdata);
        if (a != nullptr && add_rr.name == ns->nameserver) {
          next = a->address;
          break;
        }
      }
      if (!next.is_unspecified()) break;
    }
    if (next.is_unspecified() || next == server_ip) {
      // Either NODATA (authority carries a SOA — a fine, cacheable "no
      // such data") or a referral we cannot make progress on (glueless,
      // or pointing back at the same server): the latter is a lame
      // delegation and surfaces as SERVFAIL, like production resolvers.
      bool lame_referral = false;
      for (const auto& rr : response->authorities) {
        if (rr.type() == RRType::kNS) lame_referral = true;
      }
      result.rcode =
          lame_referral ? Rcode::kServFail : response->header.rcode;
      return std::nullopt;
    }
    server_ip = next;
  }
  result.rcode = Rcode::kServFail;
  return std::nullopt;
}

ServedResponse RecursiveResolver::handle_query(std::span<const uint8_t> query_wire,
                                               net::Ipv4Addr source_ip,
                                               net::SimTime now, net::Rng& rng) {
  ServedResponse served;
  const auto query = decode(query_wire);
  if (!query || query->questions.empty()) {
    Message response;
    response.header.id = query ? query->header.id : 0;
    response.header.qr = true;
    response.header.rcode = Rcode::kFormErr;
    served.wire = encode(response);
    return served;
  }
  const Question& q = query->questions.front();
  // With ECS enabled, the stub's source address seeds the client subnet
  // we disclose upstream.
  ResolutionResult result = resolve(q.name, q.type, now, rng,
                                    ecs_enabled_ ? source_ip : net::Ipv4Addr{});
  Message response = query->make_response();
  response.header.ra = true;
  response.header.rcode = result.rcode;
  response.answers = std::move(result.answers);
  served.server_side_ms = result.upstream_ms;
  served.wire = encode(response);
  return served;
}

}  // namespace curtain::dns
