// Recursive (caching, iterative-resolution) DNS resolver.
//
// This is the component deployed as the *external-facing* half of every
// cellular LDNS architecture and at every public-DNS site. It walks the
// delegation hierarchy (root → TLD → zone ADNS), follows cross-zone CNAME
// chains (CDN indirection), caches positive and negative answers, and
// accounts the wall-clock cost of its upstream round trips so clients
// observe realistic resolution times (paper Figs. 5-7, 13).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dns/cache.h"
#include "dns/message.h"
#include "dns/server.h"
#include "net/shard_slot.h"
#include "obs/memory.h"

namespace curtain::dns {

struct ResolutionResult {
  Rcode rcode = Rcode::kServFail;
  /// Full answer chain, CNAMEs first, terminal rrset last.
  std::vector<ResourceRecord> answers;
  /// Latency the resolver spent querying upstream servers (0 on cache hit).
  double upstream_ms = 0.0;
  int upstream_queries = 0;
  /// True when every link of the chain came from cache.
  bool from_cache = true;

  std::vector<net::Ipv4Addr> addresses() const;
};

class RecursiveResolver : public DnsServer {
 public:
  /// `root_ip` is the priming address of the root server; `registry` and
  /// `topology` are borrowed and must outlive the resolver.
  RecursiveResolver(std::string name, net::NodeId node, net::Ipv4Addr ip,
                    const net::Topology* topology, const ServerRegistry* registry,
                    net::Ipv4Addr root_ip);

  /// Resolves (name, type), consulting the cache and iterating as needed.
  /// When ECS is enabled and `ecs_client` is a real address, upstream
  /// queries carry the client's subnet and tailored answers are cached
  /// per subnet (RFC 7871).
  ResolutionResult resolve(const DnsName& name, RRType type, net::SimTime now,
                           net::Rng& rng, net::Ipv4Addr ecs_client = {});

  /// Turns on EDNS client-subnet towards authoritative servers (what
  /// Google Public DNS deployed for opted-in CDNs; the paper-era cell
  /// LDNS did not).
  void enable_ecs(uint8_t source_prefix_len = 24) {
    ecs_enabled_ = true;
    ecs_prefix_len_ = source_prefix_len;
  }
  bool ecs_enabled() const { return ecs_enabled_; }

  // DnsServer:
  ServedResponse handle_query(std::span<const uint8_t> query_wire,
                              net::Ipv4Addr source_ip, net::SimTime now,
                              net::Rng& rng) override;
  net::NodeId node() const override { return node_; }
  net::Ipv4Addr ip() const override { return ip_; }

  const std::string& name() const { return name_; }
  Cache& cache() { return lane_state().cache; }
  const Cache& cache() const { return lane_state().cache; }

  /// Partitions the resolver's mutable state (cache, query-id counter,
  /// warm-hit guard) into `lanes` independent copies indexed by the
  /// calling thread's state lane (net/shard_slot.h) — one lane per
  /// enrolled device plus lane 0 for the main thread. Laning makes every
  /// device's view of the resolver independent of which cohort shard runs
  /// it, which keeps campaign exports byte-identical across cohort and
  /// worker counts; the population-level cache warmth devices used to
  /// share is carried by the background-load model instead (see
  /// set_background_load). Lane states are allocated on first touch, so
  /// the cost scales with lanes actually used. Call at build time, before
  /// queries; drops previously cached data.
  void set_state_lanes(size_t lanes);

  /// Background-load model. Production resolvers serve whole subscriber
  /// populations, so a popular name is usually still cached when our
  /// measurement query arrives even though the fleet alone could never
  /// keep it warm. With probability `p`, a cache miss is converted into a
  /// hit by performing the recursion at zero observable cost (the fetch
  /// "already happened" for another subscriber) and caching the outcome.
  /// The residual (1-p) misses are what Fig. 7's ~20% tail shows.
  /// `eligible` limits warming to names background users actually query
  /// (measurement-unique names are never warm); empty = all names.
  void set_warm_hit_probability(
      double p, std::function<bool(const DnsName&)> eligible = {}) {
    warm_hit_p_ = p;
    warm_eligible_ = std::move(eligible);
  }
  double warm_hit_probability() const { return warm_hit_p_; }

  /// TTL-aware background-load model: popular names are re-fetched by the
  /// subscriber population on average every `mean_interarrival_s`, so a
  /// measurement query finds the entry warm with probability
  /// TTL / (TTL + interarrival) — short CDN TTLs miss more (Fig. 7, and
  /// the bench/ablation_cdn_ttl sweep). Takes precedence over the fixed
  /// probability when set.
  void set_background_load(double mean_interarrival_s,
                           std::function<bool(const DnsName&)> eligible = {}) {
    bg_interarrival_s_ = mean_interarrival_s;
    warm_eligible_ = std::move(eligible);
  }
  double background_interarrival_s() const { return bg_interarrival_s_; }

  /// Approximate heap bytes of the laned query-time state (allocated
  /// lanes, their caches). A profiling gauge — see obs/memory.h.
  obs::LaneMemory approx_lane_bytes() const;

 private:
  /// One step: resolve `qname` to either a terminal rrset or a CNAME.
  /// Appends to `result.answers`; returns the CNAME target if chasing
  /// should continue. `scope` is the ECS cache partition (0 = global).
  std::optional<DnsName> resolve_step(const DnsName& qname, RRType type,
                                      net::SimTime now, net::Rng& rng,
                                      net::Ipv4Addr ecs_client, uint32_t scope,
                                      ResolutionResult& result);

  /// Iterative walk for one (qname, type); fills result from the network.
  /// Returns the CNAME continuation target, if any.
  std::optional<DnsName> iterate(const DnsName& qname, RRType type,
                                 net::SimTime now, net::Rng& rng,
                                 net::Ipv4Addr ecs_client, uint32_t scope,
                                 ResolutionResult& result);

  /// Deepest cached delegation for `qname` (falls back to the root).
  net::Ipv4Addr best_server_for(const DnsName& qname, net::SimTime now);

  /// Sends one encoded query to the server at `server_ip`, accounting RTT
  /// into `result`. nullopt if the server is unknown or unreachable.
  std::optional<Message> query_server(net::Ipv4Addr server_ip,
                                      const DnsName& qname, RRType type,
                                      net::SimTime now, net::Rng& rng,
                                      net::Ipv4Addr ecs_client,
                                      ResolutionResult& result);

  /// Caches every rrset in a response, grouped by (name, type). Answer
  /// rrsets go into the `answer_scope` partition (ECS-tailored data);
  /// referral metadata is cached globally.
  void cache_response_sections(const Message& response, net::SimTime now,
                               uint32_t answer_scope);

  /// Mutable query-time state, one copy per state lane.
  struct LaneState {
    /// CDN-era resolvers honor short TTLs; cap at a day like common
    /// software.
    LaneState() { cache.set_ttl_bounds(0, 86400); }
    Cache cache;
    uint16_t next_query_id = 1;
    bool warming = false;  ///< reentrancy guard for the warm-hit path
  };
  /// The calling thread's lane state, materialized on first touch (the
  /// sparse-table rules — clamping, race-freedom — are LaneTable's).
  LaneState& lane_state() const;

  std::string name_;
  net::NodeId node_;
  net::Ipv4Addr ip_;
  const net::Topology* topology_;
  const ServerRegistry* registry_;
  net::Ipv4Addr root_ip_;
  mutable net::LaneTable<LaneState> lanes_;
  double warm_hit_p_ = 0.0;
  double bg_interarrival_s_ = 0.0;
  bool ecs_enabled_ = false;
  uint8_t ecs_prefix_len_ = 24;
  std::function<bool(const DnsName&)> warm_eligible_;
};

}  // namespace curtain::dns
