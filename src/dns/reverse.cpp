#include "dns/reverse.h"

#include <cctype>

namespace curtain::dns {

DnsName reverse_name(net::Ipv4Addr address) {
  std::vector<std::string> labels;
  labels.reserve(6);
  for (int octet = 3; octet >= 0; --octet) {
    labels.push_back(std::to_string(address.octet(octet)));
  }
  labels.emplace_back("in-addr");
  labels.emplace_back("arpa");
  return *DnsName::from_labels(std::move(labels));
}

std::optional<net::Ipv4Addr> parse_reverse_name(const DnsName& name) {
  if (name.label_count() != 6 || name.label(4) != "in-addr" ||
      name.label(5) != "arpa") {
    return std::nullopt;
  }
  uint32_t value = 0;
  // label(0) is the least significant octet ("d" in d.c.b.a.in-addr.arpa).
  for (size_t i = 0; i < 4; ++i) {
    unsigned octet = 0;
    const auto label = name.label(i);
    if (label.empty() || label.size() > 3) return std::nullopt;
    for (const char c : label) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value |= octet << (8 * i);
  }
  return net::Ipv4Addr(value);
}

std::string hostname_label(const std::string& node_name) {
  std::string label;
  label.reserve(node_name.size());
  bool last_dash = false;
  for (const char c : node_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      label += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_dash = false;
    } else if (!last_dash && !label.empty()) {
      label += '-';
      last_dash = true;
    }
  }
  while (!label.empty() && label.back() == '-') label.pop_back();
  if (label.empty()) label = "host";
  if (label.size() > 63) label.resize(63);
  return label;
}

DnsName ptr_target(const net::Node& node, const DnsName& suffix) {
  const auto child = suffix.child(hostname_label(node.name));
  return child ? *child : suffix;
}

void install_reverse_zone(AuthoritativeServer& server,
                          const net::Topology* topology, DnsName suffix) {
  server.set_dynamic_handler(
      [topology, suffix](const Question& question, net::Ipv4Addr,
                         const std::optional<EdnsClientSubnet>&, net::SimTime,
                         net::Rng&)
          -> std::optional<std::vector<ResourceRecord>> {
        if (question.type != RRType::kPTR) return std::nullopt;
        const auto address = parse_reverse_name(question.name);
        if (!address) return std::nullopt;
        const net::NodeId node_id = topology->find_by_ip(*address);
        if (node_id == net::kInvalidNode) return std::nullopt;
        const net::Node& node = topology->node(node_id);
        return std::vector<ResourceRecord>{ResourceRecord{
            question.name, RRClass::kIN, 3600,
            PtrRecord{ptr_target(node, suffix)}}};
      },
      /*dynamic_ttl_s=*/3600);
}

}  // namespace curtain::dns
