// Reverse DNS (in-addr.arpa, RFC 1035 §3.5).
//
// Measurement studies classify traceroute hops by resolving their PTR
// records (hop 10.1.2.3 → "pgw-7.att.net" tells you whose router that
// is). The world wires an in-addr.arpa zone whose PTR answers are derived
// from the topology, so hop identification works the way it does in
// practice. ProbeEngine's hop names are exactly these PTR names.
#pragma once

#include <optional>

#include "dns/authoritative.h"
#include "dns/name.h"
#include "net/topology.h"

namespace curtain::dns {

/// "d.c.b.a.in-addr.arpa" for the address a.b.c.d.
DnsName reverse_name(net::Ipv4Addr address);

/// Inverse of reverse_name; nullopt unless `name` is a well-formed
/// four-octet in-addr.arpa name.
std::optional<net::Ipv4Addr> parse_reverse_name(const DnsName& name);

/// A hostname label derived from a topology node's display name:
/// lowercased, non-alphanumerics collapsed to '-' ("AT&T-pgw-3" →
/// "at-t-pgw-3"). Safe to embed in a DNS name.
std::string hostname_label(const std::string& node_name);

/// The PTR target published for a node: <hostname_label>.<suffix>.
DnsName ptr_target(const net::Node& node, const DnsName& suffix);

/// Installs the in-addr.arpa behaviour on `server`: PTR queries are
/// answered from the topology's IP index, with targets under `suffix`.
/// Addresses with no owning node get NXDOMAIN.
void install_reverse_zone(AuthoritativeServer& server,
                          const net::Topology* topology, DnsName suffix);

}  // namespace curtain::dns
