// The DNS server interface and the registry binding servers to topology
// nodes.
//
// Servers exchange *encoded* packets: a caller encodes its query, the
// server decodes, answers and re-encodes. `server_side_ms` carries the
// latency the server itself incurred (a recursive resolver's upstream
// round trips); the caller adds its own transport RTT to the server.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/clock.h"
#include "net/ipv4.h"
#include "net/rng.h"
#include "net/topology.h"

namespace curtain::dns {

struct ServedResponse {
  std::vector<uint8_t> wire;
  double server_side_ms = 0.0;
};

class DnsServer {
 public:
  virtual ~DnsServer() = default;

  /// Handles one query packet arriving from `source_ip` at time `now`.
  /// Implementations must return a decodable response even for malformed
  /// queries (FORMERR) so clients always observe *something* or a timeout.
  virtual ServedResponse handle_query(std::span<const uint8_t> query_wire,
                                      net::Ipv4Addr source_ip, net::SimTime now,
                                      net::Rng& rng) = 0;

  /// Topology node this server is bound to.
  virtual net::NodeId node() const = 0;
  /// Address the server answers on.
  virtual net::Ipv4Addr ip() const = 0;

  /// For anycast services: the instance node a packet from `source` is
  /// routed to at time `now`. Unicast servers (the default) have a single
  /// node; anycast routing can drift over time (tunneling, BGP churn).
  virtual net::NodeId node_for(net::Ipv4Addr source, net::SimTime now) const {
    (void)source;
    (void)now;
    return node();
  }
};

/// Maps server IPs to server instances so resolvers can "send" packets.
/// Non-owning: the world owns its servers and outlives the registry users.
class ServerRegistry {
 public:
  void add(DnsServer* server) { by_ip_[server->ip().value()] = server; }

  DnsServer* find(net::Ipv4Addr ip) const {
    const auto it = by_ip_.find(ip.value());
    return it == by_ip_.end() ? nullptr : it->second;
  }

  size_t size() const { return by_ip_.size(); }

 private:
  std::unordered_map<uint32_t, DnsServer*> by_ip_;
};

}  // namespace curtain::dns
