#include "dns/stub.h"

#include "obs/trace.h"

namespace curtain::dns {

std::vector<net::Ipv4Addr> StubResult::addresses() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARecord>(&rr.rdata)) out.push_back(a->address);
  }
  return out;
}

StubResolver::StubResolver(net::NodeId node, net::Ipv4Addr client_ip,
                           const net::Topology& topology,
                           const ServerRegistry& registry)
    : node_(node), client_ip_(client_ip), topology_(topology),
      registry_(registry) {}

StubResult StubResolver::query(net::Ipv4Addr resolver_ip, const DnsName& name,
                               RRType type, net::SimTime now, net::Rng& rng,
                               double extra_latency_ms) {
  StubResult result;
  result.total_ms = extra_latency_ms;
  // Top-level trace decomposition: the client-observed resolution time is
  // exactly radio_access + ldns (server-side work) + transport (stub↔LDNS
  // round trip), so the depth-0 spans of a ResolutionTrace partition it.
  const double t0 = now.millis();
  {
    obs::ScopedSpan access("radio_access", t0);
    access.finish(t0 + extra_latency_ms);
  }
  DnsServer* server = registry_.find(resolver_ip);
  if (server == nullptr) return result;
  const auto rtt =
      topology_.transport_rtt_ms(node_, server->node_for(client_ip_, now), rng);
  if (!rtt) return result;

  const Message query = Message::query(next_id_++, name, type);
  const auto wire = encode(query);
  obs::ScopedSpan ldns("ldns", t0 + extra_latency_ms);
  const ServedResponse served = server->handle_query(wire, client_ip_, now, rng);
  const double after_server = t0 + extra_latency_ms + served.server_side_ms;
  ldns.finish(after_server);
  const auto response = decode(served.wire);
  if (!response || response->header.id != query.header.id) return result;

  {
    obs::ScopedSpan transport("transport", after_server);
    transport.finish(after_server + *rtt);
  }
  result.responded = true;
  result.rcode = response->header.rcode;
  result.answers = response->answers;
  result.total_ms += *rtt + served.server_side_ms;
  return result;
}

}  // namespace curtain::dns
