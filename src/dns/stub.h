// Stub resolver: the client half of a resolution.
//
// Encodes the query, "sends" it to a configured resolver, and reports the
// end-to-end resolution time (client RTT to the resolver + whatever the
// resolver spent upstream). Devices add their radio-access latency on top.
#pragma once

#include "dns/message.h"
#include "dns/server.h"

namespace curtain::dns {

struct StubResult {
  bool responded = false;
  Rcode rcode = Rcode::kServFail;
  std::vector<ResourceRecord> answers;
  /// End-to-end resolution time as the client perceives it.
  double total_ms = 0.0;

  std::vector<net::Ipv4Addr> addresses() const;
};

class StubResolver {
 public:
  /// `node` is where the client attaches to the wired topology (a device's
  /// gateway, or a vantage-point host). Borrowed references must outlive us.
  StubResolver(net::NodeId node, net::Ipv4Addr client_ip,
               const net::Topology& topology, const ServerRegistry& registry);

  /// Queries the server at `resolver_ip` for (name, type).
  /// `extra_latency_ms` is prepended latency the transport cannot see
  /// (radio access for cellular clients).
  StubResult query(net::Ipv4Addr resolver_ip, const DnsName& name, RRType type,
                   net::SimTime now, net::Rng& rng,
                   double extra_latency_ms = 0.0);

 private:
  net::NodeId node_;
  net::Ipv4Addr client_ip_;
  const net::Topology& topology_;
  const ServerRegistry& registry_;
  uint16_t next_id_ = 1;
};

}  // namespace curtain::dns
