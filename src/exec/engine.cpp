#include "exec/engine.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>

#include "net/shard_slot.h"
#include "obs/flight_recorder.h"
#include "obs/memory.h"
#include "util/contract.h"

namespace curtain::exec {
namespace {

/// Cohorts per carrier for the auto (cohorts == 0) setting: oversubscribe
/// the worker pool ~4× so the deterministic pull queue load-balances
/// uneven carrier fleets, clamped to the same [1, 64] band as the
/// explicit knob.
int resolve_cohorts(int cohorts, int workers, size_t carriers) {
  if (cohorts >= 1) return cohorts > 64 ? 64 : cohorts;
  if (carriers == 0) return 1;
  const int want = static_cast<int>(
      (4 * static_cast<size_t>(workers) + carriers - 1) / carriers);
  if (want < 1) return 1;
  return want > 64 ? 64 : want;
}

/// Device-id band width: 1000 at paper scale (so ids match the study's
/// published numbering exactly), widened by decimal orders of magnitude
/// when any carrier's fleet outgrows it — ids stay unique and stable per
/// (carrier, enrollment ordinal) at any fleet size.
uint64_t resolve_id_band(
    const std::vector<CampaignEngine::CarrierRef>& carriers) {
  uint64_t band = 1000;
  for (const auto& carrier : carriers) {
    const auto clients =
        static_cast<uint64_t>(carrier.network.profile().study_clients);
    while (clients >= band) band *= 1000;
  }
  return band;
}

}  // namespace

CampaignEngine::CampaignEngine(measure::WorldView world,
                               const dns::DnsName& research_apex,
                               std::vector<CarrierRef> carriers,
                               EngineConfig config)
    : config_(config), world_(world) {
  if (config_.workers < 1) config_.workers = 1;
  cohorts_ = resolve_cohorts(config_.cohorts, config_.workers,
                             carriers.size());
  const uint64_t id_band = resolve_id_band(carriers);

  // Build each carrier's fleet arena exactly once, then slice it into
  // cohorts of device handles. State lanes are global device-enrollment
  // ordinals (+1 to skip the main thread's lane 0): they advance across
  // carriers in carrier-table order and never depend on the cohort count,
  // so a device keeps the same lane — and therefore the same laned state —
  // under every partition.
  int shard_index = 0;
  int lane_base = 1;
  for (const CarrierRef& carrier : carriers) {
    fleets_.push_back(
        std::make_unique<cellular::Fleet>(cellular::build_carrier_fleet(
            carrier.network, carrier.carrier_index, config_.seed, id_band)));
    cellular::Fleet& fleet = *fleets_.back();
    const size_t fleet_size = fleet.size();
    for (int k = 0; k < cohorts_; ++k) {
      // Contiguous slice [k*N/C, (k+1)*N/C): covers the fleet exactly,
      // allows empty cohorts when cohorts > fleet size.
      const size_t begin =
          fleet_size * static_cast<size_t>(k) / static_cast<size_t>(cohorts_);
      const size_t end = fleet_size * static_cast<size_t>(k + 1) /
                         static_cast<size_t>(cohorts_);
      std::vector<Shard::CohortDevice> slice;
      slice.reserve(end - begin);
      for (size_t d = begin; d < end; ++d) {
        slice.push_back(Shard::CohortDevice{fleet.device(d),
                                            lane_base + static_cast<int>(d)});
      }
      shards_.push_back(std::make_unique<Shard>(
          shard_index++, carrier.carrier_index, k, carrier.network, world,
          research_apex, config_.campaign, config_.experiment, config_.seed,
          std::move(slice)));
    }
    CURTAIN_CHECK(fleet_size <= static_cast<size_t>(
                                    std::numeric_limits<int>::max() - lane_base))
        << "state lanes overflow int";
    lane_base += static_cast<int>(fleet_size);
  }
}

CampaignEngine::~CampaignEngine() = default;

size_t CampaignEngine::device_count() const {
  size_t count = 0;
  for (const auto& shard : shards_) count += shard->device_count();
  return count;
}

size_t CampaignEngine::fleet_arena_bytes() const {
  size_t bytes = 0;
  for (const auto& fleet : fleets_) bytes += fleet->arena_bytes();
  return bytes;
}

void CampaignEngine::run_pool() {
  // A shard slot that exceeds the route cache's way count would silently
  // fall back to way 0 and race the main thread; the study wires the
  // ways after construction, so verify the contract here.
  CURTAIN_CHECK(world_.topology.route_cache_ways() > shards_.size())
      << "route cache has " << world_.topology.route_cache_ways()
      << " ways for " << shards_.size() << " shards";

  stats_.assign(shards_.size(), ShardStat{});
  for (size_t i = 0; i < shards_.size(); ++i) {
    stats_[i].label = shards_[i]->label();
    stats_[i].carrier_index = shards_[i]->carrier_index();
    stats_[i].cohort_index = shards_[i]->cohort_index();
    stats_[i].devices = shards_[i]->device_count();
  }

  // Fixed worker pool over a deterministic queue: workers pull the next
  // shard index from an atomic cursor, so shards start in index order no
  // matter which worker frees up first. Which worker runs which shard
  // varies run to run — that's fine, because nothing result-visible is
  // keyed by the worker or the shard slot.
  const size_t pool = std::min(static_cast<size_t>(config_.workers),
                               shards_.size() == 0 ? size_t{1}
                                                   : shards_.size());

  // Flight-recorder hooks. One enabled() test (a relaxed load) when off;
  // everything below the `profiling` branches is per *shard*, so the
  // unprofiled campaign pays a few branches per shard, not per event.
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  const bool profiling = recorder.enabled();
  if (profiling) {
    std::vector<obs::FlightRecorder::ShardMeta> meta;
    meta.reserve(shards_.size());
    for (const auto& shard : shards_) {
      meta.push_back(obs::FlightRecorder::ShardMeta{
          shard->label(), shard->carrier_index(), shard->cohort_index(),
          shard->device_count()});
    }
    recorder.begin_run(pool, std::move(meta));
  }
  const int64_t queue_open_us = profiling ? recorder.now_us() : 0;

  std::atomic<size_t> next{0};
  auto work = [this, &next, &recorder, profiling,
               queue_open_us](uint16_t worker_lane) {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards_.size()) return;
      Shard& shard = *shards_[i];
      // Wall-clock per-shard busy time, for shard_stats() reporting and
      // the bench scheduling model only — never result-visible.
      const int64_t pickup_us = profiling ? recorder.now_us() : 0;
      const auto started = std::chrono::steady_clock::now();  // lint: wallclock
      {
        net::ShardSlotGuard slot(shard.shard_index() + 1);
        obs::ScopedMetricsSheaf sheaf(shard.sheaf());
        shard.run();
      }
      const auto elapsed =
          std::chrono::steady_clock::now() - started;  // lint: wallclock
      stats_[i].busy_ms =
          std::chrono::duration<double, std::milli>(elapsed).count();
      if (profiling) {
        // Queue depth after this pickup: shards nobody has pulled yet
        // (approximate under concurrent pulls; monotone per worker).
        const size_t pulled =
            std::min(next.load(std::memory_order_relaxed), shards_.size());
        recorder.record_shard(
            worker_lane, static_cast<int32_t>(i), pickup_us,
            recorder.now_us(), pickup_us - queue_open_us,
            static_cast<double>(shards_.size() - pulled),
            obs::read_current_rss_bytes(), shard.approx_record_bytes());
        stats_[i].queue_wait_ms =
            static_cast<double>(pickup_us - queue_open_us) / 1000.0;
        stats_[i].worker = worker_lane;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (size_t w = 0; w < pool; ++w) {
    threads.emplace_back(work, static_cast<uint16_t>(w + 1));
  }
  for (auto& thread : threads) thread.join();
}

void CampaignEngine::run(measure::RecordSink& sink) {
  run_pool();

  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  const bool profiling = recorder.enabled();

  // Deterministic merge: shard-index order — (carrier, cohort) order,
  // i.e. global device-enrollment order — independent of which worker
  // finished when. Renumbering per shard with accumulated bases makes the
  // drained stream indistinguishable from one sequential run, which is
  // what makes every (cohorts, workers, block-rows) setting export
  // byte-identical results.
  const int64_t merge_records_start_us = profiling ? recorder.now_us() : 0;
  uint32_t experiment_base = 0;
  int32_t trace_base = 0;
  for (auto& shard : shards_) {
    measure::RecordStore& records = shard->records();
    const size_t experiments = records.experiment_count();
    const size_t traces = records.trace_count();
    records.drain_renumbered(sink, experiment_base, trace_base);
    CURTAIN_CHECK(experiments <=
                  std::numeric_limits<uint32_t>::max() - experiment_base)
        << "merged experiment ids overflow uint32";
    CURTAIN_CHECK(traces <= static_cast<size_t>(
                                std::numeric_limits<int32_t>::max() -
                                trace_base))
        << "merged trace indices overflow int32";
    experiment_base += static_cast<uint32_t>(experiments);
    trace_base += static_cast<int32_t>(traces);
  }
  sink.finish();
  if (profiling) {
    recorder.record_phase(0, "merge_records", merge_records_start_us,
                          recorder.now_us());
  }
  const int64_t merge_metrics_start_us = profiling ? recorder.now_us() : 0;
  for (auto& shard : shards_) {
    obs::metrics().merge_snapshot(shard->sheaf().snapshot());
  }
  if (profiling) {
    recorder.record_phase(0, "merge_metrics", merge_metrics_start_us,
                          recorder.now_us());
    recorder.record_counter(0, "rss_mb", recorder.now_us(),
                            static_cast<double>(obs::read_current_rss_bytes()) /
                                (1024.0 * 1024.0));
  }
}

void CampaignEngine::run_streaming(
    const std::vector<measure::RecordSink*>& sinks) {
  CURTAIN_CHECK(sinks.size() == shards_.size())
      << "run_streaming needs one sink per shard: " << sinks.size()
      << " sinks for " << shards_.size() << " shards";
  for (size_t i = 0; i < shards_.size(); ++i) {
    CURTAIN_CHECK(sinks[i] != nullptr) << "null sink for shard " << i;
    shards_[i]->stream_to(sinks[i]);
  }
  run_pool();

  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  const bool profiling = recorder.enabled();
  const int64_t merge_metrics_start_us = profiling ? recorder.now_us() : 0;
  for (auto& shard : shards_) {
    obs::metrics().merge_snapshot(shard->sheaf().snapshot());
  }
  if (profiling) {
    recorder.record_phase(0, "merge_metrics", merge_metrics_start_us,
                          recorder.now_us());
    recorder.record_counter(0, "rss_mb", recorder.now_us(),
                            static_cast<double>(obs::read_current_rss_bytes()) /
                                (1024.0 * 1024.0));
  }
}

}  // namespace curtain::exec
