#include "exec/engine.h"

#include <cstdint>
#include <limits>
#include <semaphore>
#include <thread>

#include "net/shard_slot.h"
#include "util/contract.h"

namespace curtain::exec {
namespace {

/// Appends `in` to `out`, renumbering experiment ids and trace indices as
/// if `in`'s records had been produced right after `out`'s.
void append_shard(measure::Dataset& out, measure::Dataset& in) {
  // Renumbering bases must fit the record id types or merged ids collide.
  CURTAIN_CHECK(out.experiments.size() + in.experiments.size() <=
                std::numeric_limits<uint32_t>::max())
      << "merged experiment ids overflow uint32 at "
      << out.experiments.size() << " + " << in.experiments.size();
  CURTAIN_CHECK(out.resolution_traces.size() + in.resolution_traces.size() <=
                static_cast<size_t>(std::numeric_limits<int32_t>::max()))
      << "merged trace indices overflow int32";
  const auto experiment_base = static_cast<uint32_t>(out.experiments.size());
  const auto trace_base = static_cast<int32_t>(out.resolution_traces.size());

  out.experiments.reserve(out.experiments.size() + in.experiments.size());
  for (auto& record : in.experiments) {
    record.experiment_id += experiment_base;
    out.experiments.push_back(std::move(record));
  }
  out.resolutions.reserve(out.resolutions.size() + in.resolutions.size());
  for (auto& record : in.resolutions) {
    record.experiment_id += experiment_base;
    if (record.trace_index >= 0) {
      CURTAIN_DCHECK(static_cast<size_t>(record.trace_index) <
                     in.resolution_traces.size())
          << "shard-local trace_index " << record.trace_index
          << " out of range before renumbering";
      record.trace_index += trace_base;
    }
    out.resolutions.push_back(std::move(record));
  }
  out.probes.reserve(out.probes.size() + in.probes.size());
  for (auto& record : in.probes) {
    record.experiment_id += experiment_base;
    out.probes.push_back(std::move(record));
  }
  out.traceroutes.reserve(out.traceroutes.size() + in.traceroutes.size());
  for (auto& record : in.traceroutes) {
    record.experiment_id += experiment_base;
    out.traceroutes.push_back(std::move(record));
  }
  for (auto& record : in.resolver_observations) {
    record.experiment_id += experiment_base;
    out.resolver_observations.push_back(std::move(record));
  }
  for (auto& record : in.vantage_probes) {
    out.vantage_probes.push_back(std::move(record));
  }
  for (auto& trace : in.resolution_traces) {
    out.resolution_traces.push_back(std::move(trace));
  }
}

}  // namespace

CampaignEngine::CampaignEngine(measure::WorldView world,
                               const dns::DnsName& research_apex,
                               std::vector<CarrierRef> carriers,
                               EngineConfig config)
    : config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  int shard_index = 0;
  for (const CarrierRef& carrier : carriers) {
    shards_.push_back(std::make_unique<Shard>(
        shard_index++, carrier.carrier_index, carrier.network, world,
        research_apex, config_.campaign, config_.experiment, config_.seed));
  }
}

CampaignEngine::~CampaignEngine() = default;

size_t CampaignEngine::device_count() const {
  size_t count = 0;
  for (const auto& shard : shards_) count += shard->device_count();
  return count;
}

void CampaignEngine::run(measure::Dataset& dataset) {
  // One fresh thread per shard: thread-local metric handle caches bind to
  // exactly one sheaf over a thread's lifetime, so shard threads are never
  // reused across shards. The semaphore caps concurrency at `workers`.
  std::counting_semaphore<> slots(config_.workers);
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    threads.emplace_back([&slots, shard] {
      slots.acquire();
      net::ShardSlotGuard slot(shard->shard_index() + 1);
      obs::ScopedMetricsSheaf sheaf(shard->sheaf());
      shard->run();
      slots.release();
    });
  }
  for (auto& thread : threads) thread.join();

  // Deterministic merge: shard-index order, independent of which worker
  // finished when. This is what makes workers=1 and workers=N exports
  // byte-identical.
  for (auto& shard : shards_) append_shard(dataset, shard->dataset());
  for (auto& shard : shards_) {
    obs::metrics().merge_snapshot(shard->sheaf().snapshot());
  }
}

}  // namespace curtain::exec
