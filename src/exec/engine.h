// CampaignEngine: cohort-sharded parallel execution of the campaign.
//
// The fleet is partitioned by device cohort *within* each carrier: every
// (carrier, cohort) pair is one Shard owning a contiguous slice of that
// carrier's fleet. The shard count is carriers × cohorts-per-carrier, so
// parallelism is no longer capped at the carrier count; `workers`
// (CURTAIN_SHARDS, 0 = one per hardware thread) sizes the worker pool and
// `cohorts` (CURTAIN_COHORTS, 0 = auto from the worker count) sizes the
// partition. A fixed pool of worker threads pulls shards from a
// deterministic queue in shard-index order.
//
// Determinism: every result-affecting draw comes from a per-device stream
// keyed by (seed, device id) alone; every piece of result-visible mutable
// state is keyed by the device's global state lane (net/shard_slot.h),
// which depends only on the fleet — never on cohort or worker counts.
// Fleets are built once per carrier (as SoA arenas the engine owns) and
// sliced into device handles, so the devices themselves are
// partition-invariant too. The merge happens in (carrier, cohort) order,
// which equals global device-enrollment order; together this makes the
// merged record stream and metrics byte-identical for every cohort count
// and worker count — both knobs are purely wall-clock levers.
//
// Two output modes:
//   * run(sink): each shard retains its record blocks; after the join the
//     engine drains them into `sink` in shard-index order, renumbering
//     experiment ids and trace indices so the stream is indistinguishable
//     from one sequential run over the same shard order;
//   * run_streaming(sinks): each shard drains sealed blocks to its own
//     sink *during* the run, on the worker thread, with shard-local ids —
//     the bounded-memory path for 10^6-device fleets (peak record memory
//     is one open block per shard).
// In both modes each shard's metrics sheaf is summed into the calling
// thread's registry, in shard order; histogram sums accumulate in fixed
// point, so even the merged totals are exact and partition-invariant.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cellular/fleet.h"
#include "exec/shard.h"
#include "measure/record_store.h"
#include "measure/worldview.h"

namespace curtain::exec {

/// Tunables for one campaign execution.
struct EngineConfig {
  uint64_t seed = 20141105;
  /// Worker threads in the shard pool (>=1). core::Scenario resolves the
  /// CURTAIN_SHARDS=0 "one per hardware thread" default before it gets
  /// here.
  int workers = 1;
  /// Cohorts per carrier; 0 picks enough cohorts to keep `workers` busy
  /// (ceil(4*workers/carriers), clamped to [1, 64]).
  int cohorts = 0;
  measure::CampaignConfig campaign;
  measure::ExperimentConfig experiment;
};

/// Per-shard execution record, in shard (merge) order. busy_ms,
/// queue_wait_ms and worker are real wall-clock/scheduling facts and
/// exist only for reporting and bench scheduling models — nothing
/// result-visible may read them.
struct ShardStat {
  std::string label;  ///< "<carrier>/cohort<k>"
  int carrier_index = 0;
  int cohort_index = 0;
  size_t devices = 0;
  double busy_ms = 0.0;
  /// Queue-open → pickup wait; 0 unless the flight recorder was armed.
  double queue_wait_ms = 0.0;
  /// Worker lane (1-based) that ran the shard; 0 unless profiled.
  int worker = 0;
};

class CampaignEngine {
 public:
  /// One carrier entry: the network plus its index into the study's
  /// carrier table (references: a null carrier was never a valid state).
  struct CarrierRef {
    cellular::CellularNetwork& network;
    int carrier_index;
  };

  CampaignEngine(measure::WorldView world, const dns::DnsName& research_apex,
                 std::vector<CarrierRef> carriers, EngineConfig config);
  ~CampaignEngine();
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Devices enrolled across all shards (Table 1 totals).
  size_t device_count() const;

  /// Shards in the partition (carriers × resolved cohorts-per-carrier).
  /// The topology's route cache must keep more ways than this before
  /// run() — see net::Topology::set_route_cache_ways.
  size_t shard_count() const { return shards_.size(); }

  /// Cohorts per carrier after resolving the auto (0) setting.
  int cohorts_per_carrier() const { return cohorts_; }

  /// Bytes of all carrier fleet arenas (SoA device state). A profiling
  /// gauge — see obs/memory.h.
  size_t fleet_arena_bytes() const;

  /// Runs every shard on a pool of min(workers, shards) threads pulling
  /// from a deterministic queue, then drains shard record blocks into
  /// `sink` (renumbered, in shard-index order, finish()ed at the end) and
  /// merges shard metric sheaves into the calling thread's registry.
  void run(measure::RecordSink& sink);

  /// Bounded-memory mode: `sinks[i]` consumes shard i's sealed blocks on
  /// the worker thread as they fill, with shard-local experiment ids.
  /// `sinks` must have exactly shard_count() entries; each sink sees its
  /// shard's complete stream (finish() included) but sinks for different
  /// shards run concurrently. Metrics merge as in run().
  void run_streaming(const std::vector<measure::RecordSink*>& sinks);

  /// Populated by run()/run_streaming(): one entry per shard, in shard
  /// order.
  const std::vector<ShardStat>& shard_stats() const { return stats_; }

 private:
  /// The shared worker-pool execution (everything up to the join).
  void run_pool();

  EngineConfig config_;
  int cohorts_ = 1;
  measure::WorldView world_;
  /// Fleet arenas live here (stable addresses) because shards hold Device
  /// handles that point into them.
  std::vector<std::unique_ptr<cellular::Fleet>> fleets_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardStat> stats_;
};

}  // namespace curtain::exec
