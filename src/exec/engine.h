// CampaignEngine: sharded parallel execution of the measurement campaign.
//
// The engine always partitions the fleet into one shard per carrier; the
// `workers` knob (CURTAIN_SHARDS) only caps how many shard threads run
// concurrently. Because every shard's inputs are (immutable world,
// seed-mixed RNG streams keyed by shard index) and the merge happens in
// shard-index order, the merged dataset and metrics are byte-identical
// for every worker count — parallelism is purely a wall-clock lever.
//
// Merge semantics:
//   * datasets are concatenated in shard order, renumbering experiment_id
//     and trace_index so the result is indistinguishable from one
//     sequential run over the same shard order;
//   * each shard's metrics sheaf is summed into the calling thread's
//     registry (normally the global one), in shard order, so even
//     floating-point sums are reproducible.
#pragma once

#include <memory>
#include <vector>

#include "exec/shard.h"

namespace curtain::exec {

/// Tunables for one campaign execution.
struct EngineConfig {
  uint64_t seed = 20141105;
  /// Max shards running concurrently (>=1); shard *count* is always the
  /// carrier count, so this only trades wall-clock for threads.
  int workers = 1;
  measure::CampaignConfig campaign;
  measure::ExperimentConfig experiment;
};

class CampaignEngine {
 public:
  /// One carrier entry: the network plus its index into the study's
  /// carrier table (references: a null carrier was never a valid state).
  struct CarrierRef {
    cellular::CellularNetwork& network;
    int carrier_index;
  };

  CampaignEngine(measure::WorldView world, const dns::DnsName& research_apex,
                 std::vector<CarrierRef> carriers, EngineConfig config);
  ~CampaignEngine();
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Devices enrolled across all shards (Table 1 totals).
  size_t device_count() const;

  /// Runs every shard (at most config.workers concurrently), then merges
  /// shard datasets into `dataset` and shard metric sheaves into the
  /// calling thread's registry, both in shard-index order.
  void run(measure::Dataset& dataset);

 private:
  EngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace curtain::exec
