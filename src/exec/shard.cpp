// lint-hot-path (per-device wake-up scheduling loop)
#include "exec/shard.h"

#include "net/clock.h"
#include "net/shard_slot.h"

namespace curtain::exec {
namespace {

struct ShardMetrics {
  obs::Gauge& devices = obs::metrics().gauge(
      "curtain_fleet_devices", "devices enrolled in the campaign fleet");
  obs::Counter& wakeups = obs::metrics().counter(
      "curtain_fleet_wakeups_total",
      "hourly device wake-ups (participation coin tosses)");
};

ShardMetrics& shard_metrics() {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
  static thread_local obs::SheafLocal<ShardMetrics> metrics;
  return metrics.get();
}

}  // namespace

Shard::Shard(int shard_index, int carrier_index, int cohort_index,
             cellular::CellularNetwork& network, measure::WorldView world,
             const dns::DnsName& research_apex,
             measure::CampaignConfig campaign,
             measure::ExperimentConfig experiment, uint64_t seed,
             std::vector<CohortDevice> devices)
    : shard_index_(shard_index),
      carrier_index_(carrier_index),
      cohort_index_(cohort_index),
      label_(network.profile().name + "/cohort" + std::to_string(cohort_index)),
      campaign_(campaign),
      seed_(seed),
      runner_(world, measure::ResolverIdentifier(research_apex), experiment),
      devices_(std::move(devices)) {
  sheaf_.set_label(label_);
}

void Shard::stream_to(measure::RecordSink* sink) {
  stream_sink_ = sink;
  records_.drain_to(sink);
}

size_t Shard::approx_record_bytes() const { return records_.approx_bytes(); }

void Shard::run() {
  shard_metrics().devices.set(static_cast<double>(devices_.size()));
  const net::SimTime horizon = net::SimTime::from_days(campaign_.duration_days);
  // The device-stream base deliberately mixes in no shard or cohort index:
  // a device's stream depends only on (study seed, device id), so its whole
  // timeline is identical under every fleet partition.
  const net::Rng campaign_rng(
      net::mix_key(seed_, net::hash_tag("campaign")));

  // Device-major execution: each device's timeline runs to completion
  // before the next device starts. Devices share no laned state and draw
  // only from their own streams, so no cross-device interleave by
  // simulated time is needed — within a device the timeline is still
  // strictly time-ordered, and the shard's output is the concatenation of
  // its devices' outputs in enrollment order.
  for (CohortDevice& entry : devices_) {
    net::StateLaneGuard lane(entry.state_lane);
    runner_.begin_device();
    net::Rng rng = campaign_rng.derive("device-stream", entry.device.id());
    // Hourly wakes from a per-device phase; each wake tosses the
    // participation coin and possibly runs one experiment.
    net::SimTime at = net::SimTime::from_seconds(rng.uniform(0.0, 3600.0));
    while (at < horizon) {
      shard_metrics().wakeups.inc();
      if (rng.bernoulli(campaign_.participation)) {
        runner_.run(entry.device, carrier_index_, at, rng, records_);
      }
      at = at + net::SimTime::from_hours(1.0);
    }
  }
  if (stream_sink_ != nullptr) {
    // Forward the final partial block and let the sink flush, still on
    // the worker thread: the engine never touches streamed records.
    records_.flush();
    stream_sink_->finish();
  }
}

}  // namespace curtain::exec
