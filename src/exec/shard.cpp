#include "exec/shard.h"

#include <deque>

#include "net/geo.h"
#include "util/contract.h"

namespace curtain::exec {
namespace {

struct ShardMetrics {
  obs::Gauge& devices = obs::metrics().gauge(
      "curtain_fleet_devices", "devices enrolled in the campaign fleet");
  obs::Counter& wakeups = obs::metrics().counter(
      "curtain_fleet_wakeups_total",
      "hourly device wake-ups (participation coin tosses)");
};

ShardMetrics& shard_metrics() {
  // Per thread: handles must bind to the shard's sheaf (obs/metrics.h).
  static thread_local ShardMetrics metrics;
  return metrics;
}

}  // namespace

/// Self-rescheduling hourly wake-up for one device. Trivially copyable and
/// 40 bytes, so the event queue keeps it inline in the heap slot — the old
/// std::function closure of the same captures heap-allocated on every
/// reschedule. The RNG state lives in Shard::run's deque, not here, so
/// copies of the functor share the device's single stream.
struct DeviceWake {
  Shard* shard;
  cellular::Device* device;
  net::Rng* rng;
  net::EventQueue* queue;
  net::SimTime horizon;

  void operator()(net::SimTime at) const {
    shard->device_wake(*device, *rng, *queue, horizon, at);
  }
};

Shard::Shard(int shard_index, int carrier_index,
             cellular::CellularNetwork& network, measure::WorldView world,
             const dns::DnsName& research_apex,
             measure::CampaignConfig campaign,
             measure::ExperimentConfig experiment, uint64_t seed)
    : shard_index_(shard_index),
      carrier_index_(carrier_index),
      network_(network),
      campaign_(campaign),
      seed_(seed),
      runner_(world, measure::ResolverIdentifier(research_apex), experiment) {
  // Per-carrier device stream: volunteers cluster in large metros, with
  // scatter within a suburb. Keying by carrier index (not a fleet-wide
  // cursor) keeps every shard's draws independent of the others'.
  net::Rng rng(net::mix_key(net::mix_key(seed_, net::hash_tag("fleet")),
                            static_cast<uint64_t>(carrier_index_)));
  const auto& profile = network_.profile();
  const auto& metros =
      profile.country == "KR" ? net::kr_metros() : net::us_metros();
  CURTAIN_CHECK(!metros.empty()) << "no metros for country " << profile.country;
  // Device ids are banded per carrier in blocks of 1000 (see below); a
  // larger fleet would collide ids across carriers.
  CURTAIN_CHECK(profile.study_clients < 1000)
      << profile.name << " exceeds the 999-device id band";
  for (int d = 0; d < profile.study_clients; ++d) {
    const auto& metro =
        metros[static_cast<size_t>(rng.uniform_u64(0, metros.size() - 1))];
    const net::GeoPoint home = net::offset_km(
        metro.location, rng.uniform(-15, 15), rng.uniform(-15, 15));
    // Device ids are carrier-banded so they stay stable and unique no
    // matter which shards run or in which order.
    const uint64_t device_id =
        static_cast<uint64_t>(carrier_index_) * 1000 +
        static_cast<uint64_t>(d) + 1;
    devices_.push_back(
        std::make_unique<cellular::Device>(device_id, &network_, home));
  }
}

void Shard::run() {
  shard_metrics().devices.set(static_cast<double>(devices_.size()));

  net::SimClock clock;
  net::EventQueue queue;
  net::Rng campaign_rng(
      net::mix_key(net::mix_key(seed_, net::hash_tag("campaign")),
                   static_cast<uint64_t>(shard_index_)));
  const net::SimTime horizon = net::SimTime::from_days(campaign_.duration_days);

  // Each device wakes hourly with a per-device phase; on each wake it
  // tosses the participation coin and possibly runs one experiment.
  // The per-device RNG state is owned here, not by the DeviceWake functors
  // (copies of a functor must share the device's single stream); deque
  // keeps the pointers stable while entries are appended.
  std::deque<net::Rng> device_rngs;
  queue.reserve(devices_.size());
  for (auto& device_ptr : devices_) {
    cellular::Device* device = device_ptr.get();
    device_rngs.push_back(campaign_rng.derive("device-stream", device->id()));
    net::Rng* device_rng = &device_rngs.back();
    const net::SimTime phase =
        net::SimTime::from_seconds(device_rng->uniform(0.0, 3600.0));
    queue.schedule(phase, DeviceWake{this, device, device_rng, &queue, horizon});
  }

  // Wakes past the horizon are never scheduled, so this drains the queue.
  queue.run_until(clock, horizon);
}

void Shard::device_wake(cellular::Device& device, net::Rng& rng,
                        net::EventQueue& queue, net::SimTime horizon,
                        net::SimTime at) {
  shard_metrics().wakeups.inc();
  if (rng.bernoulli(campaign_.participation)) {
    runner_.run(device, carrier_index_, at, rng, dataset_);
  }
  const net::SimTime next = at + net::SimTime::from_hours(1.0);
  if (next < horizon) {
    queue.schedule(next, DeviceWake{this, &device, &rng, &queue, horizon});
  }
}

}  // namespace curtain::exec
