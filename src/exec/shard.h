// Shard: one carrier's slice of the campaign.
//
// The campaign partitions cleanly along carrier lines — devices only ever
// talk to their own carrier's gateways and resolvers, plus the immutable
// world substrate (backbone, hierarchy, CDNs, public DNS). A shard
// therefore owns everything mutable its devices touch during the run:
//
//   * a private virtual clock and event queue,
//   * RNG streams mixed from (study seed, shard index) — never shared,
//   * the carrier's device fleet (built from a per-carrier stream),
//   * an ExperimentRunner with its own sampling counters,
//   * a private Dataset the measurements append to, and
//   * a private metrics sheaf (obs::MetricsRegistry) all metric handles on
//     the shard's thread bind to.
//
// Carrier-private world state (NAT cursors, resolver caches) is already
// partitioned per shard slot (net/shard_slot.h), so shards never contend;
// CampaignEngine merges their outputs in shard-index order, which makes
// the merged dataset byte-identical for any worker count.
#pragma once

#include <memory>
#include <vector>

#include "cellular/carrier.h"
#include "cellular/device.h"
#include "measure/campaign.h"
#include "measure/experiment.h"
#include "measure/records.h"
#include "measure/worldview.h"
#include "net/clock.h"
#include "net/rng.h"
#include "obs/metrics.h"

namespace curtain::exec {

struct DeviceWake;

class Shard {
 public:
  Shard(int shard_index, int carrier_index, cellular::CellularNetwork& network,
        measure::WorldView world, const dns::DnsName& research_apex,
        measure::CampaignConfig campaign, measure::ExperimentConfig experiment,
        uint64_t seed);

  int shard_index() const { return shard_index_; }
  int carrier_index() const { return carrier_index_; }
  size_t device_count() const { return devices_.size(); }

  /// The shard's private outputs; owned here until the engine merges them.
  measure::Dataset& dataset() { return dataset_; }
  obs::MetricsRegistry& sheaf() { return sheaf_; }

  /// Runs the shard's whole campaign into its private dataset. Must run on
  /// the shard's worker thread with the shard slot (net::ShardSlotGuard)
  /// and the sheaf (obs::ScopedMetricsSheaf) bound.
  void run();

 private:
  friend struct DeviceWake;

  /// One hourly device wake-up: participation coin toss, maybe one
  /// experiment, and rescheduling of the next wake. Invoked by DeviceWake,
  /// the trivially copyable functor the event queue stores inline.
  void device_wake(cellular::Device& device, net::Rng& rng,
                   net::EventQueue& queue, net::SimTime horizon,
                   net::SimTime at);

  int shard_index_;
  int carrier_index_;
  cellular::CellularNetwork& network_;
  measure::CampaignConfig campaign_;
  uint64_t seed_;
  measure::ExperimentRunner runner_;
  std::vector<std::unique_ptr<cellular::Device>> devices_;
  measure::Dataset dataset_;
  obs::MetricsRegistry sheaf_;
};

}  // namespace curtain::exec
