// Shard: one (carrier, cohort) slice of the campaign.
//
// The campaign is embarrassingly parallel per *device*: a device only
// ever touches its own laned state (net/shard_slot.h) plus the immutable
// world substrate, so the fleet can be partitioned into any number of
// cohorts per carrier. A shard owns everything mutable its slice of
// devices touches during the run:
//
//   * the cohort's devices (handles into the carrier's SoA fleet built by
//     cellular::build_carrier_fleet), each carrying its global state lane,
//   * an ExperimentRunner whose sampling counters reset per device,
//   * a private RecordStore the measurements append to, and
//   * a private metrics sheaf (obs::MetricsRegistry) all metric handles
//     on the executing thread bind to while the shard runs.
//
// Execution is device-major: each device's whole timeline (hourly wakes
// from its phase to the horizon) runs to completion under its
// StateLaneGuard before the next device starts. Every result-affecting
// draw comes from the device's own stream, derived from (study seed,
// device id) alone — no shard or cohort index anywhere — so the shard's
// output is the concatenation of its devices' outputs regardless of the
// partition. CampaignEngine merges shard record streams in (carrier,
// cohort) order, which makes the merged stream byte-identical for every
// cohort count and worker count.
//
// For memory-bounded runs, stream_to() puts the shard's store into
// draining mode: sealed record blocks are forwarded to the given sink on
// the worker thread (with shard-local ids) instead of being retained.
#pragma once

#include <string>
#include <vector>

#include "cellular/carrier.h"
#include "cellular/device.h"
#include "measure/campaign.h"
#include "measure/experiment.h"
#include "measure/record_store.h"
#include "measure/worldview.h"
#include "net/rng.h"
#include "obs/metrics.h"

namespace curtain::exec {

class Shard {
 public:
  /// One enrolled device plus the global state lane its timeline runs in
  /// (lane = fleet-wide enrollment ordinal + 1; see net/shard_slot.h).
  struct CohortDevice {
    cellular::Device device;
    int state_lane = 0;
  };

  Shard(int shard_index, int carrier_index, int cohort_index,
        cellular::CellularNetwork& network, measure::WorldView world,
        const dns::DnsName& research_apex, measure::CampaignConfig campaign,
        measure::ExperimentConfig experiment, uint64_t seed,
        std::vector<CohortDevice> devices);

  int shard_index() const { return shard_index_; }
  int carrier_index() const { return carrier_index_; }
  int cohort_index() const { return cohort_index_; }
  size_t device_count() const { return devices_.size(); }
  /// "<carrier>/cohort<k>", the sheaf label and log/stat identity.
  const std::string& label() const { return label_; }

  /// The shard's private outputs; owned here until the engine merges them.
  measure::RecordStore& records() { return records_; }
  obs::MetricsRegistry& sheaf() { return sheaf_; }

  /// Streams sealed record blocks to `sink` (on the worker thread, with
  /// shard-local ids) instead of retaining them. Must be set before run().
  void stream_to(measure::RecordSink* sink);

  /// Approximate heap bytes of the shard's private record store — what
  /// this shard contributed to the run's memory high-water mark. A
  /// profiling gauge for the flight recorder (obs/memory.h).
  size_t approx_record_bytes() const;

  /// Runs the shard's whole campaign into its private record store. Must
  /// run with the shard slot (net::ShardSlotGuard) and the sheaf
  /// (obs::ScopedMetricsSheaf) bound; binds each device's state lane
  /// itself.
  void run();

 private:
  int shard_index_;
  int carrier_index_;
  int cohort_index_;
  std::string label_;
  measure::CampaignConfig campaign_;
  uint64_t seed_;
  measure::ExperimentRunner runner_;
  std::vector<CohortDevice> devices_;
  measure::RecordStore records_;
  measure::RecordSink* stream_sink_ = nullptr;
  obs::MetricsRegistry sheaf_;
};

}  // namespace curtain::exec
