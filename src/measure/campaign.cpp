#include "measure/campaign.h"

#include <algorithm>

namespace curtain::measure {

CampaignConfig CampaignConfig::scaled(double scale) {
  CampaignConfig config;
  if (scale <= 0.0) scale = 0.05;
  if (scale > 1.0) scale = 1.0;
  config.duration_days = 153.0 * scale;
  // Short campaigns keep per-carrier sample counts useful by boosting the
  // duty cycle (bounded well below always-on).
  config.participation = scale >= 0.5 ? 0.048 : std::min(0.25, 0.048 * 4.0);
  return config;
}

}  // namespace curtain::measure
