// Campaign shape: how long the fleet measures and how eagerly.
//
// The paper's campaign ran Mar 1 - Aug 1, 2014 (153 days) with 158
// volunteer devices waking hourly and running an experiment with the duty
// cycle of a background measurement app (~5%). These are *derived*
// tunables: Study computes them from Scenario::scale (core/scenario.h).
// There is deliberately no seed here — the single study seed lives in
// Scenario::seed, and execution shards receive mixed sub-streams of it
// (net::mix_key / net::hash_tag), never the raw value.
#pragma once

namespace curtain::measure {

struct CampaignConfig {
  double duration_days = 153.0;  ///< Mar 1 - Aug 1, 2014
  double participation = 0.048;  ///< per-device per-hour experiment odds

  /// Scale factor in (0,1]: scales duration (churn horizons) while
  /// boosting participation to keep per-carrier sample counts useful.
  static CampaignConfig scaled(double scale);
};

}  // namespace curtain::measure
