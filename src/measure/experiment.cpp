#include "measure/experiment.h"

#include <algorithm>

#include "cdn/domains.h"
#include "dns/stub.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace curtain::measure {
namespace {

net::SimTime ms(double v) { return net::SimTime::from_millis(v); }

struct ExperimentMetrics {
  obs::Counter& experiments = obs::metrics().counter(
      "curtain_measure_experiments_total", "hourly experiment scripts executed");
  obs::Counter& resolutions = obs::metrics().counter(
      "curtain_measure_resolutions_total",
      "timed domain resolutions recorded in the dataset");
  obs::Counter& probes = obs::metrics().counter(
      "curtain_measure_probes_total", "ping/HTTP probes recorded in the dataset");
  obs::Counter& traceroutes = obs::metrics().counter(
      "curtain_measure_traceroutes_total",
      "traceroutes recorded in the dataset");
  obs::Counter& traces = obs::metrics().counter(
      "curtain_measure_traces_sampled_total",
      "resolutions sampled for hop-by-hop tracing");
  obs::Histogram& resolution_ms = obs::metrics().histogram(
      "curtain_dns_resolution_ms", obs::Histogram::latency_ms_buckets(),
      "client-observed resolution time of responded lookups (ms)");
};

ExperimentMetrics& experiment_metrics() {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h).
  static thread_local obs::SheafLocal<ExperimentMetrics> metrics;
  return metrics.get();
}

}  // namespace

const char* resolver_kind_name(ResolverKind kind) {
  switch (kind) {
    case ResolverKind::kLocal: return "local";
    case ResolverKind::kGoogle: return "GoogleDNS";
    case ResolverKind::kOpenDns: return "OpenDNS";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(WorldView world,
                                   ResolverIdentifier identifier,
                                   ExperimentConfig config)
    : world_(world),
      probes_(world),
      identifier_(std::move(identifier)),
      config_(config) {}

void ExperimentRunner::begin_device() {
  ident_counter_ = 0;
  resolution_counter_ = 0;
}

ProbeOrigin ExperimentRunner::origin_for(cellular::Device& device,
                                         net::SimTime now,
                                         net::Rng& rng) const {
  ProbeOrigin origin;
  origin.anchor = device.gateway_node();
  origin.source_ip = device.snapshot().public_ip;
  origin.access_rtt_ms = device.access_rtt_ms(now, rng);
  return origin;
}

void ExperimentRunner::probe_target(cellular::Device& device,
                                    ProbeTargetKind target_kind,
                                    ResolverKind kind, net::Ipv4Addr target,
                                    uint32_t experiment_id, net::SimTime& now,
                                    net::Rng& rng, RecordStore& records,
                                    uint16_t domain_index, bool with_http) {
  {
    const ProbeOrigin origin = origin_for(device, now, rng);
    const PingOutcome ping = probes_.ping(origin, target, now, rng);
    ProbeMeasurement record;
    record.experiment_id = experiment_id;
    record.target_kind = target_kind;
    record.resolver = kind;
    record.domain_index = domain_index;
    record.target_ip = target;
    record.is_http = false;
    record.responded = ping.responded;
    record.rtt_ms = ping.rtt_ms;
    records.add_probe(record);
    experiment_metrics().probes.inc();
    now += ms(ping.responded ? ping.rtt_ms : 1000.0);  // timeout cost
  }
  if (with_http) {
    const ProbeOrigin origin = origin_for(device, now, rng);
    const HttpOutcome http = probes_.http_get(origin, target, now, rng);
    ProbeMeasurement record;
    record.experiment_id = experiment_id;
    record.target_kind = target_kind;
    record.resolver = kind;
    record.domain_index = domain_index;
    record.target_ip = target;
    record.is_http = true;
    record.responded = http.responded;
    record.rtt_ms = http.ttfb_ms;
    records.add_probe(record);
    experiment_metrics().probes.inc();
    now += ms(http.responded ? http.ttfb_ms : 2000.0);
  }
  if (rng.bernoulli(config_.traceroute_sample_p)) {
    const ProbeOrigin origin = origin_for(device, now, rng);
    TracerouteOutcome trace = probes_.traceroute(origin, target, now, rng);
    TracerouteMeasurement record;
    record.experiment_id = experiment_id;
    record.target_ip = target;
    record.target_kind = target_kind;
    record.reached = trace.reached;
    record.hop_names = std::move(trace.hop_names);
    records.add_traceroute(std::move(record));
    experiment_metrics().traceroutes.inc();
    // One 50 ms hop budget, regardless of hop count: the pre-block code
    // computed this from hop_names *after* moving it into the dataset, so
    // the count it saw was always zero. Kept for byte-compatibility.
    now += ms(50.0);
  }
}

void ExperimentRunner::measure_domains(cellular::Device& device,
                                       ResolverKind kind,
                                       net::Ipv4Addr resolver_ip,
                                       uint32_t experiment_id, net::SimTime& now,
                                       net::Rng& rng, RecordStore& records) {
  const auto& domains = cdn::study_domains();
  for (uint16_t d = 0; d < domains.size(); ++d) {
    const auto host = dns::DnsName::parse(domains[d].host);
    dns::StubResolver stub(device.gateway_node(), device.snapshot().public_ip,
                           world_.topology, world_.registry);
    // First lookup, then an immediate back-to-back repeat (Fig. 7).
    for (const bool second : {false, true}) {
      const double access = device.access_rtt_ms(now, rng);
      // Every Nth resolution is traced hop-by-hop against virtual time.
      const bool sampled =
          config_.trace_sample_every != 0 &&
          resolution_counter_++ % config_.trace_sample_every == 0;
      obs::Tracer& tracer = obs::Tracer::instance();
      const bool tracing = sampled && tracer.begin(now.millis());
      const dns::StubResult result =
          stub.query(resolver_ip, *host, dns::RRType::kA, now, rng, access);
      DnsMeasurement record;
      record.experiment_id = experiment_id;
      record.resolver = kind;
      record.domain_index = d;
      record.responded = result.responded;
      record.second_lookup = second;
      record.resolution_ms = result.responded ? result.total_ms : 5000.0;
      record.addresses = result.addresses();
      if (tracing) {
        obs::ResolutionTrace trace = tracer.end(now.millis() + result.total_ms);
        // Attach only complete resolutions: the 5 s timeout sentinel is not
        // decomposable into spans, so it would break the partition invariant.
        if (result.responded) {
          record.trace_index = records.add_trace(std::move(trace));
          experiment_metrics().traces.inc();
        }
      }
      experiment_metrics().resolutions.inc();
      if (result.responded) {
        experiment_metrics().resolution_ms.observe(result.total_ms);
      }
      now += ms(record.resolution_ms);

      if (!second) {
        // Probe every replica the first resolution returned.
        std::vector<net::Ipv4Addr> replicas = record.addresses;
        std::sort(replicas.begin(), replicas.end());
        replicas.erase(std::unique(replicas.begin(), replicas.end()),
                       replicas.end());
        records.add_resolution(std::move(record));
        for (const net::Ipv4Addr replica : replicas) {
          probe_target(device, ProbeTargetKind::kReplica, kind, replica,
                       experiment_id, now, rng, records, d, /*with_http=*/true);
        }
      } else {
        records.add_resolution(std::move(record));
      }
    }
  }
}

void ExperimentRunner::identify_resolver(cellular::Device& device,
                                         ResolverKind kind,
                                         net::Ipv4Addr resolver_ip,
                                         uint32_t experiment_id,
                                         net::SimTime& now, net::Rng& rng,
                                         RecordStore& records) {
  const dns::DnsName probe =
      identifier_.probe_name(device.id(), ident_counter_++);
  dns::StubResolver stub(device.gateway_node(), device.snapshot().public_ip,
                         world_.topology, world_.registry);
  const double access = device.access_rtt_ms(now, rng);
  const dns::StubResult result =
      stub.query(resolver_ip, probe, dns::RRType::kA, now, rng, access);
  ResolverObservation observation;
  observation.experiment_id = experiment_id;
  observation.resolver = kind;
  observation.resolution_ms = result.total_ms;
  const auto external = ResolverIdentifier::extract(result.answers);
  if (result.responded && external) {
    observation.responded = true;
    observation.external_ip = *external;
  }
  now += ms(result.responded ? result.total_ms : 5000.0);
  records.add_observation(observation);

  // Ping (+ sampled traceroute) the identified external resolver; for the
  // locally configured resolver this is the Fig. 4 "External" series.
  if (observation.responded) {
    probe_target(device, ProbeTargetKind::kExternalResolver, kind,
                 observation.external_ip, experiment_id, now, rng, records);
  }
}

net::SimTime ExperimentRunner::run(cellular::Device& device, int carrier_index,
                                   net::SimTime start, net::Rng& rng,
                                   RecordStore& records) {
  experiment_metrics().experiments.inc();
  const cellular::DeviceSnapshot snapshot = device.begin_experiment(start, rng);

  ExperimentContext context;
  context.device_id = device.id();
  context.carrier_index = carrier_index;
  context.started = start;
  context.radio = snapshot.radio;
  context.location = snapshot.location;
  context.gateway_index = snapshot.gateway_index;
  context.public_ip = snapshot.public_ip;
  context.configured_resolver = snapshot.configured_resolver;
  const uint32_t experiment_id = records.add_experiment(context);

  net::SimTime now = start;

  // 1. Bootstrap ping: pays the RRC promotion so the measurements that
  //    follow see the radio in its high-power state (§3.2).
  probe_target(device, ProbeTargetKind::kBootstrap, ResolverKind::kLocal,
               config_.google_vip, experiment_id, now, rng, records);

  // 2. Domain resolutions + replica probes for all three resolver kinds.
  measure_domains(device, ResolverKind::kLocal, snapshot.configured_resolver,
                  experiment_id, now, rng, records);
  measure_domains(device, ResolverKind::kGoogle, config_.google_vip,
                  experiment_id, now, rng, records);
  measure_domains(device, ResolverKind::kOpenDns, config_.opendns_vip,
                  experiment_id, now, rng, records);

  // 3. Resolver identification (+ external resolver probes).
  identify_resolver(device, ResolverKind::kLocal, snapshot.configured_resolver,
                    experiment_id, now, rng, records);
  identify_resolver(device, ResolverKind::kGoogle, config_.google_vip,
                    experiment_id, now, rng, records);
  identify_resolver(device, ResolverKind::kOpenDns, config_.opendns_vip,
                    experiment_id, now, rng, records);

  // 4. Probes to the configured resolver and the public VIPs (Figs. 4, 11).
  probe_target(device, ProbeTargetKind::kClientResolver, ResolverKind::kLocal,
               snapshot.configured_resolver, experiment_id, now, rng, records);
  probe_target(device, ProbeTargetKind::kPublicVip, ResolverKind::kGoogle,
               config_.google_vip, experiment_id, now, rng, records);
  probe_target(device, ProbeTargetKind::kPublicVip, ResolverKind::kOpenDns,
               config_.opendns_vip, experiment_id, now, rng, records);

  return now;
}

}  // namespace curtain::measure
