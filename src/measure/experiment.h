// The hourly experiment script (paper §3.2).
//
// Each run, executed on-device:
//   1. a bootstrap ping to wake the radio (mitigates RRC promotion skew);
//   2. for each of the nine study domains × {local DNS, Google DNS,
//      OpenDNS}: a timed resolution, an immediate back-to-back repeat
//      (cache study, Fig. 7), then ping + HTTP GET (+ sampled traceroute)
//      to every replica address returned;
//   3. resolver identification against the research ADNS for all three
//      resolver kinds;
//   4. ping (+ sampled traceroute) to the configured resolver, to the
//      identified external resolver, and to the public DNS VIPs.
// Probes run back-to-back to hold the radio in its high-power state.
#pragma once

#include "cellular/device.h"
#include "measure/probes.h"
#include "measure/record_store.h"
#include "measure/resolver_ident.h"

namespace curtain::measure {

struct ExperimentConfig {
  /// Fraction of replica/resolver probes that also run a traceroute
  /// (traceroutes are bulky; the paper stored 2.4M probes total).
  double traceroute_sample_p = 0.25;
  net::Ipv4Addr google_vip{8, 8, 8, 8};
  net::Ipv4Addr opendns_vip{208, 67, 222, 222};
  /// Record a hop-by-hop ResolutionTrace for every Nth domain resolution
  /// (0 disables tracing entirely).
  uint32_t trace_sample_every = 64;
};

class ExperimentRunner {
 public:
  ExperimentRunner(WorldView world, ResolverIdentifier identifier,
                   ExperimentConfig config);

  /// Resets the runner's sampling counters for a new device timeline.
  /// Trace sampling and identification-probe names then depend only on
  /// (device, position in the device's own history) — never on which
  /// cohort shard ran the device or what ran before it — which keeps
  /// exports byte-identical across cohort partitions. Identification
  /// names stay globally unique because probe_name() keys them by
  /// (device id, per-device counter).
  void begin_device();

  /// Runs one experiment for `device` starting at `start`; appends all
  /// records to `records` and returns the experiment's end time.
  net::SimTime run(cellular::Device& device, int carrier_index,
                   net::SimTime start, net::Rng& rng, RecordStore& records);

 private:
  /// One resolver kind's slice of the experiment (step 2 for one column).
  void measure_domains(cellular::Device& device, ResolverKind kind,
                       net::Ipv4Addr resolver_ip, uint32_t experiment_id,
                       net::SimTime& now, net::Rng& rng, RecordStore& records);

  void identify_resolver(cellular::Device& device, ResolverKind kind,
                         net::Ipv4Addr resolver_ip, uint32_t experiment_id,
                         net::SimTime& now, net::Rng& rng, RecordStore& records);

  void probe_target(cellular::Device& device, ProbeTargetKind target_kind,
                    ResolverKind kind, net::Ipv4Addr target,
                    uint32_t experiment_id, net::SimTime& now, net::Rng& rng,
                    RecordStore& records, uint16_t domain_index = 0,
                    bool with_http = false);

  ProbeOrigin origin_for(cellular::Device& device, net::SimTime now,
                         net::Rng& rng) const;

  WorldView world_;
  ProbeEngine probes_;
  ResolverIdentifier identifier_;
  ExperimentConfig config_;
  uint64_t ident_counter_ = 0;       ///< per device; see begin_device()
  uint64_t resolution_counter_ = 0;  ///< drives trace sampling, per device
};

}  // namespace curtain::measure
