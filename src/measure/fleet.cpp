#include "measure/fleet.h"

#include <algorithm>
#include <functional>

#include "net/geo.h"
#include "obs/metrics.h"

namespace curtain::measure {
namespace {

struct FleetMetrics {
  obs::Gauge& devices = obs::metrics().gauge(
      "curtain_fleet_devices", "devices enrolled in the campaign fleet");
  obs::Counter& wakeups = obs::metrics().counter(
      "curtain_fleet_wakeups_total",
      "hourly device wake-ups (participation coin tosses)");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics metrics;
  return metrics;
}

}  // namespace

CampaignConfig CampaignConfig::scaled(double scale, uint64_t seed) {
  CampaignConfig config;
  config.seed = seed;
  if (scale <= 0.0) scale = 0.05;
  if (scale > 1.0) scale = 1.0;
  config.duration_days = 153.0 * scale;
  // Short campaigns keep per-carrier sample counts useful by boosting the
  // duty cycle (bounded well below always-on).
  config.participation = scale >= 0.5 ? 0.048 : std::min(0.25, 0.048 * 4.0);
  return config;
}

Fleet::Fleet(std::vector<CarrierEntry> carriers, ExperimentRunner* runner,
             CampaignConfig config)
    : carriers_(std::move(carriers)), runner_(runner), config_(config) {
  net::Rng rng(net::mix_key(config_.seed, net::hash_tag("fleet")));
  uint64_t next_device_id = 1;
  for (const auto& entry : carriers_) {
    const auto& profile = entry.network->profile();
    const auto& metros =
        profile.country == "KR" ? net::kr_metros() : net::us_metros();
    for (int d = 0; d < profile.study_clients; ++d) {
      // Volunteers cluster in large metros; scatter within a suburb.
      const auto& metro = metros[static_cast<size_t>(
          rng.uniform_u64(0, metros.size() - 1))];
      const net::GeoPoint home = net::offset_km(
          metro.location, rng.uniform(-15, 15), rng.uniform(-15, 15));
      devices_.push_back(std::make_unique<cellular::Device>(
          next_device_id++, entry.network, home));
      device_carrier_index_.push_back(entry.carrier_index);
    }
  }
  fleet_metrics().devices.set(static_cast<double>(devices_.size()));
}

void Fleet::run_campaign(Dataset& dataset) {
  net::SimClock clock;
  net::EventQueue queue;
  net::Rng campaign_rng(net::mix_key(config_.seed, net::hash_tag("campaign")));
  const net::SimTime horizon = net::SimTime::from_days(config_.duration_days);

  // Each device wakes hourly with a per-device phase; on each wake it
  // tosses the participation coin and possibly runs one experiment.
  for (size_t i = 0; i < devices_.size(); ++i) {
    cellular::Device* device = devices_[i].get();
    const int carrier_index = device_carrier_index_[i];
    auto device_rng = std::make_shared<net::Rng>(
        campaign_rng.derive("device-stream", device->id()));
    const net::SimTime phase = net::SimTime::from_seconds(
        device_rng->uniform(0.0, 3600.0));

    // Self-rescheduling hourly wake-up.
    auto wake = std::make_shared<std::function<void(net::SimTime)>>();
    *wake = [this, device, carrier_index, device_rng, wake, &queue, &dataset,
             horizon](net::SimTime at) {
      fleet_metrics().wakeups.inc();
      if (device_rng->bernoulli(config_.participation)) {
        runner_->run(*device, carrier_index, at, *device_rng, dataset);
      }
      const net::SimTime next = at + net::SimTime::from_hours(1.0);
      if (next < horizon) queue.schedule(next, *wake);
    };
    queue.schedule(phase, *wake);
  }

  while (queue.run_next(clock)) {
  }
}

}  // namespace curtain::measure
