// The device fleet and campaign scheduler.
//
// Builds the Table 1 fleet (33/9/31/64 US + 17/4 KR devices) and drives
// the five-month campaign on the event queue: every device wakes hourly
// and, with the participation probability of a background measurement app,
// runs one experiment. The paper's 158 clients produced ~28k experiments
// over five months — about a 5% hourly duty cycle — which is the default
// here too.
#pragma once

#include <memory>
#include <vector>

#include "cellular/device.h"
#include "measure/experiment.h"
#include "net/clock.h"

namespace curtain::measure {

struct CampaignConfig {
  double duration_days = 153.0;  ///< Mar 1 - Aug 1, 2014
  double participation = 0.048;  ///< per-device per-hour experiment odds
  uint64_t seed = 20141105;
  /// Scale factor in (0,1]: scales duration (churn horizons) while
  /// boosting participation to keep per-carrier sample counts useful.
  static CampaignConfig scaled(double scale, uint64_t seed);
};

class Fleet {
 public:
  /// One carrier entry: the network plus its index into study_carriers().
  struct CarrierEntry {
    cellular::CellularNetwork* network;
    int carrier_index;
  };

  Fleet(std::vector<CarrierEntry> carriers, ExperimentRunner* runner,
        CampaignConfig config);

  /// Number of devices built (Table 1 totals).
  size_t device_count() const { return devices_.size(); }
  const std::vector<std::unique_ptr<cellular::Device>>& devices() const {
    return devices_;
  }

  /// Runs the whole campaign, filling `dataset`.
  void run_campaign(Dataset& dataset);

 private:
  std::vector<CarrierEntry> carriers_;
  ExperimentRunner* runner_;
  CampaignConfig config_;
  std::vector<std::unique_ptr<cellular::Device>> devices_;
  std::vector<int> device_carrier_index_;
};

}  // namespace curtain::measure
