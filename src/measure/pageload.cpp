#include "measure/pageload.h"

#include <cmath>

namespace curtain::measure {

double downlink_mbps(cellular::RadioTech tech) {
  using cellular::RadioGeneration;
  using cellular::RadioTech;
  switch (cellular::radio_generation(tech)) {
    case RadioGeneration::k4G:
      return 18.0;  // LTE category-3 era
    case RadioGeneration::k3G:
      // HSPA+ is notably faster than plain UMTS/EV-DO.
      return tech == RadioTech::kHspap ? 6.0 : 1.8;
    case RadioGeneration::k2G:
      return 0.12;
  }
  return 1.0;
}

PageLoadOutcome PageLoadEstimator::load(const ProbeOrigin& origin,
                                        net::Ipv4Addr replica,
                                        cellular::RadioTech radio,
                                        double resolution_ms,
                                        const PageSpec& page, net::SimTime now,
                                        net::Rng& rng) const {
  PageLoadOutcome outcome;
  const net::NodeId node = probes_.target_node(origin, replica, now);
  if (node == net::kInvalidNode) return outcome;

  // kb / (mbps) => ms: kb * 8 bits / (mbps * 1000 bits/ms) * 1000.
  const double mbps = downlink_mbps(radio);
  const auto transfer_time_ms = [mbps](double kb) { return kb * 8.0 / mbps; };

  // HTML first: handshake RTT + request RTT + body transfer.
  const HttpOutcome html = probes_.http_get(origin, replica, now, rng);
  if (!html.responded) return outcome;
  double total = resolution_ms + html.ttfb_ms + transfer_time_ms(page.html_kb);
  double transfer = transfer_time_ms(page.html_kb);

  // Objects in waves over the connection pool. Each wave costs a radio
  // access RTT + wired request round trip, then the wave's bytes share
  // the downlink.
  outcome.waves = static_cast<int>(std::ceil(
      static_cast<double>(page.num_objects) /
      static_cast<double>(page.parallel_connections)));
  for (int wave = 0; wave < outcome.waves; ++wave) {
    const int in_wave =
        std::min(page.parallel_connections,
                 page.num_objects - wave * page.parallel_connections);
    const HttpOutcome request = probes_.http_get(origin, replica, now, rng);
    if (!request.responded) return outcome;
    // Mild per-object size variation keeps waves from being identical.
    const double wave_kb =
        static_cast<double>(in_wave) * rng.lognormal_median(page.object_kb, 0.3);
    total += request.ttfb_ms + transfer_time_ms(wave_kb);
    transfer += transfer_time_ms(wave_kb);
  }

  outcome.completed = true;
  outcome.plt_ms = total;
  outcome.transfer_ms = transfer;
  return outcome;
}

}  // namespace curtain::measure
