// Page-load-time model.
//
// The paper compares replicas by ping RTT rather than page-load time,
// citing Gember et al. (IMC'12): PLT is less stable and more
// context-sensitive. This extension models a whole page fetch — DNS,
// TCP handshake, then waves of object downloads over parallel
// connections whose transfer time depends on the radio's downlink — so
// the trade-off (PLT realism vs ping stability) can be measured instead
// of assumed (bench/ext_page_load).
#pragma once

#include "cellular/radio.h"
#include "measure/probes.h"

namespace curtain::measure {

/// Composition of a web page, HTML plus subresources.
struct PageSpec {
  double html_kb = 60.0;
  int num_objects = 28;          ///< images/scripts/styles
  double object_kb = 24.0;       ///< mean object size
  int parallel_connections = 6;  ///< browser connection pool per host

  /// A typical 2014 mobile landing page.
  static PageSpec mobile_default() { return PageSpec{}; }
};

/// Downlink throughput for a radio technology, in kilobits per ms
/// (i.e. Mbps): what the transfer phase of each wave is limited by.
double downlink_mbps(cellular::RadioTech tech);

struct PageLoadOutcome {
  bool completed = false;
  double plt_ms = 0.0;       ///< resolution + handshake + transfers
  double transfer_ms = 0.0;  ///< bandwidth-bound share
  int waves = 0;             ///< request rounds over the connection pool
};

class PageLoadEstimator {
 public:
  explicit PageLoadEstimator(WorldView world) : probes_(world) {}

  /// Models loading `page` from `replica`: `resolution_ms` is the DNS time
  /// already measured; every request wave pays a radio access RTT plus the
  /// wired RTT, and transfers are bounded by the radio downlink.
  PageLoadOutcome load(const ProbeOrigin& origin, net::Ipv4Addr replica,
                       cellular::RadioTech radio, double resolution_ms,
                       const PageSpec& page, net::SimTime now,
                       net::Rng& rng) const;

 private:
  ProbeEngine probes_;
};

}  // namespace curtain::measure
