#include "measure/probes.h"

namespace curtain::measure {

net::NodeId ProbeEngine::target_node(const ProbeOrigin& origin,
                                     net::Ipv4Addr target,
                                     net::SimTime now) const {
  if (const dns::DnsServer* server = world_.registry.find(target)) {
    return server->node_for(origin.source_ip, now);
  }
  return world_.topology.find_by_ip(target);
}

PingOutcome ProbeEngine::ping(const ProbeOrigin& origin, net::Ipv4Addr target,
                              net::SimTime now, net::Rng& rng) const {
  PingOutcome outcome;
  const net::NodeId node = target_node(origin, target, now);
  if (node == net::kInvalidNode) return outcome;
  const net::PingResult result = world_.topology.ping(origin.anchor, node, rng);
  if (!result.responded) return outcome;
  outcome.responded = true;
  outcome.rtt_ms = origin.access_rtt_ms + result.rtt_ms;
  return outcome;
}

HttpOutcome ProbeEngine::http_get(const ProbeOrigin& origin,
                                  net::Ipv4Addr target, net::SimTime now,
                                  net::Rng& rng) const {
  HttpOutcome outcome;
  const net::NodeId node = target_node(origin, target, now);
  if (node == net::kInvalidNode) return outcome;
  // TCP handshake round trip (no server think time)...
  const auto syn = world_.topology.transport_rtt_ms(origin.anchor, node, rng);
  // ...then GET -> first byte (server processing included in transport).
  const auto get = world_.topology.transport_rtt_ms(origin.anchor, node, rng);
  if (!syn || !get) return outcome;
  outcome.responded = true;
  outcome.ttfb_ms = 2.0 * origin.access_rtt_ms + *syn + *get;
  return outcome;
}

TracerouteOutcome ProbeEngine::traceroute(const ProbeOrigin& origin,
                                          net::Ipv4Addr target,
                                          net::SimTime now,
                                          net::Rng& rng) const {
  TracerouteOutcome outcome;
  const net::NodeId node = target_node(origin, target, now);
  if (node == net::kInvalidNode) return outcome;
  const net::TracerouteResult result =
      world_.topology.traceroute(origin.anchor, node, rng);
  outcome.reached = result.reached_destination;
  outcome.hop_names.reserve(result.hops.size() + 1);
  // A cellular client's first visible hop is its gateway (the NAT/PGW box
  // anchoring the device); the radio segment itself never answers TTLs.
  const net::Node& anchor = world_.topology.node(origin.anchor);
  if (anchor.kind == net::NodeKind::kGateway) {
    outcome.hop_names.push_back(anchor.name);
  }
  for (const auto& hop : result.hops) {
    outcome.hop_names.push_back(
        hop.responded ? world_.topology.node(hop.node).name : "*");
  }
  return outcome;
}

}  // namespace curtain::measure
