// Client-side probe engine: ping, traceroute and HTTP GET from a device
// (or a wired vantage point) to an IP address.
//
// Targets are looked up the way packets are routed: a ServerRegistry hit
// means the address is an (anycast-capable) DNS service and the probe goes
// to whichever instance currently serves the prober; otherwise the unicast
// owner of the IP is probed. Cellular probers pay their radio access RTT
// on top of every wired round trip.
#pragma once

#include "measure/worldview.h"

namespace curtain::measure {

/// Where a probe originates.
struct ProbeOrigin {
  net::NodeId anchor = net::kInvalidNode;  ///< gateway or vantage host
  net::Ipv4Addr source_ip;
  /// Radio access RTT already sampled for this probe (0 for wired).
  double access_rtt_ms = 0.0;
};

struct PingOutcome {
  bool responded = false;
  double rtt_ms = 0.0;
};

struct HttpOutcome {
  bool responded = false;
  double ttfb_ms = 0.0;  ///< time to first byte
};

struct TracerouteOutcome {
  bool reached = false;
  std::vector<std::string> hop_names;  ///< "*" for silent hops
};

class ProbeEngine {
 public:
  explicit ProbeEngine(WorldView world) : world_(world) {}

  PingOutcome ping(const ProbeOrigin& origin, net::Ipv4Addr target,
                   net::SimTime now, net::Rng& rng) const;

  /// HTTP GET to the index page: TCP handshake + request/first byte, i.e.
  /// two wired round trips (the second carrying server think time), plus
  /// the radio access RTT per round trip for cellular probers.
  HttpOutcome http_get(const ProbeOrigin& origin, net::Ipv4Addr target,
                       net::SimTime now, net::Rng& rng) const;

  TracerouteOutcome traceroute(const ProbeOrigin& origin, net::Ipv4Addr target,
                               net::SimTime now, net::Rng& rng) const;

  /// Resolves a probe target to the topology node that would answer.
  net::NodeId target_node(const ProbeOrigin& origin, net::Ipv4Addr target,
                          net::SimTime now) const;

 private:
  WorldView world_;
};

}  // namespace curtain::measure
