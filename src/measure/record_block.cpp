#include "measure/record_block.h"

#include <limits>

#include "util/contract.h"

namespace curtain::measure {

std::string_view TracerouteRow::hop(size_t i) const {
  CURTAIN_DCHECK(i < hop_count) << "hop " << i << " of " << hop_count;
  return block->hop_name(hop_begin + static_cast<uint32_t>(i));
}

void RecordBlock::append_experiment(const ExperimentContext& context) {
  experiments.push_back(context);
  ++rows;
}

void RecordBlock::append_resolution(const DnsMeasurement& record) {
  CURTAIN_DCHECK(record.addresses.size() <=
                 std::numeric_limits<uint16_t>::max())
      << record.addresses.size();
  resolutions.experiment_id.push_back(record.experiment_id);
  resolutions.resolution_ms.push_back(record.resolution_ms);
  resolutions.addr_begin.push_back(static_cast<uint32_t>(addr_pool.size()));
  resolutions.trace_index.push_back(record.trace_index);
  resolutions.domain_index.push_back(record.domain_index);
  resolutions.addr_count.push_back(
      static_cast<uint16_t>(record.addresses.size()));
  resolutions.resolver.push_back(static_cast<uint8_t>(record.resolver));
  resolutions.flags.push_back(
      static_cast<uint8_t>((record.responded ? kFlagResponded : 0) |
                           (record.second_lookup ? kFlagSecondLookup : 0)));
  addr_pool.insert(addr_pool.end(), record.addresses.begin(),
                   record.addresses.end());
  ++rows;
}

void RecordBlock::append_probe(const ProbeMeasurement& record) {
  probes.experiment_id.push_back(record.experiment_id);
  probes.target_ip.push_back(record.target_ip);
  probes.rtt_ms.push_back(record.rtt_ms);
  probes.domain_index.push_back(record.domain_index);
  probes.target_kind.push_back(static_cast<uint8_t>(record.target_kind));
  probes.resolver.push_back(static_cast<uint8_t>(record.resolver));
  probes.flags.push_back(
      static_cast<uint8_t>((record.responded ? kFlagResponded : 0) |
                           (record.is_http ? kFlagHttp : 0)));
  ++rows;
}

void RecordBlock::append_traceroute(TracerouteMeasurement&& record) {
  CURTAIN_DCHECK(record.hop_names.size() <=
                 std::numeric_limits<uint16_t>::max())
      << record.hop_names.size();
  traceroutes.experiment_id.push_back(record.experiment_id);
  traceroutes.target_ip.push_back(record.target_ip);
  traceroutes.hop_begin.push_back(static_cast<uint32_t>(hop_starts.size()));
  traceroutes.hop_count.push_back(
      static_cast<uint16_t>(record.hop_names.size()));
  traceroutes.target_kind.push_back(static_cast<uint8_t>(record.target_kind));
  traceroutes.reached.push_back(record.reached ? 1 : 0);
  for (const std::string& hop : record.hop_names) {
    hop_starts.push_back(static_cast<uint32_t>(hop_chars.size()));
    hop_chars.insert(hop_chars.end(), hop.begin(), hop.end());
  }
  record.hop_names.clear();
  ++rows;
}

void RecordBlock::append_observation(const ResolverObservation& record) {
  observations.push_back(record);
  ++rows;
}

void RecordBlock::append_vantage(const VantageProbe& record) {
  vantage_probes.push_back(record);
  ++rows;
}

void RecordBlock::append_trace(obs::ResolutionTrace&& trace) {
  traces.push_back(std::move(trace));
  ++rows;
}

ResolutionRow RecordBlock::resolution_row(size_t i) const {
  CURTAIN_DCHECK(i < resolutions.size()) << i;
  ResolutionRow row;
  row.experiment_id = resolutions.experiment_id[i];
  row.resolver = static_cast<ResolverKind>(resolutions.resolver[i]);
  row.domain_index = resolutions.domain_index[i];
  row.responded = (resolutions.flags[i] & kFlagResponded) != 0;
  row.second_lookup = (resolutions.flags[i] & kFlagSecondLookup) != 0;
  row.resolution_ms = resolutions.resolution_ms[i];
  row.addresses = std::span<const net::Ipv4Addr>(
      addr_pool.data() + resolutions.addr_begin[i], resolutions.addr_count[i]);
  row.trace_index = resolutions.trace_index[i];
  return row;
}

ProbeRow RecordBlock::probe_row(size_t i) const {
  CURTAIN_DCHECK(i < probes.size()) << i;
  ProbeRow row;
  row.experiment_id = probes.experiment_id[i];
  row.target_kind = static_cast<ProbeTargetKind>(probes.target_kind[i]);
  row.resolver = static_cast<ResolverKind>(probes.resolver[i]);
  row.domain_index = probes.domain_index[i];
  row.target_ip = probes.target_ip[i];
  row.is_http = (probes.flags[i] & kFlagHttp) != 0;
  row.responded = (probes.flags[i] & kFlagResponded) != 0;
  row.rtt_ms = probes.rtt_ms[i];
  return row;
}

TracerouteRow RecordBlock::traceroute_row(size_t i) const {
  CURTAIN_DCHECK(i < traceroutes.size()) << i;
  TracerouteRow row;
  row.experiment_id = traceroutes.experiment_id[i];
  row.target_ip = traceroutes.target_ip[i];
  row.target_kind = static_cast<ProbeTargetKind>(traceroutes.target_kind[i]);
  row.reached = traceroutes.reached[i] != 0;
  row.hop_count = traceroutes.hop_count[i];
  row.block = this;
  row.hop_begin = traceroutes.hop_begin[i];
  return row;
}

std::string_view RecordBlock::hop_name(uint32_t hop_index) const {
  CURTAIN_DCHECK(hop_index < hop_starts.size()) << hop_index;
  const uint32_t begin = hop_starts[hop_index];
  const uint32_t end = hop_index + 1 < hop_starts.size()
                           ? hop_starts[hop_index + 1]
                           : static_cast<uint32_t>(hop_chars.size());
  return std::string_view(hop_chars.data() + begin, end - begin);
}

void RecordBlock::shift_ids(uint32_t experiment_base, int32_t trace_base) {
  for (auto& context : experiments) context.experiment_id += experiment_base;
  for (auto& id : resolutions.experiment_id) id += experiment_base;
  for (auto& id : probes.experiment_id) id += experiment_base;
  for (auto& id : traceroutes.experiment_id) id += experiment_base;
  for (auto& observation : observations) {
    observation.experiment_id += experiment_base;
  }
  for (auto& index : resolutions.trace_index) {
    if (index >= 0) index += trace_base;
  }
}

namespace {
template <typename T>
size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}
}  // namespace

size_t RecordBlock::approx_bytes() const {
  size_t bytes = vec_bytes(experiments) + vec_bytes(observations) +
                 vec_bytes(vantage_probes) + vec_bytes(traces) +
                 vec_bytes(addr_pool) + vec_bytes(hop_starts) +
                 vec_bytes(hop_chars);
  bytes += vec_bytes(resolutions.experiment_id) +
           vec_bytes(resolutions.resolution_ms) +
           vec_bytes(resolutions.addr_begin) +
           vec_bytes(resolutions.trace_index) +
           vec_bytes(resolutions.domain_index) +
           vec_bytes(resolutions.addr_count) +
           vec_bytes(resolutions.resolver) + vec_bytes(resolutions.flags);
  bytes += vec_bytes(probes.experiment_id) + vec_bytes(probes.target_ip) +
           vec_bytes(probes.rtt_ms) + vec_bytes(probes.domain_index) +
           vec_bytes(probes.target_kind) + vec_bytes(probes.resolver) +
           vec_bytes(probes.flags);
  bytes += vec_bytes(traceroutes.experiment_id) +
           vec_bytes(traceroutes.target_ip) + vec_bytes(traceroutes.hop_begin) +
           vec_bytes(traceroutes.hop_count) +
           vec_bytes(traceroutes.target_kind) + vec_bytes(traceroutes.reached);
  for (const auto& trace : traces) {
    bytes += trace.spans.capacity() * sizeof(obs::TraceSpan);
  }
  return bytes;
}

}  // namespace curtain::measure
