// Columnar record blocks — the unit of the streaming measurement pipeline.
//
// A RecordBlock is a fixed-budget batch of measurement records in
// struct-of-arrays layout. Shards append transfer structs (records.h) one at
// a time; the block packs hot scalar fields into parallel columns and
// variable-length payloads (answer addresses, traceroute hop names) into
// per-block pools, the same slab idiom the simulation core uses for its
// event queue. Once a block reaches its row budget the owning RecordStore
// seals it and either retains it (in-memory analysis) or hands it to a
// RecordSink (streaming export) — so campaign memory is bounded by the
// block budget, not the campaign length (DESIGN.md §15).
//
// Blocks are self-contained: ids can be renumbered in place (shift_ids)
// when shard-local streams are merged into one campaign-global stream, and
// every record can be materialized back into a row view without touching
// any other block.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "measure/records.h"
#include "net/ipv4.h"
#include "obs/trace.h"

namespace curtain::measure {

struct RecordBlock;

/// Row views materialized from the columns. Cheap to copy; `addresses`
/// (and traceroute hop accessors) view the owning block's pools, so a row
/// must not outlive its block.
struct ResolutionRow {
  uint32_t experiment_id = 0;
  ResolverKind resolver = ResolverKind::kLocal;
  uint16_t domain_index = 0;
  bool responded = false;
  bool second_lookup = false;
  double resolution_ms = 0.0;
  std::span<const net::Ipv4Addr> addresses;
  int32_t trace_index = -1;
};

struct ProbeRow {
  uint32_t experiment_id = 0;
  ProbeTargetKind target_kind = ProbeTargetKind::kReplica;
  ResolverKind resolver = ResolverKind::kLocal;
  uint16_t domain_index = 0;
  net::Ipv4Addr target_ip;
  bool is_http = false;
  bool responded = false;
  double rtt_ms = 0.0;
};

struct TracerouteRow {
  uint32_t experiment_id = 0;
  net::Ipv4Addr target_ip;
  ProbeTargetKind target_kind = ProbeTargetKind::kReplica;
  bool reached = false;
  size_t hop_count = 0;
  /// Hop `i` (0-based, in client order); views the block's char pool.
  std::string_view hop(size_t i) const;

  const RecordBlock* block = nullptr;
  uint32_t hop_begin = 0;  ///< first entry in the block's hop_starts
};

struct RecordBlock {
  // Flag bits shared by the resolution and probe columns.
  static constexpr uint8_t kFlagResponded = 1u << 0;
  static constexpr uint8_t kFlagSecondLookup = 1u << 1;
  static constexpr uint8_t kFlagHttp = 1u << 2;

  // --- low-volume streams: plain rows ----------------------------------
  // Sealed at the block row budget, so these never grow past one block.
  std::vector<ExperimentContext> experiments;      // lint: bounded
  std::vector<ResolverObservation> observations;   // lint: bounded
  std::vector<VantageProbe> vantage_probes;        // lint: bounded
  /// Hop-by-hop virtual-time traces of sampled resolutions (see
  /// ResolutionRow::trace_index). Sampled 1-in-64, so AoS is fine.
  std::vector<obs::ResolutionTrace> traces;        // lint: bounded

  // --- resolutions: SoA columns + shared address pool -------------------
  struct ResolutionColumns {
    std::vector<uint32_t> experiment_id;
    std::vector<double> resolution_ms;
    std::vector<uint32_t> addr_begin;  ///< into RecordBlock::addr_pool
    std::vector<int32_t> trace_index;
    std::vector<uint16_t> domain_index;
    std::vector<uint16_t> addr_count;
    std::vector<uint8_t> resolver;
    std::vector<uint8_t> flags;
    size_t size() const { return experiment_id.size(); }
  };
  ResolutionColumns resolutions;
  std::vector<net::Ipv4Addr> addr_pool;

  // --- probes: SoA (no variable payload) --------------------------------
  struct ProbeColumns {
    std::vector<uint32_t> experiment_id;
    std::vector<net::Ipv4Addr> target_ip;
    std::vector<double> rtt_ms;
    std::vector<uint16_t> domain_index;
    std::vector<uint8_t> target_kind;
    std::vector<uint8_t> resolver;
    std::vector<uint8_t> flags;
    size_t size() const { return experiment_id.size(); }
  };
  ProbeColumns probes;

  // --- traceroutes: SoA + hop-name char pool ----------------------------
  // Hop names are stored back to back in hop_chars; hop_starts[i] is the
  // offset of stored hop i. Because appends are contiguous, hop i ends
  // where hop i+1 starts (or at hop_chars.size() for the last one), so no
  // per-hop length column is needed.
  struct TracerouteColumns {
    std::vector<uint32_t> experiment_id;
    std::vector<net::Ipv4Addr> target_ip;
    std::vector<uint32_t> hop_begin;  ///< into RecordBlock::hop_starts
    std::vector<uint16_t> hop_count;
    std::vector<uint8_t> target_kind;
    std::vector<uint8_t> reached;
    size_t size() const { return experiment_id.size(); }
  };
  TracerouteColumns traceroutes;
  std::vector<uint32_t> hop_starts;
  std::vector<char> hop_chars;

  /// Total records appended across all streams (the seal budget).
  size_t rows = 0;

  // --- append (pack a transfer struct into the columns) -----------------
  void append_experiment(const ExperimentContext& context);
  void append_resolution(const DnsMeasurement& record);
  void append_probe(const ProbeMeasurement& record);
  void append_traceroute(TracerouteMeasurement&& record);
  void append_observation(const ResolverObservation& record);
  void append_vantage(const VantageProbe& record);
  void append_trace(obs::ResolutionTrace&& trace);

  // --- row access -------------------------------------------------------
  ResolutionRow resolution_row(size_t i) const;
  ProbeRow probe_row(size_t i) const;
  TracerouteRow traceroute_row(size_t i) const;
  std::string_view hop_name(uint32_t hop_index) const;

  /// Renumbers shard-local ids into a campaign-global stream: adds
  /// `experiment_base` to every experiment_id column and `trace_base` to
  /// every non-negative trace_index.
  void shift_ids(uint32_t experiment_base, int32_t trace_base);

  bool empty() const { return rows == 0; }

  /// Approximate heap footprint: column and pool *capacities* (what RSS
  /// sees). Payload bytes live in the pools and are counted exactly once —
  /// row views are materialized on demand and own nothing.
  size_t approx_bytes() const;
};

}  // namespace curtain::measure
