#include "measure/record_store.h"

#include <algorithm>
#include <limits>

#include "util/flags.h"

namespace curtain::measure {

namespace {

/// Binary search over (first ordinal, block index) pairs: the entry owning
/// `ordinal` is the last one whose base is <= ordinal.
size_t owning_block(const std::vector<std::pair<size_t, size_t>>& index,
                    size_t ordinal) {
  auto it = std::upper_bound(
      index.begin(), index.end(), ordinal,
      [](size_t value, const std::pair<size_t, size_t>& entry) {
        return value < entry.first;
      });
  CURTAIN_CHECK(it != index.begin()) << "record ordinal " << ordinal
                                     << " before the first retained block";
  return static_cast<size_t>(it - index.begin()) - 1;
}

}  // namespace

RecordStore::RecordStore(size_t block_rows)
    : block_rows_(block_rows != 0 ? block_rows : util::record_block_rows()) {}

RecordBlock& RecordStore::open_block() {
  if (!open_) {
    blocks_.emplace_back();
    open_ = true;
  }
  return blocks_.back();
}

void RecordStore::seal_open() {
  if (!open_) return;
  open_ = false;
  if (drain_ != nullptr) {
    RecordBlock block = std::move(blocks_.back());
    blocks_.pop_back();
    if (!block.empty()) drain_->consume(std::move(block));
  } else if (blocks_.back().empty()) {
    blocks_.pop_back();
  }
}

void RecordStore::seal_if_full() {
  if (open_ && blocks_.back().rows >= block_rows_) seal_open();
}

void RecordStore::index_block_streams(const RecordBlock& block,
                                      size_t block_index,
                                      size_t first_experiment,
                                      size_t first_trace,
                                      size_t first_resolution) {
  if (drain_ != nullptr) return;
  if (!block.experiments.empty()) {
    experiment_index_.emplace_back(first_experiment, block_index);
  }
  if (!block.traces.empty()) {
    trace_index_.emplace_back(first_trace, block_index);
  }
  if (block.resolutions.size() != 0) {
    resolution_index_.emplace_back(first_resolution, block_index);
  }
}

uint32_t RecordStore::add_experiment(ExperimentContext context) {
  CURTAIN_CHECK(next_experiment_id_ !=
                std::numeric_limits<uint32_t>::max())
      << "experiment id space exhausted";
  const uint32_t id = next_experiment_id_++;
  context.experiment_id = id;
  RecordBlock& block = open_block();
  if (drain_ == nullptr && block.experiments.empty()) {
    experiment_index_.emplace_back(static_cast<size_t>(id),
                                   blocks_.size() - 1);
  }
  block.append_experiment(context);
  ++experiment_count_;
  seal_if_full();
  return id;
}

void RecordStore::add_resolution(DnsMeasurement&& record) {
  RecordBlock& block = open_block();
  if (drain_ == nullptr && block.resolutions.size() == 0) {
    resolution_index_.emplace_back(resolution_count_, blocks_.size() - 1);
  }
  block.append_resolution(record);
  ++resolution_count_;
  seal_if_full();
}

void RecordStore::add_probe(const ProbeMeasurement& record) {
  open_block().append_probe(record);
  ++probe_count_;
  seal_if_full();
}

void RecordStore::add_traceroute(TracerouteMeasurement&& record) {
  open_block().append_traceroute(std::move(record));
  ++traceroute_count_;
  seal_if_full();
}

void RecordStore::add_observation(const ResolverObservation& record) {
  open_block().append_observation(record);
  ++observation_count_;
  seal_if_full();
}

void RecordStore::add_vantage(const VantageProbe& record) {
  open_block().append_vantage(record);
  ++vantage_count_;
  seal_if_full();
}

int32_t RecordStore::add_trace(obs::ResolutionTrace&& trace) {
  CURTAIN_CHECK(next_trace_index_ != std::numeric_limits<int32_t>::max())
      << "trace index space exhausted";
  const int32_t index = next_trace_index_++;
  RecordBlock& block = open_block();
  if (drain_ == nullptr && block.traces.empty()) {
    trace_index_.emplace_back(static_cast<size_t>(index), blocks_.size() - 1);
  }
  block.append_trace(std::move(trace));
  ++trace_count_;
  seal_if_full();
  return index;
}

void RecordStore::drain_to(RecordSink* sink) {
  CURTAIN_CHECK(blocks_.empty())
      << "drain_to must be set before the first append";
  drain_ = sink;
}

void RecordStore::flush() { seal_open(); }

void RecordStore::consume(RecordBlock&& block) {
  if (block.empty()) return;
  seal_open();
  if (!block.experiments.empty()) {
    CURTAIN_CHECK(block.experiments.front().experiment_id ==
                  next_experiment_id_)
        << "consumed block breaks the dense experiment-id sequence";
    CURTAIN_CHECK(block.experiments.size() <=
                  std::numeric_limits<uint32_t>::max() - next_experiment_id_)
        << "experiment id space exhausted";
  }
  CURTAIN_CHECK(block.traces.size() <=
                static_cast<size_t>(std::numeric_limits<int32_t>::max() -
                                    next_trace_index_))
      << "trace index space exhausted";
  index_block_streams(block, blocks_.size(),
                      static_cast<size_t>(next_experiment_id_),
                      static_cast<size_t>(next_trace_index_),
                      resolution_count_);
  next_experiment_id_ += static_cast<uint32_t>(block.experiments.size());
  next_trace_index_ += static_cast<int32_t>(block.traces.size());
  experiment_count_ += block.experiments.size();
  resolution_count_ += block.resolutions.size();
  probe_count_ += block.probes.size();
  traceroute_count_ += block.traceroutes.size();
  observation_count_ += block.observations.size();
  vantage_count_ += block.vantage_probes.size();
  trace_count_ += block.traces.size();
  if (drain_ != nullptr) {
    drain_->consume(std::move(block));
  } else {
    blocks_.push_back(std::move(block));
  }
}

void RecordStore::drain_renumbered(RecordSink& sink, uint32_t experiment_base,
                                   int32_t trace_base) {
  flush();
  CURTAIN_CHECK(static_cast<uint64_t>(experiment_base) + next_experiment_id_ <=
                std::numeric_limits<uint32_t>::max())
      << "merged campaign would overflow the 32-bit experiment-id space";
  CURTAIN_CHECK(static_cast<int64_t>(trace_base) + next_trace_index_ <=
                std::numeric_limits<int32_t>::max())
      << "merged campaign would overflow the 32-bit trace-index space";
  for (RecordBlock& block : blocks_) {
    block.shift_ids(experiment_base, trace_base);
    sink.consume(std::move(block));
  }
  blocks_.clear();
  experiment_index_.clear();
  trace_index_.clear();
  resolution_index_.clear();
  open_ = false;
  next_experiment_id_ = 0;
  next_trace_index_ = 0;
  experiment_count_ = 0;
  resolution_count_ = 0;
  probe_count_ = 0;
  traceroute_count_ = 0;
  observation_count_ = 0;
  vantage_count_ = 0;
  trace_count_ = 0;
}

void RecordStore::replay(RecordSink& sink) const {
  for (const RecordBlock& block : blocks_) {
    if (block.empty()) continue;
    sink.consume(RecordBlock(block));
  }
  sink.finish();
}

const ExperimentContext& RecordStore::context_of(
    uint32_t experiment_id) const {
  CURTAIN_DCHECK(experiment_id < next_experiment_id_)
      << "experiment " << experiment_id << " of " << next_experiment_id_;
  CURTAIN_CHECK(drain_ == nullptr)
      << "context_of is unavailable on a draining store";
  const size_t entry = owning_block(experiment_index_, experiment_id);
  const auto& [base, block_index] = experiment_index_[entry];
  const RecordBlock& block = blocks_[block_index];
  const size_t offset = experiment_id - base;
  CURTAIN_DCHECK(offset < block.experiments.size()) << offset;
  return block.experiments[offset];
}

const obs::ResolutionTrace& RecordStore::trace_at(int32_t index) const {
  CURTAIN_DCHECK(index >= 0 && index < next_trace_index_)
      << "trace " << index << " of " << next_trace_index_;
  CURTAIN_CHECK(drain_ == nullptr)
      << "trace_at is unavailable on a draining store";
  const size_t ordinal = static_cast<size_t>(index);
  const size_t entry = owning_block(trace_index_, ordinal);
  const auto& [base, block_index] = trace_index_[entry];
  const RecordBlock& block = blocks_[block_index];
  const size_t offset = ordinal - base;
  CURTAIN_DCHECK(offset < block.traces.size()) << offset;
  return block.traces[offset];
}

ResolutionRow RecordStore::resolution_at(size_t index) const {
  CURTAIN_DCHECK(index < resolution_count_)
      << "resolution " << index << " of " << resolution_count_;
  CURTAIN_CHECK(drain_ == nullptr)
      << "resolution_at is unavailable on a draining store";
  const size_t entry = owning_block(resolution_index_, index);
  const auto& [base, block_index] = resolution_index_[entry];
  const RecordBlock& block = blocks_[block_index];
  const size_t offset = index - base;
  CURTAIN_DCHECK(offset < block.resolutions.size()) << offset;
  return block.resolution_row(offset);
}

size_t RecordStore::approx_bytes() const {
  size_t bytes = blocks_.capacity() * sizeof(RecordBlock);
  for (const RecordBlock& block : blocks_) bytes += block.approx_bytes();
  bytes += experiment_index_.capacity() * sizeof(experiment_index_[0]) +
           trace_index_.capacity() * sizeof(trace_index_[0]) +
           resolution_index_.capacity() * sizeof(resolution_index_[0]);
  return bytes;
}

}  // namespace curtain::measure
