// RecordStore: the campaign's measurement stream, in record blocks.
//
// This is the single owner type for campaign output, replacing the old
// grow-forever `measure::Dataset`. Producers append transfer structs
// (records.h); the store packs them into columnar RecordBlocks
// (record_block.h), sealing a block whenever it reaches the row budget
// (CURTAIN_BLOCK_ROWS). What happens to sealed blocks is the mode switch:
//
//   * retained (default): sealed blocks accumulate in the store, and
//     analyses walk them through the cursor ranges below — the in-memory
//     workflow, same results as the old Dataset but in column layout.
//   * draining (drain_to): sealed blocks are forwarded to a RecordSink and
//     freed, so the store holds at most one open block regardless of
//     campaign length — the bounded-memory workflow for 10^6-device fleets.
//
// Record identity: experiment ids and trace indices are assigned densely in
// append order. Shard-local streams are renumbered into the campaign-global
// stream with drain_renumbered(), which reproduces the serial merge order
// exactly — exports are byte-identical for every shard/cohort/block-size
// combination (shard_determinism_test).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "measure/record_block.h"
#include "measure/records.h"
#include "obs/trace.h"
#include "util/contract.h"

namespace curtain::measure {

/// Consumer side of the streaming pipeline. Blocks arrive in stream order;
/// within and across blocks, records of each stream appear in append order
/// and experiment ids are dense and increasing.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void consume(RecordBlock&& block) = 0;
  /// Called once after the final block; flush buffers here.
  virtual void finish() {}
};

namespace detail {

/// Forward cursor over one stream across a chain of blocks. `Adapter`
/// supplies the per-block stream size and row accessor.
template <typename Adapter>
class BlockCursor {
 public:
  BlockCursor(const std::vector<RecordBlock>* blocks, size_t block)
      : blocks_(blocks), block_(block) {
    skip_empty();
  }

  decltype(auto) operator*() const {
    return Adapter::row((*blocks_)[block_], row_);
  }
  BlockCursor& operator++() {
    if (++row_ >= Adapter::size((*blocks_)[block_])) {
      ++block_;
      row_ = 0;
      skip_empty();
    }
    return *this;
  }
  bool operator==(const BlockCursor& other) const {
    return block_ == other.block_ && row_ == other.row_;
  }

 private:
  void skip_empty() {
    while (block_ < blocks_->size() &&
           Adapter::size((*blocks_)[block_]) == 0) {
      ++block_;
    }
  }

  const std::vector<RecordBlock>* blocks_;
  size_t block_;
  size_t row_ = 0;
};

template <typename Adapter>
class BlockRange {
 public:
  explicit BlockRange(const std::vector<RecordBlock>* blocks)
      : blocks_(blocks) {}
  BlockCursor<Adapter> begin() const { return {blocks_, 0}; }
  BlockCursor<Adapter> end() const { return {blocks_, blocks_->size()}; }

 private:
  const std::vector<RecordBlock>* blocks_;
};

struct ExperimentAdapter {
  static size_t size(const RecordBlock& b) { return b.experiments.size(); }
  static const ExperimentContext& row(const RecordBlock& b, size_t i) {
    return b.experiments[i];
  }
};
struct ResolutionAdapter {
  static size_t size(const RecordBlock& b) { return b.resolutions.size(); }
  static ResolutionRow row(const RecordBlock& b, size_t i) {
    return b.resolution_row(i);
  }
};
struct ProbeAdapter {
  static size_t size(const RecordBlock& b) { return b.probes.size(); }
  static ProbeRow row(const RecordBlock& b, size_t i) {
    return b.probe_row(i);
  }
};
struct TracerouteAdapter {
  static size_t size(const RecordBlock& b) { return b.traceroutes.size(); }
  static TracerouteRow row(const RecordBlock& b, size_t i) {
    return b.traceroute_row(i);
  }
};
struct ObservationAdapter {
  static size_t size(const RecordBlock& b) { return b.observations.size(); }
  static const ResolverObservation& row(const RecordBlock& b, size_t i) {
    return b.observations[i];
  }
};
struct VantageAdapter {
  static size_t size(const RecordBlock& b) { return b.vantage_probes.size(); }
  static const VantageProbe& row(const RecordBlock& b, size_t i) {
    return b.vantage_probes[i];
  }
};

}  // namespace detail

class RecordStore final : public RecordSink {
 public:
  /// Block row budget 0 means "read CURTAIN_BLOCK_ROWS" (util/flags.h).
  explicit RecordStore(size_t block_rows = 0);

  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;

  // --- producer API -----------------------------------------------------
  /// Stamps the next dense experiment id into `context`, appends it and
  /// returns the id.
  uint32_t add_experiment(ExperimentContext context);
  void add_resolution(DnsMeasurement&& record);
  void add_probe(const ProbeMeasurement& record);
  void add_traceroute(TracerouteMeasurement&& record);
  void add_observation(const ResolverObservation& record);
  void add_vantage(const VantageProbe& record);
  /// Appends a sampled resolution trace and returns its index (for
  /// DnsMeasurement::trace_index).
  int32_t add_trace(obs::ResolutionTrace&& trace);

  // --- streaming --------------------------------------------------------
  /// Switches to draining mode: sealed blocks are forwarded to `sink` and
  /// freed instead of retained. Must be set before the first append.
  /// Random access (context_of, trace_at, cursor ranges) is unavailable
  /// while draining.
  void drain_to(RecordSink* sink);
  /// Seals the open block (forwarding it when draining). Call at
  /// end-of-stream; appending after a flush starts a fresh block.
  void flush();

  /// RecordSink: appends someone else's sealed block. Incoming ids must
  /// continue this store's dense sequence (shift first — see
  /// drain_renumbered).
  void consume(RecordBlock&& block) override;
  void finish() override { flush(); }

  /// Flushes, renumbers every retained block's ids by the given bases and
  /// hands the blocks to `sink` in order, leaving this store empty. This is
  /// the deterministic shard merge: calling it per shard in shard-index
  /// order with accumulated bases reproduces the serial record stream.
  void drain_renumbered(RecordSink& sink, uint32_t experiment_base,
                        int32_t trace_base);

  /// Copies every retained block into `sink` (then finish()). Lets the
  /// streaming consumers run from an in-memory store — the byte-identity
  /// bridge between the two workflows.
  void replay(RecordSink& sink) const;

  // --- totals (valid in both modes) -------------------------------------
  size_t experiment_count() const { return experiment_count_; }
  size_t resolution_count() const { return resolution_count_; }
  size_t probe_count() const { return probe_count_; }
  size_t traceroute_count() const { return traceroute_count_; }
  size_t observation_count() const { return observation_count_; }
  size_t vantage_count() const { return vantage_count_; }
  size_t trace_count() const { return trace_count_; }
  /// Totals the paper reports in §3.1 (for sanity reporting).
  size_t total_resolutions() const { return resolution_count_; }
  size_t total_probes() const { return probe_count_ + traceroute_count_; }

  // --- cursors (retained mode only) -------------------------------------
  detail::BlockRange<detail::ExperimentAdapter> experiments() const {
    return detail::BlockRange<detail::ExperimentAdapter>(&blocks_);
  }
  detail::BlockRange<detail::ResolutionAdapter> resolutions() const {
    return detail::BlockRange<detail::ResolutionAdapter>(&blocks_);
  }
  detail::BlockRange<detail::ProbeAdapter> probes() const {
    return detail::BlockRange<detail::ProbeAdapter>(&blocks_);
  }
  detail::BlockRange<detail::TracerouteAdapter> traceroutes() const {
    return detail::BlockRange<detail::TracerouteAdapter>(&blocks_);
  }
  detail::BlockRange<detail::ObservationAdapter> observations() const {
    return detail::BlockRange<detail::ObservationAdapter>(&blocks_);
  }
  detail::BlockRange<detail::VantageAdapter> vantage_probes() const {
    return detail::BlockRange<detail::VantageAdapter>(&blocks_);
  }

  /// Context of an experiment by id. O(log #blocks): ids are dense, so the
  /// row is found by binary search on per-block base ids.
  const ExperimentContext& context_of(uint32_t experiment_id) const;
  const obs::ResolutionTrace& trace_at(int32_t index) const;
  /// Resolution by global append index (random access for tests).
  ResolutionRow resolution_at(size_t index) const;

  const std::vector<RecordBlock>& blocks() const { return blocks_; }

  /// Approximate heap footprint of the retained blocks (capacities, what
  /// RSS sees). Pools are counted once inside RecordBlock::approx_bytes —
  /// no slab-vs-payload double count. A profiling gauge (obs/memory.h).
  size_t approx_bytes() const;

 private:
  RecordBlock& open_block();
  void seal_open();
  void seal_if_full();
  /// Records that the open/incoming block carries stream rows starting at
  /// the current global offsets (for the retained-mode random accessors).
  void index_block_streams(const RecordBlock& block, size_t block_index,
                           size_t first_experiment, size_t first_trace,
                           size_t first_resolution);

  size_t block_rows_;
  RecordSink* drain_ = nullptr;
  bool open_ = false;  ///< blocks_.back() accepts appends
  std::vector<RecordBlock> blocks_;  // lint: record-growth (retained mode)

  uint32_t next_experiment_id_ = 0;
  int32_t next_trace_index_ = 0;
  size_t experiment_count_ = 0;
  size_t resolution_count_ = 0;
  size_t probe_count_ = 0;
  size_t traceroute_count_ = 0;
  size_t observation_count_ = 0;
  size_t vantage_count_ = 0;
  size_t trace_count_ = 0;

  /// Retained-mode random-access indexes: (first global ordinal, block
  /// index), one entry per block that carries the stream.
  std::vector<std::pair<size_t, size_t>> experiment_index_;
  std::vector<std::pair<size_t, size_t>> trace_index_;
  std::vector<std::pair<size_t, size_t>> resolution_index_;
};

}  // namespace curtain::measure
