// Measurement record types — the schema of the study's dataset.
//
// Every record the analyses consume is something a real client app (or the
// university vantage point) could log: resolution times, answer addresses,
// probe RTTs, traceroute hop lists, and resolver identities learned through
// the research ADNS. Analyses never peek at simulator internals; they work
// from these records exactly as the paper worked from its app logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellular/radio.h"
#include "net/geo.h"
#include "net/ipv4.h"
#include "net/time.h"
#include "obs/trace.h"
#include "util/contract.h"

namespace curtain::measure {

/// Which resolver a measurement exercised.
enum class ResolverKind { kLocal = 0, kGoogle = 1, kOpenDns = 2 };
constexpr size_t kNumResolverKinds = 3;
const char* resolver_kind_name(ResolverKind kind);

/// Context shared by every measurement of one experiment run.
struct ExperimentContext {
  uint32_t experiment_id = 0;
  uint64_t device_id = 0;
  int carrier_index = 0;  ///< into cellular::study_carriers()
  net::SimTime started;
  cellular::RadioTech radio = cellular::RadioTech::kLte;
  net::GeoPoint location;
  int gateway_index = 0;
  net::Ipv4Addr public_ip;
  net::Ipv4Addr configured_resolver;
};

/// One DNS resolution of a study domain.
struct DnsMeasurement {
  uint32_t experiment_id = 0;
  ResolverKind resolver = ResolverKind::kLocal;
  uint16_t domain_index = 0;  ///< into cdn::study_domains()
  bool responded = false;
  bool second_lookup = false;  ///< back-to-back repeat (Fig. 7)
  double resolution_ms = 0.0;
  std::vector<net::Ipv4Addr> addresses;
  /// Index into Dataset::resolution_traces when this resolution was
  /// sampled for hop-by-hop tracing; -1 otherwise.
  int32_t trace_index = -1;
};

enum class ProbeTargetKind {
  kReplica,           ///< CDN replica returned by a resolution
  kClientResolver,    ///< device-configured resolver address
  kExternalResolver,  ///< external-facing resolver learned via the ADNS
  kPublicVip,         ///< public DNS service address
  kBootstrap,         ///< radio wake-up probe
};

/// A ping or HTTP GET (time-to-first-byte) probe.
struct ProbeMeasurement {
  uint32_t experiment_id = 0;
  ProbeTargetKind target_kind = ProbeTargetKind::kReplica;
  ResolverKind resolver = ResolverKind::kLocal;  ///< who selected the target
  uint16_t domain_index = 0;                     ///< for replica targets
  net::Ipv4Addr target_ip;
  bool is_http = false;  ///< false: ICMP ping; true: HTTP GET TTFB
  bool responded = false;
  double rtt_ms = 0.0;  ///< ping RTT or HTTP TTFB
};

/// One traceroute, stored as the hop names the client would see.
struct TracerouteMeasurement {
  uint32_t experiment_id = 0;
  net::Ipv4Addr target_ip;
  ProbeTargetKind target_kind = ProbeTargetKind::kReplica;
  bool reached = false;
  /// Responding hops in order; "*" for silent hops.
  std::vector<std::string> hop_names;
};

/// External-facing resolver identity observed through the research ADNS.
struct ResolverObservation {
  uint32_t experiment_id = 0;
  ResolverKind resolver = ResolverKind::kLocal;
  bool responded = false;
  net::Ipv4Addr external_ip;  ///< address our ADNS saw querying
  double resolution_ms = 0.0;
};

/// A probe launched from the wired university vantage point (Table 4).
struct VantageProbe {
  net::Ipv4Addr target_ip;
  int carrier_index = 0;
  bool ping_responded = false;
  bool traceroute_reached = false;
};

/// The whole campaign's output.
struct Dataset {
  std::vector<ExperimentContext> experiments;
  std::vector<DnsMeasurement> resolutions;
  std::vector<ProbeMeasurement> probes;
  std::vector<TracerouteMeasurement> traceroutes;
  std::vector<ResolverObservation> resolver_observations;
  std::vector<VantageProbe> vantage_probes;
  /// Hop-by-hop virtual-time traces of sampled resolutions (see
  /// DnsMeasurement::trace_index).
  std::vector<obs::ResolutionTrace> resolution_traces;

  const ExperimentContext& context_of(uint32_t experiment_id) const {
    CURTAIN_DCHECK(experiment_id < experiments.size())
        << "experiment " << experiment_id << " of " << experiments.size();
    return experiments[experiment_id];
  }

  /// Totals the paper reports in §3.1 (for sanity reporting).
  size_t total_resolutions() const { return resolutions.size(); }
  size_t total_probes() const { return probes.size() + traceroutes.size(); }

  /// Approximate heap footprint of the record vectors, counting
  /// *capacities* (what RSS sees) plus the dynamic payloads inside
  /// records. A profiling gauge (obs/memory.h) — megabyte-accurate, not
  /// byte-exact: small-string buffers double-count and allocator
  /// headers are uncounted.
  size_t approx_bytes() const {
    size_t bytes =
        experiments.capacity() * sizeof(ExperimentContext) +
        resolutions.capacity() * sizeof(DnsMeasurement) +
        probes.capacity() * sizeof(ProbeMeasurement) +
        traceroutes.capacity() * sizeof(TracerouteMeasurement) +
        resolver_observations.capacity() * sizeof(ResolverObservation) +
        vantage_probes.capacity() * sizeof(VantageProbe) +
        resolution_traces.capacity() * sizeof(obs::ResolutionTrace);
    for (const auto& r : resolutions) {
      bytes += r.addresses.capacity() * sizeof(net::Ipv4Addr);
    }
    for (const auto& t : traceroutes) {
      bytes += t.hop_names.capacity() * sizeof(std::string);
      for (const auto& hop : t.hop_names) bytes += hop.capacity();
    }
    for (const auto& t : resolution_traces) {
      bytes += t.spans.capacity() * sizeof(obs::TraceSpan);
    }
    return bytes;
  }
};

}  // namespace curtain::measure
