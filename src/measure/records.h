// Measurement record types — the schema of the study's dataset.
//
// Every record the analyses consume is something a real client app (or the
// university vantage point) could log: resolution times, answer addresses,
// probe RTTs, traceroute hop lists, and resolver identities learned through
// the research ADNS. Analyses never peek at simulator internals; they work
// from these records exactly as the paper worked from its app logs.
//
// These are *transfer* structs: producers fill one record at a time and hand
// it to a measure::RecordStore (record_store.h), which packs the fields into
// columnar record blocks (record_block.h). Nothing retains vectors of these
// fat structs any more — that is the whole point of the record-block
// pipeline (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellular/radio.h"
#include "net/geo.h"
#include "net/ipv4.h"
#include "net/time.h"

namespace curtain::measure {

/// Which resolver a measurement exercised.
enum class ResolverKind { kLocal = 0, kGoogle = 1, kOpenDns = 2 };
constexpr size_t kNumResolverKinds = 3;
const char* resolver_kind_name(ResolverKind kind);

/// Context shared by every measurement of one experiment run.
struct ExperimentContext {
  uint32_t experiment_id = 0;
  uint64_t device_id = 0;
  int carrier_index = 0;  ///< into cellular::study_carriers()
  net::SimTime started;
  cellular::RadioTech radio = cellular::RadioTech::kLte;
  net::GeoPoint location;
  int gateway_index = 0;
  net::Ipv4Addr public_ip;
  net::Ipv4Addr configured_resolver;
};

/// One DNS resolution of a study domain.
struct DnsMeasurement {
  uint32_t experiment_id = 0;
  ResolverKind resolver = ResolverKind::kLocal;
  uint16_t domain_index = 0;  ///< into cdn::study_domains()
  bool responded = false;
  bool second_lookup = false;  ///< back-to-back repeat (Fig. 7)
  double resolution_ms = 0.0;
  std::vector<net::Ipv4Addr> addresses;
  /// Index into the store's resolution traces when this resolution was
  /// sampled for hop-by-hop tracing; -1 otherwise.
  int32_t trace_index = -1;
};

enum class ProbeTargetKind {
  kReplica,           ///< CDN replica returned by a resolution
  kClientResolver,    ///< device-configured resolver address
  kExternalResolver,  ///< external-facing resolver learned via the ADNS
  kPublicVip,         ///< public DNS service address
  kBootstrap,         ///< radio wake-up probe
};

/// A ping or HTTP GET (time-to-first-byte) probe.
struct ProbeMeasurement {
  uint32_t experiment_id = 0;
  ProbeTargetKind target_kind = ProbeTargetKind::kReplica;
  ResolverKind resolver = ResolverKind::kLocal;  ///< who selected the target
  uint16_t domain_index = 0;                     ///< for replica targets
  net::Ipv4Addr target_ip;
  bool is_http = false;  ///< false: ICMP ping; true: HTTP GET TTFB
  bool responded = false;
  double rtt_ms = 0.0;  ///< ping RTT or HTTP TTFB
};

/// One traceroute, stored as the hop names the client would see.
struct TracerouteMeasurement {
  uint32_t experiment_id = 0;
  net::Ipv4Addr target_ip;
  ProbeTargetKind target_kind = ProbeTargetKind::kReplica;
  bool reached = false;
  /// Responding hops in order; "*" for silent hops.
  std::vector<std::string> hop_names;
};

/// External-facing resolver identity observed through the research ADNS.
struct ResolverObservation {
  uint32_t experiment_id = 0;
  ResolverKind resolver = ResolverKind::kLocal;
  bool responded = false;
  net::Ipv4Addr external_ip;  ///< address our ADNS saw querying
  double resolution_ms = 0.0;
};

/// A probe launched from the wired university vantage point (Table 4).
struct VantageProbe {
  net::Ipv4Addr target_ip;
  int carrier_index = 0;
  bool ping_responded = false;
  bool traceroute_reached = false;
};

}  // namespace curtain::measure
