#include "measure/resolver_ident.h"

namespace curtain::measure {

dns::DnsName ResolverIdentifier::probe_name(uint64_t device_id,
                                            uint64_t counter) const {
  auto adns = apex_.child("adns");
  std::string device_label = "d";
  device_label += std::to_string(device_id);
  std::string probe_label = "r";
  probe_label += std::to_string(counter);
  auto device = adns->child(device_label);
  auto name = device->child(probe_label);
  return *name;
}

std::optional<net::Ipv4Addr> ResolverIdentifier::extract(
    const std::vector<dns::ResourceRecord>& answers) {
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<dns::ARecord>(&rr.rdata)) {
      return a->address;
    }
  }
  return std::nullopt;
}

void ResolverIdentifier::install_handler(dns::AuthoritativeServer& adns) {
  adns.set_dynamic_handler(
      [](const dns::Question& question, net::Ipv4Addr resolver_ip,
         const std::optional<dns::EdnsClientSubnet>& /*ecs*/,
         net::SimTime /*now*/, net::Rng& /*rng*/)
          -> std::optional<std::vector<dns::ResourceRecord>> {
        if (question.type != dns::RRType::kA) return std::nullopt;
        // TTL 0: never cached, every query reaches us (§3.2).
        return std::vector<dns::ResourceRecord>{
            dns::ResourceRecord::a(question.name, resolver_ip, 0)};
      },
      /*dynamic_ttl_s=*/0);
}

}  // namespace curtain::measure
