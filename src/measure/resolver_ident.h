// Resolver identification via a controlled authoritative DNS
// (the technique of Mao et al., used by the paper in §3.2).
//
// The client resolves a *unique* name under a zone whose ADNS answers with
// the address of whatever resolver sent it the query. Uniqueness defeats
// every cache on the path, so each probe reveals the external-facing
// resolver serving the client right now.
#pragma once

#include <optional>

#include "dns/authoritative.h"
#include "dns/name.h"

namespace curtain::measure {

class ResolverIdentifier {
 public:
  /// `apex` is the research zone ("curtain-study.net").
  explicit ResolverIdentifier(dns::DnsName apex) : apex_(std::move(apex)) {}

  const dns::DnsName& apex() const { return apex_; }

  /// Unique probe name: r<counter>.d<device>.adns.<apex>.
  dns::DnsName probe_name(uint64_t device_id, uint64_t counter) const;

  /// The resolver address from an identification answer (the A record the
  /// ADNS synthesized); nullopt if the resolution failed.
  static std::optional<net::Ipv4Addr> extract(
      const std::vector<dns::ResourceRecord>& answers);

  /// Installs the identification behaviour on the research zone's ADNS:
  /// any A query under "adns.<apex>" is answered with the querying
  /// resolver's own address, TTL 0.
  static void install_handler(dns::AuthoritativeServer& adns);

 private:
  dns::DnsName apex_;
};

}  // namespace curtain::measure
