#include "measure/vantage.h"

#include <map>

namespace curtain::measure {

VantageProber::VantageProber(WorldView world, net::NodeId vantage_node,
                             net::Ipv4Addr vantage_ip)
    : probes_(world),
      vantage_node_(vantage_node),
      vantage_ip_(vantage_ip) {}

void VantageProber::probe_observed_resolvers(RecordStore& records,
                                             net::SimTime now,
                                             net::Rng& rng) const {
  // Distinct (carrier, external resolver IP) pairs seen by the fleet.
  std::map<std::pair<int, uint32_t>, bool> seen;
  for (const auto& observation : records.observations()) {
    if (observation.resolver != ResolverKind::kLocal || !observation.responded) {
      continue;
    }
    const auto& context = records.context_of(observation.experiment_id);
    seen[{context.carrier_index, observation.external_ip.value()}] = true;
  }

  ProbeOrigin origin;
  origin.anchor = vantage_node_;
  origin.source_ip = vantage_ip_;
  origin.access_rtt_ms = 0.0;  // wired host

  for (const auto& [key, unused] : seen) {
    (void)unused;
    const net::Ipv4Addr target{key.second};
    VantageProbe record;
    record.carrier_index = key.first;
    record.target_ip = target;
    record.ping_responded = probes_.ping(origin, target, now, rng).responded;
    record.traceroute_reached =
        probes_.traceroute(origin, target, now, rng).reached;
    records.add_vantage(record);
  }
}

}  // namespace curtain::measure
