// The wired vantage point (paper §4.4, Table 4).
//
// The paper tested cellular-resolver reachability by pinging and
// tracerouting every externally observed resolver address from a
// university network. This prober does the same from a topology host on
// the open Internet: most probes die at the carrier ingress (NAT/firewall
// zones); only resolvers hosted in DMZ ASes answer.
#pragma once

#include "measure/probes.h"
#include "measure/record_store.h"

namespace curtain::measure {

class VantageProber {
 public:
  VantageProber(WorldView world, net::NodeId vantage_node,
                net::Ipv4Addr vantage_ip);

  /// Pings and traceroutes every distinct external resolver address the
  /// fleet observed (local resolver kind only), appending VantageProbe
  /// records keyed by carrier.
  void probe_observed_resolvers(RecordStore& records, net::SimTime now,
                                net::Rng& rng) const;

 private:
  ProbeEngine probes_;
  net::NodeId vantage_node_;
  net::Ipv4Addr vantage_ip_;
};

}  // namespace curtain::measure
