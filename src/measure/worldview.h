// WorldView: the read-only world substrate measurement code runs against.
//
// After construction the world is immutable (core/world.h); everything a
// measurement component needs from it is the wired topology and the DNS
// server registry. Bundling the two as references removes the null states
// the old raw-pointer constructors admitted but never meant: a WorldView
// is valid by construction and can be copied freely into probers, runners
// and campaign shards.
#pragma once

#include "dns/server.h"
#include "net/topology.h"

namespace curtain::measure {

struct WorldView {
  const net::Topology& topology;
  const dns::ServerRegistry& registry;
};

}  // namespace curtain::measure
