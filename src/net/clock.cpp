// lint-hot-path (event-queue inner loop; see net/clock.h)
#include "net/clock.h"

#include <algorithm>
#include <limits>

namespace curtain::net {

void EventQueue::schedule(SimTime at, Handler fn) {
  // Clamp to the dispatch floor: an event may never be scheduled before
  // one that has already run, or handlers could observe time running
  // backwards (the old queue silently accepted past timestamps).
  if (at < floor_) at = floor_;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    handlers_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(handlers_.size());
    CURTAIN_CHECK(slot <= kSlotMask) << "event queue slot space exhausted";
    handlers_.push_back(std::move(fn));
  }
  CURTAIN_DCHECK(next_seq_ >> (64 - kSlotBits) == 0)
      << "event sequence space exhausted";
  events_.emplace_back();  // sift_up fills the hole top-down
  sift_up(events_.size() - 1, Event{at, (next_seq_++ << kSlotBits) | slot});
}

void EventQueue::schedule_after(const SimClock& clock, SimTime delay,
                                Handler fn) {
  if (delay < SimTime{}) delay = SimTime{};
  schedule(clock.now() + delay, std::move(fn));
}

SimTime EventQueue::next_time() const {
  if (events_.empty()) return SimTime{std::numeric_limits<int64_t>::max()};
  return events_.front().at;
}

bool EventQueue::run_next(SimClock& clock) {
  if (events_.empty()) return false;
  dispatch(clock);
  return true;
}

size_t EventQueue::run_until(SimClock& clock, SimTime horizon) {
  size_t executed = 0;
  // Compare the heap root directly: one branch per event instead of
  // run_next's empty-check plus a separate next_time() horizon probe.
  while (!events_.empty() && events_.front().at <= horizon) {
    dispatch(clock);
    ++executed;
  }
  return executed;
}

void EventQueue::dispatch(SimClock& clock) {
  const Event top = events_.front();
  const Event last = events_.back();
  events_.pop_back();
  if (!events_.empty()) sift_down(0, last);
  CURTAIN_DCHECK(top.at >= floor_) << "event queue dispatched out of order";
  floor_ = top.at;
  clock.advance_to(top.at);
  // Move the handler out before invoking it: it may reschedule and reuse
  // this very slot. Handlers get the world clock's now, which can be ahead
  // of top.at if the caller advanced the clock externally — never stale.
  const auto slot = static_cast<uint32_t>(top.key & kSlotMask);
  Handler fn = std::move(handlers_[slot]);
  free_slots_.push_back(slot);
  fn(clock.now());
}

void EventQueue::sift_up(size_t hole, Event event) {
  while (hole > 0) {
    const size_t parent = (hole - 1) / kArity;
    if (!sooner(event, events_[parent])) break;
    events_[hole] = events_[parent];
    hole = parent;
  }
  events_[hole] = event;
}

void EventQueue::sift_down(size_t hole, Event event) {
  const size_t count = events_.size();
  for (;;) {
    const size_t first_child = hole * kArity + 1;
    if (first_child >= count) break;
    size_t best = first_child;
    const size_t last_child = std::min(first_child + kArity, count);
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (sooner(events_[child], events_[best])) best = child;
    }
    if (!sooner(events_[best], event)) break;
    events_[hole] = events_[best];
    hole = best;
  }
  events_[hole] = event;
}

}  // namespace curtain::net
