#include "net/clock.h"

#include <utility>

namespace curtain::net {

void EventQueue::schedule(SimTime at, Handler fn) {
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(const SimClock& clock, SimTime delay, Handler fn) {
  schedule(clock.now() + delay, std::move(fn));
}

SimTime EventQueue::next_time() const {
  return events_.empty() ? SimTime{INT64_MAX} : events_.top().at;
}

bool EventQueue::run_next(SimClock& clock) {
  if (events_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the handler instead. Handlers are small std::functions.
  Event event = events_.top();
  events_.pop();
  clock.advance_to(event.at);
  event.fn(event.at);
  return true;
}

size_t EventQueue::run_until(SimClock& clock, SimTime horizon) {
  size_t executed = 0;
  while (!events_.empty() && events_.top().at <= horizon) {
    run_next(clock);
    ++executed;
  }
  return executed;
}

}  // namespace curtain::net
