// SimClock and the discrete-event queue.
//
// The measurement campaign is driven as a classic discrete-event
// simulation: each device schedules its next hourly experiment; probes and
// resolutions advance the clock by their sampled latencies.
//
// The queue is the innermost loop of every shard (one schedule + one pop
// per device wake-up, ~28k experiments at full scale), so it is built for
// zero-copy operation: handlers are move-only type-erased callables with
// inline storage (EventFn), and the heap is an in-house 4-ary heap over a
// flat vector whose pop MOVES the handler out — std::priority_queue's
// const top() forced a full std::function copy per event.
//
// lint-hot-path: schedule+pop run once per device wake-up, so curtain_lint
// holds this file to the hot-alloc rule (no heap allocation idioms); the
// oversize-capture spill in EventFn is the single waived exception.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/time.h"
#include "util/contract.h"

namespace curtain::net {

/// Monotonic virtual clock. Shared by every component of a world so that
/// DNS caches, RRC timers and churn processes agree on "now".
class SimClock {
 public:
  SimTime now() const { return now_; }

  /// Moves time forward; ignores attempts to move backwards so that
  /// latency samples composed out of order can never rewind the world.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  void advance_by(SimTime dt) { now_ += dt; }

 private:
  SimTime now_{};
};

/// Move-only type-erased `void(SimTime)` callable with inline storage.
///
/// Closures up to kInlineSize bytes (the shard wake-up closure is 40)
/// live inside the event itself: scheduling allocates nothing and popping
/// moves the handler out of the heap slot. Larger or throwing-move
/// callables fall back to a single heap cell. Accepts any copyable or
/// move-only invocable, including std::function lvalues.
class EventFn {
 public:
  /// Bytes of capture state stored without a heap allocation.
  static constexpr size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_v<std::decay_t<F>&, SimTime>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): function-like
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
          new D(std::forward<F>(fn));  // lint: hot-alloc (cold spill for oversized captures)
      vtable_ = &kHeapVTable<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()(SimTime at) { vtable_->invoke(storage_, at); }

 private:
  struct VTable {
    void (*invoke)(void*, SimTime);
    /// Move-constructs dst from src and destroys src (heap case: pointer
    /// relocation). Split from destroy so relocation is one virtual call.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineSize &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  static F* as(void* p) {
    return std::launder(reinterpret_cast<F*>(p));
  }
  template <typename F>
  static F*& heap_slot(void* p) {
    return *reinterpret_cast<F**>(p);
  }

  template <typename F>
  static constexpr VTable kInlineVTable{
      [](void* p, SimTime at) { (*as<F>(p))(at); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F(std::move(*as<F>(src)));
        as<F>(src)->~F();
      },
      [](void* p) noexcept { as<F>(p)->~F(); },
  };

  template <typename F>
  static constexpr VTable kHeapVTable{
      [](void* p, SimTime at) { (*heap_slot<F>(p))(at); },
      [](void* dst, void* src) noexcept {
        heap_slot<F>(dst) = heap_slot<F>(src);
      },
      [](void* p) noexcept { delete heap_slot<F>(p); },
  };

  void move_from(EventFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

/// Priority queue of timestamped callbacks with FIFO tie-breaking.
///
/// Dispatch order is the strict total order (at, seq): the heap layout can
/// never influence execution order, so FIFO among equal timestamps is
/// exact and stable across refactors (shard exports stay byte-identical).
///
/// Scheduling into the past cannot happen: requested times are clamped to
/// the time of the event currently being dispatched, and handlers receive
/// the world clock's `now` (>= the event's timestamp), never a stale one.
class EventQueue {
 public:
  using Handler = EventFn;

  /// Schedules `fn` at absolute time `at` (clamped so it can never fire
  /// before an already-dispatched event).
  void schedule(SimTime at, Handler fn);
  /// Schedules `fn` at now + delay; negative delays clamp to "now".
  void schedule_after(const SimClock& clock, SimTime delay, Handler fn);

  /// Pre-sizes the underlying storage (e.g. one slot per device).
  void reserve(size_t events) {
    events_.reserve(events);
    handlers_.reserve(events);
  }

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  SimTime next_time() const;

  /// Approximate heap bytes held by the event heap, the handler slab and
  /// the free list — capacities, since capacity is what RSS sees. A
  /// profiling gauge (obs/memory.h); excludes handlers' own heap
  /// fallbacks (closures above EventFn::kInlineSize).
  size_t approx_slab_bytes() const {
    return events_.capacity() * sizeof(Event) +
           handlers_.capacity() * sizeof(Handler) +
           free_slots_.capacity() * sizeof(uint32_t);
  }

  /// Pops and runs the earliest event, advancing `clock` to its time.
  /// Returns false if the queue was empty.
  bool run_next(SimClock& clock);

  /// Runs events until the queue drains or the next event is after
  /// `horizon` (events at exactly `horizon` run). Returns the number of
  /// events executed. Checks the heap root directly instead of paying
  /// run_next's per-event empty/horizon re-comparison.
  size_t run_until(SimClock& clock, SimTime horizon);

 private:
  /// Bits of the packed key reserved for the handler slab slot; the rest
  /// holds the FIFO sequence number. 2^24 concurrent events and 2^40
  /// lifetime schedules both exceed a full-scale campaign by orders of
  /// magnitude (checked in schedule()).
  static constexpr uint64_t kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;

  /// Heap entry: ordering key plus the handler's slab slot, packed to a
  /// 16-byte POD — sift operations shuffle these, never the handlers, so
  /// a heap hop is a trivial copy instead of a type-erased relocate.
  /// Sequence numbers are unique, so ordering by the packed key equals
  /// ordering by seq (the slot bits below never break a tie).
  struct Event {
    SimTime at;
    uint64_t key;  ///< (seq << kSlotBits) | slot
  };

  /// 4-ary: shallower than binary (fewer cache-missing levels per sift)
  /// at the cost of three extra comparisons per level — the classic d-ary
  /// trade that wins for pop-heavy workloads.
  static constexpr size_t kArity = 4;

  static bool sooner(const Event& a, const Event& b) {
    return a.at != b.at ? a.at < b.at : a.key < b.key;
  }

  void sift_up(size_t hole, Event event);
  void sift_down(size_t hole, Event event);
  /// Removes the root, restores the heap, and runs its handler.
  void dispatch(SimClock& clock);

  std::vector<Event> events_;  ///< d-ary min-heap of POD keys
  /// Handler slab indexed by Event::slot; free slots are recycled LIFO
  /// (deterministically — allocation order depends only on the schedule /
  /// dispatch sequence, never on addresses or hashing).
  std::vector<Handler> handlers_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 0;
  SimTime floor_{};  ///< timestamp of the most recently dispatched event
};

}  // namespace curtain::net
