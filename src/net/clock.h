// SimClock and the discrete-event queue.
//
// The measurement campaign is driven as a classic discrete-event
// simulation: each device schedules its next hourly experiment; probes and
// resolutions advance the clock by their sampled latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/time.h"

namespace curtain::net {

/// Monotonic virtual clock. Shared by every component of a world so that
/// DNS caches, RRC timers and churn processes agree on "now".
class SimClock {
 public:
  SimTime now() const { return now_; }

  /// Moves time forward; ignores attempts to move backwards so that
  /// latency samples composed out of order can never rewind the world.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  void advance_by(SimTime dt) { now_ += dt; }

 private:
  SimTime now_{};
};

/// Priority queue of timestamped callbacks with FIFO tie-breaking.
class EventQueue {
 public:
  using Handler = std::function<void(SimTime)>;

  /// Schedules `fn` at absolute time `at`.
  void schedule(SimTime at, Handler fn);
  /// Schedules `fn` at now + delay.
  void schedule_after(const SimClock& clock, SimTime delay, Handler fn);

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  SimTime next_time() const;

  /// Pops and runs the earliest event, advancing `clock` to its time.
  /// Returns false if the queue was empty.
  bool run_next(SimClock& clock);

  /// Runs events until the queue drains or the next event is after
  /// `horizon`. Returns the number of events executed.
  size_t run_until(SimClock& clock, SimTime horizon);

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // FIFO among equal timestamps
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  uint64_t next_seq_ = 0;
};

}  // namespace curtain::net
