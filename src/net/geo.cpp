#include "net/geo.h"

#include <cmath>

namespace curtain::net {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;

// Speed of light in fiber ~ 2e5 km/s => 0.005 ms/km one way; multiply by a
// 1.4 route-stretch factor because fiber paths are not great circles.
constexpr double kMsPerKm = 0.005;
constexpr double kRouteStretch = 1.4;

}  // namespace

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h > 1.0 ? 1.0 : h));
}

double propagation_ms(const GeoPoint& a, const GeoPoint& b) {
  return distance_km(a, b) * kMsPerKm * kRouteStretch;
}

GeoPoint offset_km(const GeoPoint& origin, double km_east, double km_north) {
  const double dlat = km_north / 111.0;
  const double cos_lat = std::cos(origin.lat_deg * kDegToRad);
  const double dlon = cos_lat > 1e-6 ? km_east / (111.0 * cos_lat) : 0.0;
  return GeoPoint{origin.lat_deg + dlat, origin.lon_deg + dlon};
}

const std::vector<Metro>& us_metros() {
  static const std::vector<Metro> metros = {
      {"New York", {40.71, -74.01}},      {"Los Angeles", {34.05, -118.24}},
      {"Chicago", {41.88, -87.63}},       {"Dallas", {32.78, -96.80}},
      {"Houston", {29.76, -95.37}},       {"Washington DC", {38.91, -77.04}},
      {"Miami", {25.76, -80.19}},         {"Atlanta", {33.75, -84.39}},
      {"Boston", {42.36, -71.06}},        {"San Francisco", {37.77, -122.42}},
      {"Seattle", {47.61, -122.33}},      {"Denver", {39.74, -104.99}},
      {"Phoenix", {33.45, -112.07}},      {"Minneapolis", {44.98, -93.27}},
      {"Kansas City", {39.10, -94.58}},   {"Philadelphia", {39.95, -75.17}},
  };
  return metros;
}

const std::vector<Metro>& kr_metros() {
  static const std::vector<Metro> metros = {
      {"Seoul", {37.57, 126.98}},   {"Busan", {35.18, 129.08}},
      {"Incheon", {37.46, 126.71}}, {"Daegu", {35.87, 128.60}},
      {"Daejeon", {36.35, 127.38}}, {"Gwangju", {35.16, 126.85}},
  };
  return metros;
}

const std::vector<Metro>& world_metros() {
  static const std::vector<Metro> metros = {
      {"New York", {40.71, -74.01}},     {"Los Angeles", {34.05, -118.24}},
      {"Chicago", {41.88, -87.63}},      {"Dallas", {32.78, -96.80}},
      {"Washington DC", {38.91, -77.04}},{"Atlanta", {33.75, -84.39}},
      {"San Francisco", {37.77, -122.42}},{"Seattle", {47.61, -122.33}},
      {"Miami", {25.76, -80.19}},        {"Denver", {39.74, -104.99}},
      {"London", {51.51, -0.13}},        {"Frankfurt", {50.11, 8.68}},
      {"Paris", {48.86, 2.35}},          {"Amsterdam", {52.37, 4.90}},
      {"Madrid", {40.42, -3.70}},        {"Stockholm", {59.33, 18.06}},
      {"Tokyo", {35.68, 139.69}},        {"Osaka", {34.69, 135.50}},
      {"Seoul", {37.57, 126.98}},        {"Taipei", {25.03, 121.57}},
      {"Hong Kong", {22.32, 114.17}},    {"Singapore", {1.35, 103.82}},
      {"Sydney", {-33.87, 151.21}},      {"Mumbai", {19.08, 72.88}},
      {"Sao Paulo", {-23.55, -46.63}},   {"Buenos Aires", {-34.60, -58.38}},
      {"Toronto", {43.65, -79.38}},      {"Mexico City", {19.43, -99.13}},
      {"Johannesburg", {-26.20, 28.05}}, {"Dubai", {25.20, 55.27}},
  };
  return metros;
}

}  // namespace curtain::net
