// Geographic coordinates and propagation-delay helpers.
//
// Replica clusters, egress points and devices are placed on the globe;
// link latencies combine a propagation component derived from great-circle
// distance with queueing jitter. Geography is what makes "the CDN sent the
// client across the country" measurable as latency (paper Fig. 2).
#pragma once

#include <string>
#include <vector>

namespace curtain::net {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance (haversine), in kilometers.
double distance_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay over fiber for a great-circle path, in ms.
/// Uses c * 2/3 and a conventional 1.4x route-stretch factor.
double propagation_ms(const GeoPoint& a, const GeoPoint& b);

/// A point `km_east`/`km_north` away from `origin` (small-offset planar
/// approximation; used to scatter devices around a metro centroid).
GeoPoint offset_km(const GeoPoint& origin, double km_east, double km_north);

/// Named metros used when building US / South Korea worlds.
struct Metro {
  std::string name;
  GeoPoint location;
};

/// Major US metros (16) roughly matching where carriers host egress points
/// and CDNs host clusters.
const std::vector<Metro>& us_metros();
/// South Korean metros (6).
const std::vector<Metro>& kr_metros();
/// Worldwide metros (30) used for Google DNS's 30 geographic sites.
const std::vector<Metro>& world_metros();

}  // namespace curtain::net
