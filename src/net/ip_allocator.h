// Sequential IP address/block allocation for world construction.
//
// Worlds carve address space the way the study observes it: resolvers and
// replicas live in /24 blocks (the aggregation unit CDNs key on), so the
// allocator hands out sub-blocks and then hosts within them.
#pragma once

#include <unordered_map>

#include "net/ipv4.h"
#include "util/contract.h"

namespace curtain::net {

class IpAllocator {
 public:
  explicit IpAllocator(Prefix pool) : pool_(pool) {}

  /// Carves the next /`len` block out of the pool (sequential, no reuse).
  /// Exhausting the pool is a contract violation: a wrapped allocator would
  /// silently hand out duplicate addresses and corrupt every analysis keyed
  /// on them, so worlds must size their pools generously.
  Prefix alloc_block(int len) {
    CURTAIN_CHECK(len >= pool_.length() && len <= 32)
        << "block /" << len << " cannot be carved from " << pool_.to_string();
    const uint64_t block_size = uint64_t{1} << (32 - len);
    CURTAIN_CHECK(allocated_ + block_size <= pool_.size())
        << "IP pool " << pool_.to_string() << " exhausted after " << allocated_
        << " addresses";
    allocated_ += block_size;
    const Ipv4Addr base = pool_.host(next_block_offset_);
    next_block_offset_ = (next_block_offset_ + block_size) % pool_.size();
    return Prefix(base, len);
  }

  /// Next host address inside `block`, skipping the all-zeros network
  /// address (host .0 reads oddly in logs). Wraps within the block.
  Ipv4Addr alloc_host(const Prefix& block) {
    CURTAIN_CHECK(block.size() >= 2)
        << "cannot allocate hosts in " << block.to_string();
    uint64_t& cursor = host_cursors_[block.address().value()];
    cursor = cursor % (block.size() - 1) + 1;
    return block.host(cursor);
  }

 private:
  Prefix pool_;
  uint64_t next_block_offset_ = 0;
  uint64_t allocated_ = 0;
  std::unordered_map<uint32_t, uint64_t> host_cursors_;
};

}  // namespace curtain::net
