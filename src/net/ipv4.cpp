#include "net/ipv4.h"

#include <charconv>

namespace curtain::net {
namespace {

// Parses one decimal octet in [0,255] without leading '+' or whitespace.
std::optional<uint8_t> parse_octet(std::string_view s) {
  if (s.empty() || s.size() > 3) return std::nullopt;
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value > 255) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  uint8_t octets[4];
  for (int i = 0; i < 4; ++i) {
    const size_t dot = text.find('.');
    const bool last = (i == 3);
    if (last != (dot == std::string_view::npos)) return std::nullopt;
    const std::string_view part = last ? text : text.substr(0, dot);
    const auto octet = parse_octet(part);
    if (!octet) return std::nullopt;
    octets[i] = *octet;
    if (!last) text = text.substr(dot + 1);
  }
  return Ipv4Addr(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out += '.';
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_part = text.substr(slash + 1);
  if (len_part.empty() || len_part.size() > 2) return std::nullopt;
  int len = 0;
  const auto [ptr, ec] =
      std::from_chars(len_part.data(), len_part.data() + len_part.size(), len);
  if (ec != std::errc{} || ptr != len_part.data() + len_part.size() || len > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, len);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace curtain::net
