// IPv4 addresses and CIDR prefixes.
//
// The study leans heavily on /24 aggregation: CDNs map clients by the /24
// of their external-facing resolver (paper §5.1), Google DNS is organized
// as 30 geographic /24s (§6.1), and resolver-churn analyses count distinct
// /24s (Figs. 8, 9, 12). Prefix math therefore lives here, next to the
// address type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace curtain::net {

/// An IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value_(static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
               static_cast<uint32_t>(c) << 8 | d) {}

  /// Parses dotted-quad ("192.0.2.1"); nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr uint32_t value() const { return value_; }
  std::string to_string() const;

  /// The /24 network containing this address (e.g. 192.0.2.0 for 192.0.2.1).
  constexpr Ipv4Addr slash24() const { return Ipv4Addr(value_ & 0xffffff00u); }

  /// Octet accessor, 0 = most significant ("a" in a.b.c.d).
  constexpr uint8_t octet(int i) const {
    return static_cast<uint8_t>(value_ >> (8 * (3 - i)));
  }

  constexpr bool is_unspecified() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Addr a, Ipv4Addr b) = default;

 private:
  uint32_t value_ = 0;
};

/// A CIDR prefix (address + length). The address is canonicalized: host
/// bits are cleared on construction, so Prefix{192.0.2.77/24} == 192.0.2.0/24.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr addr, int length)
      : length_(clamp_len(length)),
        addr_(Ipv4Addr(addr.value() & mask_for(clamp_len(length)))) {}

  /// Parses "a.b.c.d/len"; nullopt on malformed input or length > 32.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4Addr address() const { return addr_; }
  constexpr int length() const { return length_; }
  constexpr uint32_t mask() const { return mask_for(length_); }

  constexpr bool contains(Ipv4Addr a) const {
    return (a.value() & mask()) == addr_.value();
  }
  constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// Number of addresses covered (2^(32-len)).
  constexpr uint64_t size() const { return uint64_t{1} << (32 - length_); }

  /// The i-th address within the prefix; i is taken modulo size().
  constexpr Ipv4Addr host(uint64_t i) const {
    return Ipv4Addr(addr_.value() | static_cast<uint32_t>(i & (size() - 1)));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix& a, const Prefix& b) = default;

 private:
  static constexpr int clamp_len(int len) { return len < 0 ? 0 : (len > 32 ? 32 : len); }
  static constexpr uint32_t mask_for(int len) {
    return len == 0 ? 0u : (0xffffffffu << (32 - len));
  }

  int length_ = 0;
  Ipv4Addr addr_{};
};

}  // namespace curtain::net
