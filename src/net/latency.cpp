#include "net/latency.h"

namespace curtain::net {

double LatencyModel::sample(Rng& rng) const {
  double value = floor_ms;
  if (median_ms > 0.0) {
    value += sigma > 0.0 ? rng.lognormal_median(median_ms, sigma) : median_ms;
  }
  return value < 0.0 ? 0.0 : value;
}

}  // namespace curtain::net
