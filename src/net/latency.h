// Latency models for links and processing delays.
//
// Wide-area latencies are right-skewed; we model each delay as a lognormal
// around a configured median plus an optional fixed floor:
//
//   sample = floor_ms + median_ms * exp(sigma * Z),  Z ~ N(0,1)
//
// parameterized by the *median* so configuration reads like the paper's
// reported numbers ("median resolution time 30-50 ms").
#pragma once

#include "net/rng.h"

namespace curtain::net {

struct LatencyModel {
  double floor_ms = 0.0;   ///< deterministic component (propagation)
  double median_ms = 0.0;  ///< median of the stochastic component
  double sigma = 0.25;     ///< lognormal shape; 0 = deterministic

  /// One-way delay sample in milliseconds; never negative.
  double sample(Rng& rng) const;

  /// Expected ("typical") one-way delay used as the routing metric.
  double typical_ms() const { return floor_ms + median_ms; }

  /// A purely deterministic delay.
  static LatencyModel fixed(double ms) { return LatencyModel{ms, 0.0, 0.0}; }
  /// Jittered delay with the given median and default shape.
  static LatencyModel jittered(double median_ms, double sigma = 0.25) {
    return LatencyModel{0.0, median_ms, sigma};
  }
  /// Propagation floor plus queueing jitter.
  static LatencyModel wan(double floor_ms, double jitter_median_ms,
                          double sigma = 0.35) {
    return LatencyModel{floor_ms, jitter_median_ms, sigma};
  }
};

}  // namespace curtain::net
