#include "net/rng.h"

#include <cmath>

#include "util/contract.h"

namespace curtain::net {
namespace {

constexpr uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // makes that astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::derive(uint64_t id) const { return Rng(mix_key(seed_, id)); }

Rng Rng::derive(std::string_view tag) const { return Rng(mix_key(seed_, hash_tag(tag))); }

Rng Rng::derive(std::string_view tag, uint64_t id) const {
  return Rng(mix_key(mix_key(seed_, hash_tag(tag)), id));
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::uniform_u64(uint64_t lo, uint64_t hi) {
  CURTAIN_DCHECK(lo <= hi) << "uniform_u64(" << lo << ", " << hi << ")";
  const uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % range;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  return -mean * std::log(1.0 - next_double());
}

bool Rng::bernoulli(double p) { return next_double() < p; }

size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) total += w > 0 ? w : 0;
  CURTAIN_DCHECK(total > 0.0)
      << "weighted_index over " << weights.size() << " non-positive weights";
  double target = next_double() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (target < w) return i;
    target -= w;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace curtain::net
