// Deterministic random number generation with derivable streams.
//
// Every stochastic choice in the simulator draws from an Rng stream derived
// from (study seed, entity, purpose). Derivation is pure hashing, so adding
// a new consumer never perturbs existing streams and every figure is
// bit-reproducible for a given CURTAIN_SEED.
//
// The core generator is xoshiro256**, seeded via splitmix64 as its authors
// recommend; both are tiny, fast and statistically strong for simulation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/contract.h"

namespace curtain::net {

/// splitmix64 step: the standard 64-bit mixer used for seeding and for
/// combining ids into stream keys.
constexpr uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless combine of a key and a value into a new key.
constexpr uint64_t mix_key(uint64_t key, uint64_t value) {
  uint64_t state = key ^ (value * 0x2545f4914f6cdd1dULL);
  return splitmix64(state);
}

/// FNV-1a for deriving streams from string tags.
constexpr uint64_t hash_tag(std::string_view tag) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Child stream keyed by a numeric id; independent of the parent's
  /// future output (derivation uses only the construction seed).
  Rng derive(uint64_t id) const;
  /// Child stream keyed by a string purpose tag.
  Rng derive(std::string_view tag) const;
  Rng derive(std::string_view tag, uint64_t id) const;

  uint64_t next_u64();
  /// Uniform in [0,1).
  double next_double();
  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  uint64_t uniform_u64(uint64_t lo, uint64_t hi);
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (one value cached).
  double normal();
  double normal(double mean, double stddev);
  /// Lognormal with the given *median* and shape sigma: median * e^(sigma·Z).
  double lognormal_median(double median, double sigma);
  /// Exponential with the given mean.
  double exponential(double mean);
  bool bernoulli(double p);
  /// Index into `weights` proportional to weight; requires a positive sum.
  size_t weighted_index(const std::vector<double>& weights);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    CURTAIN_DCHECK(!v.empty()) << "pick from an empty vector";
    return v[static_cast<size_t>(uniform_u64(0, v.size() - 1))];
  }

 private:
  uint64_t seed_;  // construction seed, retained for derive()
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace curtain::net
