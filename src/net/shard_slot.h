// Shard slots and state lanes: which campaign shard — and which device —
// the current thread is executing.
//
// The cohort-sharded campaign engine (curtain::exec) partitions the fleet
// into (carrier, cohort) shards and runs each shard's devices one after
// another (device-major). World components that keep mutable runtime
// state behind a shared facade partition that state by index instead of
// by lock, at two distinct granularities:
//
//  * Shard slot — execution-scoped. One per running shard (shard i runs
//    with slot i+1; slot 0 is the main thread: world construction, the
//    vantage sweep, tests and tools). Only *result-invisible* state may
//    key off the shard slot, because the shard partition changes with the
//    cohort count: today that is the topology route cache, whose entries
//    are deterministic functions of the immutable graph.
//
//  * State lane — device-scoped. One per enrolled device, fixed by the
//    device's global enrollment ordinal (lane d+1; lane 0 again belongs
//    to the main thread). All *result-visible* mutable state — resolver
//    caches, query-id counters, NAT cursors — is laned. Because the
//    device→lane mapping depends only on the fleet (never on cohort or
//    worker counts) and a device's whole timeline runs on one thread,
//    laned state evolves identically for every CURTAIN_SHARDS /
//    CURTAIN_COHORTS value, which is what keeps campaign exports
//    byte-identical across all of them.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "obs/memory.h"
#include "util/contract.h"

namespace curtain::net {
namespace detail {
inline thread_local int tls_shard_slot = 0;
inline thread_local int tls_state_lane = 0;
}  // namespace detail

/// Slot of the calling thread: 0 outside any shard, shard_index+1 inside.
inline int current_shard_slot() { return detail::tls_shard_slot; }

/// Lane of the device the calling thread is simulating: 0 outside any
/// device timeline (main thread), device ordinal+1 inside.
inline int current_state_lane() { return detail::tls_state_lane; }

/// RAII slot binding for a shard worker thread.
class ShardSlotGuard {
 public:
  explicit ShardSlotGuard(int slot) : previous_(detail::tls_shard_slot) {
    CURTAIN_CHECK(slot >= 0) << "negative shard slot " << slot;
    detail::tls_shard_slot = slot;
  }
  ~ShardSlotGuard() { detail::tls_shard_slot = previous_; }
  ShardSlotGuard(const ShardSlotGuard&) = delete;
  ShardSlotGuard& operator=(const ShardSlotGuard&) = delete;

 private:
  int previous_;
};

/// Sparse per-lane storage for result-visible laned state.
///
/// Values are keyed by state lane and materialize on first touch, so
/// memory scales with lanes actually exercised — never with the
/// fleet-wide lane count. (The dense vectors this replaces cost
/// 8 bytes × fleet per structure even when idle; across the hundreds of
/// laned structures — resolver instances, NAT cursors — a million-device
/// world paid gigabytes before the first experiment ran.)
///
/// Lanes at or beyond the configured count share slot 0, preserving the
/// clamp the dense vectors applied. A lane's *value* is still owned by
/// exactly one thread at a time (a device's whole timeline runs on one
/// shard, exec/shard.h); what concurrent shards share is the container,
/// so lookups take a reader lock and the one-time materialization of a
/// lane takes the writer lock. Returned references stay valid across
/// later insertions (node-based storage). Iteration is for post-join
/// accounting only, and iteration order is hash order — callers folding
/// over touched lanes must combine commutatively.
template <typename T>
class LaneTable {
 public:
  LaneTable() : mutex_(std::make_unique<std::shared_mutex>()) {}
  LaneTable(LaneTable&&) = default;
  LaneTable& operator=(LaneTable&&) = default;

  /// Sizes the lane space and drops every value; untouched lanes will
  /// materialize as copies of `initial`. 0 lanes behaves as 1. Call at
  /// build time, before concurrent access.
  void reset(size_t lanes, T initial = T{}) {
    std::unique_lock lock(*mutex_);
    lanes_ = lanes == 0 ? 1 : lanes;
    initial_ = std::move(initial);
    values_.clear();
  }

  size_t lane_count() const { return lanes_; }

  /// Lanes materialized so far.
  size_t touched() const {
    std::shared_lock lock(*mutex_);
    return values_.size();
  }

  /// The value for `lane` (clamped), created from `initial` on first use.
  T& operator[](size_t lane) {
    const size_t key = clamp(lane);
    {
      std::shared_lock lock(*mutex_);
      const auto it = values_.find(key);
      if (it != values_.end()) return it->second;
    }
    std::unique_lock lock(*mutex_);
    return values_.try_emplace(key, initial_).first->second;
  }

  /// The value for `lane` if it was ever touched, else nullptr.
  const T* find(size_t lane) const {
    std::shared_lock lock(*mutex_);
    const auto it = values_.find(clamp(lane));
    return it == values_.end() ? nullptr : &it->second;
  }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  /// Heap bytes of the table itself (nodes + buckets), excluding any heap
  /// the values own. A profiling gauge — see obs/memory.h.
  size_t approx_container_bytes() const {
    std::shared_lock lock(*mutex_);
    constexpr size_t kNodeOverhead =
        2 * sizeof(void*) + obs::kAllocOverheadBytes;
    return values_.size() * (sizeof(size_t) + sizeof(T) + kNodeOverhead) +
           values_.bucket_count() * sizeof(void*);
  }

 private:
  size_t clamp(size_t lane) const { return lane < lanes_ ? lane : 0; }

  size_t lanes_ = 1;
  T initial_{};
  std::unordered_map<size_t, T> values_;
  /// Behind a pointer so tables stay movable (Gateway lives in a vector).
  mutable std::unique_ptr<std::shared_mutex> mutex_;
};

/// RAII lane binding for one device's timeline on the current thread.
class StateLaneGuard {
 public:
  explicit StateLaneGuard(int lane) : previous_(detail::tls_state_lane) {
    CURTAIN_CHECK(lane >= 0) << "negative state lane " << lane;
    detail::tls_state_lane = lane;
  }
  ~StateLaneGuard() { detail::tls_state_lane = previous_; }
  StateLaneGuard(const StateLaneGuard&) = delete;
  StateLaneGuard& operator=(const StateLaneGuard&) = delete;

 private:
  int previous_;
};

}  // namespace curtain::net
