// Shard slots: which campaign shard the current thread is executing.
//
// The sharded campaign engine (curtain::exec) partitions the fleet at the
// carrier boundary; world components that keep per-carrier runtime state
// behind a shared facade (public-DNS resolver caches, the topology route
// cache) partition that state by *slot* instead of by lock. Slot 0 is the
// main thread (world construction, the vantage sweep, tests and tools);
// shard i runs with slot i+1. Because the shard→slot mapping is fixed by
// the carrier partition — never by how many worker threads execute it —
// slot-partitioned state behaves identically at any CURTAIN_SHARDS value,
// which is what makes sharded runs byte-identical to serial ones.
#pragma once

#include "util/contract.h"

namespace curtain::net {
namespace detail {
inline thread_local int tls_shard_slot = 0;
}  // namespace detail

/// Slot of the calling thread: 0 outside any shard, shard_index+1 inside.
inline int current_shard_slot() { return detail::tls_shard_slot; }

/// RAII slot binding for a shard worker thread.
class ShardSlotGuard {
 public:
  explicit ShardSlotGuard(int slot) : previous_(detail::tls_shard_slot) {
    CURTAIN_CHECK(slot >= 0) << "negative shard slot " << slot;
    detail::tls_shard_slot = slot;
  }
  ~ShardSlotGuard() { detail::tls_shard_slot = previous_; }
  ShardSlotGuard(const ShardSlotGuard&) = delete;
  ShardSlotGuard& operator=(const ShardSlotGuard&) = delete;

 private:
  int previous_;
};

}  // namespace curtain::net
