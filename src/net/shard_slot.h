// Shard slots and state lanes: which campaign shard — and which device —
// the current thread is executing.
//
// The cohort-sharded campaign engine (curtain::exec) partitions the fleet
// into (carrier, cohort) shards and runs each shard's devices one after
// another (device-major). World components that keep mutable runtime
// state behind a shared facade partition that state by index instead of
// by lock, at two distinct granularities:
//
//  * Shard slot — execution-scoped. One per running shard (shard i runs
//    with slot i+1; slot 0 is the main thread: world construction, the
//    vantage sweep, tests and tools). Only *result-invisible* state may
//    key off the shard slot, because the shard partition changes with the
//    cohort count: today that is the topology route cache, whose entries
//    are deterministic functions of the immutable graph.
//
//  * State lane — device-scoped. One per enrolled device, fixed by the
//    device's global enrollment ordinal (lane d+1; lane 0 again belongs
//    to the main thread). All *result-visible* mutable state — resolver
//    caches, query-id counters, NAT cursors — is laned. Because the
//    device→lane mapping depends only on the fleet (never on cohort or
//    worker counts) and a device's whole timeline runs on one thread,
//    laned state evolves identically for every CURTAIN_SHARDS /
//    CURTAIN_COHORTS value, which is what keeps campaign exports
//    byte-identical across all of them.
#pragma once

#include "util/contract.h"

namespace curtain::net {
namespace detail {
inline thread_local int tls_shard_slot = 0;
inline thread_local int tls_state_lane = 0;
}  // namespace detail

/// Slot of the calling thread: 0 outside any shard, shard_index+1 inside.
inline int current_shard_slot() { return detail::tls_shard_slot; }

/// Lane of the device the calling thread is simulating: 0 outside any
/// device timeline (main thread), device ordinal+1 inside.
inline int current_state_lane() { return detail::tls_state_lane; }

/// RAII slot binding for a shard worker thread.
class ShardSlotGuard {
 public:
  explicit ShardSlotGuard(int slot) : previous_(detail::tls_shard_slot) {
    CURTAIN_CHECK(slot >= 0) << "negative shard slot " << slot;
    detail::tls_shard_slot = slot;
  }
  ~ShardSlotGuard() { detail::tls_shard_slot = previous_; }
  ShardSlotGuard(const ShardSlotGuard&) = delete;
  ShardSlotGuard& operator=(const ShardSlotGuard&) = delete;

 private:
  int previous_;
};

/// RAII lane binding for one device's timeline on the current thread.
class StateLaneGuard {
 public:
  explicit StateLaneGuard(int lane) : previous_(detail::tls_state_lane) {
    CURTAIN_CHECK(lane >= 0) << "negative state lane " << lane;
    detail::tls_state_lane = lane;
  }
  ~StateLaneGuard() { detail::tls_state_lane = previous_; }
  StateLaneGuard(const StateLaneGuard&) = delete;
  StateLaneGuard& operator=(const StateLaneGuard&) = delete;

 private:
  int previous_;
};

}  // namespace curtain::net
