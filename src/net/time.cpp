#include "net/time.h"

namespace curtain::net {
namespace {

// 2014 is not a leap year; the campaign window (Mar 1 - Aug 1) never
// crosses a year boundary, so a flat month table suffices.
struct MonthSpan {
  const char* name;
  int days;
};

constexpr MonthSpan kMonths[] = {
    {"Mar", 31}, {"Apr", 30}, {"May", 31}, {"Jun", 30},
    {"Jul", 31}, {"Aug", 31}, {"Sep", 30}, {"Oct", 31},
    {"Nov", 30}, {"Dec", 31},
};

}  // namespace

std::string CampaignCalendar::day_label(SimTime t) {
  int day = day_index(t);
  if (day < 0) day = 0;
  for (const auto& month : kMonths) {
    if (day < month.days) {
      return std::string(month.name) + "-" + std::to_string(day + 1);
    }
    day -= month.days;
  }
  return "Dec-31";  // clamped: past the table's horizon
}

}  // namespace curtain::net
