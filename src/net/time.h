// Virtual time for the simulator.
//
// All temporal reasoning — DNS TTL expiry, RRC inactivity timers, the
// five-month measurement campaign, resolver-churn timelines — runs on
// SimTime, an integer count of microseconds since the campaign epoch
// (March 1, 2014, the start of the paper's collection window).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace curtain::net {

/// Microseconds since the campaign epoch.
struct SimTime {
  int64_t micros = 0;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime from_millis(double ms) {
    return SimTime{static_cast<int64_t>(ms * 1000.0)};
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<int64_t>(s * 1e6)};
  }
  static constexpr SimTime from_hours(double h) { return from_seconds(h * 3600.0); }
  static constexpr SimTime from_days(double d) { return from_hours(d * 24.0); }

  constexpr double millis() const { return static_cast<double>(micros) / 1000.0; }
  constexpr double seconds() const { return static_cast<double>(micros) / 1e6; }
  constexpr double hours() const { return seconds() / 3600.0; }
  constexpr double days() const { return hours() / 24.0; }

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.micros + b.micros};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.micros - b.micros};
  }
  SimTime& operator+=(SimTime other) {
    micros += other.micros;
    return *this;
  }
};

/// Campaign epoch: the paper's collection began March 1, 2014 and the
/// figure timelines are labelled with month-day ticks ("Mar-16", "Apr-9").
struct CampaignCalendar {
  /// Converts a SimTime into the paper's "Mar-16"-style axis label.
  static std::string day_label(SimTime t);

  /// Day index since epoch (day 0 = Mar 1 2014).
  static int day_index(SimTime t) { return static_cast<int>(t.days()); }
};

}  // namespace curtain::net
