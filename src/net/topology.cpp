#include "net/topology.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "net/shard_slot.h"
#include "obs/metrics.h"

namespace curtain::net {
namespace {

uint64_t route_key(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

Topology::Topology() {
  // Zone 0 is always the open Internet.
  zones_.push_back(Zone{"internet", /*blocks_inbound_probes=*/false});
}

ZoneId Topology::add_zone(std::string name, bool blocks_inbound_probes) {
  zones_.push_back(Zone{std::move(name), blocks_inbound_probes});
  return static_cast<ZoneId>(zones_.size() - 1);
}

NodeId Topology::add_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  if (!node.ip.is_unspecified()) ip_index_[node.ip.value()] = id;
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  for (auto& cache : route_caches_) cache.clear();
  return id;
}

void Topology::add_link(NodeId a, NodeId b, LatencyModel latency, double loss,
                        bool tunneled) {
  const auto index = static_cast<uint32_t>(links_.size());
  links_.push_back(Link{a, b, latency, loss, tunneled});
  adjacency_[a].push_back(Edge{b, index});
  adjacency_[b].push_back(Edge{a, index});
  for (auto& cache : route_caches_) cache.clear();
}

void Topology::set_route_cache_ways(size_t ways) {
  route_caches_.assign(ways == 0 ? 1 : ways, {});
}

NodeId Topology::find_by_ip(Ipv4Addr ip) const {
  const auto it = ip_index_.find(ip.value());
  return it == ip_index_.end() ? kInvalidNode : it->second;
}

const std::vector<NodeId>& Topology::route(NodeId from, NodeId to) const {
  const auto slot = static_cast<size_t>(current_shard_slot());
  auto& route_cache = route_caches_[slot < route_caches_.size() ? slot : 0];
  const uint64_t key = route_key(from, to);
  const auto cached = route_cache.find(key);
  if (cached != route_cache.end()) return cached->second;

  // Dijkstra over typical link latency from `from`; we cache only the
  // requested pair (worlds have few distinct probe sources, many targets,
  // and recomputation is cheap relative to campaign length).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<NodeId> prev(nodes_.size(), kInvalidNode);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (const Edge& edge : adjacency_[u]) {
      const double nd = d + links_[edge.link_index].latency.typical_ms();
      if (nd < dist[edge.peer]) {
        dist[edge.peer] = nd;
        prev[edge.peer] = u;
        heap.emplace(nd, edge.peer);
      }
    }
  }

  std::vector<NodeId> path;
  if (dist[to] != kInf) {
    for (NodeId at = to; at != kInvalidNode; at = prev[at]) {
      path.push_back(at);
      if (at == from) break;
    }
    std::reverse(path.begin(), path.end());
    if (path.empty() || path.front() != from) path.clear();
  }
  return route_cache.emplace(key, std::move(path)).first->second;
}

const Link& Topology::link_between(NodeId a, NodeId b) const {
  // Route hops are adjacent by construction; pick the lowest-latency
  // parallel link if several exist.
  const Link* best = nullptr;
  for (const Edge& edge : adjacency_[a]) {
    if (edge.peer != b) continue;
    const Link& link = links_[edge.link_index];
    if (best == nullptr || link.latency.typical_ms() < best->latency.typical_ms()) {
      best = &link;
    }
  }
  return *best;  // precondition: a and b are adjacent
}

bool Topology::probe_blocked_at(ZoneId origin_zone, NodeId target) const {
  const ZoneId target_zone = nodes_[target].zone;
  return target_zone != origin_zone && zones_[target_zone].blocks_inbound_probes;
}

std::optional<double> Topology::transport_rtt_ms(NodeId from, NodeId to,
                                                 Rng& rng) const {
  const auto& path = route(from, to);
  if (path.empty()) return std::nullopt;
  double rtt = nodes_[to].processing.sample(rng);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Link& link = link_between(path[i], path[i + 1]);
    rtt += link.latency.sample(rng) + link.latency.sample(rng);
  }
  return rtt;
}

PingResult Topology::ping(NodeId from, NodeId to, Rng& rng) const {
  // Handles re-bind whenever the thread's sheaf changes (obs/metrics.h):
  // pooled workers run many shards, each with its own sheaf.
  struct PingMetrics {
    obs::Counter& pings = obs::metrics().counter(
        "curtain_net_pings_total", "ping probes attempted across the topology");
    obs::Counter& firewalled = obs::metrics().counter(
        "curtain_net_probes_firewalled_total",
        "probes dropped at a NAT/firewall zone boundary");
    obs::Counter& unresponsive = obs::metrics().counter(
        "curtain_net_probes_unresponsive_total",
        "probes whose target declines to answer (reachability policy)");
  };
  static thread_local obs::SheafLocal<PingMetrics> ping_metrics;
  auto& [pings, firewalled, unresponsive] = ping_metrics.get();
  pings.inc();
  PingResult result;
  const auto& path = route(from, to);
  if (path.empty()) {
    result.failure = PingResult::Failure::kNoRoute;
    return result;
  }
  if (!nodes_[to].answers_ping_from(nodes_[from].owner_tag)) {
    result.failure = PingResult::Failure::kUnresponsive;
    unresponsive.inc();
    return result;
  }
  const ZoneId origin_zone = nodes_[from].zone;
  double rtt = nodes_[to].processing.sample(rng);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId next = path[i + 1];
    if (probe_blocked_at(origin_zone, next)) {
      result.failure = PingResult::Failure::kFirewalled;
      firewalled.inc();
      return result;
    }
    const Link& link = link_between(path[i], next);
    if (rng.bernoulli(link.loss) || rng.bernoulli(link.loss)) {
      result.failure = PingResult::Failure::kLoss;
      return result;
    }
    rtt += link.latency.sample(rng) + link.latency.sample(rng);
  }
  result.responded = true;
  result.rtt_ms = rtt;
  return result;
}

TracerouteResult Topology::traceroute(NodeId from, NodeId to, Rng& rng) const {
  TracerouteResult result;
  const auto& path = route(from, to);
  if (path.empty()) return result;
  const ZoneId origin_zone = nodes_[from].zone;

  double cumulative_one_way = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId hop = path[i + 1];
    if (probe_blocked_at(origin_zone, hop)) {
      // Firewalled ingress: probes die silently beyond this point (§4.4).
      return result;
    }
    const Link& link = link_between(path[i], hop);
    cumulative_one_way += link.latency.sample(rng);
    const bool is_destination = (hop == to);
    const Node& hop_node = nodes_[hop];

    // Interior hops of tunneled links never decrement TTL (MPLS, §4.2);
    // they simply do not appear. The destination always terminates the
    // trace even when reached through a tunnel.
    if (link.tunneled && !is_destination) continue;

    TracerouteHop entry;
    entry.node = hop;
    // A destination terminates the trace only if it answers high-TTL
    // probes at all (responds_to_traceroute) *and* would answer this
    // prober (ping policy). Resolvers that answer pings but filter
    // traceroute probes (paper Table 4) never complete a trace.
    const bool answers =
        is_destination
            ? hop_node.responds_to_traceroute &&
                  hop_node.answers_ping_from(nodes_[from].owner_tag)
            : hop_node.responds_to_traceroute;
    if (answers && !rng.bernoulli(link.loss)) {
      entry.responded = true;
      entry.rtt_ms = 2.0 * cumulative_one_way + hop_node.processing.sample(rng);
    } else {
      entry.node = kInvalidNode;  // anonymous "* * *" hop
    }
    result.hops.push_back(entry);
    if (is_destination) result.reached_destination = entry.responded;
  }
  return result;
}

NodeId Topology::zone_boundary(NodeId from, NodeId to) const {
  const auto& path = route(from, to);
  const ZoneId target_zone = nodes_[to].zone;
  for (const NodeId hop : path) {
    if (nodes_[hop].zone == target_zone) return hop;
  }
  return kInvalidNode;
}

}  // namespace curtain::net
