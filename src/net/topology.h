// Network topology: zones, nodes, links, routing and probe semantics.
//
// The topology captures exactly the structural properties the paper
// measures:
//   * zones with inbound-probe filtering (cellular NAT/firewall policy,
//     §4.4: external probes die at the network ingress),
//   * tunneled links (MPLS/VPN) whose interior hops are invisible to
//     traceroute (§4.2: "widespread tunnelling ... rendered irrelevant much
//     of the structural information"),
//   * per-node probe responsiveness (Verizon / LG U+ external resolvers do
//     not answer pings even from inside, Figs. 4 and 11),
//   * geography-driven latency, so replica choice shows up as TTFB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/geo.h"
#include "net/ipv4.h"
#include "net/latency.h"
#include "net/rng.h"

namespace curtain::net {

using NodeId = uint32_t;
using ZoneId = uint32_t;
constexpr NodeId kInvalidNode = UINT32_MAX;

enum class NodeKind {
  kRouter,
  kGateway,       ///< cellular egress point (PGW/GGSN)
  kResolver,      ///< DNS resolver (client- or external-facing)
  kAuthServer,    ///< authoritative DNS server
  kReplica,       ///< CDN content replica
  kVantagePoint,  ///< wired measurement host (the "university" probe)
  kDevice,        ///< mobile device anchor (radio handled by cellular::)
};

struct Zone {
  std::string name;
  /// NAT/firewall: drop probes originating outside this zone at ingress.
  bool blocks_inbound_probes = false;
};

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  NodeKind kind = NodeKind::kRouter;
  ZoneId zone = 0;
  GeoPoint location;
  Ipv4Addr ip;  ///< unspecified (0.0.0.0) if the node has no addressable IP
  /// Organization owning the node (carrier id); 0 = unaffiliated. ICMP
  /// filtering in cellular networks is directional: some resolvers answer
  /// in-network clients only (SK Telecom), others answer only outside
  /// probes (Verizon's external tier, which lives in a separate AS).
  uint32_t owner_tag = 0;
  bool ping_from_same_owner = true;   ///< answer pings from own subscribers
  bool ping_from_other_owner = true;  ///< answer pings from everyone else
  bool responds_to_traceroute = true;

  bool answers_ping_from(uint32_t prober_tag) const {
    return prober_tag == owner_tag ? ping_from_same_owner : ping_from_other_owner;
  }
  /// Local processing delay added to probe/request handling.
  LatencyModel processing = LatencyModel::fixed(0.1);
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  LatencyModel latency;
  double loss = 0.0;      ///< per-traversal loss probability
  bool tunneled = false;  ///< interior endpoint hidden from traceroute
};

struct PingResult {
  bool responded = false;
  double rtt_ms = 0.0;
  /// Why an unanswered probe died (diagnostics; the client only sees loss).
  enum class Failure { kNone, kNoRoute, kFirewalled, kUnresponsive, kLoss };
  Failure failure = Failure::kNone;
};

struct TracerouteHop {
  NodeId node = kInvalidNode;  ///< kInvalidNode for a silent ("* * *") hop
  double rtt_ms = 0.0;
  bool responded = false;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool reached_destination = false;
};

/// The static graph plus probe semantics.
///
/// Mutation (add_*) happens during world construction; measurement runs
/// treat the topology as immutable and thread randomness through `Rng&`.
class Topology {
 public:
  Topology();

  ZoneId add_zone(std::string name, bool blocks_inbound_probes);
  NodeId add_node(Node node);  ///< node.id is assigned by the topology
  void add_link(NodeId a, NodeId b, LatencyModel latency, double loss = 0.0,
                bool tunneled = false);

  const Zone& zone(ZoneId id) const { return zones_[id]; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }
  size_t zone_count() const { return zones_.size(); }
  static constexpr ZoneId internet_zone() { return 0; }

  /// Node owning `ip`; kInvalidNode if unknown. Registration happens in
  /// add_node for any node with a non-zero IP.
  NodeId find_by_ip(Ipv4Addr ip) const;

  /// Shortest path by typical latency, inclusive of both endpoints; empty
  /// if unreachable. Cached; cache resets on mutation.
  const std::vector<NodeId>& route(NodeId from, NodeId to) const;

  /// Partitions the route cache into `ways` independent maps indexed by
  /// the calling thread's shard slot, so concurrent shards fill disjoint
  /// caches instead of racing on one. Routes are deterministic, so the
  /// partitioning never changes results — which is exactly why the route
  /// cache may key off the (cohort-count-dependent) shard slot while
  /// result-visible state must use state lanes (net/shard_slot.h). Call
  /// before campaign threads start with ways > the shard count — the
  /// engine checks — and resets cached routes.
  void set_route_cache_ways(size_t ways);
  size_t route_cache_ways() const { return route_caches_.size(); }

  /// Round-trip time as measured by a transport exchange (no firewall or
  /// responsiveness checks — used for protocol traffic like DNS, which is
  /// solicited and therefore NAT-traversing). nullopt if no route.
  std::optional<double> transport_rtt_ms(NodeId from, NodeId to, Rng& rng) const;

  /// ICMP echo semantics: firewall zones, per-node responsiveness, loss.
  PingResult ping(NodeId from, NodeId to, Rng& rng) const;

  /// TTL-walking traceroute with tunnel hiding and firewall truncation.
  TracerouteResult traceroute(NodeId from, NodeId to, Rng& rng) const;

  /// First node of the destination zone along the route from `from` to
  /// `to`, i.e. the ingress/egress boundary. kInvalidNode if none.
  NodeId zone_boundary(NodeId from, NodeId to) const;

 private:
  struct Edge {
    NodeId peer;
    uint32_t link_index;
  };

  /// Index of the link traversed between adjacent route nodes.
  const Link& link_between(NodeId a, NodeId b) const;
  /// True if a probe from `origin_zone` is dropped when entering `target`.
  bool probe_blocked_at(ZoneId origin_zone, NodeId target) const;

  std::vector<Zone> zones_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Edge>> adjacency_;
  std::unordered_map<uint32_t, NodeId> ip_index_;
  /// One route cache per shard slot (see net/shard_slot.h); size 1 until
  /// set_route_cache_ways() widens it for a sharded campaign.
  mutable std::vector<std::unordered_map<uint64_t, std::vector<NodeId>>>
      route_caches_{1};
};

}  // namespace curtain::net
