#include "obs/export.h"

#include <cstdio>
#include <fstream>

namespace curtain::obs {
namespace {

std::string num(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_help_type(std::string& out, const std::string& name,
                      const std::string& help, const char* type) {
  if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& row : snapshot.counters) {
    append_help_type(out, row.name, row.help, "counter");
    out += row.name + " " + std::to_string(row.value) + "\n";
  }
  for (const auto& row : snapshot.gauges) {
    append_help_type(out, row.name, row.help, "gauge");
    out += row.name + " " + num(row.value) + "\n";
  }
  for (const auto& row : snapshot.histograms) {
    append_help_type(out, row.name, row.help, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < row.bounds.size(); ++i) {
      cumulative += row.buckets[i];
      out += row.name + "_bucket{le=\"" + num(row.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += row.name + "_bucket{le=\"+Inf\"} " + std::to_string(row.count) +
           "\n";
    out += row.name + "_sum " + num(row.sum) + "\n";
    out += row.name + "_count " + std::to_string(row.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, const RunReport* report) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& row : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(row.name) +
           "\": " + std::to_string(row.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& row : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(row.name) + "\": " + num(row.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& row : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(row.name) + "\": {\"count\": " +
           std::to_string(row.count) + ", \"sum\": " + num(row.sum) +
           ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < row.bounds.size(); ++i) {
      cumulative += row.buckets[i];
      if (i > 0) out += ", ";
      out += "{\"le\": " + num(row.bounds[i]) +
             ", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "]}";
  }
  out += "\n  }";
  if (report != nullptr) {
    out += ",\n  \"report\": {\n    \"phases\": [";
    first = true;
    for (const auto& phase : report->phases) {
      out += first ? "" : ", ";
      first = false;
      out += "{\"name\": \"" + json_escape(phase.name) +
             "\", \"wall_ms\": " + num(phase.wall_ms) + "}";
    }
    out += "],\n    \"totals\": {";
    first = true;
    for (const auto& [name, value] : report->totals) {
      out += first ? "" : ", ";
      first = false;
      out += '"';
      out += json_escape(name);
      out += "\": ";
      out += num(value);
    }
    out += "}\n  }";
  }
  out += "\n}\n";
  return out;
}

bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const RunReport* report) {
  std::ofstream out(path);
  if (!out.good()) return false;
  const bool prometheus =
      path.size() > 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prometheus ? to_prometheus_text(snapshot)
                     : to_json(snapshot, report));
  return out.good();
}

}  // namespace curtain::obs
