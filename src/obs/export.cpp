#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <iterator>

namespace curtain::obs {
namespace {

std::string num(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_help_type(std::string& out, const std::string& name,
                      const std::string& help, const char* type) {
  if (!help.empty()) {
    out += "# HELP " + name + " " + prometheus_escape_help(help) + "\n";
  }
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& row : snapshot.counters) {
    append_help_type(out, row.name, row.help, "counter");
    out += row.name + " " + std::to_string(row.value) + "\n";
  }
  for (const auto& row : snapshot.gauges) {
    append_help_type(out, row.name, row.help, "gauge");
    out += row.name + " " + num(row.value) + "\n";
  }
  for (const auto& row : snapshot.histograms) {
    append_help_type(out, row.name, row.help, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < row.bounds.size(); ++i) {
      cumulative += row.buckets[i];
      out += row.name + "_bucket{le=\"" +
             prometheus_escape_label(num(row.bounds[i])) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += row.name + "_bucket{le=\"+Inf\"} " + std::to_string(row.count) +
           "\n";
    out += row.name + "_sum " + num(row.sum) + "\n";
    out += row.name + "_count " + std::to_string(row.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, const RunReport* report) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& row : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(row.name) +
           "\": " + std::to_string(row.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& row : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(row.name) + "\": " + num(row.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& row : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(row.name) + "\": {\"count\": " +
           std::to_string(row.count) + ", \"sum\": " + num(row.sum) +
           ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < row.bounds.size(); ++i) {
      cumulative += row.buckets[i];
      if (i > 0) out += ", ";
      out += "{\"le\": " + num(row.bounds[i]) +
             ", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "]}";
  }
  out += "\n  }";
  if (report != nullptr) {
    out += ",\n  \"report\": {\n    \"phases\": [";
    first = true;
    for (const auto& phase : report->phases) {
      out += first ? "" : ", ";
      first = false;
      out += "{\"name\": \"" + json_escape(phase.name) +
             "\", \"wall_ms\": " + num(phase.wall_ms) + "}";
    }
    out += "],\n    \"totals\": {";
    first = true;
    for (const auto& [name, value] : report->totals) {
      out += first ? "" : ", ";
      first = false;
      out += '"';
      out += json_escape(name);
      out += "\": ";
      out += num(value);
    }
    out += "}";
    if (report->config.set()) {
      out += ",\n    \"config\": {\"workers\": " +
             std::to_string(report->config.workers) +
             ", \"cohorts\": " + std::to_string(report->config.cohorts) +
             ", \"shards\": " + std::to_string(report->config.shards) + "}";
    }
    if (report->profile.enabled) {
      const auto& profile = report->profile;
      out += ",\n    \"profile\": {\"queue_wait_p50_ms\": " +
             num(profile.queue_wait_p50_ms) +
             ", \"queue_wait_p95_ms\": " + num(profile.queue_wait_p95_ms) +
             ", \"worker_utilization_pct\": " +
             num(profile.worker_utilization_pct) +
             ", \"peak_rss_mb\": " + num(profile.peak_rss_mb) +
             ", \"median_shard_wall_ms\": " +
             num(profile.median_shard_wall_ms) +
             ", \"stall_factor\": " + num(profile.stall_factor) +
             ", \"shards\": [";
      first = true;
      for (const auto& shard : profile.shards) {
        out += first ? "" : ", ";
        first = false;
        out += "{\"label\": \"" + json_escape(shard.label) +
               "\", \"worker\": " + std::to_string(shard.worker) +
               ", \"wall_ms\": " + num(shard.wall_ms) +
               ", \"queue_wait_ms\": " + num(shard.queue_wait_ms) +
               ", \"stalled\": " + (shard.stalled ? "true" : "false") + "}";
      }
      out += "]}";
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

namespace {

/// chrome://tracing reserved color names, assigned per carrier so every
/// carrier's shard spans share a hue across worker lanes.
const char* carrier_cname(int carrier_index) {
  static const char* const kPalette[] = {
      "thread_state_running", "rail_response",    "rail_animation",
      "rail_idle",            "thread_state_iowait", "rail_load",
      "good",                 "bad",
  };
  constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));
  int slot = carrier_index % kPaletteSize;
  if (slot < 0) slot += kPaletteSize;
  return kPalette[slot];
}

void append_trace_event(std::string& out, bool& first,
                        const std::string& event) {
  out += first ? "\n    " : ",\n    ";
  first = false;
  out += event;
}

}  // namespace

std::string to_chrome_trace(const FlightRecorder::Dump& dump) {
  std::string out = "{\n  \"traceEvents\": [";
  bool first = true;

  append_trace_event(out, first,
                     "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
                     "\"process_name\", \"args\": {\"name\": "
                     "\"curtain campaign\"}}");
  append_trace_event(out, first,
                     "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
                     "\"thread_name\", \"args\": {\"name\": "
                     "\"coordinator\"}}");
  for (size_t lane = 1; lane <= dump.worker_lanes; ++lane) {
    append_trace_event(
        out, first,
        "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(lane) +
            ", \"name\": \"thread_name\", \"args\": {\"name\": \"worker " +
            std::to_string(lane) + "\"}}");
  }

  for (const ExecRecord& record : dump.records) {
    const auto ts = std::to_string(record.start_us);
    const auto tid = std::to_string(record.worker);
    switch (record.kind) {
      case ExecRecord::Kind::kShardSpan: {
        std::string label = "shard";
        std::string args;
        if (record.shard_index >= 0 &&
            static_cast<size_t>(record.shard_index) < dump.shards.size()) {
          const FlightRecorder::ShardMeta& meta =
              dump.shards[static_cast<size_t>(record.shard_index)];
          label = meta.label;
          args = "\"carrier\": " + std::to_string(meta.carrier_index) +
                 ", \"cohort\": " + std::to_string(meta.cohort_index) +
                 ", \"devices\": " + std::to_string(meta.devices) + ", ";
        }
        const int carrier =
            record.shard_index >= 0 &&
                    static_cast<size_t>(record.shard_index) <
                        dump.shards.size()
                ? dump.shards[static_cast<size_t>(record.shard_index)]
                      .carrier_index
                : 0;
        append_trace_event(
            out, first,
            "{\"ph\": \"X\", \"pid\": 1, \"tid\": " + tid + ", \"ts\": " +
                ts + ", \"dur\": " +
                std::to_string(record.end_us - record.start_us) +
                ", \"name\": \"" + json_escape(label) + "\", \"cname\": \"" +
                carrier_cname(carrier) + "\", \"args\": {" + args +
                "\"shard\": " + std::to_string(record.shard_index) +
                ", \"queue_wait_us\": " +
                std::to_string(record.queue_wait_us) +
                ", \"dataset_mb\": " +
                num(static_cast<double>(record.bytes) / (1024.0 * 1024.0)) +
                "}}");
        break;
      }
      case ExecRecord::Kind::kPhaseSpan:
        append_trace_event(
            out, first,
            "{\"ph\": \"X\", \"pid\": 1, \"tid\": " + tid + ", \"ts\": " +
                ts + ", \"dur\": " +
                std::to_string(record.end_us - record.start_us) +
                ", \"name\": \"" + json_escape(record.name) +
                "\", \"args\": {}}");
        break;
      case ExecRecord::Kind::kCounter:
        // Counter tracks aggregate per (pid, name); pinning tid 0 keeps
        // one RSS and one queue-depth track for the whole process.
        append_trace_event(
            out, first,
            "{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": " + ts +
                ", \"name\": \"" + json_escape(record.name) +
                "\", \"args\": {\"" + json_escape(record.name) +
                "\": " + num(record.value) + "}}");
        break;
    }
  }

  out += "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": "
         "{\"workers\": " +
         std::to_string(dump.worker_lanes) +
         ", \"shards\": " + std::to_string(dump.shards.size()) + "}\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const FlightRecorder::Dump& dump) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << to_chrome_trace(dump);
  return out.good();
}

bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const RunReport* report) {
  std::ofstream out(path);
  if (!out.good()) return false;
  const bool prometheus =
      path.size() > 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prometheus ? to_prometheus_text(snapshot)
                     : to_json(snapshot, report));
  return out.good();
}

}  // namespace curtain::obs
