// curtain::obs — metric exporters.
//
// Two textual formats over one MetricsSnapshot, mirroring the
// analysis/export.cpp convention of "plain text a human or external tool
// can consume with zero dependencies":
//   * Prometheus exposition text (HELP/TYPE lines, cumulative `le`
//     histogram buckets) for scrape-style tooling;
//   * a single JSON document for everything else (and for the
//     CURTAIN_METRICS_OUT end-of-run export).
#pragma once

#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace curtain::obs {

/// Prometheus text exposition of every registered metric.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// Escapes a Prometheus label *value*: backslash, double quote and
/// newline become \\, \" and \n (exposition-format spec).
std::string prometheus_escape_label(const std::string& value);

/// Escapes Prometheus HELP text: backslash and newline only (quotes are
/// legal in HELP, unlike in label values).
std::string prometheus_escape_help(const std::string& help);

/// JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}
/// plus a "report" object when `report` is given.
std::string to_json(const MetricsSnapshot& snapshot,
                    const RunReport* report = nullptr);

/// Writes the end-of-run export to `path`: Prometheus text when the path
/// ends in ".prom", JSON otherwise. Returns false on I/O failure.
bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const RunReport* report = nullptr);

/// Renders a flight-recorder dump as chrome://tracing `trace_event` JSON
/// (object form): one lane per worker plus the coordinator lane, "X"
/// complete events for shard/phase spans (colored by carrier), "C"
/// counter tracks for RSS and queue depth, and thread-name metadata.
/// Load via chrome://tracing or https://ui.perfetto.dev.
std::string to_chrome_trace(const FlightRecorder::Dump& dump);

/// Writes to_chrome_trace() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const FlightRecorder::Dump& dump);

}  // namespace curtain::obs
