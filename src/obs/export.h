// curtain::obs — metric exporters.
//
// Two textual formats over one MetricsSnapshot, mirroring the
// analysis/export.cpp convention of "plain text a human or external tool
// can consume with zero dependencies":
//   * Prometheus exposition text (HELP/TYPE lines, cumulative `le`
//     histogram buckets) for scrape-style tooling;
//   * a single JSON document for everything else (and for the
//     CURTAIN_METRICS_OUT end-of-run export).
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/report.h"

namespace curtain::obs {

/// Prometheus text exposition of every registered metric.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}
/// plus a "report" object when `report` is given.
std::string to_json(const MetricsSnapshot& snapshot,
                    const RunReport* report = nullptr);

/// Writes the end-of-run export to `path`: Prometheus text when the path
/// ends in ".prom", JSON otherwise. Returns false on I/O failure.
bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const RunReport* report = nullptr);

}  // namespace curtain::obs
