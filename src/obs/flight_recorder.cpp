#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

namespace curtain::obs {
namespace {

// The recorder is the tree's one sanctioned wall-clock consumer outside
// phase timing: its timestamps label a profiling timeline and never feed
// simulated state (DESIGN.md §14), hence the dedicated waiver category.

int64_t monotonic_ns() {
  const auto now = std::chrono::steady_clock::now();  // lint: profiler-wallclock
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

void copy_name(ExecRecord& record, const char* name) {
  std::strncpy(record.name, name, sizeof(record.name) - 1);
  record.name[sizeof(record.name) - 1] = '\0';
}

/// Nearest-rank percentile of an unsorted sample (copies and sorts).
double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(pct / 100.0 * static_cast<double>(values.size()));
  size_t index = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;  // lint: shared-static (process-wide profiler; internally mutex-guarded)
  return recorder;
}

void FlightRecorder::enable() {
  if (enabled()) return;
  epoch_ns_ = monotonic_ns();
  if (slabs_.empty()) slabs_.push_back(std::make_unique<Slab>());
  enabled_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

int64_t FlightRecorder::now_us() const {
  return (monotonic_ns() - epoch_ns_) / 1000;
}

void FlightRecorder::begin_run(size_t worker_lanes,
                               std::vector<ShardMeta> shards) {
  if (!enabled()) return;
  shards_ = std::move(shards);
  while (slabs_.size() <= worker_lanes) {
    slabs_.push_back(std::make_unique<Slab>());
  }
  // Worst case one worker runs every shard (3 records each: span +
  // queue-depth + RSS samples) plus phase headroom; reserving up front
  // keeps worker-side appends allocation-free.
  const size_t capacity = 3 * shards_.size() + 16;
  for (auto& slab : slabs_) {
    slab->records.reserve(slab->records.size() + capacity);
  }
}

ExecRecord* FlightRecorder::append(uint16_t worker_lane) {
  if (!enabled()) return nullptr;
  if (worker_lane >= slabs_.size()) return nullptr;
  return &slabs_[worker_lane]->records.emplace_back();
}

void FlightRecorder::record_shard(uint16_t worker_lane, int32_t shard_index,
                                  int64_t pickup_us, int64_t finish_us,
                                  int64_t queue_wait_us, double queue_depth,
                                  size_t rss_bytes, size_t dataset_bytes) {
  ExecRecord* span = append(worker_lane);
  if (span == nullptr) return;
  span->kind = ExecRecord::Kind::kShardSpan;
  span->worker = worker_lane;
  span->shard_index = shard_index;
  span->start_us = pickup_us;
  span->end_us = finish_us;
  span->queue_wait_us = queue_wait_us;
  span->bytes = dataset_bytes;
  record_counter(worker_lane, "queue_depth", finish_us, queue_depth);
  record_counter(worker_lane, "rss_mb", finish_us,
                 static_cast<double>(rss_bytes) / (1024.0 * 1024.0));
}

void FlightRecorder::record_phase(uint16_t worker_lane, const char* name,
                                  int64_t start_us, int64_t end_us) {
  ExecRecord* record = append(worker_lane);
  if (record == nullptr) return;
  record->kind = ExecRecord::Kind::kPhaseSpan;
  record->worker = worker_lane;
  record->start_us = start_us;
  record->end_us = end_us;
  copy_name(*record, name);
}

void FlightRecorder::record_counter(uint16_t worker_lane, const char* name,
                                    int64_t at_us, double value) {
  ExecRecord* record = append(worker_lane);
  if (record == nullptr) return;
  record->kind = ExecRecord::Kind::kCounter;
  record->worker = worker_lane;
  record->start_us = at_us;
  record->end_us = at_us;
  record->value = value;
  copy_name(*record, name);
}

FlightRecorder::Dump FlightRecorder::dump() const {
  Dump out;
  out.worker_lanes = slabs_.empty() ? 0 : slabs_.size() - 1;
  out.shards = shards_;
  size_t total = 0;
  for (const auto& slab : slabs_) total += slab->records.size();
  out.records.reserve(total);
  for (const auto& slab : slabs_) {
    out.records.insert(out.records.end(), slab->records.begin(),
                       slab->records.end());
  }
  // Deterministic merge: the timeline is a pure function of the recorded
  // timestamps and lanes, never of slab iteration order (stable sort
  // keeps each lane's own append order on timestamp ties).
  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const ExecRecord& a, const ExecRecord& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.worker < b.worker;
                   });
  return out;
}

void FlightRecorder::clear() {
  slabs_.clear();
  shards_.clear();
  if (enabled()) slabs_.push_back(std::make_unique<Slab>());
}

RunReport::Profile build_profile(const FlightRecorder::Dump& dump,
                                 double stall_factor, size_t peak_rss_bytes) {
  RunReport::Profile profile;
  profile.enabled = true;
  profile.stall_factor = stall_factor;
  profile.peak_rss_mb =
      static_cast<double>(peak_rss_bytes) / (1024.0 * 1024.0);

  profile.shards.assign(dump.shards.size(), RunReport::ShardProfile{});
  for (size_t i = 0; i < dump.shards.size(); ++i) {
    profile.shards[i].label = dump.shards[i].label;
  }

  int64_t first_start = std::numeric_limits<int64_t>::max();
  int64_t last_end = 0;
  int64_t busy_us = 0;
  std::vector<double> waits_ms;
  std::vector<double> walls_ms;
  for (const ExecRecord& record : dump.records) {
    if (record.kind != ExecRecord::Kind::kShardSpan) continue;
    if (record.shard_index < 0 ||
        static_cast<size_t>(record.shard_index) >= profile.shards.size()) {
      continue;
    }
    RunReport::ShardProfile& shard =
        profile.shards[static_cast<size_t>(record.shard_index)];
    shard.worker = record.worker;
    shard.wall_ms = static_cast<double>(record.end_us - record.start_us) / 1000.0;
    shard.queue_wait_ms = static_cast<double>(record.queue_wait_us) / 1000.0;
    first_start = std::min(first_start, record.start_us);
    last_end = std::max(last_end, record.end_us);
    busy_us += record.end_us - record.start_us;
    waits_ms.push_back(shard.queue_wait_ms);
    walls_ms.push_back(shard.wall_ms);
  }

  profile.queue_wait_p50_ms = percentile(waits_ms, 50.0);
  profile.queue_wait_p95_ms = percentile(waits_ms, 95.0);
  profile.median_shard_wall_ms = percentile(walls_ms, 50.0);

  // Stall watchdog: a shard is stalled when it exceeds stall_factor ×
  // the median shard wall (and the median is meaningful at all).
  const double threshold = stall_factor * profile.median_shard_wall_ms;
  for (RunReport::ShardProfile& shard : profile.shards) {
    shard.stalled =
        profile.median_shard_wall_ms > 0.0 && shard.wall_ms > threshold;
  }

  if (last_end > first_start && dump.worker_lanes > 0) {
    profile.worker_utilization_pct =
        100.0 * static_cast<double>(busy_us) /
        (static_cast<double>(last_end - first_start) *
         static_cast<double>(dump.worker_lanes));
  }
  return profile;
}

}  // namespace curtain::obs
