// curtain::obs — campaign flight recorder (execution-level profiler).
//
// The span tracer (trace.h) explains where *simulated* time goes inside
// one resolution; this layer explains where *real* time and memory go
// when the campaign engine runs: which worker ran which shard when, how
// long shards waited in the pull queue, what the merge phases cost, and
// how RSS moved. It is the diagnostic substrate for the ROADMAP's
// scaling work (why does the 16-worker gain stop at 5.33×? what is the
// RSS ceiling made of?).
//
// Design (DESIGN.md §14):
//   * Always-on hooks, pay-per-use cost: call sites test enabled() — one
//     relaxed atomic load — and only then read the clock. With
//     CURTAIN_PROFILE_OUT unset the campaign pays a few branches per
//     *shard*, never per event.
//   * Per-thread slabs: each worker lane appends fixed-size POD
//     ExecRecords to its own pre-sized slab; no locks, no allocation in
//     steady state, no cross-thread writes. Lane 0 belongs to the
//     coordinating thread (world build, merge phases).
//   * Deterministic merge: dump() concatenates the slabs and stable-sorts
//     by (start, lane), so the merged timeline is a pure function of the
//     recorded timestamps — not of merge order.
//   * Fenced from results: timestamps are wall-clock (sanctioned via the
//     linter's `profiler-wallclock` waiver) and must never feed simulated
//     state. The recorder writes no metric until after the campaign's
//     deterministic merge completed, and exports are byte-identical with
//     the recorder on or off (tests/shard_determinism_test).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/report.h"

namespace curtain::obs {

/// One recorded event, fixed-size POD so slab appends never allocate
/// per-field. `start_us`/`end_us` are monotonic microseconds since the
/// recorder was enabled.
struct ExecRecord {
  enum class Kind : uint8_t {
    kShardSpan,  ///< one shard's execution on a worker (pickup → finish)
    kPhaseSpan,  ///< a named engine/study phase (world build, merges)
    kCounter,    ///< a sampled value (RSS, queue depth)
  };

  Kind kind = Kind::kShardSpan;
  uint16_t worker = 0;        ///< worker lane; 0 = coordinating thread
  int32_t shard_index = -1;   ///< kShardSpan: index into Dump::shards
  int64_t start_us = 0;
  int64_t end_us = 0;         ///< kCounter: equals start_us
  int64_t queue_wait_us = 0;  ///< kShardSpan: pickup − queue-open
  uint64_t bytes = 0;         ///< kShardSpan: shard dataset heap bytes
  double value = 0.0;         ///< kCounter: the sampled value
  char name[24] = {};         ///< kPhaseSpan/kCounter: NUL-terminated name
};
static_assert(std::is_trivially_copyable_v<ExecRecord>,
              "slab records must stay POD");

class FlightRecorder {
 public:
  /// Identity of one shard, captured at begin_run() so exporters can
  /// label spans without touching engine internals.
  struct ShardMeta {
    std::string label;  ///< "<carrier>/cohort<k>"
    int carrier_index = 0;
    int cohort_index = 0;
    uint64_t devices = 0;
  };

  /// The deterministically merged timeline of one run.
  struct Dump {
    size_t worker_lanes = 0;  ///< worker lanes are 1..worker_lanes
    std::vector<ShardMeta> shards;
    std::vector<ExecRecord> records;  ///< sorted by (start_us, worker)
  };

  /// The process-wide recorder. One profiled study at a time: the study
  /// that enabled it owns the run until it disables it again.
  static FlightRecorder& instance();

  /// Arms the hooks and sets the timestamp epoch. Creates lane 0.
  void enable();
  /// Disarms the hooks; recorded slabs survive until clear().
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic microseconds since enable(). Only meaningful (and only
  /// worth calling) while enabled.
  int64_t now_us() const;

  /// Coordinating thread, before the worker pool starts: sizes the slabs
  /// for lanes 0..worker_lanes and records the shard table. Lane 0
  /// records from before the run (world build) are kept.
  void begin_run(size_t worker_lanes, std::vector<ShardMeta> shards);

  /// Worker hook, once per shard: records the shard span plus queue-depth
  /// and RSS counter samples at finish. Only lane `worker_lane` may call
  /// this with that lane value (slabs are single-writer).
  void record_shard(uint16_t worker_lane, int32_t shard_index,
                    int64_t pickup_us, int64_t finish_us,
                    int64_t queue_wait_us, double queue_depth,
                    size_t rss_bytes, size_t dataset_bytes);

  /// Named span on one lane (merge phases, world build, vantage sweep).
  void record_phase(uint16_t worker_lane, const char* name, int64_t start_us,
                    int64_t end_us);

  /// Named counter sample on one lane.
  void record_counter(uint16_t worker_lane, const char* name, int64_t at_us,
                      double value);

  /// Merges every slab into one timeline. Call only after the worker
  /// pool joined (single-writer slabs have no readers mid-run).
  Dump dump() const;

  /// Drops all slabs and shard metadata (keeps the enabled state).
  void clear();

 private:
  FlightRecorder() = default;

  struct Slab {
    std::vector<ExecRecord> records;
  };
  ExecRecord* append(uint16_t worker_lane);

  std::atomic<bool> enabled_{false};
  int64_t epoch_ns_ = 0;
  std::vector<std::unique_ptr<Slab>> slabs_;  ///< index = worker lane
  std::vector<ShardMeta> shards_;
};

/// Condenses a dump into the RunReport profile section: per-shard wall
/// and queue-wait, queue-wait p50/p95, worker utilization %, the stall
/// watchdog (shards slower than stall_factor × the median shard wall)
/// and peak RSS (sampled by the caller via read_peak_rss_bytes()).
RunReport::Profile build_profile(const FlightRecorder::Dump& dump,
                                 double stall_factor, size_t peak_rss_bytes);

}  // namespace curtain::obs
