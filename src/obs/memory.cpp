#include "obs/memory.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace curtain::obs {
namespace {

/// Reads a "Vm...:  <kB> kB" line from /proc/self/status. Returns 0 when
/// the file or the field is absent (non-Linux hosts).
size_t proc_status_kb(const char* field) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    unsigned long long value = 0;
    if (std::sscanf(line + field_len, ": %llu", &value) == 1) {
      kb = static_cast<size_t>(value);
    }
    break;
  }
  std::fclose(status);
  return kb;
}

}  // namespace

size_t read_current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

size_t read_peak_rss_bytes() {
  const size_t hwm = proc_status_kb("VmHWM") * 1024;
  if (hwm != 0) return hwm;
#if defined(__linux__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // Linux reports ru_maxrss in kB, macOS in bytes.
#if defined(__APPLE__)
    return static_cast<size_t>(usage.ru_maxrss);
#else
    return static_cast<size_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

}  // namespace curtain::obs
