// curtain::obs — process- and subsystem-level memory accounting.
//
// The ROADMAP's million-device campaigns rise or fall on RSS, so the
// flight recorder (flight_recorder.h) samples two channels:
//
//   * process RSS read from the kernel (/proc/self/status, with a
//     getrusage fallback for the peak) — what the container limit sees;
//   * per-subsystem approx_bytes() accounting on the big allocators
//     (measure::RecordStore, net::EventQueue, dns::Cache, the fleet
//     arena and laned state) — what explains the RSS.
//
// The approx_bytes() methods report heap *capacities*, not sizes: RSS is
// driven by what vectors reserved, not what they filled. Each separate
// allocation is charged kAllocOverheadBytes for the allocator's chunk
// header and alignment — without it the node-heavy DNS caches read ~18%
// under live heap (measured against mallinfo2 at the million-device
// scale). Still approximations intended for megabyte-scale attribution,
// not byte-exact audits. LaneMemory is the roll-up pair those methods
// aggregate into.
//
// Everything here is profiling-only: values are host-dependent and must
// never feed result state or default metric exports (DESIGN.md §14).
#pragma once

#include <cstddef>

namespace curtain::obs {

/// Per-allocation charge approx_bytes() gauges add for the allocator's
/// chunk header plus alignment padding (glibc malloc: 8–16 byte header,
/// 16-byte alignment — ~16 bytes typical for the node-sized chunks that
/// dominate cache state).
inline constexpr size_t kAllocOverheadBytes = 16;

/// Current resident set size in bytes (VmRSS); 0 when unreadable.
size_t read_current_rss_bytes();

/// Peak resident set size in bytes (VmHWM, falling back to
/// getrusage ru_maxrss); 0 when unreadable.
size_t read_peak_rss_bytes();

/// Roll-up of laned (per-device result-visible) state: DNS cache payload
/// vs everything else (query ids, NAT cursors, container overhead).
struct LaneMemory {
  size_t cache_bytes = 0;  ///< dns::Cache entries across all lanes
  size_t state_bytes = 0;  ///< non-cache laned state + container overhead

  size_t total() const { return cache_bytes + state_bytes; }
  LaneMemory& operator+=(const LaneMemory& other) {
    cache_bytes += other.cache_bytes;
    state_bytes += other.state_bytes;
    return *this;
  }
};

}  // namespace curtain::obs
