#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace curtain::obs {
namespace {

/// Doubles → fixed-point sum units (see Histogram::kSumScale).
int64_t to_sum_units(double v, double scale) {
  return static_cast<int64_t>(std::llround(v * scale));
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_units_.fetch_add(to_sum_units(v, kSumScale), std::memory_order_relaxed);
}

void Histogram::merge_counts(const std::vector<uint64_t>& buckets,
                             uint64_t count, double sum) {
  const size_t n = std::min(buckets.size(), bounds_.size() + 1);
  for (size_t i = 0; i < n; ++i) {
    buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  // A snapshot sum is units/kSumScale exactly (power-of-two scale), so
  // this conversion recovers the original integer unit count.
  sum_units_.fetch_add(to_sum_units(sum, kSumScale),
                       std::memory_order_relaxed);
}

void Histogram::reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_units_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::latency_ms_buckets() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

std::vector<double> Histogram::small_count_buckets() {
  return {1, 2, 3, 4, 6, 8, 16};
}

uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& row : counters) {
    if (row.name == name) return row.value;
  }
  return 0;
}

namespace {
thread_local MetricsRegistry* tls_current_registry = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  // Leaky on purpose so late references never dangle at exit.
  static MetricsRegistry* registry = new MetricsRegistry();  // lint: shared-static (process-wide registry; all mutation is atomic/sheaf-local)
  return *registry;
}

MetricsRegistry& MetricsRegistry::current() {
  return tls_current_registry != nullptr ? *tls_current_registry : instance();
}

ScopedMetricsSheaf::ScopedMetricsSheaf(MetricsRegistry& sheaf)
    : previous_(tls_current_registry) {
  tls_current_registry = &sheaf;
}

ScopedMetricsSheaf::~ScopedMetricsSheaf() { tls_current_registry = previous_; }

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = counters_[name];
  if (!entry.metric) {
    entry.metric = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = gauges_[name];
  if (!entry.metric) {
    entry.metric = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = histograms_[name];
  if (!entry.metric) {
    entry.metric = std::make_unique<Histogram>(std::move(bounds));
    entry.help = help;
  }
  return *entry.metric;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : counters_) {
    snap.counters.push_back({name, entry.help, entry.metric->value()});
  }
  for (const auto& [name, entry] : gauges_) {
    snap.gauges.push_back({name, entry.help, entry.metric->value()});
  }
  for (const auto& [name, entry] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.help = entry.help;
    row.bounds = entry.metric->bounds();
    for (size_t i = 0; i < entry.metric->num_buckets(); ++i) {
      row.buckets.push_back(entry.metric->bucket(i));
    }
    row.count = entry.metric->count();
    row.sum = entry.metric->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::merge_snapshot(const MetricsSnapshot& snap) {
  for (const auto& row : snap.counters) {
    if (row.value != 0) counter(row.name, row.help).inc(row.value);
  }
  for (const auto& row : snap.gauges) {
    if (row.value != 0.0) gauge(row.name, row.help).add(row.value);
  }
  for (const auto& row : snap.histograms) {
    if (row.count == 0) continue;
    histogram(row.name, row.bounds, row.help)
        .merge_counts(row.buckets, row.count, row.sum);
  }
}

void MetricsRegistry::reset_for_tests() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : counters_) entry.metric->reset();
  for (auto& [name, entry] : gauges_) entry.metric->reset();
  for (auto& [name, entry] : histograms_) entry.metric->reset();
}

}  // namespace curtain::obs
