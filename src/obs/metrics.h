// curtain::obs — process-wide metrics registry.
//
// The simulator computes millions of resolutions per campaign; this is the
// instrumentation that makes those runs inspectable: named counters,
// gauges and fixed-bucket histograms that hot paths bump through lock-free
// std::atomic operations. Registration is lazy (first use creates the
// metric) and returned references are stable for the process lifetime, so
// call sites cache them in function-local statics:
//
//   static obs::Counter& queries =
//       obs::metrics().counter("curtain_dns_queries_total", "DNS lookups");
//   queries.inc();
//
// Naming scheme: curtain_<layer>_<name>[_total] (see DESIGN.md §9).
// reset_for_tests() zeroes every value but keeps the registered objects,
// so cached references survive across test cases.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace curtain::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (sizes, configuration, last-seen).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets (ascending); one implicit overflow bucket catches the
/// rest. observe() is a linear scan over at most ~16 doubles plus two
/// relaxed atomic adds — cheap enough for per-resolution paths.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket `i`; i == bounds().size() is the
  /// overflow bucket.
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }
  void reset();

  /// 0.5 ms .. 5 s, the spread of one-resolution latencies in the study.
  static std::vector<double> latency_ms_buckets();
  /// 1 .. 16, for small set sizes (answer counts, replica sets).
  static std::vector<double> small_count_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A point-in-time copy of every registered metric, sorted by name — what
/// the exporters and the run report consume.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name, help;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name, help;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  ///< raw counts; last entry = overflow
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Value of a counter by name; 0 when absent.
  uint64_t counter_value(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every layer instruments against.
  static MetricsRegistry& instance();

  /// Finds or creates. References remain valid for the process lifetime.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` applies on first registration only; later callers get the
  /// existing histogram whatever its bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric but keeps the objects (cached refs stay valid).
  void reset_for_tests();

 private:
  MetricsRegistry() = default;

  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace curtain::obs
