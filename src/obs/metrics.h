// curtain::obs — metrics registries and per-shard sheaves.
//
// The simulator computes millions of resolutions per campaign; this is the
// instrumentation that makes those runs inspectable: named counters,
// gauges and fixed-bucket histograms that hot paths bump through lock-free
// std::atomic operations. Registration is lazy (first use creates the
// metric) and returned references are stable for the registry lifetime, so
// call sites cache them in function-local thread_local statics:
//
//   static thread_local obs::Counter& queries =
//       obs::metrics().counter("curtain_dns_queries_total", "DNS lookups");
//   queries.inc();
//
// obs::metrics() resolves to the *current* registry: the process-wide one
// by default, or — inside a campaign shard — that shard's private sheaf
// (see ScopedMetricsSheaf). Sheaves keep hot-path instrumentation
// contention-free under concurrent shards and are summed into the global
// registry in deterministic shard order by merge_snapshot(). The
// thread_local on cached handles is what re-binds them per shard thread.
//
// Naming scheme: curtain_<layer>_<name>[_total] (see DESIGN.md §9).
// reset_for_tests() zeroes every value but keeps the registered objects,
// so cached references survive across test cases.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace curtain::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (sizes, configuration, last-seen).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets (ascending); one implicit overflow bucket catches the
/// rest. observe() is a linear scan over at most ~16 doubles plus two
/// relaxed atomic adds — cheap enough for per-resolution paths.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket `i`; i == bounds().size() is the
  /// overflow bucket.
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }
  void reset();

  /// Adds previously captured raw counts (a snapshot row of a histogram
  /// with the same bounds) into this histogram — the sheaf-merge path.
  void merge_counts(const std::vector<uint64_t>& buckets, uint64_t count,
                    double sum);

  /// 0.5 ms .. 5 s, the spread of one-resolution latencies in the study.
  static std::vector<double> latency_ms_buckets();
  /// 1 .. 16, for small set sizes (answer counts, replica sets).
  static std::vector<double> small_count_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A point-in-time copy of every registered metric, sorted by name — what
/// the exporters and the run report consume.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name, help;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name, help;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  ///< raw counts; last entry = overflow
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Value of a counter by name; 0 when absent.
  uint64_t counter_value(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// A standalone registry — a shard's private metrics sheaf. Most code
  /// never constructs one; it reaches the current registry via metrics().
  MetricsRegistry() = default;

  /// The process-wide registry every layer instruments against.
  static MetricsRegistry& instance();

  /// The calling thread's current registry: the sheaf bound by a
  /// ScopedMetricsSheaf, or instance() when none is bound.
  static MetricsRegistry& current();

  /// Finds or creates. References remain valid for the process lifetime.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` applies on first registration only; later callers get the
  /// existing histogram whatever its bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  MetricsSnapshot snapshot() const;

  /// Adds every value of `snap` into this registry (find-or-create by
  /// name): counters and gauges accumulate, histogram bucket counts and
  /// sums add up. Merging shard sheaves in a fixed order keeps even the
  /// floating-point sums deterministic.
  void merge_snapshot(const MetricsSnapshot& snap);

  /// Zeroes every metric but keeps the objects (cached refs stay valid).
  void reset_for_tests();

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// Binds `sheaf` as the calling thread's current registry for the guard's
/// lifetime. The sharded campaign engine installs one per shard thread so
/// hot paths instrument into private, contention-free storage.
class ScopedMetricsSheaf {
 public:
  explicit ScopedMetricsSheaf(MetricsRegistry& sheaf);
  ~ScopedMetricsSheaf();
  ScopedMetricsSheaf(const ScopedMetricsSheaf&) = delete;
  ScopedMetricsSheaf& operator=(const ScopedMetricsSheaf&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Shorthand for MetricsRegistry::current() (the thread's sheaf when one
/// is bound, otherwise the process-wide registry).
inline MetricsRegistry& metrics() { return MetricsRegistry::current(); }

}  // namespace curtain::obs
