// curtain::obs — metrics registries and per-shard sheaves.
//
// The simulator computes millions of resolutions per campaign; this is the
// instrumentation that makes those runs inspectable: named counters,
// gauges and fixed-bucket histograms that hot paths bump through lock-free
// std::atomic operations. Registration is lazy (first use creates the
// metric) and returned references are stable for the registry lifetime, so
// call sites cache a handle struct in a function-local SheafLocal:
//
//   struct FooMetrics {
//     obs::Counter& queries =
//         obs::metrics().counter("curtain_dns_queries_total", "DNS lookups");
//   };
//   static thread_local obs::SheafLocal<FooMetrics> metrics;
//   metrics.get().queries.inc();
//
// obs::metrics() resolves to the *current* registry: the process-wide one
// by default, or — inside a campaign shard — that shard's private sheaf
// (see ScopedMetricsSheaf). Sheaves keep hot-path instrumentation
// contention-free under concurrent shards and are summed into the global
// registry in deterministic shard order by merge_snapshot(). SheafLocal
// re-resolves its handles whenever the thread's current registry changes,
// so pooled worker threads can execute many shards back to back.
//
// Naming scheme: curtain_<layer>_<name>[_total] (see DESIGN.md §9).
// reset_for_tests() zeroes every value but keeps the registered objects,
// so cached references survive across test cases.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace curtain::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (sizes, configuration, last-seen).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets (ascending); one implicit overflow bucket catches the
/// rest. observe() is a linear scan over at most ~16 doubles plus two
/// relaxed atomic adds — cheap enough for per-resolution paths.
///
/// The running sum accumulates in fixed point (units of 2^-16) so that
/// summation is associative: merging shard sheaves produces bit-identical
/// totals no matter how observations were grouped into shards. The 2^-16
/// quantum is far below the resolution of anything observed here
/// (latencies in ms, small set sizes).
class Histogram {
 public:
  /// Fixed-point scale of the running sum (2^16 units per 1.0). A power
  /// of two, so unit↔double conversions below 2^53 units round-trip
  /// exactly. Public so tests can assert within the quantization.
  static constexpr double kSumScale = 65536.0;

  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_units_.load(std::memory_order_relaxed)) /
           kSumScale;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket `i`; i == bounds().size() is the
  /// overflow bucket.
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }
  void reset();

  /// Adds previously captured raw counts (a snapshot row of a histogram
  /// with the same bounds) into this histogram — the sheaf-merge path.
  void merge_counts(const std::vector<uint64_t>& buckets, uint64_t count,
                    double sum);

  /// 0.5 ms .. 5 s, the spread of one-resolution latencies in the study.
  static std::vector<double> latency_ms_buckets();
  /// 1 .. 16, for small set sizes (answer counts, replica sets).
  static std::vector<double> small_count_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_units_{0};
};

/// A point-in-time copy of every registered metric, sorted by name — what
/// the exporters and the run report consume.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name, help;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name, help;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  ///< raw counts; last entry = overflow
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Value of a counter by name; 0 when absent.
  uint64_t counter_value(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// A standalone registry — a shard's private metrics sheaf. Most code
  /// never constructs one; it reaches the current registry via metrics().
  MetricsRegistry() = default;

  /// The process-wide registry every layer instruments against.
  static MetricsRegistry& instance();

  /// The calling thread's current registry: the sheaf bound by a
  /// ScopedMetricsSheaf, or instance() when none is bound.
  static MetricsRegistry& current();

  /// Finds or creates. References remain valid for the process lifetime.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` applies on first registration only; later callers get the
  /// existing histogram whatever its bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  MetricsSnapshot snapshot() const;

  /// Adds every value of `snap` into this registry (find-or-create by
  /// name): counters and gauges accumulate, histogram bucket counts and
  /// sums add up. Merging shard sheaves in a fixed order keeps even the
  /// floating-point sums deterministic.
  void merge_snapshot(const MetricsSnapshot& snap);

  /// Zeroes every metric but keeps the objects (cached refs stay valid).
  void reset_for_tests();

  /// Human-readable sheaf label ("att/cohort3") for logs and diagnostics.
  /// Deliberately absent from snapshots: metric names and values must not
  /// depend on the shard partition or exports would stop being
  /// byte-identical across cohort counts.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  mutable std::mutex mutex_;
  std::string label_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// Binds `sheaf` as the calling thread's current registry for the guard's
/// lifetime. The sharded campaign engine installs one per shard thread so
/// hot paths instrument into private, contention-free storage.
class ScopedMetricsSheaf {
 public:
  explicit ScopedMetricsSheaf(MetricsRegistry& sheaf);
  ~ScopedMetricsSheaf();
  ScopedMetricsSheaf(const ScopedMetricsSheaf&) = delete;
  ScopedMetricsSheaf& operator=(const ScopedMetricsSheaf&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Shorthand for MetricsRegistry::current() (the thread's sheaf when one
/// is bound, otherwise the process-wide registry).
inline MetricsRegistry& metrics() { return MetricsRegistry::current(); }

/// Per-thread cache of a metric-handle struct (a plain aggregate whose
/// members are `obs::Counter&`-style references resolved against
/// obs::metrics() in their initializers). get() rebuilds the struct
/// whenever the thread's current registry has changed since the last
/// call, so a pooled worker thread that executes shard after shard always
/// bumps the sheaf of the shard it is currently running:
///
///   static thread_local obs::SheafLocal<FooMetrics> metrics;
///   metrics.get().queries.inc();
template <typename T>
class SheafLocal {
 public:
  T& get() {
    MetricsRegistry* current = &MetricsRegistry::current();
    if (current != registry_) {
      value_.emplace();  // handle initializers resolve against `current`
      registry_ = current;
    }
    return *value_;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::optional<T> value_;
};

}  // namespace curtain::obs
