#include "obs/report.h"

#include <cstdio>

namespace curtain::obs {
namespace {

std::string format_value(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

std::vector<std::string> RunReport::Profile::stalled_labels() const {
  std::vector<std::string> labels;
  for (const auto& shard : shards) {
    if (shard.stalled) labels.push_back(shard.label);
  }
  return labels;
}

void RunReport::add_phase(std::string name, double wall_ms) {
  phases.push_back(Phase{std::move(name), wall_ms});
}

void RunReport::add_total(std::string name, double value) {
  totals.emplace_back(std::move(name), value);
}

double RunReport::wall_ms_total() const {
  double total = 0.0;
  for (const auto& phase : phases) total += phase.wall_ms;
  return total;
}

std::string RunReport::summary_suffix() const {
  if (phases.empty()) return "";
  std::string out = " | wall_ms:";
  char buf[96];
  for (const auto& phase : phases) {
    std::snprintf(buf, sizeof(buf), " %s=%.0f", phase.name.c_str(),
                  phase.wall_ms);
    out += buf;
  }
  return out;
}

std::string RunReport::render() const {
  std::string out = "run report\n";
  char buf[192];
  if (config.set()) {
    std::snprintf(buf, sizeof(buf),
                  "  config: workers=%d cohorts=%d shards=%zu\n",
                  config.workers, config.cohorts, config.shards);
    out += buf;
    for (const std::string& flag : config.flags) {
      out += "    flag ";
      out += flag;
      out += "\n";
    }
  }
  for (const auto& phase : phases) {
    std::snprintf(buf, sizeof(buf), "  phase %-16s %10.1f ms\n",
                  phase.name.c_str(), phase.wall_ms);
    out += buf;
  }
  for (const auto& [name, value] : totals) {
    std::snprintf(buf, sizeof(buf), "  %-24s %s\n", name.c_str(),
                  format_value(value).c_str());
    out += buf;
  }
  if (profile.enabled) {
    std::snprintf(buf, sizeof(buf),
                  "  profile: queue_wait p50=%.2fms p95=%.2fms"
                  " utilization=%.1f%% peak_rss=%.1fMB\n",
                  profile.queue_wait_p50_ms, profile.queue_wait_p95_ms,
                  profile.worker_utilization_pct, profile.peak_rss_mb);
    out += buf;
    for (const auto& shard : profile.shards) {
      std::snprintf(buf, sizeof(buf),
                    "    shard %-20s worker=%d wall=%.1fms wait=%.2fms%s\n",
                    shard.label.c_str(), shard.worker, shard.wall_ms,
                    shard.queue_wait_ms, shard.stalled ? "  [STALLED]" : "");
      out += buf;
    }
  }
  return out;
}

}  // namespace curtain::obs
