#include "obs/report.h"

#include <cstdio>

namespace curtain::obs {
namespace {

std::string format_value(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

void RunReport::add_phase(std::string name, double wall_ms) {
  phases.push_back(Phase{std::move(name), wall_ms});
}

void RunReport::add_total(std::string name, double value) {
  totals.emplace_back(std::move(name), value);
}

double RunReport::wall_ms_total() const {
  double total = 0.0;
  for (const auto& phase : phases) total += phase.wall_ms;
  return total;
}

std::string RunReport::summary_suffix() const {
  if (phases.empty()) return "";
  std::string out = " | wall_ms:";
  char buf[96];
  for (const auto& phase : phases) {
    std::snprintf(buf, sizeof(buf), " %s=%.0f", phase.name.c_str(),
                  phase.wall_ms);
    out += buf;
  }
  return out;
}

std::string RunReport::render() const {
  std::string out = "run report\n";
  char buf[128];
  for (const auto& phase : phases) {
    std::snprintf(buf, sizeof(buf), "  phase %-16s %10.1f ms\n",
                  phase.name.c_str(), phase.wall_ms);
    out += buf;
  }
  for (const auto& [name, value] : totals) {
    std::snprintf(buf, sizeof(buf), "  %-24s %s\n", name.c_str(),
                  format_value(value).c_str());
    out += buf;
  }
  return out;
}

}  // namespace curtain::obs
