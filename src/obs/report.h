// curtain::obs — end-of-run report.
//
// What Study::run() fills and study.summary() renders: wall-clock per
// campaign phase plus the headline dataset totals, so every bench and
// example answers "where did this run's time go?" without a profiler.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace curtain::obs {

struct RunReport {
  struct Phase {
    std::string name;
    double wall_ms = 0.0;
  };
  std::vector<Phase> phases;
  /// Headline totals (records produced, key counters) in insertion order.
  std::vector<std::pair<std::string, double>> totals;

  void add_phase(std::string name, double wall_ms);
  void add_total(std::string name, double value);
  double wall_ms_total() const;
  bool empty() const { return phases.empty() && totals.empty(); }

  /// Compact one-line suffix for Study::summary():
  /// " | wall_ms: campaign=812 vantage_sweep=31".
  std::string summary_suffix() const;
  /// Full multi-line human rendering.
  std::string render() const;
};

}  // namespace curtain::obs
