// curtain::obs — end-of-run report.
//
// What Study::run() fills and study.summary() renders: wall-clock per
// campaign phase, the headline dataset totals, the execution
// configuration that produced them (so committed reports are
// self-describing), and — when the flight recorder ran — an execution
// profile (per-shard wall, queue-wait percentiles, worker utilization,
// peak RSS, stall watchdog).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace curtain::obs {

struct RunReport {
  struct Phase {
    std::string name;
    double wall_ms = 0.0;
  };

  /// The execution configuration that produced this report. Always
  /// filled by Study::run(): a report without its worker/cohort/shard
  /// counts cannot be compared across hosts or commits.
  struct Config {
    int workers = 0;    ///< worker-pool size (resolved CURTAIN_SHARDS)
    int cohorts = 0;    ///< cohorts per carrier (resolved CURTAIN_COHORTS)
    size_t shards = 0;  ///< carriers × cohorts
    /// Every CURTAIN_* knob with its resolved value, `--help`-style
    /// ("NAME=value (kind, default D, range R) — help"), from
    /// util::describe_flags(). One line per flag, declaration order.
    std::vector<std::string> flags;
    bool set() const { return workers > 0; }
  };

  /// One shard's execution record in the profile, in shard-index order.
  struct ShardProfile {
    std::string label;          ///< "<carrier>/cohort<k>"
    int worker = 0;             ///< worker lane that ran it (1-based)
    double wall_ms = 0.0;       ///< pickup → finish
    double queue_wait_ms = 0.0; ///< queue-open → pickup
    bool stalled = false;       ///< flagged by the stall watchdog
  };

  /// Flight-recorder summary; enabled only when CURTAIN_PROFILE_OUT was
  /// set (see obs/flight_recorder.h and build_profile()).
  struct Profile {
    bool enabled = false;
    double queue_wait_p50_ms = 0.0;
    double queue_wait_p95_ms = 0.0;
    /// Σ shard busy time / (workers × campaign makespan), in percent.
    double worker_utilization_pct = 0.0;
    double peak_rss_mb = 0.0;
    double median_shard_wall_ms = 0.0;
    double stall_factor = 0.0;  ///< watchdog threshold multiplier (k)
    std::vector<ShardProfile> shards;

    /// Labels of shards the watchdog flagged (wall > k × median).
    std::vector<std::string> stalled_labels() const;
  };

  std::vector<Phase> phases;
  /// Headline totals (records produced, key counters) in insertion order.
  std::vector<std::pair<std::string, double>> totals;
  Config config;
  Profile profile;

  void add_phase(std::string name, double wall_ms);
  void add_total(std::string name, double value);
  double wall_ms_total() const;
  bool empty() const { return phases.empty() && totals.empty(); }

  /// Compact one-line suffix for Study::summary():
  /// " | wall_ms: campaign=812 vantage_sweep=31".
  std::string summary_suffix() const;
  /// Full multi-line human rendering.
  std::string render() const;
};

}  // namespace curtain::obs
