#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace curtain::obs {

double ResolutionTrace::top_level_ms() const {
  double total = 0.0;
  for (const auto& span : spans) {
    if (span.depth == 0) total += span.duration_ms;
  }
  return total;
}

std::string ResolutionTrace::render() const {
  std::string out;
  char line[160];
  for (const auto& span : spans) {
    std::snprintf(line, sizeof(line), "%*s%-18s +%8.3f ms  %8.3f ms\n",
                  span.depth * 2, "", span.name, span.start_ms,
                  span.duration_ms);
    out += line;
  }
  std::snprintf(line, sizeof(line), "total %.3f ms\n", total_ms);
  out += line;
  return out;
}

Tracer& Tracer::instance() {
  // One tracer per thread: traces decompose a single resolution executing
  // on the calling thread, so concurrent campaign shards each get their
  // own span stack and ring (no locks on the span hot path).
  static thread_local Tracer tracer;
  return tracer;
}

bool Tracer::begin(double now_ms) {
  if (active_) return false;
  active_ = true;
  paused_ = 0;
  begin_ms_ = now_ms;
  current_ = ResolutionTrace{};
  stack_.clear();
  return true;
}

ResolutionTrace Tracer::end(double now_ms) {
  // Close any span left open (early-return paths) as zero-duration.
  while (!stack_.empty()) close_span(stack_.back(), -1.0);
  current_.total_ms = now_ms - begin_ms_;
  active_ = false;
  ResolutionTrace done = std::move(current_);
  current_ = ResolutionTrace{};
  if (ring_capacity_ > 0) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(done);
    } else {
      ring_[ring_next_ % ring_capacity_] = done;
    }
    ++ring_next_;
  }
  return done;
}

int Tracer::open_span(const char* name, double now_ms) {
  TraceSpan span;
  span.name = name;
  span.depth = static_cast<uint16_t>(stack_.size());
  span.start_ms = now_ms - begin_ms_;
  const int index = static_cast<int>(current_.spans.size());
  current_.spans.push_back(span);
  stack_.push_back(index);
  return index;
}

void Tracer::close_span(int index, double now_ms) {
  if (index < 0 || index >= static_cast<int>(current_.spans.size())) return;
  TraceSpan& span = current_.spans[static_cast<size_t>(index)];
  // now_ms < 0 is the "close at start" sentinel (abandoned span).
  span.duration_ms =
      now_ms < 0.0 ? 0.0 : std::max(0.0, now_ms - begin_ms_ - span.start_ms);
  // Pop the stack through this span; children left open close with it.
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    if (top == index) break;
  }
}

std::vector<ResolutionTrace> Tracer::recent() const {
  std::vector<ResolutionTrace> out;  // lint: bounded (copy of the ring)
  if (ring_.size() < ring_capacity_) {
    out = ring_;
  } else {
    // Ring is full: oldest entry sits at the write cursor.
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_capacity_]);
    }
  }
  return out;
}

void Tracer::set_ring_capacity(size_t capacity) {
  ring_capacity_ = capacity;
  ring_.clear();
  ring_next_ = 0;
}

void Tracer::clear() {
  ring_.clear();
  ring_next_ = 0;
  active_ = false;
  paused_ = 0;
  current_ = ResolutionTrace{};
  stack_.clear();
}

}  // namespace curtain::obs
