// curtain::obs — virtual-time span tracer.
//
// Decomposes one DNS resolution into the hops it crossed — radio access,
// stub→LDNS transport, carrier forwarding, recursion, per-upstream-server
// queries, CDN mapping — as nested spans measured against *simulated*
// time (net::SimTime milliseconds), not wall clock. The measurement layer
// begins a trace around a sampled stub query; every instrumented layer
// underneath contributes spans through ScopedSpan without knowing whether
// a trace is active (inactive spans are a single bool check).
//
// Span *durations* are exact virtual-time costs; top-level (depth-0)
// spans of a resolution trace partition the resolution, so their
// durations sum to the client-observed resolution time. Start offsets of
// nested spans are best-effort for display.
//
// Completed traces land in a bounded ring buffer (`Tracer::recent()`) and,
// for sampled study resolutions, in Dataset::resolution_traces, keyed by
// DnsMeasurement::trace_index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace curtain::obs {

/// One closed span. `name` must be a string literal (spans are hot-path;
/// traces outlive the call site but not the process).
struct TraceSpan {
  const char* name = "";
  uint16_t depth = 0;      ///< 0 = top-level within the trace
  double start_ms = 0.0;   ///< virtual ms since trace begin
  double duration_ms = 0.0;
};

/// A whole resolution, hop by hop.
struct ResolutionTrace {
  std::vector<TraceSpan> spans;
  double total_ms = 0.0;  ///< end - begin in virtual time

  /// Sum of depth-0 span durations — equals the recorded resolution time.
  double top_level_ms() const;
  /// Indented human rendering, one span per line.
  std::string render() const;
};

class Tracer {
 public:
  /// The calling thread's tracer. Thread-local: a trace decomposes one
  /// resolution executing on one thread, and concurrent campaign shards
  /// must not interleave span stacks. Each shard's sampled traces are
  /// returned through its private Dataset and merged in shard order.
  static Tracer& instance();

  /// Starts a trace at virtual time `now_ms`. Returns false (and does
  /// nothing) when a trace is already active.
  bool begin(double now_ms);
  /// Ends the active trace, appends it to the ring and returns it.
  ResolutionTrace end(double now_ms);
  bool active() const { return active_ && paused_ == 0; }

  /// Suspends span capture (e.g. around a background-load shadow
  /// resolution whose cost is not charged to the client).
  void pause() { ++paused_; }
  void resume() {
    if (paused_ > 0) --paused_;
  }

  /// Low-level span registration; prefer ScopedSpan.
  int open_span(const char* name, double now_ms);
  void close_span(int index, double now_ms);

  /// Last completed traces, oldest first (bounded ring).
  std::vector<ResolutionTrace> recent() const;
  void set_ring_capacity(size_t capacity);
  void clear();

 private:
  Tracer() = default;

  bool active_ = false;
  int paused_ = 0;
  double begin_ms_ = 0.0;
  ResolutionTrace current_;
  std::vector<int> stack_;  ///< indices of open spans, for depth

  std::vector<ResolutionTrace> ring_;  // lint: bounded (fixed-capacity ring)
  size_t ring_capacity_ = 256;
  size_t ring_next_ = 0;
};

/// RAII span. Construction registers against the active trace (no-op when
/// none); call finish() with the virtual end time, or let the destructor
/// close it as zero-duration (early-return paths).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, double start_ms) {
    Tracer& tracer = Tracer::instance();
    if (tracer.active()) index_ = tracer.open_span(name, start_ms);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void finish(double end_ms) {
    if (index_ >= 0) Tracer::instance().close_span(index_, end_ms);
    index_ = -1;
  }
  ~ScopedSpan() {
    if (index_ >= 0) Tracer::instance().close_span(index_, start_unset_);
  }

 private:
  static constexpr double start_unset_ = -1.0;  ///< close at span start
  int index_ = -1;
};

}  // namespace curtain::obs
