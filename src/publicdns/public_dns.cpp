#include "publicdns/public_dns.h"

#include <algorithm>

#include "util/index.h"

namespace curtain::publicdns {
namespace {

// Anycast ingress re-evaluates on this period: tunneling and BGP churn
// shift which site a subscriber prefix lands on (Fig. 12's /24 changes).
constexpr double kIngressEpochHours = 8.0;
// How many nearby sites a source realistically flips between.
constexpr int kIngressCandidates = 4;
// Mean per-name background re-fetch interval at a public-DNS site.
// Public resolvers serve enormous populations, so popular names are
// nearly always warm (30 s TTL -> ~93%; Fig. 13's short tail).
constexpr double kPublicBgInterarrivalS = 2.3;

}  // namespace

PublicDnsService::PublicDnsService(std::string name, net::Ipv4Addr vip,
                                   int num_sites, int instances_per_site,
                                   const PublicDnsBuildContext& context)
    : name_(std::move(name)),
      vip_(vip),
      locate_source_(context.locate_source),
      seed_(net::mix_key(context.build_seed, net::hash_tag(name_))) {
  const auto& metros = net::world_metros();
  const int sites = std::min<int>(num_sites, static_cast<int>(metros.size()));
  sites_.reserve(util::idx(sites));
  for (int s = 0; s < sites; ++s) {
    PublicDnsSite site;
    site.metro = metros[util::idx(s)].name;
    site.location = metros[util::idx(s)].location;
    site.prefix = context.allocator->alloc_block(24);

    net::Node node;
    node.name = name_ + "-" + site.metro;
    node.kind = net::NodeKind::kResolver;
    node.zone = net::Topology::internet_zone();
    node.location = site.location;
    node.processing = net::LatencyModel::jittered(0.6, 0.3);
    const net::NodeId node_id = context.topology->add_node(node);
    // The floor models the peering/transit detour between an eyeball
    // network's egress and the public DNS POP: public resolvers sit
    // measurably farther from clients than the carrier's own (Fig. 11).
    context.topology->add_link(node_id,
                               context.nearest_backbone(site.location),
                               net::LatencyModel::wan(12.0, 1.5), 0.0005,
                               false);

    for (int i = 0; i < instances_per_site; ++i) {
      const net::Ipv4Addr instance_ip =
          context.allocator->alloc_host(site.prefix);
      site.instances.push_back(std::make_unique<dns::RecursiveResolver>(
          node.name + "-i" + std::to_string(i), node_id, instance_ip,
          context.topology, context.registry, context.root_dns_ip));
      site.instances.back()->set_state_lanes(
          static_cast<size_t>(context.state_lanes < 1 ? 1 : context.state_lanes));
      site.instances.back()->set_background_load(kPublicBgInterarrivalS,
                                                 context.warm_eligible);
      if (context.ecs_enabled) site.instances.back()->enable_ecs();
      context.registry->add(site.instances.back().get());
    }
    sites_.push_back(std::move(site));
  }
  context.registry->add(this);
}

PublicDnsService::~PublicDnsService() = default;

obs::LaneMemory PublicDnsService::approx_lane_bytes() const {
  obs::LaneMemory memory;
  for (const PublicDnsSite& site : sites_) {
    for (const auto& instance : site.instances) {
      memory += instance->approx_lane_bytes();
    }
  }
  return memory;
}

int PublicDnsService::route_site(net::Ipv4Addr source_ip,
                                 net::SimTime now) const {
  const uint32_t slash24 = source_ip.slash24().value();
  const auto egress = locate_source_ ? locate_source_(source_ip) : std::nullopt;
  const auto epoch =
      static_cast<uint64_t>(now.hours() / kIngressEpochHours);
  const uint64_t draw = net::mix_key(net::mix_key(seed_, slash24), epoch);
  if (!egress) {
    // Unknown origin: stable pseudo-random site per /24.
    return static_cast<int>(draw % sites_.size());
  }
  // Rank sites by distance to the egress; flip between the nearest few.
  std::vector<std::pair<double, int>> ranked;
  ranked.reserve(sites_.size());
  for (size_t s = 0; s < sites_.size(); ++s) {
    ranked.emplace_back(net::distance_km(*egress, sites_[s].location),
                        static_cast<int>(s));
  }
  std::sort(ranked.begin(), ranked.end());
  const int candidates =
      std::min<int>(kIngressCandidates, static_cast<int>(ranked.size()));
  // Closest site wins most epochs; occasionally routing lands further out.
  static constexpr double kWeights[] = {0.70, 0.16, 0.09, 0.05};
  double target = static_cast<double>(draw % 10000) / 10000.0;
  for (int c = 0; c < candidates; ++c) {
    if (target < kWeights[c] || c == candidates - 1)
      return ranked[util::idx(c)].second;
    target -= kWeights[c];
  }
  return ranked[0].second;
}

net::NodeId PublicDnsService::node() const {
  return sites_.front().instances.front()->node();
}

net::NodeId PublicDnsService::node_for(net::Ipv4Addr source,
                                       net::SimTime now) const {
  return sites_[static_cast<size_t>(route_site(source, now))]
      .instances.front()
      ->node();
}

dns::ServedResponse PublicDnsService::handle_query(
    std::span<const uint8_t> query_wire, net::Ipv4Addr source_ip,
    net::SimTime now, net::Rng& rng) {
  PublicDnsSite& site = sites_[static_cast<size_t>(route_site(source_ip, now))];
  // Load balancing inside the site spreads queries over instance IPs —
  // this is why clients observe many resolver addresses inside one /24
  // (Table 5's IP counts vs /24 counts).
  auto& instance = site.instances[static_cast<size_t>(
      rng.uniform_u64(0, site.instances.size() - 1))];
  return instance->handle_query(query_wire, source_ip, now, rng);
}

}  // namespace curtain::publicdns
