// Public DNS services: Google Public DNS and OpenDNS.
//
// Modeled after what the paper documents (§6.1): one anycast VIP fronting
// geographically distributed sites, with Google operating 30 distinct /24
// resolver clusters worldwide. Anycast ingress follows the client's egress
// location, but tunneling makes the mapping unstable — clients see several
// of the service's /24s over time (Fig. 12). Being outside the cellular
// network, these resolvers are farther than the carrier's own (Figs. 11,
// 13), yet their sites are *measurable* by CDNs, so replica mapping for
// them is latency-aware — the crux of the paper's headline comparison.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dns/resolver.h"
#include "dns/server.h"
#include "net/ip_allocator.h"

namespace curtain::publicdns {

struct PublicDnsSite {
  std::string metro;
  net::GeoPoint location;
  net::Prefix prefix;  ///< the site's /24
  std::vector<std::unique_ptr<dns::RecursiveResolver>> instances;
};

struct PublicDnsBuildContext {
  net::Topology* topology = nullptr;
  dns::ServerRegistry* registry = nullptr;
  net::IpAllocator* allocator = nullptr;
  std::function<net::NodeId(const net::GeoPoint&)> nearest_backbone;
  net::Ipv4Addr root_dns_ip;
  /// Where a client source address appears to enter the Internet (its
  /// egress location); drives anycast ingress selection.
  std::function<std::optional<net::GeoPoint>(net::Ipv4Addr)> locate_source;
  /// Names kept warm by background load; empty = all names.
  std::function<bool(const dns::DnsName&)> warm_eligible;
  /// Send EDNS client-subnet to authoritative servers (RFC 7871). Google
  /// deployed this for opted-in CDNs; enabling it lets CDNs map by the
  /// *client's* subnet instead of the resolver's site.
  bool ecs_enabled = false;
  /// State lanes to partition each instance's mutable state into (one per
  /// enrolled device + one for the main thread); 1 = unlaned. See
  /// dns::RecursiveResolver::set_state_lanes.
  int state_lanes = 1;
  uint64_t build_seed = 0;
};

class PublicDnsService : public dns::DnsServer {
 public:
  /// Builds `num_sites` sites on the world metro list with
  /// `instances_per_site` resolvers each, all answering on `vip`.
  PublicDnsService(std::string name, net::Ipv4Addr vip, int num_sites,
                   int instances_per_site, const PublicDnsBuildContext& context);
  ~PublicDnsService() override;

  const std::string& service_name() const { return name_; }
  const std::vector<PublicDnsSite>& sites() const { return sites_; }

  /// Approximate heap bytes of the laned state across every site's
  /// instances. A profiling gauge — see obs/memory.h.
  obs::LaneMemory approx_lane_bytes() const;

  // DnsServer:
  dns::ServedResponse handle_query(std::span<const uint8_t> query_wire,
                                   net::Ipv4Addr source_ip, net::SimTime now,
                                   net::Rng& rng) override;
  net::NodeId node() const override;
  net::Ipv4Addr ip() const override { return vip_; }
  /// Anycast: the instance node a packet from `source` lands on at `now`
  /// (deterministic part of the routing; used for pings to the VIP).
  net::NodeId node_for(net::Ipv4Addr source, net::SimTime now) const override;

 private:
  /// Anycast routing: site index for a source at a time. Combines
  /// proximity to the source's egress with tunneling-induced instability.
  int route_site(net::Ipv4Addr source_ip, net::SimTime now) const;

  std::string name_;
  net::Ipv4Addr vip_;
  std::function<std::optional<net::GeoPoint>(net::Ipv4Addr)> locate_source_;
  uint64_t seed_ = 0;
  std::vector<PublicDnsSite> sites_;
};

}  // namespace curtain::publicdns
