#include "util/bytes.h"

#include <cstdio>

namespace curtain::util {

void ByteWriter::put_u8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
}

void ByteWriter::put_u32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 24));
  buf_.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  buf_.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
}

void ByteWriter::put_bytes(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_string(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(size_t offset, uint16_t v) {
  if (offset + 2 > buf_.size()) return;  // programming error; keep buffer valid
  buf_[offset] = static_cast<uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<uint8_t>(v & 0xff);
}

bool ByteReader::require(size_t n) {
  if (!ok_ || offset_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::get_u8() {
  if (!require(1)) return 0;
  return data_[offset_++];
}

uint16_t ByteReader::get_u16() {
  if (!require(2)) return 0;
  const uint16_t v = static_cast<uint16_t>(data_[offset_] << 8 | data_[offset_ + 1]);
  offset_ += 2;
  return v;
}

uint32_t ByteReader::get_u32() {
  if (!require(4)) return 0;
  const uint32_t v = static_cast<uint32_t>(data_[offset_]) << 24 |
                     static_cast<uint32_t>(data_[offset_ + 1]) << 16 |
                     static_cast<uint32_t>(data_[offset_ + 2]) << 8 |
                     static_cast<uint32_t>(data_[offset_ + 3]);
  offset_ += 4;
  return v;
}

std::vector<uint8_t> ByteReader::get_bytes(size_t n) {
  if (!require(n)) return {};
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(offset_),
                           data_.begin() + static_cast<ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

std::string ByteReader::get_string(size_t n) {
  if (!require(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data()) + offset_, n);
  offset_ += n;
  return out;
}

std::string_view ByteReader::get_view(size_t n) {
  if (!require(n)) return {};
  std::string_view out(reinterpret_cast<const char*>(data_.data()) + offset_,
                       n);
  offset_ += n;
  return out;
}

void ByteReader::seek(size_t offset) {
  if (offset > data_.size()) {
    ok_ = false;
    return;
  }
  offset_ = offset;
}

std::string hex_dump(std::span<const uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 3);
  char buf[4];
  for (size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf, sizeof(buf), i == 0 ? "%02x" : " %02x", data[i]);
    out += buf;
  }
  return out;
}

}  // namespace curtain::util
