// Bounds-checked big-endian byte readers/writers.
//
// These back the DNS wire codec (RFC 1035 uses network byte order
// throughout). Reads never run past the buffer: every accessor reports
// failure through the reader's sticky error state instead of throwing, so
// parsing a truncated or hostile message degrades to a clean parse error.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace curtain::util {

/// Appends integers/bytes in network byte order to an owned buffer.
class ByteWriter {
 public:
  void put_u8(uint8_t v);
  void put_u16(uint16_t v);
  void put_u32(uint32_t v);
  void put_bytes(std::span<const uint8_t> bytes);
  void put_string(std::string_view s);

  /// Overwrites a previously written u16 (e.g. to backpatch RDLENGTH).
  /// `offset` must address two bytes already written.
  void patch_u16(size_t offset, uint16_t v);

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads network-byte-order integers from a borrowed buffer.
///
/// After any out-of-bounds access `ok()` turns false and all subsequent
/// reads return zero values; callers check `ok()` once at the end of a
/// parse unit rather than after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t get_u8();
  uint16_t get_u16();
  uint32_t get_u32();
  /// Copies `n` bytes out; returns an empty vector (and sets the error
  /// state) if fewer than `n` remain.
  std::vector<uint8_t> get_bytes(size_t n);
  std::string get_string(size_t n);
  /// Borrows `n` bytes as a view into the underlying buffer (no copy).
  /// Only valid while the buffer passed to the constructor is alive.
  std::string_view get_view(size_t n);

  /// Repositions the cursor (used for DNS compression pointers).
  /// Seeking past the end sets the error state.
  void seek(size_t offset);

  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }
  bool ok() const { return ok_; }
  size_t size() const { return data_.size(); }

 private:
  bool require(size_t n);

  std::span<const uint8_t> data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

/// Hex dump ("de ad be ef") for diagnostics and golden tests.
std::string hex_dump(std::span<const uint8_t> data);

}  // namespace curtain::util
