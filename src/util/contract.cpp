#include "util/contract.h"

#include <cstdio>
#include <cstdlib>

namespace curtain::util::contract_detail {

Failure::Failure(const char* kind, const char* file, int line,
                 const char* expr) {
  stream_ << file << ":" << line << ": " << kind << " failed: " << expr << " ";
}

Failure::~Failure() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

void unreachable_failed(const char* file, int line) {
  std::fprintf(stderr, "%s:%d: CURTAIN_UNREACHABLE reached\n", file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace curtain::util::contract_detail
