// Runtime contracts: CURTAIN_CHECK / CURTAIN_DCHECK / CURTAIN_UNREACHABLE.
//
// The determinism linter (tools/curtain_lint) enforces what can be seen
// statically; these macros guard the invariants it cannot — index bounds at
// shard-merge renumbering, referential integrity of trace indices at
// export, allocator exhaustion. A failed contract prints the expression,
// location and any streamed context, then aborts: a loud stop beats a
// silently corrupted dataset.
//
//   CURTAIN_CHECK(base <= max) << "shard " << index << " overflows at " << base;
//
// Policy (DESIGN.md §11): CURTAIN_CHECK for invariants whose failure would
// corrupt exported data or whose cost is negligible (enabled in every build);
// CURTAIN_DCHECK for hot-path assertions (compiled to nothing when NDEBUG is
// defined, i.e. in the default RelWithDebInfo build); CURTAIN_UNREACHABLE()
// for exhaustive-switch tails (aborts with a message in debug, lowers to
// __builtin_unreachable() in release so the optimizer keeps the switch tight).
#pragma once

#include <sstream>

namespace curtain::util::contract_detail {

/// Accumulates streamed context for a failed contract; the destructor
/// prints "file:line: kind failed: expr — context" to stderr and aborts.
class Failure {
 public:
  Failure(const char* kind, const char* file, int line, const char* expr);
  ~Failure();  // [[noreturn]] in effect: always aborts
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;

  template <typename T>
  Failure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lowers `operator&` below `<<` so streamed context binds to the Failure
/// before the whole expression collapses to void (the glog idiom).
struct Voidify {
  void operator&(Failure&) const {}
};

[[noreturn]] void unreachable_failed(const char* file, int line);

[[noreturn]] inline void unreachable(const char* file, int line) {
#ifdef NDEBUG
  (void)file;
  (void)line;
  __builtin_unreachable();
#else
  unreachable_failed(file, line);
#endif
}

}  // namespace curtain::util::contract_detail

/// Always-on invariant check. Streams context: CURTAIN_CHECK(x) << "id " << i;
#define CURTAIN_CHECK(condition)                                       \
  (condition) ? (void)0                                                \
              : ::curtain::util::contract_detail::Voidify() &          \
                    ::curtain::util::contract_detail::Failure(         \
                        "CURTAIN_CHECK", __FILE__, __LINE__, #condition)

/// Debug-only check: identical to CURTAIN_CHECK without NDEBUG; compiles to
/// nothing (condition unevaluated, context discarded) when NDEBUG is set.
#ifdef NDEBUG
#define CURTAIN_DCHECK(condition)                                      \
  (true || (condition))                                                \
      ? (void)0                                                        \
      : ::curtain::util::contract_detail::Voidify() &                  \
            ::curtain::util::contract_detail::Failure(                 \
                "CURTAIN_DCHECK", __FILE__, __LINE__, #condition)
#else
#define CURTAIN_DCHECK(condition)                                      \
  (condition) ? (void)0                                                \
              : ::curtain::util::contract_detail::Voidify() &          \
                    ::curtain::util::contract_detail::Failure(         \
                        "CURTAIN_DCHECK", __FILE__, __LINE__, #condition)
#endif

/// Marks a path the surrounding logic has proven impossible.
#define CURTAIN_UNREACHABLE() \
  ::curtain::util::contract_detail::unreachable(__FILE__, __LINE__)
