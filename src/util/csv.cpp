#include "util/csv.h"

#include <cmath>
#include <cstdio>

namespace curtain::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>(fields));
}

std::string CsvWriter::to_cell(double v) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace curtain::util
