// Minimal CSV emission for datasets and bench outputs.
//
// Benches print figure series both as human-readable rows and, when a path
// is supplied, as CSV suitable for external plotting.
#pragma once

#include <fstream>
#include <type_traits>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace curtain::util {

/// Quotes a field per RFC 4180 when it contains a comma, quote or newline.
std::string csv_escape(const std::string& field);

/// Streams rows to any std::ostream. The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields);

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void typed_row(const Ts&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    row(cells);
  }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::ostream& out_;
};

/// Opens `path` for writing; valid() reports failure instead of throwing so
/// benches can fall back to stdout-only output.
class CsvFile {
 public:
  explicit CsvFile(const std::string& path) : stream_(path), writer_(stream_) {}

  bool valid() const { return stream_.good(); }
  CsvWriter& writer() { return writer_; }

 private:
  std::ofstream stream_;
  CsvWriter writer_;
};

}  // namespace curtain::util
