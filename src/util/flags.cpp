#include "util/flags.h"

#include <cstdlib>
#include <thread>

#include "util/strings.h"

namespace curtain::util {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const auto parsed = parse_u64(raw);
  return parsed.value_or(fallback);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

double campaign_scale() {
  const double scale = env_double("CURTAIN_SCALE", 0.05);
  if (scale <= 0.0) return 0.05;
  return scale > 1.0 ? 1.0 : scale;
}

uint64_t study_seed() { return env_u64("CURTAIN_SEED", 20141105); }

int campaign_shards() {
  uint64_t shards = env_u64("CURTAIN_SHARDS", 1);
  if (shards == 0) shards = std::thread::hardware_concurrency();
  if (shards < 1) return 1;
  return shards > 64 ? 64 : static_cast<int>(shards);
}

int campaign_cohorts() {
  const uint64_t cohorts = env_u64("CURTAIN_COHORTS", 0);
  return cohorts > 64 ? 64 : static_cast<int>(cohorts);
}

std::string profile_out() { return env_string("CURTAIN_PROFILE_OUT", ""); }

double profile_stall_factor() {
  const double factor = env_double("CURTAIN_PROFILE_STALL_K", 4.0);
  if (factor < 1.5) return 1.5;
  return factor > 100.0 ? 100.0 : factor;
}

}  // namespace curtain::util
