#include "util/flags.h"

#include <cstdlib>
#include <thread>

#include "util/strings.h"

namespace curtain::util {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const auto parsed = parse_u64(raw);
  return parsed.value_or(fallback);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

namespace {

/// Reads a u64 knob and clamps it into [lo, hi].
size_t env_u64_clamped(const char* name, uint64_t fallback, uint64_t lo,
                       uint64_t hi) {
  uint64_t v = env_u64(name, fallback);
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return static_cast<size_t>(v);
}

}  // namespace

double campaign_scale() {
  const double scale = env_double("CURTAIN_SCALE", 0.05);
  if (scale <= 0.0) return 0.05;
  return scale > 1.0 ? 1.0 : scale;
}

uint64_t study_seed() { return env_u64("CURTAIN_SEED", 20141105); }

int campaign_shards() {
  uint64_t shards = env_u64("CURTAIN_SHARDS", 1);
  if (shards == 0) shards = std::thread::hardware_concurrency();
  if (shards < 1) return 1;
  return shards > 64 ? 64 : static_cast<int>(shards);
}

int campaign_cohorts() {
  const uint64_t cohorts = env_u64("CURTAIN_COHORTS", 0);
  return cohorts > 64 ? 64 : static_cast<int>(cohorts);
}

size_t record_block_rows() {
  return env_u64_clamped("CURTAIN_BLOCK_ROWS", 8192, 256, 1u << 20);
}

size_t rss_ceiling_mb() {
  return env_u64_clamped("CURTAIN_RSS_CEILING_MB", 0, 0, 1u << 20);
}

std::string metrics_out() { return env_string("CURTAIN_METRICS_OUT", ""); }

std::string profile_out() { return env_string("CURTAIN_PROFILE_OUT", ""); }

double profile_stall_factor() {
  const double factor = env_double("CURTAIN_PROFILE_STALL_K", 4.0);
  if (factor < 1.5) return 1.5;
  return factor > 100.0 ? 100.0 : factor;
}

std::string log_flag() { return env_string("CURTAIN_LOG", ""); }

std::string bench_csv_dir() {
  return env_string("CURTAIN_BENCH_CSV_DIR", "");
}

std::vector<FlagInfo> describe_flags() {
  // One row per knob; `value` is the post-clamp value the accessors
  // return, so the listing shows what the run actually used.
  std::vector<FlagInfo> flags;
  flags.push_back({"CURTAIN_SCALE", "double", "0.05", "(0, 1]",
                   "fraction of the paper-scale campaign to run",
                   format_double(campaign_scale(), 4)});
  flags.push_back({"CURTAIN_SEED", "u64", "20141105", "-",
                   "study-wide RNG seed", std::to_string(study_seed())});
  flags.push_back({"CURTAIN_SHARDS", "u64", "1", "[1, 64]; 0 = hw threads",
                   "worker threads in the campaign shard pool",
                   std::to_string(campaign_shards())});
  flags.push_back({"CURTAIN_COHORTS", "u64", "0", "[0, 64]",
                   "device cohorts per carrier (0 = auto-size)",
                   std::to_string(campaign_cohorts())});
  flags.push_back({"CURTAIN_BLOCK_ROWS", "u64", "8192", "[256, 1048576]",
                   "row budget of one measurement record block",
                   std::to_string(record_block_rows())});
  flags.push_back({"CURTAIN_RSS_CEILING_MB", "u64", "0 (unenforced)",
                   "[0, 1048576]",
                   "resident-set ceiling for memory-bounded runs",
                   std::to_string(rss_ceiling_mb())});
  flags.push_back({"CURTAIN_METRICS_OUT", "string", "\"\"", "-",
                   "metrics snapshot output file", metrics_out()});
  flags.push_back({"CURTAIN_PROFILE_OUT", "string", "\"\"", "-",
                   "flight-recorder chrome trace output file",
                   profile_out()});
  flags.push_back({"CURTAIN_PROFILE_STALL_K", "double", "4", "[1.5, 100]",
                   "stall watchdog threshold (multiple of median shard wall)",
                   format_double(profile_stall_factor(), 2)});
  flags.push_back({"CURTAIN_LOG", "string", "\"\" (warn)",
                   "debug|info|warn|error|off", "log level", log_flag()});
  flags.push_back({"CURTAIN_BENCH_CSV_DIR", "string", "\"\"", "-",
                   "bench CDF -> CSV mirror directory", bench_csv_dir()});
  return flags;
}

}  // namespace curtain::util
