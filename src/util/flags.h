// The CURTAIN_* environment knobs, declared in one place.
//
// Every knob the tree reads — campaign shape, execution, streaming-record
// and profiling controls — is parsed and clamped here and nowhere else.
// Each has a typed accessor (the single definition of its default and
// clamp), and describe_flags() renders the whole table as a `--help`-style
// listing that Study emits into RunReport::Config, so a run's effective
// knob settings are always visible in its report.
//
// Benches scale their campaign size by CURTAIN_SCALE so the default
// `for b in build/bench/*; do $b; done` loop stays fast, while
// CURTAIN_SCALE=1.0 reproduces the paper's full 28k-experiment campaign.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace curtain::util {

/// Reads env var `name`; returns `fallback` if unset or unparsable.
double env_double(const char* name, double fallback);
uint64_t env_u64(const char* name, uint64_t fallback);
std::string env_string(const char* name, const std::string& fallback);

// --- campaign shape ------------------------------------------------------

/// CURTAIN_SCALE in (0,1]: fraction of the paper-scale campaign to run.
double campaign_scale();

/// CURTAIN_SEED: study-wide RNG seed (default 20141105, the IMC'14 date).
uint64_t study_seed();

// --- execution -----------------------------------------------------------

/// CURTAIN_SHARDS in [1, 64]: worker threads in the campaign shard pool
/// (default 1; 0 = one per hardware thread). Purely a wall-clock knob;
/// results are identical for every value (see exec/engine.h).
int campaign_shards();

/// CURTAIN_COHORTS in [0, 64]: device cohorts per carrier (0, the
/// default, auto-sizes from the worker count). Purely a wall-clock knob;
/// results are identical for every value (see exec/engine.h).
int campaign_cohorts();

// --- streaming records ---------------------------------------------------

/// CURTAIN_BLOCK_ROWS in [256, 1048576] (default 8192): row budget of one
/// measurement record block (measure/record_block.h). Purely a memory
/// granularity knob; results are identical for every value.
size_t record_block_rows();

/// CURTAIN_RSS_CEILING_MB in [0, 1048576] (default 0 = unenforced):
/// resident-set ceiling for memory-bounded campaign runs. Consumers
/// (bench/micro_fleet, scripts/check.sh rss-smoke) fail when peak RSS
/// crosses it; the library itself only reports it.
size_t rss_ceiling_mb();

// --- observability -------------------------------------------------------

/// CURTAIN_METRICS_OUT: when non-empty, Study::run() writes the metrics
/// registry snapshot to this file (obs/export.h).
std::string metrics_out();

/// CURTAIN_PROFILE_OUT: when non-empty, Study::run() arms the flight
/// recorder and writes a chrome://tracing trace_event JSON file here
/// (obs/flight_recorder.h). Profiling never perturbs results.
std::string profile_out();

/// CURTAIN_PROFILE_STALL_K in [1.5, 100] (default 4): the stall
/// watchdog flags shards slower than this multiple of the median shard
/// wall in the run report.
double profile_stall_factor();

/// CURTAIN_LOG: log level (debug|info|warn|error|off); parsed by
/// util::init_log_level_from_env (util/logging.h). Empty when unset.
std::string log_flag();

/// CURTAIN_BENCH_CSV_DIR: when non-empty, benches mirror every printed
/// CDF into CSV files under this directory (bench/bench_common.h).
std::string bench_csv_dir();

// --- the listing ---------------------------------------------------------

/// One row of the knob table: static declaration plus the resolved
/// (post-clamp) value in the current environment.
struct FlagInfo {
  const char* name;      ///< environment variable
  const char* kind;      ///< "double" | "u64" | "string"
  const char* fallback;  ///< rendered default
  const char* range;     ///< rendered clamp rule; "-" if unclamped
  const char* help;      ///< one-line description
  std::string value;     ///< resolved value for this process
};

/// Every CURTAIN_* knob, in declaration order.
std::vector<FlagInfo> describe_flags();

}  // namespace curtain::util
