// Tiny environment-variable driven knobs for benches and examples.
//
// Benches scale their campaign size by CURTAIN_SCALE so the default
// `for b in build/bench/*; do $b; done` loop stays fast, while
// CURTAIN_SCALE=1.0 reproduces the paper's full 28k-experiment campaign.
#pragma once

#include <cstdint>
#include <string>

namespace curtain::util {

/// Reads env var `name`; returns `fallback` if unset or unparsable.
double env_double(const char* name, double fallback);
uint64_t env_u64(const char* name, uint64_t fallback);
std::string env_string(const char* name, const std::string& fallback);

/// CURTAIN_SCALE in (0,1]: fraction of the paper-scale campaign to run.
double campaign_scale();

/// CURTAIN_SEED: study-wide RNG seed (default 20141105, the IMC'14 date).
uint64_t study_seed();

/// CURTAIN_SHARDS in [1, 64]: worker threads in the campaign shard pool
/// (default 1; 0 = one per hardware thread). Purely a wall-clock knob;
/// results are identical for every value (see exec/engine.h).
int campaign_shards();

/// CURTAIN_COHORTS in [0, 64]: device cohorts per carrier (0, the
/// default, auto-sizes from the worker count). Purely a wall-clock knob;
/// results are identical for every value (see exec/engine.h).
int campaign_cohorts();

/// CURTAIN_PROFILE_OUT: when non-empty, Study::run() arms the flight
/// recorder and writes a chrome://tracing trace_event JSON file here
/// (obs/flight_recorder.h). Profiling never perturbs results.
std::string profile_out();

/// CURTAIN_PROFILE_STALL_K in [1.5, 100] (default 4): the stall
/// watchdog flags shards slower than this multiple of the median shard
/// wall in the run report.
double profile_stall_factor();

}  // namespace curtain::util
