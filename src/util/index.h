// Signed-to-unsigned subscript conversion.
//
// The codebase addresses carriers, regions, gateways and resolvers with
// plain `int` ids (they appear in records, CSV exports and paper tables,
// where signed sentinel values like -1 are meaningful). idx() keeps those
// subscripts clean under -Wsign-conversion and turns a negative id into a
// loud debug-build failure instead of a huge wrapped index.
#pragma once

#include <cstddef>

#include "util/contract.h"

namespace curtain::util {

template <typename T>
inline std::size_t idx(T i) {
  CURTAIN_DCHECK(i >= 0) << "negative index " << i;
  return static_cast<std::size_t>(i);
}

}  // namespace curtain::util
