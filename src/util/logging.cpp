#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>

#include "util/flags.h"

namespace curtain::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void init_log_level_from_env() {
  const std::string raw = log_flag();
  if (raw.empty()) return;
  const auto parsed = parse_log_level(raw);
  if (parsed) {
    set_log_level(*parsed);
  } else {
    log_line(LogLevel::kWarn,
             "CURTAIN_LOG=" + raw +
                 " not understood; expected debug|info|warn|error|off");
  }
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace curtain::util
