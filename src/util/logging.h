// Leveled logging with a process-wide threshold.
//
// The simulator is deterministic, so logs exist for humans exploring runs,
// not for correctness; default level is kWarn to keep bench output clean.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace curtain::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
std::optional<LogLevel> parse_log_level(const std::string& text);

/// Applies CURTAIN_LOG from the environment (no-op when unset or invalid).
void init_log_level_from_env();

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define CURTAIN_LOG(level) ::curtain::util::detail::LogStream(level)
#define CURTAIN_DEBUG() CURTAIN_LOG(::curtain::util::LogLevel::kDebug)
#define CURTAIN_INFO() CURTAIN_LOG(::curtain::util::LogLevel::kInfo)
#define CURTAIN_WARN() CURTAIN_LOG(::curtain::util::LogLevel::kWarn)
#define CURTAIN_ERROR() CURTAIN_LOG(::curtain::util::LogLevel::kError)

}  // namespace curtain::util
