// SmallVec: a vector with inline storage for small element counts.
//
// The simulation core keeps many tiny sequences whose typical length is
// known and small — DnsName label offsets (≤ ~6 labels for real names),
// short per-entry bookkeeping — where std::vector's unconditional heap
// allocation dominates the cost of the structure itself. SmallVec stores up
// to N elements inline and only touches the heap beyond that.
//
// Restricted to trivially copyable element types: that keeps copy/move a
// memcpy, which is the whole point (the flat DnsName copies its offsets on
// every cache-key construction). Iteration order is insertion order, so the
// container is determinism-safe by construction (tools/curtain_lint knows
// this; see its order-safe container list).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace curtain::util {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be at least 1");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { assign(other.data(), other.size_); }
  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear_storage();
      assign(other.data(), other.size_);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { clear_storage(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool inlined() const { return heap_ == nullptr; }

  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  T* data() { return heap_ != nullptr ? heap_ : inline_; }

  const T& operator[](size_t i) const { return data()[i]; }
  T& operator[](size_t i) { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size_ - 1]; }

  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void clear() { size_ = 0; }

  void reserve(size_t wanted) {
    if (wanted > capacity_) grow(wanted);
  }

  void push_back(T value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data()[size_++] = value;
  }

  void pop_back() { --size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator<(const SmallVec& a, const SmallVec& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  void assign(const T* src, size_t n) {
    if (n > N) {
      heap_ = new T[n];
      capacity_ = n;
    }
    std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  /// Takes `other`'s storage (heap buffer or inline bytes), leaving it empty.
  void steal(SmallVec& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  void clear_storage() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
    size_ = 0;
  }

  void grow(size_t wanted) {
    const size_t new_capacity = std::max(wanted, capacity_ * 2);
    T* grown = new T[new_capacity];
    std::memcpy(grown, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = grown;
    capacity_ = new_capacity;
  }

  T* heap_ = nullptr;  ///< null while the inline buffer suffices
  size_t size_ = 0;
  size_t capacity_ = N;
  T inline_[N];
};

}  // namespace curtain::util
