#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace curtain::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (auto& part : split(s, delim)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string format_double(double v, int precision) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace curtain::util
