// String helpers shared across the curtain libraries.
//
// Everything here is allocation-conscious but favors clarity: these helpers
// run in analysis/reporting paths, not per-packet hot paths.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace curtain::util {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on `delim` and drops empty fields.
std::vector<std::string> split_nonempty(std::string_view s, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy. DNS names compare case-insensitively (RFC 1035 §2.3.3).
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Parses a non-negative integer; nullopt on any non-digit or overflow.
std::optional<uint64_t> parse_u64(std::string_view s);

/// Fixed-precision decimal formatting without locale surprises.
std::string format_double(double v, int precision);

}  // namespace curtain::util
