#include <gtest/gtest.h>

#include "analysis/census.h"
#include "analysis/figures.h"
#include "analysis/ldns.h"
#include "analysis/reach.h"
#include "analysis/replica.h"
#include "analysis/stats.h"

namespace curtain::analysis {
namespace {

using measure::RecordStore;
using measure::ResolverKind;

// --- Ecdf ------------------------------------------------------------------

TEST(Ecdf, EmptyIsSafe) {
  const Ecdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 0.0);
  EXPECT_EQ(describe_cdf(cdf), "(no samples)");
}

TEST(Ecdf, QuantilesOfKnownData) {
  Ecdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_NEAR(cdf.median(), 50.5, 0.01);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_NEAR(cdf.quantile(0.25), 25.75, 0.01);
}

TEST(Ecdf, FractionAtOrBelow) {
  Ecdf cdf;
  cdf.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4.0), 1.0);
}

TEST(Ecdf, MeanMinMax) {
  Ecdf cdf;
  cdf.add_all({2, 4, 9});
  EXPECT_DOUBLE_EQ(cdf.mean(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 9.0);
}

TEST(Ecdf, CurveIsMonotonic) {
  Ecdf cdf;
  net::Rng rng(3);
  for (int i = 0; i < 1000; ++i) cdf.add(rng.uniform(0, 100));
  const auto curve = cdf.curve(31);
  ASSERT_EQ(curve.size(), 31u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
}

// Property: quantile is monotone in p for arbitrary data.
class EcdfMonotone : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcdfMonotone, QuantileMonotoneInP) {
  net::Rng rng(GetParam());
  Ecdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(rng.lognormal_median(50, 0.8));
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = cdf.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfMonotone, ::testing::Values(1, 2, 3, 4));

TEST(Bootstrap, IntervalBracketsPointEstimate) {
  Ecdf cdf;
  net::Rng rng(21);
  for (int i = 0; i < 400; ++i) cdf.add(rng.uniform(-1.0, 1.0));
  const auto ci = bootstrap_fraction_at_or_below(cdf, 0.0, 500, 3);
  EXPECT_LE(ci.low, ci.point);
  EXPECT_GE(ci.high, ci.point);
  EXPECT_NEAR(ci.point, 0.5, 0.08);
  EXPECT_GT(ci.high - ci.low, 0.0);
  EXPECT_LT(ci.high - ci.low, 0.2);
}

TEST(Bootstrap, MoreDataTighterInterval) {
  net::Rng rng(22);
  Ecdf small;
  Ecdf large;
  for (int i = 0; i < 50; ++i) small.add(rng.uniform(-1.0, 1.0));
  for (int i = 0; i < 5000; ++i) large.add(rng.uniform(-1.0, 1.0));
  const auto narrow = bootstrap_fraction_at_or_below(large, 0.0, 400, 5);
  const auto wide = bootstrap_fraction_at_or_below(small, 0.0, 400, 5);
  EXPECT_LT(narrow.high - narrow.low, wide.high - wide.low);
}

TEST(Bootstrap, DegenerateSamples) {
  Ecdf cdf;
  cdf.add(1.0);
  const auto ci = bootstrap_fraction_at_or_below(cdf, 0.0, 100, 9);
  EXPECT_DOUBLE_EQ(ci.low, ci.point);
  EXPECT_DOUBLE_EQ(ci.high, ci.point);
}

TEST(Bootstrap, Deterministic) {
  Ecdf cdf;
  net::Rng rng(23);
  for (int i = 0; i < 200; ++i) cdf.add(rng.uniform(0.0, 2.0));
  const auto a = bootstrap_fraction_at_or_below(cdf, 1.0, 300, 42);
  const auto b = bootstrap_fraction_at_or_below(cdf, 1.0, 300, 42);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
}

// --- ReplicaMap / cosine ----------------------------------------------------

TEST(ReplicaMap, IdenticalMapsAreSimilarityOne) {
  ReplicaMap a;
  a.observe(net::Ipv4Addr{1, 1, 1, 1});
  a.observe(net::Ipv4Addr{1, 1, 1, 2});
  EXPECT_NEAR(a.cosine_similarity(a), 1.0, 1e-12);
}

TEST(ReplicaMap, DisjointMapsAreZero) {
  ReplicaMap a;
  ReplicaMap b;
  a.observe(net::Ipv4Addr{1, 1, 1, 1});
  b.observe(net::Ipv4Addr{2, 2, 2, 2});
  EXPECT_DOUBLE_EQ(a.cosine_similarity(b), 0.0);
}

TEST(ReplicaMap, SymmetricAndBounded) {
  net::Rng rng(9);
  ReplicaMap a;
  ReplicaMap b;
  for (int i = 0; i < 200; ++i) {
    a.observe(net::Ipv4Addr(static_cast<uint32_t>(rng.uniform_u64(1, 10))));
    b.observe(net::Ipv4Addr(static_cast<uint32_t>(rng.uniform_u64(5, 15))));
  }
  const double ab = a.cosine_similarity(b);
  EXPECT_DOUBLE_EQ(ab, b.cosine_similarity(a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_GT(ab, 0.0);  // they do overlap on 5..10
}

TEST(ReplicaMap, RatiosNormalize) {
  ReplicaMap map;
  map.observe(net::Ipv4Addr{1, 0, 0, 1});
  map.observe(net::Ipv4Addr{1, 0, 0, 1});
  map.observe(net::Ipv4Addr{1, 0, 0, 2});
  EXPECT_NEAR(map.ratio(net::Ipv4Addr{1, 0, 0, 1}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(map.ratio(net::Ipv4Addr{9, 9, 9, 9}), 0.0);
  EXPECT_EQ(map.distinct(), 2u);
  EXPECT_EQ(map.total(), 3u);
}

TEST(ReplicaMap, EmptyMapSimilarityZero) {
  ReplicaMap a;
  ReplicaMap b;
  a.observe(net::Ipv4Addr{1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(a.cosine_similarity(b), 0.0);
}

// --- synthetic-dataset analyses ---------------------------------------------

// Builds a hand-crafted dataset for exact-value assertions.
class SyntheticDataset : public ::testing::Test {
 protected:
  uint32_t add_experiment(int carrier, uint64_t device, double hour,
                          net::Ipv4Addr configured,
                          net::GeoPoint location = {40.0, -74.0}) {
    measure::ExperimentContext context;
    context.device_id = device;
    context.carrier_index = carrier;
    context.started = net::SimTime::from_hours(hour);
    context.location = location;
    context.configured_resolver = configured;
    context.public_ip = net::Ipv4Addr{100, 0, 0, 1};
    return d_.add_experiment(context);
  }

  void add_observation(uint32_t experiment, ResolverKind kind,
                       net::Ipv4Addr external) {
    measure::ResolverObservation observation;
    observation.experiment_id = experiment;
    observation.resolver = kind;
    observation.responded = true;
    observation.external_ip = external;
    d_.add_observation(observation);
  }

  void add_http(uint32_t experiment, ResolverKind kind, uint16_t domain,
                net::Ipv4Addr replica, double ttfb) {
    measure::ProbeMeasurement probe;
    probe.experiment_id = experiment;
    probe.target_kind = measure::ProbeTargetKind::kReplica;
    probe.resolver = kind;
    probe.domain_index = domain;
    probe.target_ip = replica;
    probe.is_http = true;
    probe.responded = true;
    probe.rtt_ms = ttfb;
    d_.add_probe(probe);
  }

  void add_resolution(uint32_t experiment, ResolverKind kind, uint16_t domain,
                      std::vector<net::Ipv4Addr> addresses) {
    measure::DnsMeasurement r;
    r.experiment_id = experiment;
    r.resolver = kind;
    r.domain_index = domain;
    r.responded = true;
    r.resolution_ms = 40.0;
    r.addresses = std::move(addresses);
    d_.add_resolution(std::move(r));
  }

  RecordStore d_;
};

TEST_F(SyntheticDataset, LdnsPairStatsConsistency) {
  const net::Ipv4Addr client{10, 0, 0, 1};
  const net::Ipv4Addr ext_a{20, 0, 0, 1};
  const net::Ipv4Addr ext_b{20, 0, 1, 1};
  // Carrier 0: 3 of 4 measurements pair client with ext_a => 75%.
  for (int i = 0; i < 3; ++i) {
    add_observation(add_experiment(0, 1, i, client), ResolverKind::kLocal,
                    ext_a);
  }
  add_observation(add_experiment(0, 1, 9, client), ResolverKind::kLocal, ext_b);

  const auto stats = ldns_pair_stats(d_);
  ASSERT_EQ(stats.size(), 6u);
  EXPECT_EQ(stats[0].client_resolvers, 1u);
  EXPECT_EQ(stats[0].external_resolvers, 2u);
  EXPECT_EQ(stats[0].pairs, 2u);
  EXPECT_NEAR(stats[0].consistency_percent, 75.0, 1e-9);
  EXPECT_EQ(stats[1].pairs, 0u);  // untouched carrier
}

TEST_F(SyntheticDataset, TimelineRanksFirstAppearance) {
  const net::Ipv4Addr client{10, 0, 0, 1};
  const net::Ipv4Addr a{20, 0, 0, 1};
  const net::Ipv4Addr b{20, 0, 1, 1};  // different /24
  const net::Ipv4Addr c{20, 0, 0, 2};  // same /24 as a
  add_observation(add_experiment(0, 5, 1, client), ResolverKind::kLocal, a);
  add_observation(add_experiment(0, 5, 2, client), ResolverKind::kLocal, b);
  add_observation(add_experiment(0, 5, 3, client), ResolverKind::kLocal, a);
  add_observation(add_experiment(0, 5, 4, client), ResolverKind::kLocal, c);

  const auto timelines = resolver_timelines(d_, 0, ResolverKind::kLocal);
  ASSERT_EQ(timelines.size(), 1u);
  const auto& timeline = timelines[0];
  EXPECT_EQ(timeline.ip_rank, (std::vector<int>{1, 2, 1, 3}));
  EXPECT_EQ(timeline.slash24_rank, (std::vector<int>{1, 2, 1, 1}));
  EXPECT_EQ(timeline.unique_ips(), 3u);
  EXPECT_EQ(timeline.unique_slash24s(), 2u);
}

TEST_F(SyntheticDataset, StaticFilterDropsTravelObservations) {
  const net::Ipv4Addr client{10, 0, 0, 1};
  const net::GeoPoint home{40.0, -74.0};
  const net::GeoPoint away{34.0, -118.0};
  for (int i = 0; i < 8; ++i) {
    add_observation(add_experiment(0, 6, i, client, home), ResolverKind::kLocal,
                    net::Ipv4Addr{20, 0, 0, 1});
  }
  add_observation(add_experiment(0, 6, 20, client, away), ResolverKind::kLocal,
                  net::Ipv4Addr{20, 0, 9, 1});

  const auto timelines =
      static_resolver_timelines(d_, 0, ResolverKind::kLocal, 10.0);
  ASSERT_EQ(timelines.size(), 1u);
  EXPECT_EQ(timelines[0].times.size(), 8u);  // the away point is dropped
  EXPECT_EQ(timelines[0].unique_ips(), 1u);
}

TEST_F(SyntheticDataset, ReplicaPenaltyComputesPercentIncrease) {
  const auto e = add_experiment(0, 7, 1, net::Ipv4Addr{10, 0, 0, 1});
  // Replica A mean 100, replica B mean 150 => penalties {0%, 50%}.
  add_http(e, ResolverKind::kLocal, 2, net::Ipv4Addr{30, 0, 0, 1}, 90);
  add_http(e, ResolverKind::kLocal, 2, net::Ipv4Addr{30, 0, 0, 1}, 110);
  add_http(e, ResolverKind::kLocal, 2, net::Ipv4Addr{30, 0, 1, 1}, 150);
  const auto penalties = replica_penalty_by_carrier(d_, {2});
  ASSERT_TRUE(penalties.count(0));
  const auto& cdf = penalties.at(0);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_NEAR(cdf.min(), 0.0, 1e-9);
  EXPECT_NEAR(cdf.max(), 50.0, 1e-9);
}

TEST_F(SyntheticDataset, CosineByPrefixSplitsCorrectly) {
  const net::Ipv4Addr client{10, 0, 0, 1};
  const net::Ipv4Addr resolver_a1{20, 0, 0, 1};
  const net::Ipv4Addr resolver_a2{20, 0, 0, 2};  // same /24 as a1
  const net::Ipv4Addr resolver_b{20, 0, 7, 1};   // different /24
  const std::vector<net::Ipv4Addr> replicas_x{{30, 0, 0, 1}, {30, 0, 0, 2}};
  const std::vector<net::Ipv4Addr> replicas_y{{31, 0, 0, 1}};

  // a1 and a2 see replica set X; b sees Y.
  for (int i = 0; i < 3; ++i) {
    const auto e1 = add_experiment(0, 8, i, client);
    add_observation(e1, ResolverKind::kLocal, resolver_a1);
    add_resolution(e1, ResolverKind::kLocal, 5, replicas_x);
    const auto e2 = add_experiment(0, 8, i + 10, client);
    add_observation(e2, ResolverKind::kLocal, resolver_a2);
    add_resolution(e2, ResolverKind::kLocal, 5, replicas_x);
    const auto e3 = add_experiment(0, 8, i + 20, client);
    add_observation(e3, ResolverKind::kLocal, resolver_b);
    add_resolution(e3, ResolverKind::kLocal, 5, replicas_y);
  }

  const auto split = cosine_by_prefix(d_, 5, 0);
  ASSERT_EQ(split.same_slash24.size(), 1u);   // (a1,a2)
  ASSERT_EQ(split.different_slash24.size(), 2u);  // (a1,b), (a2,b)
  EXPECT_NEAR(split.same_slash24.max(), 1.0, 1e-9);
  EXPECT_NEAR(split.different_slash24.max(), 0.0, 1e-9);
}

TEST_F(SyntheticDataset, CensusCountsIpsAndPrefixes) {
  const auto e = add_experiment(2, 9, 1, net::Ipv4Addr{10, 0, 0, 1});
  add_observation(e, ResolverKind::kGoogle, net::Ipv4Addr{8, 8, 4, 1});
  add_observation(e, ResolverKind::kGoogle, net::Ipv4Addr{8, 8, 4, 2});
  add_observation(e, ResolverKind::kLocal, net::Ipv4Addr{20, 0, 0, 1});
  const auto census = resolver_census(d_);
  const auto& row = census[2];
  EXPECT_EQ(row.unique_ips[static_cast<size_t>(ResolverKind::kGoogle)], 2u);
  EXPECT_EQ(row.unique_slash24s[static_cast<size_t>(ResolverKind::kGoogle)], 1u);
  EXPECT_EQ(row.unique_ips[static_cast<size_t>(ResolverKind::kLocal)], 1u);
}

TEST_F(SyntheticDataset, EgressExtractionFindsLastCarrierHop) {
  const auto e = add_experiment(3, 10, 1, net::Ipv4Addr{10, 0, 0, 1});
  measure::TracerouteMeasurement trace;
  trace.experiment_id = e;
  trace.hop_names = {"Verizon-pgw-7", "ix-Chicago", "fastedge-Chicago-r0"};
  trace.reached = true;
  d_.add_traceroute(std::move(trace));

  measure::TracerouteMeasurement trace2;
  trace2.experiment_id = e;
  trace2.hop_names = {"Verizon-pgw-9", "*", "ix-Dallas"};
  trace2.reached = false;
  d_.add_traceroute(std::move(trace2));

  const auto stats = egress_points(d_);
  EXPECT_EQ(stats[3].egress_points, 2u);
  EXPECT_TRUE(stats[3].egress_names.count("Verizon-pgw-7"));
  EXPECT_EQ(stats[0].egress_points, 0u);
}

TEST_F(SyntheticDataset, ReachabilityTable) {
  measure::VantageProbe probe;
  probe.carrier_index = 1;
  probe.ping_responded = true;
  probe.traceroute_reached = false;
  d_.add_vantage(probe);
  probe.ping_responded = false;
  d_.add_vantage(probe);
  const auto table = external_reachability(d_);
  EXPECT_EQ(table[1].total, 2u);
  EXPECT_EQ(table[1].ping_responded, 1u);
  EXPECT_EQ(table[1].traceroute_reached, 0u);
}

TEST_F(SyntheticDataset, Fig14AggregationByPrefix) {
  const auto e = add_experiment(0, 11, 1, net::Ipv4Addr{10, 0, 0, 1});
  // Same /24 replica sets: delta must be exactly zero.
  add_http(e, ResolverKind::kLocal, 0, net::Ipv4Addr{30, 1, 1, 1}, 100);
  add_http(e, ResolverKind::kGoogle, 0, net::Ipv4Addr{30, 1, 1, 2}, 170);
  // Different /24s for domain 1: delta = (120-100)/100 = +20%.
  add_http(e, ResolverKind::kLocal, 1, net::Ipv4Addr{30, 2, 2, 1}, 100);
  add_http(e, ResolverKind::kGoogle, 1, net::Ipv4Addr{30, 3, 3, 1}, 120);

  const auto groups = fig14_public_replica_delta(d_);
  const auto& google = groups.at(carrier_name(0)).at("GoogleDNS");
  ASSERT_EQ(google.size(), 2u);
  EXPECT_NEAR(google.min(), 0.0, 1e-9);
  EXPECT_NEAR(google.max(), 20.0, 1e-9);
}

TEST_F(SyntheticDataset, HeadlineCountsEqualOrBetter) {
  const auto e = add_experiment(0, 12, 1, net::Ipv4Addr{10, 0, 0, 1});
  add_http(e, ResolverKind::kLocal, 0, net::Ipv4Addr{30, 1, 1, 1}, 100);
  add_http(e, ResolverKind::kGoogle, 0, net::Ipv4Addr{30, 9, 1, 2}, 80);
  add_http(e, ResolverKind::kOpenDns, 0, net::Ipv4Addr{30, 8, 1, 2}, 180);
  EXPECT_NEAR(headline_public_equal_or_better(d_), 0.5, 1e-9);
}

}  // namespace
}  // namespace curtain::analysis
