// White-box tests of the carrier DNS deployment: site-/24 ownership,
// pairing scope, regional assignments and the 3G-era baseline profiles.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cellular/device.h"
#include "core/world.h"

namespace curtain::cellular {
namespace {

class CarrierInternalsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{606};
};

core::World* CarrierInternalsTest::world_ = nullptr;

TEST_F(CarrierInternalsTest, Slash24sBelongToOneSite) {
  // Every external /24 must be announced at exactly one location —
  // otherwise the CDN's per-/24 hints would be meaningless (Fig. 10).
  for (const auto& carrier : world_->carriers()) {
    if (carrier->profile().dns.externals_collocated) continue;
    std::map<uint32_t, std::set<std::pair<int, int>>> locations;  // /24 -> {lat,lon}
    for (const auto& resolver : carrier->external_resolvers()) {
      const auto& node = world_->topology().node(resolver->node());
      locations[resolver->ip().slash24().value()].insert(
          {static_cast<int>(node.location.lat_deg * 100),
           static_cast<int>(node.location.lon_deg * 100)});
    }
    for (const auto& [prefix, sites] : locations) {
      EXPECT_EQ(sites.size(), 1u)
          << carrier->profile().name << " /24 " << prefix;
    }
  }
}

TEST_F(CarrierInternalsTest, AnycastInstanceFollowsSubscriberRegion) {
  auto& att = world_->carrier(0);
  ASSERT_EQ(att.profile().dns.kind, DnsArchKind::kAnycast);
  // Two subscribers behind different-region gateways hit different
  // instances of the same VIP.
  int region_a = att.region_of_gateway(0);
  int gateway_b = -1;
  for (int g = 1; g < att.num_gateways(); ++g) {
    if (att.region_of_gateway(g) != region_a) {
      gateway_b = g;
      break;
    }
  }
  ASSERT_GE(gateway_b, 0);
  const net::Ipv4Addr src_a = att.assign_ip(0, rng_);
  const net::Ipv4Addr src_b = att.assign_ip(gateway_b, rng_);
  EXPECT_NE(att.client_instance_node(0, src_a),
            att.client_instance_node(0, src_b));
  // And the same subscriber consistently hits the same instance.
  EXPECT_EQ(att.client_instance_node(0, src_a),
            att.client_instance_node(0, src_a));
}

TEST_F(CarrierInternalsTest, CollocatedForwardLegIsFree) {
  auto& skt = world_->carrier(4);
  const net::NodeId node = skt.external_resolvers()[0]->node();
  EXPECT_DOUBLE_EQ(skt.internal_forward_ms(node, node, rng_), 0.0);
}

TEST_F(CarrierInternalsTest, ForwardLegCostsForDistantPair) {
  auto& sprint = world_->carrier(1);
  const net::NodeId client = sprint.client_instance_node(
      0, sprint.assign_ip(0, rng_));
  double max_cost = 0.0;
  for (const auto& resolver : sprint.external_resolvers()) {
    if (resolver->node() == client) continue;
    max_cost = std::max(
        max_cost, sprint.internal_forward_ms(client, resolver->node(), rng_));
  }
  EXPECT_GT(max_cost, 1.0);
}

TEST_F(CarrierInternalsTest, PoolCandidatesScopedToServingSite) {
  // A subscriber's query must always land on an external homed at its
  // serving site: over many windows the observed set stays a strict
  // subset of the whole pool.
  auto& lg = world_->carrier(5);
  const net::Ipv4Addr src = lg.assign_ip(0, rng_);
  std::set<const void*> seen;
  for (int window = 0; window < 500; ++window) {
    const auto pick =
        lg.select_pair(0, src, net::SimTime::from_seconds(window * 600.0), rng_);
    seen.insert(pick.external);
  }
  EXPECT_GT(seen.size(), 3u);  // real load balancing
  EXPECT_LT(seen.size(), lg.external_resolvers().size());  // but site-scoped
}

TEST_F(CarrierInternalsTest, ConfiguredResolverIsRegionallyNearest) {
  auto& verizon = world_->carrier(3);
  for (int g = 0; g < verizon.num_gateways(); g += 7) {
    const net::Ipv4Addr configured = verizon.configured_resolver(1, g);
    const auto& gateway_node =
        world_->topology().node(verizon.gateway_node(g));
    // Find the chosen client resolver's node and check no other entry is
    // drastically closer (ties and shared metros allowed: 500 km slack).
    double chosen_distance = 0.0;
    double best_distance = 1e18;
    for (const auto& client : verizon.client_resolvers()) {
      const auto& node = world_->topology().node(
          verizon.client_instance_node(client->index(), net::Ipv4Addr{}));
      const double d =
          net::distance_km(gateway_node.location, node.location);
      if (client->ip() == configured) chosen_distance = d;
      best_distance = std::min(best_distance, d);
    }
    EXPECT_LT(chosen_distance, best_distance + 500.0) << "gateway " << g;
  }
}

TEST_F(CarrierInternalsTest, DmzExternalsLiveOutsideFirewalledZone) {
  for (const auto& carrier : world_->carriers()) {
    const bool dmz = carrier->profile().reach.externals_in_dmz;
    for (const auto& resolver : carrier->external_resolvers()) {
      const auto& node = world_->topology().node(resolver->node());
      const bool blocked =
          world_->topology().zone(node.zone).blocks_inbound_probes;
      EXPECT_EQ(blocked, !dmz) << carrier->profile().name;
    }
  }
}

TEST_F(CarrierInternalsTest, GatewayRegionsCoverAllRegions) {
  for (const auto& carrier : world_->carriers()) {
    std::set<int> regions;
    for (int g = 0; g < carrier->num_gateways(); ++g) {
      regions.insert(carrier->region_of_gateway(g));
    }
    EXPECT_EQ(static_cast<int>(regions.size()),
              std::min(carrier->profile().regions,
                       carrier->num_gateways()))
        << carrier->profile().name;
  }
}

// --- Xu-era (3G) baseline profiles ------------------------------------------

TEST(XuEra, FourUsCarriers) {
  const auto& carriers = xu_era_carriers();
  ASSERT_EQ(carriers.size(), 4u);
  for (const auto& p : carriers) {
    EXPECT_EQ(p.country, "US");
    EXPECT_GE(p.egress_points, 4);
    EXPECT_LE(p.egress_points, 6);  // Xu et al.'s 4-6 ingress points
    for (const auto& [tech, weight] : p.radio_mix) {
      EXPECT_NE(tech, RadioTech::kLte) << p.name;  // strictly pre-LTE
      (void)weight;
    }
    EXPECT_LE(p.dns.external_resolvers, 8);
  }
}

TEST(XuEra, BuildableWorld) {
  core::World world(
      core::Scenario::paper_2014().with_carriers(xu_era_carriers()));
  ASSERT_EQ(world.carriers().size(), 4u);
  net::Rng rng(99);
  // A device can attach and resolve through the 3G deployment.
  Fleet fleet(&world.carrier(0), 1);
  fleet.enroll(0, 1, net::GeoPoint{40.71, -74.01});
  Device device = fleet.device(0);
  const auto snapshot = device.begin_experiment(net::SimTime::zero(), rng);
  EXPECT_FALSE(snapshot.configured_resolver.is_unspecified());
  EXPECT_NE(snapshot.radio, RadioTech::kLte);
  // Access latency is 3G-class: well above LTE's ~28 ms median.
  double access_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    device.begin_experiment(net::SimTime::from_hours(i + 1), rng);
    device.access_rtt_ms(net::SimTime::from_hours(i + 1), rng);  // bootstrap
    access_sum += device.access_rtt_ms(net::SimTime::from_hours(i + 1), rng);
  }
  EXPECT_GT(access_sum / 50.0, 50.0);
}

}  // namespace
}  // namespace curtain::cellular
