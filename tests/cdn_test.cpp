#include <gtest/gtest.h>

#include <set>

#include "cdn/domains.h"
#include "core/world.h"
#include "dns/resolver.h"

namespace curtain::cdn {
namespace {

class CdnTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{31337};
};

core::World* CdnTest::world_ = nullptr;

TEST_F(CdnTest, NineStudyDomains) {
  ASSERT_EQ(study_domains().size(), 9u);
  bool has_yelp = false;
  bool has_buzzfeed = false;
  for (const auto& domain : study_domains()) {
    has_yelp |= domain.host == "m.yelp.com";        // Table 2 survivor
    has_buzzfeed |= domain.host == "www.buzzfeed.com";  // Fig. 10's domain
  }
  EXPECT_TRUE(has_yelp);
  EXPECT_TRUE(has_buzzfeed);
}

TEST_F(CdnTest, EveryDomainRidesAKnownCdn) {
  const auto cdns = study_cdn_names();
  for (const auto& domain : study_domains()) {
    EXPECT_NE(std::find(cdns.begin(), cdns.end(), domain.cdn), cdns.end())
        << domain.host;
  }
}

TEST_F(CdnTest, ClustersCoverUsAndKrMetros) {
  const auto& provider = world_->cdn("curtaincdn");
  ASSERT_EQ(provider.clusters().size(), 10u);  // 8 US + 2 KR POPs
  size_t us = 0;
  size_t kr = 0;
  for (const auto& cluster : provider.clusters()) {
    (cluster.country == "US" ? us : kr) += 1;
  }
  EXPECT_EQ(us, 8u);
  EXPECT_EQ(kr, 2u);
  std::set<uint32_t> prefixes;
  for (const auto& cluster : provider.clusters()) {
    EXPECT_FALSE(cluster.replica_ips.empty());
    for (const auto ip : cluster.replica_ips) {
      EXPECT_TRUE(cluster.prefix.contains(ip));  // one /24 per cluster
    }
    prefixes.insert(cluster.prefix.address().value());
  }
  EXPECT_EQ(prefixes.size(), provider.clusters().size());
}

TEST_F(CdnTest, OpaquePrefixMappingIsSticky) {
  const auto& provider = world_->cdn("curtaincdn");
  const net::Ipv4Addr resolver{100, 77, 3, 10};
  const auto& first = provider.cluster_for_resolver(resolver);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(provider.cluster_for_resolver(resolver).index, first.index);
  }
  // Same /24, different host: same cluster (Fig. 10's aggregation).
  EXPECT_EQ(provider.cluster_for_resolver(net::Ipv4Addr{100, 77, 3, 99}).index,
            first.index);
}

TEST_F(CdnTest, DifferentSlash24sUsuallyMapDifferently) {
  const auto& provider = world_->cdn("curtaincdn");
  std::set<int> clusters;
  for (int i = 0; i < 32; ++i) {
    clusters.insert(provider
                        .cluster_for_resolver(net::Ipv4Addr(
                            100, 80, static_cast<uint8_t>(i), 1))
                        .index);
  }
  EXPECT_GT(clusters.size(), 5u);
}

TEST_F(CdnTest, HintedPrefixMapsNearest) {
  auto& provider = world_->cdn("curtaincdn");
  const net::GeoPoint seattle{47.61, -122.33};
  provider.add_prefix_hint(net::Prefix(net::Ipv4Addr{203, 0, 113, 0}, 24),
                           seattle, "US");
  const auto& cluster =
      provider.cluster_for_resolver(net::Ipv4Addr{203, 0, 113, 7});
  EXPECT_EQ(cluster.metro, "Seattle");
}

TEST_F(CdnTest, CountryOnlyPrefixStaysInCountry) {
  auto& provider = world_->cdn("curtaincdn");
  provider.add_prefix_country(net::Prefix(net::Ipv4Addr{198, 18, 5, 0}, 24),
                              "KR");
  const auto& cluster =
      provider.cluster_for_resolver(net::Ipv4Addr{198, 18, 5, 1});
  EXPECT_EQ(cluster.country, "KR");
}

TEST_F(CdnTest, NearestClusterGeometry) {
  const auto& provider = world_->cdn("curtaincdn");
  EXPECT_EQ(provider.nearest_cluster({40.71, -74.01}, "US").metro, "New York");
  EXPECT_EQ(provider.nearest_cluster({37.57, 126.98}, "KR").metro, "Seoul");
}

TEST_F(CdnTest, ClusterOfReplicaInverse) {
  const auto& provider = world_->cdn("curtaincdn");
  const auto& cluster = provider.clusters().front();
  const auto* found = provider.cluster_of_replica(cluster.replica_ips[0]);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->index, cluster.index);
  EXPECT_EQ(provider.cluster_of_replica(net::Ipv4Addr{1, 1, 1, 1}), nullptr);
}

// End-to-end resolution through a real recursive resolver: the CDN ADNS
// must answer with replicas of the cluster mapped to *that resolver*.
TEST_F(CdnTest, AdnsSelectsByResolverAddress) {
  auto& topo = world_->topology();
  net::Node node;
  node.name = "probe-resolver";
  node.location = {47.61, -122.33};
  const net::NodeId id = topo.add_node(node);
  topo.add_link(id, world_->nearest_backbone(node.location),
                net::LatencyModel::fixed(1.0));
  dns::RecursiveResolver resolver("probe", id, net::Ipv4Addr{203, 0, 114, 1},
                                  &topo, &world_->registry(),
                                  world_->root_dns_ip());

  const auto result =
      resolver.resolve(*dns::DnsName::parse("m.yelp.com"), dns::RRType::kA,
                       net::SimTime::zero(), rng_);
  ASSERT_EQ(result.rcode, dns::Rcode::kNoError);
  const auto addresses = result.addresses();
  ASSERT_FALSE(addresses.empty());

  const auto& provider = world_->cdn("curtaincdn");
  const auto& expected =
      provider.cluster_for_resolver(net::Ipv4Addr{203, 0, 114, 1});
  for (const auto address : addresses) {
    const auto* cluster = provider.cluster_of_replica(address);
    ASSERT_NE(cluster, nullptr);
    EXPECT_EQ(cluster->index, expected.index);
  }
  // The CNAME chain is present (the paper picked CNAME-fronted domains).
  EXPECT_EQ(result.answers.front().type(), dns::RRType::kCNAME);
}

TEST_F(CdnTest, ShortTtlOnReplicaAnswers) {
  auto& topo = world_->topology();
  net::Node node;
  node.name = "probe-resolver-2";
  node.location = {40.71, -74.01};
  const net::NodeId id = topo.add_node(node);
  topo.add_link(id, world_->nearest_backbone(node.location),
                net::LatencyModel::fixed(1.0));
  dns::RecursiveResolver resolver("probe2", id, net::Ipv4Addr{203, 0, 114, 2},
                                  &topo, &world_->registry(),
                                  world_->root_dns_ip());
  const auto result =
      resolver.resolve(*dns::DnsName::parse("www.buzzfeed.com"),
                       dns::RRType::kA, net::SimTime::zero(), rng_);
  for (const auto& rr : result.answers) {
    if (rr.type() == dns::RRType::kA) {
      EXPECT_LE(rr.ttl, world_->config().cdn_answer_ttl_s);
    }
  }
}

TEST_F(CdnTest, RotationVariesWithinCluster) {
  auto& topo = world_->topology();
  net::Node node;
  node.name = "probe-resolver-3";
  node.location = {41.88, -87.63};
  const net::NodeId id = topo.add_node(node);
  topo.add_link(id, world_->nearest_backbone(node.location),
                net::LatencyModel::fixed(1.0));
  dns::RecursiveResolver resolver("probe3", id, net::Ipv4Addr{203, 0, 114, 3},
                                  &topo, &world_->registry(),
                                  world_->root_dns_ip());
  std::set<uint32_t> replicas_seen;
  for (int minute = 0; minute < 60; minute += 2) {
    const auto result = resolver.resolve(
        *dns::DnsName::parse("www.amazon.com"), dns::RRType::kA,
        net::SimTime::from_seconds(minute * 60.0), rng_);
    for (const auto address : result.addresses()) {
      replicas_seen.insert(address.value());
    }
  }
  // The 30 s rotation should cycle through more than one response's worth
  // of replicas inside an hour.
  EXPECT_GT(replicas_seen.size(), 2u);
}

}  // namespace
}  // namespace curtain::cdn
