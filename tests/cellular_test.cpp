#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>

#include "cellular/device.h"
#include "core/world.h"

namespace curtain::cellular {
namespace {

// --- radio model ---------------------------------------------------------

TEST(Radio, AllTechsHaveProfiles) {
  for (const RadioTech tech : all_radio_techs()) {
    const RadioProfile& profile = radio_profile(tech);
    EXPECT_EQ(profile.tech, tech);
    EXPECT_GT(profile.access_rtt.median_ms, 0.0);
    EXPECT_GT(profile.promotion.median_ms, 0.0);
    EXPECT_GT(profile.inactivity_timeout.seconds(), 0.0);
  }
}

TEST(Radio, GenerationOrderingOfLatency) {
  // Fig. 3's bands: 4G < 3G < 2G at the median.
  EXPECT_LT(radio_profile(RadioTech::kLte).access_rtt.median_ms,
            radio_profile(RadioTech::kEvdoA).access_rtt.median_ms);
  EXPECT_LT(radio_profile(RadioTech::kEhrpd).access_rtt.median_ms,
            radio_profile(RadioTech::kOneXRtt).access_rtt.median_ms);
  EXPECT_LT(radio_profile(RadioTech::kHspap).access_rtt.median_ms,
            radio_profile(RadioTech::kGprs).access_rtt.median_ms);
}

TEST(Radio, Names) {
  EXPECT_STREQ(radio_tech_name(RadioTech::kLte), "LTE");
  EXPECT_STREQ(radio_tech_name(RadioTech::kOneXRtt), "1xRTT");
  EXPECT_STREQ(radio_tech_name(RadioTech::kUmts), "UTMS");  // paper spelling
}

TEST(Radio, Generations) {
  EXPECT_EQ(radio_generation(RadioTech::kLte), RadioGeneration::k4G);
  EXPECT_EQ(radio_generation(RadioTech::kHspa), RadioGeneration::k3G);
  EXPECT_EQ(radio_generation(RadioTech::kGprs), RadioGeneration::k2G);
}

TEST(Rrc, PromotionPaidAfterIdle) {
  net::Rng rng(5);
  RrcState rrc;
  EXPECT_TRUE(rrc.is_idle(RadioTech::kLte, net::SimTime::zero()));
  const double cold =
      rrc.access_rtt_ms(RadioTech::kLte, net::SimTime::from_seconds(100), rng);
  const double warm = rrc.access_rtt_ms(
      RadioTech::kLte, net::SimTime::from_seconds(100.5), rng);
  // Promotion is ~260 ms; the cold access must clearly exceed the warm one.
  EXPECT_GT(cold, warm + 100.0);
}

TEST(Rrc, DemotesAfterInactivityTimeout) {
  net::Rng rng(5);
  RrcState rrc;
  rrc.access_rtt_ms(RadioTech::kLte, net::SimTime::from_seconds(10), rng);
  EXPECT_FALSE(rrc.is_idle(RadioTech::kLte, net::SimTime::from_seconds(15)));
  EXPECT_TRUE(rrc.is_idle(RadioTech::kLte, net::SimTime::from_seconds(25)));
}

// Property: every technology's access RTT stays positive and promotion
// strictly adds latency.
class RadioSweep : public ::testing::TestWithParam<RadioTech> {};

TEST_P(RadioSweep, AccessAlwaysPositive) {
  net::Rng rng(7);
  const RadioProfile& profile = radio_profile(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(profile.access_rtt.sample(rng), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechs, RadioSweep, ::testing::ValuesIn(all_radio_techs()),
    [](const ::testing::TestParamInfo<RadioTech>& tech_info) {
      std::string label = radio_tech_name(tech_info.param);
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label;
    });

// --- carrier profiles ------------------------------------------------------

TEST(CarrierProfiles, SixCarriersTableOne) {
  const auto& carriers = study_carriers();
  ASSERT_EQ(carriers.size(), 6u);
  int total_clients = 0;
  for (const auto& c : carriers) total_clients += c.study_clients;
  EXPECT_EQ(total_clients, 158);  // paper §3.1
}

TEST(CarrierProfiles, FindByName) {
  ASSERT_NE(find_carrier("Verizon"), nullptr);
  EXPECT_EQ(find_carrier("Verizon")->dns.kind, DnsArchKind::kTiered);
  EXPECT_EQ(find_carrier("nonesuch"), nullptr);
}

TEST(CarrierProfiles, VerizonIsFullyConsistentTiered) {
  const auto* verizon = find_carrier("Verizon");
  EXPECT_DOUBLE_EQ(verizon->dns.pairing_consistency, 1.0);
  EXPECT_EQ(verizon->client_as, 6167);
  EXPECT_EQ(verizon->external_as, 22394);
}

TEST(CarrierProfiles, SkCarriersShareSlash24s) {
  EXPECT_TRUE(find_carrier("SK Telecom")->dns.paired_same_slash24);
  EXPECT_TRUE(find_carrier("LG U+")->dns.paired_same_slash24);
  EXPECT_EQ(find_carrier("LG U+")->dns.external_resolvers, 89);
  EXPECT_EQ(find_carrier("SK Telecom")->dns.client_resolvers, 2);
}

TEST(CarrierProfiles, EgressCountsMatchSection52) {
  EXPECT_EQ(find_carrier("AT&T")->egress_points, 110);
  EXPECT_EQ(find_carrier("Sprint")->egress_points, 45);
  EXPECT_EQ(find_carrier("Verizon")->egress_points, 62);
  EXPECT_EQ(find_carrier("T-Mobile")->egress_points, 49);
}

class CarrierProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(CarrierProfileSweep, ProfileInvariants) {
  const CarrierProfile& p =
      study_carriers()[static_cast<size_t>(GetParam())];
  EXPECT_FALSE(p.name.empty());
  EXPECT_TRUE(p.country == "US" || p.country == "KR");
  EXPECT_GT(p.study_clients, 0);
  EXPECT_GT(p.egress_points, 0);
  EXPECT_GE(p.regions, 1);
  double weight_sum = 0.0;
  bool has_lte = false;
  for (const auto& [tech, weight] : p.radio_mix) {
    EXPECT_GT(weight, 0.0);
    weight_sum += weight;
    has_lte |= tech == RadioTech::kLte;
  }
  EXPECT_TRUE(has_lte);
  EXPECT_NEAR(weight_sum, 1.0, 0.01);
  EXPECT_GE(p.dns.client_resolvers, 1);
  EXPECT_GE(p.dns.external_resolvers, p.dns.client_resolvers);
  EXPECT_GT(p.dns.pairing_consistency, 0.0);
  EXPECT_LE(p.dns.pairing_consistency, 1.0);
  EXPECT_GE(p.dns.external_slash24s, 1);
}

INSTANTIATE_TEST_SUITE_P(AllCarriers, CarrierProfileSweep,
                         ::testing::Range(0, 6));

// --- built carriers in a world --------------------------------------------

class BuiltCarrierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{77};
};

core::World* BuiltCarrierTest::world_ = nullptr;

TEST_F(BuiltCarrierTest, ResolverCountsMatchProfiles) {
  for (const auto& carrier : world_->carriers()) {
    const auto& profile = carrier->profile();
    EXPECT_EQ(carrier->client_resolvers().size(),
              static_cast<size_t>(profile.dns.client_resolvers));
    EXPECT_EQ(carrier->external_resolvers().size(),
              static_cast<size_t>(profile.dns.external_resolvers));
    EXPECT_EQ(carrier->num_gateways(), profile.egress_points);
  }
}

TEST_F(BuiltCarrierTest, ExternalsOccupyConfiguredSlash24s) {
  for (const auto& carrier : world_->carriers()) {
    std::set<uint32_t> prefixes;
    for (const auto& resolver : carrier->external_resolvers()) {
      prefixes.insert(resolver->ip().slash24().value());
    }
    EXPECT_EQ(prefixes.size(),
              static_cast<size_t>(carrier->profile().dns.external_slash24s))
        << carrier->profile().name;
  }
}

TEST_F(BuiltCarrierTest, SkPairsShareSlash24) {
  const auto& skt = world_->carrier(4);
  ASSERT_EQ(skt.profile().name, "SK Telecom");
  std::set<uint32_t> external24s;
  for (const auto& resolver : skt.external_resolvers()) {
    external24s.insert(resolver->ip().slash24().value());
  }
  for (const auto& client : skt.client_resolvers()) {
    EXPECT_TRUE(external24s.count(client->ip().slash24().value()))
        << client->ip().to_string();
  }
}

TEST_F(BuiltCarrierTest, NatPoolMapsBackToGateway) {
  auto& att = world_->carrier(0);
  for (int g = 0; g < 5; ++g) {
    const net::Ipv4Addr ip = att.assign_ip(g, rng_);
    EXPECT_EQ(att.gateway_of_ip(ip), g);
  }
  EXPECT_EQ(att.gateway_of_ip(net::Ipv4Addr{1, 1, 1, 1}), -1);
}

TEST_F(BuiltCarrierTest, PickGatewayPrefersNearbyRegion) {
  auto& verizon = world_->carrier(3);
  const net::GeoPoint nyc{40.71, -74.01};
  int near = 0;
  for (int i = 0; i < 200; ++i) {
    const int g = verizon.pick_gateway(nyc, rng_);
    const auto& node =
        world_->topology().node(verizon.gateway_node(g));
    if (net::distance_km(node.location, nyc) < 1500.0) ++near;
  }
  EXPECT_GT(near, 150);  // mostly attaches close to home
}

TEST_F(BuiltCarrierTest, ConfiguredResolverStablePerDevice) {
  auto& sprint = world_->carrier(1);
  const net::Ipv4Addr first = sprint.configured_resolver(42, 0);
  EXPECT_EQ(sprint.configured_resolver(42, 0), first);
  // And it is one of the carrier's client resolver addresses.
  bool found = false;
  for (const auto& client : sprint.client_resolvers()) {
    found |= client->ip() == first;
  }
  EXPECT_TRUE(found);
}

TEST_F(BuiltCarrierTest, TieredPairingIsDeterministic) {
  auto& verizon = world_->carrier(3);
  const net::Ipv4Addr src = verizon.assign_ip(3, rng_);
  const auto a = verizon.select_pair(2, src, net::SimTime::zero(), rng_);
  const auto b =
      verizon.select_pair(2, src, net::SimTime::from_days(100), rng_);
  EXPECT_EQ(a.external, b.external);  // 100% consistency, forever
}

TEST_F(BuiltCarrierTest, PoolPairingFlowSticky) {
  // Selection is flow-sticky: constant within a balancer window, variable
  // across windows with the configured consistency.
  auto& sprint = world_->carrier(1);
  const net::Ipv4Addr src = sprint.assign_ip(0, rng_);
  const auto at = net::SimTime::from_hours(5.0);
  const auto a = sprint.select_pair(0, src, at, rng_);
  const auto b =
      sprint.select_pair(0, src, at + net::SimTime::from_seconds(30), rng_);
  EXPECT_EQ(a.external, b.external);

  std::map<const void*, int> counts;
  const int windows = 600;
  for (int w = 0; w < windows; ++w) {
    const auto pick =
        sprint.select_pair(0, src, net::SimTime::from_seconds(w * 600.0), rng_);
    ++counts[pick.external];
  }
  int modal = 0;
  for (const auto& [resolver, count] : counts) modal = std::max(modal, count);
  // Configured consistency is 0.65; epoch re-pairing adds a little more
  // spread on top, so accept a generous band.
  EXPECT_GT(modal, windows * 0.40);
  EXPECT_LT(modal, windows * 0.80);
  EXPECT_GT(counts.size(), 1u);  // load balancing does spread
}

TEST_F(BuiltCarrierTest, RepairEpochChangesHomeEventually) {
  auto& lg = world_->carrier(5);
  ASSERT_EQ(lg.profile().name, "LG U+");
  const net::Ipv4Addr src = lg.assign_ip(0, rng_);
  std::set<const void*> homes;
  // Sample the modal pick across two weeks; LG U+ re-pairs every ~5 hours.
  for (int hour = 0; hour < 14 * 24; hour += 6) {
    std::map<const void*, int> counts;
    for (int i = 0; i < 30; ++i) {
      const auto pick =
          lg.select_pair(0, src, net::SimTime::from_hours(hour), rng_);
      ++counts[pick.external];
    }
    const void* modal = nullptr;
    int best = 0;
    for (const auto& [resolver, count] : counts) {
      if (count > best) {
        best = count;
        modal = resolver;
      }
    }
    homes.insert(modal);
  }
  EXPECT_GT(homes.size(), 5u);  // many distinct homes over two weeks
}

TEST_F(BuiltCarrierTest, DeviceChurnsIpOverTime) {
  auto& att = world_->carrier(0);
  Fleet fleet(&att, 1);
  fleet.enroll(0, 999, net::GeoPoint{40.7, -74.0});
  Device device = fleet.device(0);
  std::set<uint32_t> ips;
  std::set<int> gateways;
  for (int hour = 0; hour < 24 * 30; ++hour) {
    const auto snapshot =
        device.begin_experiment(net::SimTime::from_hours(hour), rng_);
    ips.insert(snapshot.public_ip.value());
    gateways.insert(snapshot.gateway_index);
  }
  EXPECT_GT(ips.size(), 20u);      // ~8h mean reassignment over 30 days
  EXPECT_GT(gateways.size(), 3u);  // egress churn even from one home
}

TEST_F(BuiltCarrierTest, DeviceRadioMixMostlyLte) {
  auto& verizon = world_->carrier(3);
  Fleet fleet(&verizon, 1);
  fleet.enroll(0, 1000, net::GeoPoint{40.7, -74.0});
  Device device = fleet.device(0);
  int lte = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const auto snapshot =
        device.begin_experiment(net::SimTime::from_hours(i), rng_);
    if (snapshot.radio == RadioTech::kLte) ++lte;
  }
  EXPECT_GT(lte, trials * 0.6);
  EXPECT_LT(lte, trials * 0.95);
}

TEST_F(BuiltCarrierTest, GatewayNodesAreVisibleBoundary) {
  const auto& att = world_->carrier(0);
  const auto& node = world_->topology().node(att.gateway_node(0));
  EXPECT_EQ(node.kind, net::NodeKind::kGateway);
  EXPECT_TRUE(node.responds_to_traceroute);
  EXPECT_TRUE(world_->topology().zone(node.zone).blocks_inbound_probes);
}

}  // namespace
}  // namespace curtain::cellular
