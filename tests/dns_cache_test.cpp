#include <gtest/gtest.h>

#include "dns/cache.h"

namespace curtain::dns {
namespace {

using net::SimTime;

DnsName name(const char* s) { return *DnsName::parse(s); }

ResourceRecord a_record(const char* host, uint32_t ttl) {
  return ResourceRecord::a(name(host), net::Ipv4Addr{1, 2, 3, 4}, ttl);
}

TEST(Cache, MissOnEmpty) {
  Cache cache;
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, HitWithinTtl) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  const auto hit = cache.lookup(name("a.com"), RRType::kA,
                                SimTime::from_seconds(29));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->negative);
  ASSERT_EQ(hit->records.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, TtlAging) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  const auto hit = cache.lookup(name("a.com"), RRType::kA,
                                SimTime::from_seconds(12));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->records[0].ttl, 18u);
}

TEST(Cache, ExpiresExactlyAtTtl) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  EXPECT_FALSE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(30)));
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
}

TEST(Cache, EntryTtlIsMinOfRrset) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA,
               {a_record("a.com", 30), a_record("a.com", 10)}, SimTime::zero());
  EXPECT_TRUE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(9)));
  EXPECT_FALSE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(11)));
}

TEST(Cache, ZeroTtlNeverCached) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 0)},
               SimTime::zero());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
}

TEST(Cache, TypesAreIndependent) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kCNAME, SimTime::zero()));
  EXPECT_TRUE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
}

TEST(Cache, NamesCompareCaseInsensitively) {
  Cache cache;
  cache.insert(name("A.CoM"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  EXPECT_TRUE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
}

TEST(Cache, NegativeEntry) {
  Cache cache;
  cache.insert_negative(name("nx.com"), RRType::kA, 300, SimTime::zero());
  const auto hit = cache.lookup(name("nx.com"), RRType::kA,
                                SimTime::from_seconds(100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative);
  EXPECT_TRUE(hit->records.empty());
  EXPECT_FALSE(
      cache.lookup(name("nx.com"), RRType::kA, SimTime::from_seconds(301)));
}

TEST(Cache, OverwriteRefreshesEntry) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 10)},
               SimTime::zero());
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 10)},
               SimTime::from_seconds(8));
  EXPECT_TRUE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(15)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, CapacityEvictionPrefersSoonestExpiry) {
  Cache cache(/*max_entries=*/2);
  cache.insert(name("long.com"), RRType::kA, {a_record("long.com", 1000)},
               SimTime::zero());
  cache.insert(name("short.com"), RRType::kA, {a_record("short.com", 10)},
               SimTime::zero());
  cache.insert(name("new.com"), RRType::kA, {a_record("new.com", 500)},
               SimTime::zero());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(name("short.com"), RRType::kA, SimTime::zero()));
  EXPECT_TRUE(cache.lookup(name("long.com"), RRType::kA, SimTime::zero()));
  EXPECT_GE(cache.stats().capacity_evictions, 1u);
}

TEST(Cache, TtlBoundsClampInsertions) {
  Cache cache;
  cache.set_ttl_bounds(60, 120);
  cache.insert(name("short.com"), RRType::kA, {a_record("short.com", 5)},
               SimTime::zero());
  // Clamped up to 60 s.
  EXPECT_TRUE(
      cache.lookup(name("short.com"), RRType::kA, SimTime::from_seconds(59)));
  cache.insert(name("long.com"), RRType::kA, {a_record("long.com", 86400)},
               SimTime::zero());
  // Clamped down to 120 s.
  EXPECT_FALSE(
      cache.lookup(name("long.com"), RRType::kA, SimTime::from_seconds(121)));
}

TEST(Cache, ClearEmptiesEverything) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, HitRateAccounting) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  cache.lookup(name("a.com"), RRType::kA, SimTime::zero());
  cache.lookup(name("b.com"), RRType::kA, SimTime::zero());
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

}  // namespace
}  // namespace curtain::dns
