#include <gtest/gtest.h>

#include "dns/cache.h"

namespace curtain::dns {
namespace {

using net::SimTime;

DnsName name(const char* s) { return *DnsName::parse(s); }

ResourceRecord a_record(const char* host, uint32_t ttl) {
  return ResourceRecord::a(name(host), net::Ipv4Addr{1, 2, 3, 4}, ttl);
}

TEST(Cache, MissOnEmpty) {
  Cache cache;
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, HitWithinTtl) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  const auto hit = cache.lookup(name("a.com"), RRType::kA,
                                SimTime::from_seconds(29));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->negative());
  ASSERT_EQ(hit->records().size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, TtlAging) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  const auto hit = cache.lookup(name("a.com"), RRType::kA,
                                SimTime::from_seconds(12));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->elapsed_s(), 12u);
  EXPECT_EQ(hit->aged_records()[0].ttl, 18u);
  // The stored record keeps its original TTL; aging never rewrites it.
  EXPECT_EQ(hit->records()[0].ttl, 30u);
}

TEST(Cache, HitIsViewNotCopy) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  const auto first = cache.lookup(name("a.com"), RRType::kA,
                                  SimTime::from_seconds(1));
  const auto second = cache.lookup(name("a.com"), RRType::kA,
                                   SimTime::from_seconds(2));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Both hits borrow the same stored vector — lookup copies nothing.
  EXPECT_EQ(first->records().data(), second->records().data());
  EXPECT_EQ(first->aged_ttl(30), 29u);
  EXPECT_EQ(second->aged_ttl(30), 28u);
}

TEST(Cache, ExpiresExactlyAtTtl) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 30)},
               SimTime::zero());
  EXPECT_FALSE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(30)));
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
}

TEST(Cache, EntryTtlIsMinOfRrset) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA,
               {a_record("a.com", 30), a_record("a.com", 10)}, SimTime::zero());
  EXPECT_TRUE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(9)));
  EXPECT_FALSE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(11)));
}

TEST(Cache, ZeroTtlNeverCached) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 0)},
               SimTime::zero());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
}

TEST(Cache, ZeroTtlUncacheableEvenWithMinTtlFloor) {
  // Regression: the clamp used to run before the zero check, so a min_ttl
  // floor silently turned "do not cache" rrsets into cached entries.
  Cache cache;
  cache.set_ttl_bounds(60, 120);
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 0)},
               SimTime::zero());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
  cache.insert_negative(name("nx.com"), RRType::kA, 0, SimTime::zero());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, TypesAreIndependent) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  EXPECT_FALSE(cache.lookup(name("a.com"), RRType::kCNAME, SimTime::zero()));
  EXPECT_TRUE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
}

TEST(Cache, NamesCompareCaseInsensitively) {
  Cache cache;
  cache.insert(name("A.CoM"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  EXPECT_TRUE(cache.lookup(name("a.com"), RRType::kA, SimTime::zero()));
}

TEST(Cache, NegativeEntry) {
  Cache cache;
  cache.insert_negative(name("nx.com"), RRType::kA, 300, SimTime::zero());
  const auto hit = cache.lookup(name("nx.com"), RRType::kA,
                                SimTime::from_seconds(100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative());
  EXPECT_TRUE(hit->records().empty());
  EXPECT_FALSE(
      cache.lookup(name("nx.com"), RRType::kA, SimTime::from_seconds(301)));
}

TEST(Cache, OverwriteRefreshesEntry) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 10)},
               SimTime::zero());
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 10)},
               SimTime::from_seconds(8));
  EXPECT_TRUE(
      cache.lookup(name("a.com"), RRType::kA, SimTime::from_seconds(15)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, CapacityEvictionPrefersSoonestExpiry) {
  Cache cache(/*max_entries=*/2);
  cache.insert(name("long.com"), RRType::kA, {a_record("long.com", 1000)},
               SimTime::zero());
  cache.insert(name("short.com"), RRType::kA, {a_record("short.com", 10)},
               SimTime::zero());
  cache.insert(name("new.com"), RRType::kA, {a_record("new.com", 500)},
               SimTime::zero());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(name("short.com"), RRType::kA, SimTime::zero()));
  EXPECT_TRUE(cache.lookup(name("long.com"), RRType::kA, SimTime::zero()));
  EXPECT_GE(cache.stats().capacity_evictions, 1u);
}

TEST(Cache, ExpiredPurgedBeforeLiveEviction) {
  // Regression: when the cache was saturated with *expired* entries, the
  // old scan evicted exactly one per insert and could charge it as a
  // capacity eviction. The sweep must clear all dead entries first and
  // attribute them to expired_evictions, leaving live entries untouched.
  Cache cache(/*max_entries=*/3);
  cache.insert(name("dead1.com"), RRType::kA, {a_record("dead1.com", 10)},
               SimTime::zero());
  cache.insert(name("dead2.com"), RRType::kA, {a_record("dead2.com", 20)},
               SimTime::zero());
  cache.insert(name("live.com"), RRType::kA, {a_record("live.com", 1000)},
               SimTime::zero());
  // At t=60 both dead entries are expired; inserting one more must purge
  // them both and evict nothing live.
  cache.insert(name("new.com"), RRType::kA, {a_record("new.com", 500)},
               SimTime::from_seconds(60));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().expired_evictions, 2u);
  EXPECT_EQ(cache.stats().capacity_evictions, 0u);
  EXPECT_TRUE(
      cache.lookup(name("live.com"), RRType::kA, SimTime::from_seconds(60)));
  EXPECT_TRUE(
      cache.lookup(name("new.com"), RRType::kA, SimTime::from_seconds(60)));
}

TEST(Cache, EqualExpiryEvictsInInsertionOrder) {
  // Entries sharing an expiry time must evict oldest-inserted first —
  // eviction order may never depend on hash-map iteration order.
  Cache cache(/*max_entries=*/3);
  cache.insert(name("first.com"), RRType::kA, {a_record("first.com", 100)},
               SimTime::zero());
  cache.insert(name("second.com"), RRType::kA, {a_record("second.com", 100)},
               SimTime::zero());
  cache.insert(name("third.com"), RRType::kA, {a_record("third.com", 100)},
               SimTime::zero());
  cache.insert(name("fourth.com"), RRType::kA, {a_record("fourth.com", 100)},
               SimTime::zero());
  EXPECT_FALSE(cache.lookup(name("first.com"), RRType::kA, SimTime::zero()));
  EXPECT_TRUE(cache.lookup(name("second.com"), RRType::kA, SimTime::zero()));
  cache.insert(name("fifth.com"), RRType::kA, {a_record("fifth.com", 100)},
               SimTime::zero());
  EXPECT_FALSE(cache.lookup(name("second.com"), RRType::kA, SimTime::zero()));
  EXPECT_TRUE(cache.lookup(name("third.com"), RRType::kA, SimTime::zero()));
  EXPECT_EQ(cache.stats().capacity_evictions, 2u);
}

TEST(Cache, NegativeEntryExpires) {
  Cache cache;
  cache.insert_negative(name("nx.com"), RRType::kA, 300, SimTime::zero());
  EXPECT_FALSE(
      cache.lookup(name("nx.com"), RRType::kA, SimTime::from_seconds(300)));
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, TtlBoundsClampInsertions) {
  Cache cache;
  cache.set_ttl_bounds(60, 120);
  cache.insert(name("short.com"), RRType::kA, {a_record("short.com", 5)},
               SimTime::zero());
  // Clamped up to 60 s.
  EXPECT_TRUE(
      cache.lookup(name("short.com"), RRType::kA, SimTime::from_seconds(59)));
  cache.insert(name("long.com"), RRType::kA, {a_record("long.com", 86400)},
               SimTime::zero());
  // Clamped down to 120 s.
  EXPECT_FALSE(
      cache.lookup(name("long.com"), RRType::kA, SimTime::from_seconds(121)));
}

TEST(Cache, ClearEmptiesEverything) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, HitRateAccounting) {
  Cache cache;
  cache.insert(name("a.com"), RRType::kA, {a_record("a.com", 60)},
               SimTime::zero());
  cache.lookup(name("a.com"), RRType::kA, SimTime::zero());
  cache.lookup(name("b.com"), RRType::kA, SimTime::zero());
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

}  // namespace
}  // namespace curtain::dns
