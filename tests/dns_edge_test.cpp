// Additional DNS edge cases: compression limits, hierarchy reuse, cache
// eviction under pressure, record formatting, EDNS-in-fuzz round trips.
#include <gtest/gtest.h>

#include "dns/hierarchy.h"
#include "dns/message.h"
#include "net/rng.h"

namespace curtain::dns {
namespace {

DnsName name(const char* s) { return *DnsName::parse(s); }

TEST(DnsEdge, ManyRecordsRoundTrip) {
  // A large response exercises compression-table growth and counts.
  Message m = Message::query(1, name("big.example.com"), RRType::kA)
                  .make_response();
  for (int i = 0; i < 120; ++i) {
    m.answers.push_back(ResourceRecord::a(
        name("big.example.com"), net::Ipv4Addr(0x0a000000u + static_cast<uint32_t>(i)), 30));
  }
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
  // Compression: 120 repeated names cost 2 bytes each after the first.
  EXPECT_LT(encode(m).size(), 12u + 21u + 4u + 17u + 120u * (2 + 10 + 4) + 64u);
}

TEST(DnsEdge, MaxLengthNameRoundTrip) {
  // Build a 255-octet wire-length name (the RFC 1035 limit).
  std::vector<std::string> labels;
  size_t wire = 1;
  while (wire + 16 <= 255) {
    labels.push_back(std::string(15, static_cast<char>('a' + static_cast<int>(labels.size() % 26))));
    wire += 16;
  }
  const auto max_name = DnsName::from_labels(labels);
  ASSERT_TRUE(max_name.has_value());
  ASSERT_LE(max_name->wire_length(), 255u);
  const Message m = Message::query(2, *max_name, RRType::kA);
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->questions.front().name, *max_name);
}

TEST(DnsEdge, TxtWithEmptyAndLongStrings) {
  Message m = Message::query(3, name("t.example.com"), RRType::kTXT)
                  .make_response();
  m.answers.push_back(ResourceRecord::txt(
      name("t.example.com"), {"", std::string(255, 'x'), "middle"}, 60));
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(DnsEdge, OversizedTxtStringTruncatedTo255) {
  Message m = Message::query(4, name("t.example.com"), RRType::kTXT)
                  .make_response();
  m.answers.push_back(ResourceRecord::txt(
      name("t.example.com"), {std::string(300, 'y')}, 60));
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& txt = std::get<TxtRecord>(decoded->answers[0].rdata);
  EXPECT_EQ(txt.strings[0].size(), 255u);
}

TEST(DnsEdge, FuzzWithEcsRoundTrips) {
  net::Rng rng(4711);
  for (int i = 0; i < 100; ++i) {
    Message m = Message::query(static_cast<uint16_t>(rng.next_u64()),
                               name("www.example.com"), RRType::kA);
    if (rng.bernoulli(0.7)) {
      m.ecs = EdnsClientSubnet{
          net::Ipv4Addr(static_cast<uint32_t>(rng.next_u64())),
          static_cast<uint8_t>(rng.uniform_u64(0, 32)),
          static_cast<uint8_t>(rng.uniform_u64(0, 32))};
      // Canonicalize the address the way the wire will.
      const uint8_t len = m.ecs->source_prefix_len;
      const uint32_t mask = len == 0 ? 0 : 0xffffffffu << (32 - len);
      m.ecs->address = net::Ipv4Addr(m.ecs->address.value() & mask);
    }
    if (rng.bernoulli(0.5)) {
      m.answers.push_back(ResourceRecord::a(
          name("www.example.com"),
          net::Ipv4Addr(static_cast<uint32_t>(rng.next_u64())), 30));
    }
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value()) << i;
    EXPECT_EQ(*decoded, m) << i;
  }
}

TEST(DnsEdge, TruncatedOptRejected) {
  Message m = Message::query(5, name("a.com"), RRType::kA);
  m.ecs = EdnsClientSubnet{net::Ipv4Addr{1, 2, 3, 0}, 24, 0};
  auto wire = encode(m);
  for (size_t cut = 1; cut <= 8; ++cut) {
    const std::span<const uint8_t> prefix(wire.data(), wire.size() - cut);
    EXPECT_FALSE(decode(prefix).has_value()) << cut;
  }
}

TEST(DnsEdge, HierarchyReusesTldServers) {
  net::Topology topo;
  ServerRegistry registry;
  net::Node hub;
  hub.name = "hub";
  const net::NodeId hub_id = topo.add_node(hub);
  int hosts_created = 0;
  DnsHierarchy hierarchy(
      [&](const std::string& host, net::NodeKind kind,
          const net::GeoPoint& location, net::Ipv4Addr ip) {
        (void)kind;
        (void)location;
        ++hosts_created;
        net::Node node;
        node.name = host;
        node.ip = ip;
        const net::NodeId id = topo.add_node(node);
        topo.add_link(id, hub_id, net::LatencyModel::fixed(1.0));
        return id;
      },
      &registry);
  hierarchy.create_zone(name("one.com"), {40, -74}, net::Ipv4Addr{50, 0, 0, 1});
  hierarchy.create_zone(name("two.com"), {40, -74}, net::Ipv4Addr{50, 0, 0, 2});
  hierarchy.create_zone(name("three.net"), {40, -74},
                        net::Ipv4Addr{50, 0, 0, 3});
  // root + tld(com) + tld(net) + 3 zone hosts = 6 host nodes.
  EXPECT_EQ(hosts_created, 6);
  EXPECT_EQ(registry.size(), 6u);
}

TEST(DnsEdge, CacheEvictionUnderSustainedPressure) {
  Cache cache(/*max_entries=*/64);
  net::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::string host_name = "h";
    host_name += std::to_string(i);
    host_name += ".example.com";
    const auto host = DnsName::parse(host_name);
    cache.insert(*host, RRType::kA,
                 {ResourceRecord::a(*host, net::Ipv4Addr{1, 1, 1, 1},
                                    30 + static_cast<uint32_t>(i % 60))},
                 net::SimTime::from_seconds(i));
    EXPECT_LE(cache.size(), 64u);
  }
  EXPECT_GT(cache.stats().capacity_evictions + cache.stats().expired_evictions,
            900u);
}

TEST(DnsEdge, RecordToStringAllTypes) {
  EXPECT_EQ(ResourceRecord::a(name("a.com"), net::Ipv4Addr{1, 2, 3, 4}, 60)
                .to_string(),
            "a.com 60 IN A 1.2.3.4");
  EXPECT_EQ(ResourceRecord::cname(name("w.a.com"), name("e.cdn.net"), 300)
                .to_string(),
            "w.a.com 300 IN CNAME e.cdn.net");
  EXPECT_EQ(ResourceRecord::ns(name("a.com"), name("ns1.a.com"), 3600)
                .to_string(),
            "a.com 3600 IN NS ns1.a.com");
  EXPECT_EQ(ResourceRecord::txt(name("a.com"), {"x", "y"}, 60).to_string(),
            "a.com 60 IN TXT \"x\" \"y\"");
  const ResourceRecord ptr{name("1.2.0.192.in-addr.arpa"), RRClass::kIN, 60,
                           PtrRecord{name("host.a.com")}};
  EXPECT_EQ(ptr.to_string(), "1.2.0.192.in-addr.arpa 60 IN PTR host.a.com");
}

TEST(DnsEdge, RrtypeNames) {
  EXPECT_STREQ(rrtype_name(RRType::kA), "A");
  EXPECT_STREQ(rrtype_name(RRType::kCNAME), "CNAME");
  EXPECT_STREQ(rrtype_name(RRType::kSOA), "SOA");
  EXPECT_STREQ(rrtype_name(RRType::kPTR), "PTR");
}

}  // namespace
}  // namespace curtain::dns
