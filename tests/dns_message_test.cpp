#include <gtest/gtest.h>

#include "dns/message.h"
#include "net/rng.h"

namespace curtain::dns {
namespace {

DnsName name(const char* s) { return *DnsName::parse(s); }

Message sample_response() {
  Message q = Message::query(0x1234, name("www.buzzfeed.com"), RRType::kA);
  Message r = q.make_response();
  r.header.aa = false;
  r.header.ra = true;
  r.answers.push_back(ResourceRecord::cname(
      name("www.buzzfeed.com"), name("buzzfeed-www.fastedge.net"), 300));
  r.answers.push_back(ResourceRecord::a(name("buzzfeed-www.fastedge.net"),
                                        net::Ipv4Addr{20, 1, 2, 3}, 30));
  r.answers.push_back(ResourceRecord::a(name("buzzfeed-www.fastedge.net"),
                                        net::Ipv4Addr{20, 1, 2, 4}, 30));
  r.authorities.push_back(
      ResourceRecord::ns(name("fastedge.net"), name("ns1.fastedge.net"), 3600));
  r.additionals.push_back(ResourceRecord::a(name("ns1.fastedge.net"),
                                            net::Ipv4Addr{20, 9, 9, 9}, 3600));
  return r;
}

TEST(DnsMessage, QueryRoundTrip) {
  const Message q = Message::query(7, name("m.yelp.com"), RRType::kA);
  const auto wire = encode(q);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, q);
}

TEST(DnsMessage, ResponseRoundTrip) {
  const Message r = sample_response();
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(DnsMessage, HeaderFlagsRoundTrip) {
  Message m = Message::query(0xffff, name("a.b"), RRType::kTXT);
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = false;
  m.header.ra = true;
  m.header.rcode = Rcode::kNxDomain;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header, m.header);
}

TEST(DnsMessage, CompressionShrinksRepeatedNames) {
  const Message r = sample_response();
  const auto wire = encode(r);
  // Uncompressed, the four fastedge.net names alone would be ~100 bytes;
  // compression should keep the whole message well under that ceiling.
  size_t uncompressed = 12;
  for (const auto& q : r.questions) uncompressed += q.name.wire_length() + 4;
  for (const auto* section : {&r.answers, &r.authorities, &r.additionals}) {
    for (const auto& rr : *section) {
      uncompressed += rr.name.wire_length() + 10;
      uncompressed += 32;  // generous rdata allowance
    }
  }
  EXPECT_LT(wire.size(), uncompressed * 3 / 4);
}

TEST(DnsMessage, SoaRoundTrip) {
  Message m = Message::query(1, name("example.com"), RRType::kSOA);
  Message r = m.make_response();
  SoaRecord soa;
  soa.mname = name("ns1.example.com");
  soa.rname = name("hostmaster.example.com");
  soa.serial = 2014030100;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 300;
  r.answers.push_back(ResourceRecord::soa(name("example.com"), soa, 3600));
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(DnsMessage, TxtRoundTrip) {
  Message r = Message::query(2, name("t.example.com"), RRType::kTXT)
                  .make_response();
  r.answers.push_back(ResourceRecord::txt(
      name("t.example.com"), {"resolver=10.0.0.53", "second string"}, 60));
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(DnsMessage, PtrAndNsRoundTrip) {
  Message r = Message::query(3, name("x.example.com"), RRType::kPTR)
                  .make_response();
  r.answers.push_back(ResourceRecord{name("x.example.com"), RRClass::kIN, 60,
                                     PtrRecord{name("host.example.com")}});
  r.answers.push_back(
      ResourceRecord::ns(name("example.com"), name("ns2.example.com"), 60));
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(DnsMessage, EmptyWireRejected) {
  EXPECT_FALSE(decode({}).has_value());
}

TEST(DnsMessage, TruncatedHeaderRejected) {
  const std::vector<uint8_t> wire{0x12, 0x34, 0x01};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, TruncatedBodyRejected) {
  auto wire = encode(sample_response());
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, EveryTruncationFailsCleanly) {
  // Property: no prefix of a valid message decodes (counts would dangle).
  const auto wire = encode(sample_response());
  for (size_t n = 0; n < wire.size(); ++n) {
    const std::span<const uint8_t> prefix(wire.data(), n);
    EXPECT_FALSE(decode(prefix).has_value()) << "prefix length " << n;
  }
}

TEST(DnsMessage, ForwardCompressionPointerRejected) {
  // Hand-craft a question whose name is a pointer to itself.
  std::vector<uint8_t> wire{
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xc0, 0x0c,  // pointer to offset 12 = its own first byte
      0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, PointerLoopRejected) {
  // Two pointers chasing each other.
  std::vector<uint8_t> wire{
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xc0, 0x0e,  // at 12: points to 14
      0xc0, 0x0c,  // at 14: points back to 12
      0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, ReservedLabelBitsRejected) {
  std::vector<uint8_t> wire{
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x40, 'x',  // 0x40 label type is reserved
      0x00, 0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, NonInClassRejected) {
  auto wire = encode(Message::query(5, name("a.com"), RRType::kA));
  // Question class is the last two bytes; set to CH (3).
  wire[wire.size() - 1] = 3;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, BadRdlengthRejected) {
  Message r = Message::query(6, name("a.com"), RRType::kA).make_response();
  r.answers.push_back(ResourceRecord::a(name("a.com"), net::Ipv4Addr{1, 2, 3, 4}, 60));
  auto wire = encode(r);
  // The A record's RDLENGTH=4 sits 6 bytes before the end; corrupt it.
  wire[wire.size() - 5] = 7;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsMessage, AnswerHelpers) {
  const Message r = sample_response();
  ASSERT_NE(r.first_answer(RRType::kCNAME), nullptr);
  EXPECT_EQ(r.first_answer(RRType::kSOA), nullptr);
  const auto addrs = r.answer_addresses();
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0], net::Ipv4Addr(20, 1, 2, 3));
}

TEST(DnsMessage, RecordToStringReadable) {
  const auto rr = ResourceRecord::a(name("a.com"), net::Ipv4Addr{1, 2, 3, 4}, 60);
  EXPECT_EQ(rr.to_string(), "a.com 60 IN A 1.2.3.4");
}

// ---- property sweep: randomized message round-trips ------------------------

class CodecFuzzRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzRoundTrip, RandomMessagesRoundTrip) {
  net::Rng rng(GetParam());
  const std::vector<std::string> labels{"www", "cdn", "edge", "a", "m",
                                        "example", "test", "net", "com", "kr"};
  const auto random_name = [&]() {
    std::vector<std::string> parts;
    const auto depth = 1 + rng.uniform_u64(0, 3);
    for (uint64_t i = 0; i < depth; ++i) parts.push_back(rng.pick(labels));
    return *DnsName::from_labels(std::move(parts));
  };

  for (int iteration = 0; iteration < 50; ++iteration) {
    Message m = Message::query(static_cast<uint16_t>(rng.next_u64()),
                               random_name(), RRType::kA);
    m.header.qr = rng.bernoulli(0.5);
    m.header.rcode = rng.bernoulli(0.2) ? Rcode::kNxDomain : Rcode::kNoError;
    const auto records = rng.uniform_u64(0, 6);
    for (uint64_t i = 0; i < records; ++i) {
      const auto kind = rng.uniform_u64(0, 3);
      ResourceRecord rr;
      switch (kind) {
        case 0:
          rr = ResourceRecord::a(random_name(),
                                 net::Ipv4Addr(static_cast<uint32_t>(rng.next_u64())),
                                 static_cast<uint32_t>(rng.uniform_u64(0, 3600)));
          break;
        case 1:
          rr = ResourceRecord::cname(random_name(), random_name(), 30);
          break;
        case 2:
          rr = ResourceRecord::ns(random_name(), random_name(), 3600);
          break;
        default:
          rr = ResourceRecord::txt(random_name(), {"x", "longer string"}, 60);
          break;
      }
      const auto section = rng.uniform_u64(0, 2);
      (section == 0 ? m.answers : section == 1 ? m.authorities : m.additionals)
          .push_back(std::move(rr));
    }
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace curtain::dns
