#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/name.h"

namespace curtain::dns {
namespace {

TEST(DnsName, ParseBasic) {
  const auto name = DnsName::parse("www.Example.COM");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->labels(), (std::vector<std::string>{"www", "example", "com"}));
  EXPECT_EQ(name->to_string(), "www.example.com");
}

TEST(DnsName, ParseTrailingDot) {
  EXPECT_EQ(DnsName::parse("example.com.")->to_string(), "example.com");
}

TEST(DnsName, ParseRoot) {
  const auto root = DnsName::parse("");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->wire_length(), 1u);
  const auto dot = DnsName::parse(".");
  ASSERT_TRUE(dot.has_value());
  EXPECT_TRUE(dot->is_root());
}

TEST(DnsName, RejectEmptyLabel) {
  EXPECT_FALSE(DnsName::parse("a..b").has_value());
  EXPECT_FALSE(DnsName::parse(".a").has_value());
}

TEST(DnsName, RejectOversizedLabel) {
  const std::string big(64, 'x');
  EXPECT_FALSE(DnsName::parse(big + ".com").has_value());
  const std::string max(63, 'x');
  EXPECT_TRUE(DnsName::parse(max + ".com").has_value());
}

TEST(DnsName, RejectOversizedName) {
  // 5 labels of 63 bytes => 5*64+1 = 321 > 255.
  std::string name;
  for (int i = 0; i < 5; ++i) {
    if (i) name += '.';
    name += std::string(63, static_cast<char>('a' + i));
  }
  EXPECT_FALSE(DnsName::parse(name).has_value());
}

TEST(DnsName, WireLength) {
  EXPECT_EQ(DnsName::parse("www.example.com")->wire_length(), 17u);
}

TEST(DnsName, IsWithin) {
  const auto sub = *DnsName::parse("a.b.example.com");
  const auto zone = *DnsName::parse("example.com");
  EXPECT_TRUE(sub.is_within(zone));
  EXPECT_TRUE(zone.is_within(zone));
  EXPECT_FALSE(zone.is_within(sub));
  EXPECT_TRUE(sub.is_within(DnsName{}));  // everything under the root
}

TEST(DnsName, IsWithinLabelBoundary) {
  // "badexample.com" is NOT within "example.com".
  const auto other = *DnsName::parse("badexample.com");
  const auto zone = *DnsName::parse("example.com");
  EXPECT_FALSE(other.is_within(zone));
}

TEST(DnsName, Parent) {
  const auto name = *DnsName::parse("www.example.com");
  EXPECT_EQ(name.parent().to_string(), "example.com");
  EXPECT_TRUE(DnsName::parse("com")->parent().is_root());
  EXPECT_TRUE(DnsName{}.parent().is_root());
}

TEST(DnsName, Child) {
  const auto zone = *DnsName::parse("example.com");
  const auto child = zone.child("www");
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->to_string(), "www.example.com");
}

TEST(DnsName, ChildRejectsBadLabel) {
  const auto zone = *DnsName::parse("example.com");
  EXPECT_FALSE(zone.child("").has_value());
  EXPECT_FALSE(zone.child(std::string(64, 'x')).has_value());
}

TEST(DnsName, CaseInsensitiveEquality) {
  EXPECT_EQ(*DnsName::parse("WWW.EXAMPLE.COM"), *DnsName::parse("www.example.com"));
}

TEST(DnsName, HashConsistentWithEquality) {
  const auto a = *DnsName::parse("M.Yelp.Com");
  const auto b = *DnsName::parse("m.yelp.com");
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(DnsName, HashSeparatesLabelBoundaries) {
  const auto a = *DnsName::from_labels({"ab", "c"});
  const auto b = *DnsName::from_labels({"a", "bc"});
  EXPECT_NE(a.hash(), b.hash());
}

TEST(DnsName, OrderingUsableAsMapKey) {
  const auto a = *DnsName::parse("a.com");
  const auto b = *DnsName::parse("b.com");
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(DnsName, UnorderedSetWorks) {
  std::unordered_set<DnsName, DnsNameHash> set;
  set.insert(*DnsName::parse("x.com"));
  set.insert(*DnsName::parse("X.COM"));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace curtain::dns
