#include <gtest/gtest.h>

#include "dns/hierarchy.h"
#include "dns/resolver.h"
#include "dns/stub.h"

namespace curtain::dns {
namespace {

DnsName name(const char* s) { return *DnsName::parse(s); }

// A miniature internet: one backbone router, a root + TLD hierarchy, two
// zones (an origin and a CDN-style dynamic zone), one recursive resolver
// and a stub client host.
class DnsWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::Node hub;
    hub.name = "hub";
    hub.processing = net::LatencyModel::fixed(0.0);
    hub_ = topo_.add_node(hub);

    hierarchy_ = std::make_unique<DnsHierarchy>(
        [this](const std::string& host_name, net::NodeKind kind,
               const net::GeoPoint& location, net::Ipv4Addr ip) {
          return attach(host_name, kind, location, ip);
        },
        &registry_);

    // Origin zone: www.example.com CNAME edge.cdnzone.net; static A for
    // static.example.com.
    origin_ = &hierarchy_->create_zone(name("example.com"), {40, -74},
                                       net::Ipv4Addr{50, 0, 0, 1});
    origin_->add_record(ResourceRecord::cname(name("www.example.com"),
                                              name("edge.cdnzone.net"), 300));
    origin_->add_record(ResourceRecord::a(name("static.example.com"),
                                          net::Ipv4Addr{50, 1, 1, 1}, 600));
    origin_->add_record(ResourceRecord::txt(name("static.example.com"),
                                            {"hello"}, 600));

    // CDN zone with a dynamic handler answering per-resolver.
    cdn_ = &hierarchy_->create_zone(name("cdnzone.net"), {41, -87},
                                    net::Ipv4Addr{50, 0, 0, 2});
    cdn_->set_dynamic_handler(
        [this](const Question& question, net::Ipv4Addr resolver_ip,
               const std::optional<EdnsClientSubnet>&, net::SimTime, net::Rng&)
            -> std::optional<std::vector<ResourceRecord>> {
          if (question.type != RRType::kA) return std::nullopt;
          ++dynamic_calls_;
          last_seen_resolver_ = resolver_ip;
          return std::vector<ResourceRecord>{ResourceRecord::a(
              question.name, net::Ipv4Addr{60, 1, 2, 3}, 0)};
        },
        /*dynamic_ttl_s=*/30);

    const net::NodeId resolver_node = attach(
        "resolver", net::NodeKind::kResolver, {42, -88}, net::Ipv4Addr{});
    resolver_ = std::make_unique<RecursiveResolver>(
        "resolver", resolver_node, net::Ipv4Addr{9, 9, 9, 9}, &topo_,
        &registry_, hierarchy_->root_ip());
    registry_.add(resolver_.get());

    client_node_ = attach("client", net::NodeKind::kVantagePoint, {42, -87},
                          net::Ipv4Addr{7, 7, 7, 7});
  }

  net::NodeId attach(const std::string& host_name, net::NodeKind kind,
                     const net::GeoPoint& location, net::Ipv4Addr ip) {
    net::Node node;
    node.name = host_name;
    node.kind = kind;
    node.location = location;
    node.ip = ip;
    node.processing = net::LatencyModel::fixed(0.0);
    const net::NodeId id = topo_.add_node(node);
    topo_.add_link(id, hub_, net::LatencyModel::fixed(1.0));
    return id;
  }

  ServedResponse ask_auth(AuthoritativeServer& server, const char* qname,
                          RRType type, net::Ipv4Addr source = {9, 9, 9, 9}) {
    const Message query = Message::query(77, name(qname), type);
    return server.handle_query(encode(query), source, net::SimTime::zero(),
                               rng_);
  }

  net::Topology topo_;
  ServerRegistry registry_;
  std::unique_ptr<DnsHierarchy> hierarchy_;
  AuthoritativeServer* origin_ = nullptr;
  AuthoritativeServer* cdn_ = nullptr;
  std::unique_ptr<RecursiveResolver> resolver_;
  net::NodeId hub_ = 0;
  net::NodeId client_node_ = 0;
  net::Rng rng_{12345};
  int dynamic_calls_ = 0;
  net::Ipv4Addr last_seen_resolver_;
};

// --- authoritative behaviour -------------------------------------------

TEST_F(DnsWorldTest, AuthAnswersStaticA) {
  const auto served = ask_auth(*origin_, "static.example.com", RRType::kA);
  const auto response = decode(served.wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, Rcode::kNoError);
  EXPECT_TRUE(response->header.aa);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answer_addresses()[0], net::Ipv4Addr(50, 1, 1, 1));
}

TEST_F(DnsWorldTest, AuthNxdomainCarriesSoa) {
  const auto response =
      decode(ask_auth(*origin_, "missing.example.com", RRType::kA).wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, Rcode::kNxDomain);
  ASSERT_EQ(response->authorities.size(), 1u);
  EXPECT_EQ(response->authorities[0].type(), RRType::kSOA);
}

TEST_F(DnsWorldTest, AuthNodataKeepsNoError) {
  // static.example.com exists (A, TXT) but has no CNAME.
  const auto response =
      decode(ask_auth(*origin_, "static.example.com", RRType::kCNAME).wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, Rcode::kNoError);
  EXPECT_TRUE(response->answers.empty());
  ASSERT_EQ(response->authorities.size(), 1u);  // SOA for negative caching
}

TEST_F(DnsWorldTest, AuthOutOfZoneCnameReturnsLinkOnly) {
  const auto response =
      decode(ask_auth(*origin_, "www.example.com", RRType::kA).wire);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].type(), RRType::kCNAME);
}

TEST_F(DnsWorldTest, AuthInZoneCnameChased) {
  origin_->add_record(ResourceRecord::cname(name("alias.example.com"),
                                            name("static.example.com"), 60));
  const auto response =
      decode(ask_auth(*origin_, "alias.example.com", RRType::kA).wire);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 2u);
  EXPECT_EQ(response->answers[0].type(), RRType::kCNAME);
  EXPECT_EQ(response->answers[1].type(), RRType::kA);
}

TEST_F(DnsWorldTest, AuthRefusesForeignZones) {
  const auto response =
      decode(ask_auth(*origin_, "www.elsewhere.org", RRType::kA).wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, Rcode::kRefused);
}

TEST_F(DnsWorldTest, AuthDynamicHandlerSeesResolverIp) {
  const auto served = ask_auth(*cdn_, "edge.cdnzone.net", RRType::kA,
                               net::Ipv4Addr{9, 9, 9, 9});
  const auto response = decode(served.wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(dynamic_calls_, 1);
  EXPECT_EQ(last_seen_resolver_, net::Ipv4Addr(9, 9, 9, 9));
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].ttl, 30u);  // default TTL filled in
}

TEST_F(DnsWorldTest, AuthMalformedQueryGetsFormErr) {
  const std::vector<uint8_t> garbage{1, 2, 3};
  const auto served = origin_->handle_query(garbage, net::Ipv4Addr{1, 1, 1, 1},
                                            net::SimTime::zero(), rng_);
  const auto response = decode(served.wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, Rcode::kFormErr);
}

TEST_F(DnsWorldTest, RootDelegatesToTld) {
  auto& root = hierarchy_->root();
  const auto response = decode(
      root.handle_query(encode(Message::query(1, name("static.example.com"),
                                              RRType::kA)),
                        net::Ipv4Addr{9, 9, 9, 9}, net::SimTime::zero(), rng_)
          .wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->answers.empty());
  ASSERT_FALSE(response->authorities.empty());
  EXPECT_EQ(response->authorities[0].type(), RRType::kNS);
  ASSERT_FALSE(response->additionals.empty());  // glue
  EXPECT_FALSE(response->header.aa);
}

// --- recursive resolution ------------------------------------------------

TEST_F(DnsWorldTest, ColdResolutionWalksHierarchy) {
  const auto result = resolver_->resolve(name("static.example.com"), RRType::kA,
                                         net::SimTime::zero(), rng_);
  EXPECT_EQ(result.rcode, Rcode::kNoError);
  ASSERT_FALSE(result.addresses().empty());
  EXPECT_EQ(result.addresses()[0], net::Ipv4Addr(50, 1, 1, 1));
  EXPECT_FALSE(result.from_cache);
  // root -> tld(com) -> example.com = 3 upstream queries.
  EXPECT_EQ(result.upstream_queries, 3);
  EXPECT_GT(result.upstream_ms, 0.0);
}

TEST_F(DnsWorldTest, WarmResolutionServedFromCache) {
  resolver_->resolve(name("static.example.com"), RRType::kA,
                     net::SimTime::zero(), rng_);
  const auto warm = resolver_->resolve(name("static.example.com"), RRType::kA,
                                       net::SimTime::from_seconds(10), rng_);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.upstream_queries, 0);
  EXPECT_DOUBLE_EQ(warm.upstream_ms, 0.0);
}

TEST_F(DnsWorldTest, CachedTldCutShortensSecondResolution) {
  resolver_->resolve(name("static.example.com"), RRType::kA,
                     net::SimTime::zero(), rng_);
  // Different name, same zone: NS for example.com is cached, so the
  // resolver goes straight to the zone ADNS.
  origin_->add_record(ResourceRecord::a(name("other.example.com"),
                                        net::Ipv4Addr{50, 1, 1, 2}, 600));
  const auto result = resolver_->resolve(name("other.example.com"), RRType::kA,
                                         net::SimTime::from_seconds(1), rng_);
  EXPECT_EQ(result.upstream_queries, 1);
}

TEST_F(DnsWorldTest, CrossZoneCnameChase) {
  const auto result = resolver_->resolve(name("www.example.com"), RRType::kA,
                                         net::SimTime::zero(), rng_);
  EXPECT_EQ(result.rcode, Rcode::kNoError);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_EQ(result.answers[0].type(), RRType::kCNAME);
  EXPECT_EQ(result.answers[1].type(), RRType::kA);
  EXPECT_EQ(result.addresses()[0], net::Ipv4Addr(60, 1, 2, 3));
}

TEST_F(DnsWorldTest, NxdomainIsNegativeCached) {
  const auto first = resolver_->resolve(name("missing.example.com"), RRType::kA,
                                        net::SimTime::zero(), rng_);
  EXPECT_EQ(first.rcode, Rcode::kNxDomain);
  const auto second = resolver_->resolve(name("missing.example.com"),
                                         RRType::kA,
                                         net::SimTime::from_seconds(5), rng_);
  EXPECT_EQ(second.rcode, Rcode::kNxDomain);
  EXPECT_EQ(second.upstream_queries, 0);
}

TEST_F(DnsWorldTest, ExpiredEntryRefetched) {
  resolver_->resolve(name("static.example.com"), RRType::kA,
                     net::SimTime::zero(), rng_);
  const auto later = resolver_->resolve(name("static.example.com"), RRType::kA,
                                        net::SimTime::from_seconds(601), rng_);
  EXPECT_FALSE(later.from_cache);
  EXPECT_GT(later.upstream_queries, 0);
}

TEST_F(DnsWorldTest, TtlZeroAnswersNeverCached) {
  // The CDN dynamic answer above has TTL 0 after the handler's explicit 0?
  // No — the handler returns TTL 0 records, which the server rewrites to
  // its dynamic TTL (30). Use the research-ADNS pattern instead: TTL 0 on
  // a zone whose dynamic TTL is also 0.
  cdn_->set_dynamic_handler(
      [](const Question& question, net::Ipv4Addr resolver_ip,
         const std::optional<EdnsClientSubnet>&, net::SimTime,
         net::Rng&) -> std::optional<std::vector<ResourceRecord>> {
        return std::vector<ResourceRecord>{
            ResourceRecord::a(question.name, resolver_ip, 0)};
      },
      /*dynamic_ttl_s=*/0);
  const auto first = resolver_->resolve(name("unique1.cdnzone.net"), RRType::kA,
                                        net::SimTime::zero(), rng_);
  EXPECT_FALSE(first.addresses().empty());
  const auto again = resolver_->resolve(name("unique1.cdnzone.net"), RRType::kA,
                                        net::SimTime::from_millis(1), rng_);
  EXPECT_FALSE(again.from_cache);  // TTL 0 was not cached
}

TEST_F(DnsWorldTest, WarmHitProbabilityServesMissAsHit) {
  resolver_->set_warm_hit_probability(1.0);
  const auto result = resolver_->resolve(name("static.example.com"), RRType::kA,
                                         net::SimTime::zero(), rng_);
  EXPECT_TRUE(result.from_cache);
  EXPECT_DOUBLE_EQ(result.upstream_ms, 0.0);
  EXPECT_FALSE(result.addresses().empty());
}

TEST_F(DnsWorldTest, WarmEligibilityExcludesNames) {
  const DnsName research = name("curtain-study.net");
  resolver_->set_warm_hit_probability(1.0, [research](const DnsName& n) {
    return !n.is_within(research);
  });
  const auto excluded = resolver_->resolve(name("r1.adns.curtain-study.net"),
                                           RRType::kA, net::SimTime::zero(),
                                           rng_);
  EXPECT_FALSE(excluded.from_cache);  // warming skipped, real iteration ran
}

TEST_F(DnsWorldTest, ResolverHandleQueryWire) {
  const Message query =
      Message::query(321, name("static.example.com"), RRType::kA);
  const auto served = resolver_->handle_query(
      encode(query), net::Ipv4Addr{7, 7, 7, 7}, net::SimTime::zero(), rng_);
  EXPECT_GT(served.server_side_ms, 0.0);
  const auto response = decode(served.wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->header.ra);
  EXPECT_EQ(response->header.id, 321);
  EXPECT_FALSE(response->answer_addresses().empty());
}

TEST_F(DnsWorldTest, UnknownTldServfails) {
  const auto result = resolver_->resolve(name("host.nosuchtld"), RRType::kA,
                                         net::SimTime::zero(), rng_);
  EXPECT_EQ(result.rcode, Rcode::kNxDomain);  // the root answers NXDOMAIN
}

// --- stub ----------------------------------------------------------------

TEST_F(DnsWorldTest, StubEndToEnd) {
  StubResolver stub(client_node_, net::Ipv4Addr{7, 7, 7, 7}, topo_,
                    registry_);
  const auto result =
      stub.query(net::Ipv4Addr{9, 9, 9, 9}, name("static.example.com"),
                 RRType::kA, net::SimTime::zero(), rng_, /*extra=*/25.0);
  EXPECT_TRUE(result.responded);
  EXPECT_EQ(result.rcode, Rcode::kNoError);
  EXPECT_FALSE(result.addresses().empty());
  // extra latency + client-resolver RTT (4 ms) + upstream work.
  EXPECT_GT(result.total_ms, 29.0);
}

TEST_F(DnsWorldTest, StubUnknownResolverFails) {
  StubResolver stub(client_node_, net::Ipv4Addr{7, 7, 7, 7}, topo_,
                    registry_);
  const auto result =
      stub.query(net::Ipv4Addr{203, 0, 113, 1}, name("static.example.com"),
                 RRType::kA, net::SimTime::zero(), rng_);
  EXPECT_FALSE(result.responded);
}

}  // namespace
}  // namespace curtain::dns
