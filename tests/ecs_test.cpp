// EDNS client-subnet (RFC 7871) — codec, resolver and CDN behaviour.
//
// ECS is the study's "future work made concrete": it lets a far-away
// public resolver disclose the client's subnet so replica selection can
// key on the client. These tests cover the wire format, subnet-scoped
// caching, and the end-to-end effect on CDN mapping.
#include <gtest/gtest.h>

#include "cdn/domains.h"
#include "core/world.h"
#include "dns/resolver.h"

namespace curtain::dns {
namespace {

DnsName name(const char* s) { return *DnsName::parse(s); }

// --- codec ---------------------------------------------------------------

TEST(EcsCodec, QueryRoundTrip) {
  Message query = Message::query(9, name("m.yelp.com"), RRType::kA);
  query.ecs = EdnsClientSubnet{net::Ipv4Addr{100, 64, 3, 77}, 24, 0};
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->ecs.has_value());
  // The address is truncated to the prefix on the wire.
  EXPECT_EQ(decoded->ecs->address, net::Ipv4Addr(100, 64, 3, 0));
  EXPECT_EQ(decoded->ecs->source_prefix_len, 24);
  EXPECT_EQ(decoded->ecs->scope_prefix_len, 0);
  EXPECT_TRUE(decoded->additionals.empty());  // OPT is not a visible record
}

TEST(EcsCodec, ShorterPrefixFewerAddressBytes) {
  Message query = Message::query(9, name("a.com"), RRType::kA);
  query.ecs = EdnsClientSubnet{net::Ipv4Addr{10, 20, 30, 40}, 16, 0};
  const auto wire = encode(query);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value() && decoded->ecs.has_value());
  EXPECT_EQ(decoded->ecs->address, net::Ipv4Addr(10, 20, 0, 0));
  EXPECT_EQ(decoded->ecs->source_prefix_len, 16);
}

TEST(EcsCodec, ZeroPrefixCarriesNoAddress) {
  Message query = Message::query(9, name("a.com"), RRType::kA);
  query.ecs = EdnsClientSubnet{net::Ipv4Addr{1, 2, 3, 4}, 0, 0};
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded.has_value() && decoded->ecs.has_value());
  EXPECT_EQ(decoded->ecs->address, net::Ipv4Addr{});
}

TEST(EcsCodec, MessageWithoutEcsHasNone) {
  const auto decoded = decode(encode(Message::query(1, name("a.com"), RRType::kA)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->ecs.has_value());
}

TEST(EcsCodec, EcsCoexistsWithAnswers) {
  Message response = Message::query(2, name("a.com"), RRType::kA).make_response();
  response.answers.push_back(
      ResourceRecord::a(name("a.com"), net::Ipv4Addr{1, 1, 1, 1}, 60));
  response.additionals.push_back(
      ResourceRecord::a(name("ns.a.com"), net::Ipv4Addr{2, 2, 2, 2}, 60));
  response.ecs = EdnsClientSubnet{net::Ipv4Addr{100, 64, 0, 0}, 24, 24};
  const auto decoded = decode(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, response);
  EXPECT_EQ(decoded->additionals.size(), 1u);
}

TEST(EcsCodec, EqualityIncludesEcs) {
  Message a = Message::query(3, name("a.com"), RRType::kA);
  Message b = a;
  b.ecs = EdnsClientSubnet{net::Ipv4Addr{9, 9, 9, 0}, 24, 0};
  EXPECT_FALSE(a == b);
}

// --- subnet-scoped cache ---------------------------------------------------

TEST(EcsCache, ScopesAreIndependent) {
  Cache cache;
  const auto host = name("edge.cdn.net");
  cache.insert(host, RRType::kA,
               {ResourceRecord::a(host, net::Ipv4Addr{1, 1, 1, 1}, 60)},
               net::SimTime::zero(), /*scope=*/0x64400300);
  // Global partition does not see the scoped entry...
  EXPECT_FALSE(cache.lookup(host, RRType::kA, net::SimTime::zero()));
  // ...nor does another subnet's partition.
  EXPECT_FALSE(cache.lookup(host, RRType::kA, net::SimTime::zero(), 0x64400400));
  // The owning subnet does.
  EXPECT_TRUE(cache.lookup(host, RRType::kA, net::SimTime::zero(), 0x64400300));
}

// --- end-to-end: ECS fixes public-DNS replica mapping ----------------------

class EcsWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new core::World(
        core::Scenario::paper_2014().with_google_ecs(true));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{555};
};

core::World* EcsWorldTest::world_ = nullptr;

TEST_F(EcsWorldTest, GoogleInstancesSendEcs) {
  for (const auto& site : world_->google_dns().sites()) {
    for (const auto& instance : site.instances) {
      EXPECT_TRUE(instance->ecs_enabled());
    }
  }
  for (const auto& site : world_->open_dns().sites()) {
    for (const auto& instance : site.instances) {
      EXPECT_FALSE(instance->ecs_enabled());
    }
  }
}

TEST_F(EcsWorldTest, CdnMapsByClientSubnetWhenEcsPresent) {
  // A Seattle-area subscriber queried through a far-away resolver: with
  // ECS the CDN must serve the Seattle cluster regardless of where the
  // resolver sits.
  auto& provider = world_->cdn("curtaincdn");
  auto& carrier = world_->carrier(3);  // Verizon
  int seattle_gateway = -1;
  for (int g = 0; g < carrier.num_gateways(); ++g) {
    const auto& node = world_->topology().node(carrier.gateway_node(g));
    if (net::distance_km(node.location, {47.61, -122.33}) < 100.0) {
      seattle_gateway = g;
    }
  }
  ASSERT_GE(seattle_gateway, 0);
  const net::Ipv4Addr client = carrier.assign_ip(seattle_gateway, rng_);

  // Build an ECS-enabled probe resolver far from the client (NYC).
  auto& topo = world_->topology();
  net::Node node;
  node.name = "ecs-probe-resolver";
  node.location = {40.71, -74.01};
  const net::NodeId id = topo.add_node(node);
  topo.add_link(id, world_->nearest_backbone(node.location),
                net::LatencyModel::fixed(1.0));
  RecursiveResolver resolver("ecs-probe", id, net::Ipv4Addr{203, 0, 115, 1},
                             &topo, &world_->registry(), world_->root_dns_ip());
  resolver.enable_ecs();

  const auto result = resolver.resolve(name("m.yelp.com"), RRType::kA,
                                       net::SimTime::zero(), rng_, client);
  ASSERT_EQ(result.rcode, Rcode::kNoError);
  ASSERT_FALSE(result.addresses().empty());
  for (const auto address : result.addresses()) {
    const auto* cluster = provider.cluster_of_replica(address);
    ASSERT_NE(cluster, nullptr);
    EXPECT_EQ(cluster->metro, "Seattle");
  }
}

TEST_F(EcsWorldTest, ScopedAnswersNotSharedAcrossSubnets) {
  auto& topo = world_->topology();
  net::Node node;
  node.name = "ecs-probe-resolver-2";
  node.location = {41.88, -87.63};
  const net::NodeId id = topo.add_node(node);
  topo.add_link(id, world_->nearest_backbone(node.location),
                net::LatencyModel::fixed(1.0));
  RecursiveResolver resolver("ecs-probe2", id, net::Ipv4Addr{203, 0, 115, 2},
                             &topo, &world_->registry(), world_->root_dns_ip());
  resolver.enable_ecs();

  auto& carrier = world_->carrier(0);  // AT&T
  const net::Ipv4Addr client_a = carrier.assign_ip(0, rng_);
  const net::Ipv4Addr client_b = carrier.assign_ip(1, rng_);
  ASSERT_NE(client_a.slash24(), client_b.slash24());

  const auto first = resolver.resolve(name("www.bing.com"), RRType::kA,
                                      net::SimTime::zero(), rng_, client_a);
  ASSERT_FALSE(first.addresses().empty());
  // Same subnet immediately after: cache hit.
  const auto repeat = resolver.resolve(name("www.bing.com"), RRType::kA,
                                       net::SimTime::from_seconds(1), rng_,
                                       client_a);
  EXPECT_TRUE(repeat.from_cache);
  // Different subnet: the tailored entry must not be reused.
  const auto other = resolver.resolve(name("www.bing.com"), RRType::kA,
                                      net::SimTime::from_seconds(2), rng_,
                                      client_b);
  EXPECT_FALSE(other.from_cache);
}

TEST_F(EcsWorldTest, ResearchAdnsStillSeesResolver) {
  // Identification must keep returning the *resolver's* address even when
  // the query carries the client's subnet.
  auto& topo = world_->topology();
  net::Node node;
  node.name = "ecs-probe-resolver-3";
  node.location = {32.78, -96.80};
  const net::NodeId id = topo.add_node(node);
  topo.add_link(id, world_->nearest_backbone(node.location),
                net::LatencyModel::fixed(1.0));
  const net::Ipv4Addr resolver_ip{203, 0, 115, 3};
  RecursiveResolver resolver("ecs-probe3", id, resolver_ip, &topo,
                             &world_->registry(), world_->root_dns_ip());
  resolver.enable_ecs();
  auto& carrier = world_->carrier(1);
  const net::Ipv4Addr client = carrier.assign_ip(0, rng_);
  const auto probe = name("r1.d9.adns.curtain-study.net");
  const auto result =
      resolver.resolve(probe, RRType::kA, net::SimTime::zero(), rng_, client);
  ASSERT_FALSE(result.addresses().empty());
  EXPECT_EQ(result.addresses()[0], resolver_ip);
}

}  // namespace
}  // namespace curtain::dns
