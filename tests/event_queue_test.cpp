// EventQueue contract tests beyond the basics in time_clock_test.cpp:
// tie-break stability under heavy heap churn, move-only handlers, and the
// never-schedule-into-the-past clamp.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/clock.h"
#include "net/time.h"

namespace curtain::net {
namespace {

TEST(EventQueue, FifoSurvivesInterleavedPopsAndPushes) {
  // Equal-timestamp events must run in schedule order even when pops and
  // pushes interleave and the heap is rebuilt around them repeatedly.
  SimClock clock;
  EventQueue queue;
  std::vector<int> order;
  const SimTime t1 = SimTime::from_seconds(10);
  const SimTime t2 = SimTime::from_seconds(20);
  for (int i = 0; i < 8; ++i) {
    queue.schedule(t1, [&order, i](SimTime) { order.push_back(i); });
  }
  // Drain half, then add more events at both timestamps.
  for (int i = 0; i < 4; ++i) queue.run_next(clock);
  for (int i = 8; i < 12; ++i) {
    queue.schedule(t2, [&order, i](SimTime) { order.push_back(i); });
    queue.schedule(t1, [&order, i](SimTime) { order.push_back(100 + i); });
  }
  while (queue.run_next(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 108, 109, 110,
                                     111, 8, 9, 10, 11}));
}

TEST(EventQueue, DeterministicOrderAcrossManyEqualTimestamps) {
  // Dispatch order is the total order (time, seq): two queues fed the same
  // schedule sequence must dispatch identically, whatever the heap did.
  std::vector<int> first, second;
  for (std::vector<int>* out : {&first, &second}) {
    SimClock clock;
    EventQueue queue;
    for (int i = 0; i < 100; ++i) {
      queue.schedule(SimTime::from_seconds(i % 5),
                     [out, i](SimTime) { out->push_back(i); });
    }
    while (queue.run_next(clock)) {
    }
  }
  EXPECT_EQ(first, second);
  // And within one timestamp, strictly ascending schedule order.
  for (size_t i = 1; i < first.size(); ++i) {
    if (first[i - 1] % 5 == first[i] % 5) {
      EXPECT_LT(first[i - 1], first[i]);
    }
  }
}

TEST(EventQueue, AcceptsMoveOnlyHandlers) {
  // std::function required copyable callables; EventFn must not.
  SimClock clock;
  EventQueue queue;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  queue.schedule(SimTime::from_seconds(1),
                 [p = std::move(payload), &seen](SimTime) { seen = *p; });
  EXPECT_TRUE(queue.run_next(clock));
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, LargeCapturesFallBackToHeap) {
  // Captures beyond EventFn's inline buffer must still work (heap cell).
  SimClock clock;
  EventQueue queue;
  struct Big {
    uint64_t pad[12] = {};  // 96 bytes > kInlineSize
  } big;
  big.pad[11] = 7;
  uint64_t seen = 0;
  queue.schedule(SimTime::from_seconds(1),
                 [big, &seen](SimTime) { seen = big.pad[11]; });
  EXPECT_TRUE(queue.run_next(clock));
  EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, PastSchedulingClampsToDispatchFloor) {
  // Regression: handlers could schedule events before already-dispatched
  // ones and observe time running backwards. Such requests now clamp to
  // the current dispatch floor and run next, in schedule order.
  SimClock clock;
  EventQueue queue;
  std::vector<double> fire_times;
  queue.schedule(SimTime::from_seconds(10), [&](SimTime at) {
    fire_times.push_back(at.seconds());
    queue.schedule(SimTime::from_seconds(3),
                   [&](SimTime late) { fire_times.push_back(late.seconds()); });
  });
  queue.schedule(SimTime::from_seconds(20),
                 [&](SimTime at) { fire_times.push_back(at.seconds()); });
  while (queue.run_next(clock)) {
  }
  // The "t=3" event fires at the floor (10), before the t=20 event.
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 10.0, 20.0}));
  EXPECT_EQ(clock.now().seconds(), 20.0);
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  SimClock clock;
  clock.advance_to(SimTime::from_seconds(10));
  EventQueue queue;
  queue.schedule_after(clock, SimTime::from_seconds(-5), [](SimTime) {});
  EXPECT_EQ(queue.next_time().seconds(), 10.0);
}

TEST(EventQueue, HandlerSeesClockAheadOfEventTime) {
  // If the world clock was advanced externally past an event's timestamp,
  // the handler must observe the clock's now, never the stale event time.
  SimClock clock;
  EventQueue queue;
  double seen = 0.0;
  queue.schedule(SimTime::from_seconds(5),
                 [&](SimTime at) { seen = at.seconds(); });
  clock.advance_to(SimTime::from_seconds(30));
  EXPECT_TRUE(queue.run_next(clock));
  EXPECT_EQ(seen, 30.0);
  EXPECT_EQ(clock.now().seconds(), 30.0);
}

TEST(EventQueue, RunUntilIncludesHorizonEdge) {
  SimClock clock;
  EventQueue queue;
  int executed = 0;
  const SimTime horizon = SimTime::from_seconds(5);
  queue.schedule(horizon, [&](SimTime) { ++executed; });
  queue.schedule(horizon, [&](SimTime) { ++executed; });
  queue.schedule(horizon + SimTime{1}, [&](SimTime) { ++executed; });
  EXPECT_EQ(queue.run_until(clock, horizon), 2u);
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(clock.now(), horizon);
}

TEST(EventQueue, RunUntilRunsEventsScheduledDuringTheRun) {
  SimClock clock;
  EventQueue queue;
  int fires = 0;
  queue.schedule(SimTime::from_seconds(1), [&](SimTime at) {
    ++fires;
    queue.schedule(at + SimTime::from_seconds(1), [&](SimTime) { ++fires; });
  });
  EXPECT_EQ(queue.run_until(clock, SimTime::from_seconds(10)), 2u);
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ApproxSlabBytesTracksCapacity) {
  // The memory-accounting probe counts capacities (what RSS actually
  // holds), so it must be zero for a fresh queue, grow with scheduling,
  // and not shrink when events run (vectors keep their slabs).
  SimClock clock;
  EventQueue queue;
  EXPECT_EQ(queue.approx_slab_bytes(), 0u);
  queue.reserve(256);
  const size_t reserved = queue.approx_slab_bytes();
  EXPECT_GT(reserved, 0u);
  for (int i = 0; i < 64; ++i) {
    queue.schedule(SimTime::from_seconds(i), [](SimTime) {});
  }
  EXPECT_GE(queue.approx_slab_bytes(), reserved);
  const size_t loaded = queue.approx_slab_bytes();
  while (queue.run_next(clock)) {
  }
  EXPECT_GE(queue.approx_slab_bytes(), loaded);
}

TEST(EventQueue, ReservePreservesBehavior) {
  SimClock clock;
  EventQueue queue;
  queue.reserve(1024);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    queue.schedule(SimTime::from_seconds(32 - i),
                   [&order, i](SimTime) { order.push_back(i); });
  }
  while (queue.run_next(clock)) {
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], 31 - i);
}

}  // namespace
}  // namespace curtain::net
