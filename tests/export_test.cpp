#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "analysis/export.h"
#include "util/strings.h"

namespace curtain::analysis {
namespace {

using measure::RecordStore;

RecordStore tiny_dataset() {
  RecordStore d;
  measure::ExperimentContext context;
  context.device_id = 42;
  context.carrier_index = 3;  // Verizon
  context.started = net::SimTime::from_hours(5.0);
  context.radio = cellular::RadioTech::kLte;
  context.location = {40.0, -74.0};
  context.public_ip = net::Ipv4Addr{100, 1, 2, 3};
  context.configured_resolver = net::Ipv4Addr{10, 0, 0, 53};
  d.add_experiment(context);

  measure::DnsMeasurement r;
  r.experiment_id = 0;
  r.resolver = measure::ResolverKind::kLocal;
  r.domain_index = 6;  // m.yelp.com
  r.responded = true;
  r.resolution_ms = 44.25;
  r.addresses = {net::Ipv4Addr{20, 0, 1, 1}, net::Ipv4Addr{20, 0, 1, 2}};
  d.add_resolution(std::move(r));

  measure::ProbeMeasurement p;
  p.experiment_id = 0;
  p.target_kind = measure::ProbeTargetKind::kReplica;
  p.resolver = measure::ResolverKind::kGoogle;
  p.domain_index = 6;
  p.target_ip = net::Ipv4Addr{20, 0, 1, 1};
  p.is_http = true;
  p.responded = true;
  p.rtt_ms = 77.5;
  d.add_probe(p);

  measure::TracerouteMeasurement t;
  t.experiment_id = 0;
  t.target_ip = net::Ipv4Addr{20, 0, 1, 1};
  t.reached = true;
  t.hop_names = {"Verizon-pgw-3", "ix-Chicago"};
  d.add_traceroute(std::move(t));

  measure::ResolverObservation o;
  o.experiment_id = 0;
  o.resolver = measure::ResolverKind::kLocal;
  o.responded = true;
  o.external_ip = net::Ipv4Addr{20, 7, 7, 7};
  d.add_observation(o);

  measure::VantageProbe v;
  v.carrier_index = 3;
  v.target_ip = net::Ipv4Addr{20, 7, 7, 7};
  v.ping_responded = true;
  d.add_vantage(v);
  return d;
}

std::vector<std::string> lines_of(const std::string& text) {
  auto lines = util::split(text, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

TEST(Export, ExperimentsCsvShape) {
  std::ostringstream out;
  export_experiments_csv(tiny_dataset(), out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(util::starts_with(lines[0], "experiment_id,device_id,carrier"));
  EXPECT_NE(lines[1].find("Verizon"), std::string::npos);
  EXPECT_NE(lines[1].find("LTE"), std::string::npos);
  EXPECT_NE(lines[1].find("100.1.2.3"), std::string::npos);
}

TEST(Export, ResolutionsCsvJoinsDomainAndAddresses) {
  std::ostringstream out;
  export_resolutions_csv(tiny_dataset(), out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("m.yelp.com"), std::string::npos);
  EXPECT_NE(lines[1].find("20.0.1.1 20.0.1.2"), std::string::npos);
}

TEST(Export, ProbesCsvKinds) {
  std::ostringstream out;
  export_probes_csv(tiny_dataset(), out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("replica"), std::string::npos);
  EXPECT_NE(lines[1].find("http"), std::string::npos);
  EXPECT_NE(lines[1].find("GoogleDNS"), std::string::npos);
}

TEST(Export, TraceroutesCsvJoinsHops) {
  std::ostringstream out;
  export_traceroutes_csv(tiny_dataset(), out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("Verizon-pgw-3|ix-Chicago"), std::string::npos);
}

TEST(Export, ObservationsCsvHasSlash24) {
  std::ostringstream out;
  export_resolver_observations_csv(tiny_dataset(), out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("20.7.7.0/24"), std::string::npos);
}

TEST(Export, VantageCsv) {
  std::ostringstream out;
  export_vantage_probes_csv(tiny_dataset(), out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("Verizon"), std::string::npos);
}

TEST(Export, WholeDatasetToDirectory) {
  const std::string dir = ::testing::TempDir() + "/curtain_export";
  std::filesystem::create_directories(dir);
  EXPECT_EQ(export_records(tiny_dataset(), dir), 7);
  EXPECT_TRUE(std::filesystem::exists(dir + "/resolutions.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.txt"));
}

TEST(Export, UnwritableDirectoryFailsGracefully) {
  EXPECT_EQ(export_records(tiny_dataset(), "/nonexistent/dir/xyz"), 0);
}

}  // namespace
}  // namespace curtain::analysis
