// Failure injection: lossy links, unresponsive servers, corrupted
// packets, exhausted referral chains. The suite checks that every failure
// degrades to a clean, observable outcome — never a crash or a bogus
// success.
#include <gtest/gtest.h>

#include "dns/hierarchy.h"
#include "dns/resolver.h"
#include "dns/stub.h"
#include "measure/probes.h"

namespace curtain {
namespace {

using namespace dns;

DnsName name(const char* s) { return *DnsName::parse(s); }

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::Node hub;
    hub.name = "hub";
    hub.processing = net::LatencyModel::fixed(0.0);
    hub_ = topo_.add_node(hub);
    hierarchy_ = std::make_unique<DnsHierarchy>(
        [this](const std::string& host_name, net::NodeKind kind,
               const net::GeoPoint& location, net::Ipv4Addr ip) {
          return attach(host_name, kind, location, ip, 0.0);
        },
        &registry_);
    zone_ = &hierarchy_->create_zone(name("example.com"), {40, -74},
                                     net::Ipv4Addr{50, 0, 0, 1});
    zone_->add_record(ResourceRecord::a(name("www.example.com"),
                                        net::Ipv4Addr{50, 1, 1, 1}, 60));
    const net::NodeId rnode = attach("resolver", net::NodeKind::kResolver,
                                     {41, -87}, net::Ipv4Addr{}, 0.0);
    resolver_ = std::make_unique<RecursiveResolver>(
        "resolver", rnode, net::Ipv4Addr{9, 9, 9, 9}, &topo_, &registry_,
        hierarchy_->root_ip());
    registry_.add(resolver_.get());
    client_ = attach("client", net::NodeKind::kVantagePoint, {42, -87},
                     net::Ipv4Addr{7, 7, 7, 7}, 0.0);
  }

  net::NodeId attach(const std::string& host_name, net::NodeKind kind,
                     const net::GeoPoint& location, net::Ipv4Addr ip,
                     double loss) {
    net::Node node;
    node.name = host_name;
    node.kind = kind;
    node.location = location;
    node.ip = ip;
    node.processing = net::LatencyModel::fixed(0.0);
    const net::NodeId id = topo_.add_node(node);
    topo_.add_link(id, hub_, net::LatencyModel::fixed(1.0), loss);
    return id;
  }

  net::Topology topo_;
  ServerRegistry registry_;
  std::unique_ptr<DnsHierarchy> hierarchy_;
  AuthoritativeServer* zone_ = nullptr;
  std::unique_ptr<RecursiveResolver> resolver_;
  net::NodeId hub_ = 0;
  net::NodeId client_ = 0;
  net::Rng rng_{777};
};

TEST_F(FailureTest, GluelessDelegationDegradesToError) {
  // Delegate a child zone whose nameserver has no registered server.
  zone_->delegate(name("broken.example.com"), name("ns.broken.example.com"),
                  net::Ipv4Addr{203, 0, 113, 99});
  const auto result = resolver_->resolve(name("www.broken.example.com"),
                                         RRType::kA, net::SimTime::zero(),
                                         rng_);
  EXPECT_EQ(result.rcode, Rcode::kServFail);
  EXPECT_TRUE(result.addresses().empty());
  // The attempt cost real time (timeout), mirroring a client's experience.
  EXPECT_GE(result.upstream_ms, 1000.0);
}

TEST_F(FailureTest, SelfReferentialDelegationTerminates) {
  // A zone that "delegates" to its own server would loop forever without
  // the referral guard.
  zone_->delegate(name("loop.example.com"), name("ns1.example.com"),
                  zone_->ip());
  const auto result = resolver_->resolve(name("www.loop.example.com"),
                                         RRType::kA, net::SimTime::zero(),
                                         rng_);
  EXPECT_NE(result.rcode, Rcode::kNoError);
}

TEST_F(FailureTest, CnameLoopTerminates) {
  zone_->add_record(ResourceRecord::cname(name("a.example.com"),
                                          name("b.example.com"), 60));
  zone_->add_record(ResourceRecord::cname(name("b.example.com"),
                                          name("a.example.com"), 60));
  const auto result = resolver_->resolve(name("a.example.com"), RRType::kA,
                                         net::SimTime::zero(), rng_);
  EXPECT_EQ(result.rcode, Rcode::kServFail);
}

TEST_F(FailureTest, StubSurvivesGarbageResponder) {
  // A server that answers with garbage bytes must read as "no response".
  class GarbageServer : public DnsServer {
   public:
    GarbageServer(net::NodeId node, net::Ipv4Addr ip) : node_(node), ip_(ip) {}
    ServedResponse handle_query(std::span<const uint8_t>, net::Ipv4Addr,
                                net::SimTime, net::Rng&) override {
      return ServedResponse{{0xde, 0xad, 0xbe}, 0.0};
    }
    net::NodeId node() const override { return node_; }
    net::Ipv4Addr ip() const override { return ip_; }

   private:
    net::NodeId node_;
    net::Ipv4Addr ip_;
  };
  const net::NodeId gnode = attach("garbage", net::NodeKind::kResolver,
                                   {40, -80}, net::Ipv4Addr{6, 6, 6, 6}, 0.0);
  GarbageServer garbage(gnode, net::Ipv4Addr{6, 6, 6, 6});
  registry_.add(&garbage);

  StubResolver stub(client_, net::Ipv4Addr{7, 7, 7, 7}, topo_, registry_);
  const auto result = stub.query(net::Ipv4Addr{6, 6, 6, 6},
                                 name("www.example.com"), RRType::kA,
                                 net::SimTime::zero(), rng_);
  EXPECT_FALSE(result.responded);
}

TEST_F(FailureTest, MismatchedQueryIdRejected) {
  // A server echoing the wrong transaction id must be ignored
  // (cache-poisoning hygiene).
  class WrongIdServer : public DnsServer {
   public:
    WrongIdServer(net::NodeId node, net::Ipv4Addr ip) : node_(node), ip_(ip) {}
    ServedResponse handle_query(std::span<const uint8_t> wire, net::Ipv4Addr,
                                net::SimTime, net::Rng&) override {
      auto query = decode(wire);
      Message response = query->make_response();
      response.header.id = static_cast<uint16_t>(query->header.id + 1);
      response.answers.push_back(ResourceRecord::a(
          query->questions.front().name, net::Ipv4Addr{66, 66, 66, 66}, 60));
      return ServedResponse{encode(response), 0.0};
    }
    net::NodeId node() const override { return node_; }
    net::Ipv4Addr ip() const override { return ip_; }

   private:
    net::NodeId node_;
    net::Ipv4Addr ip_;
  };
  const net::NodeId wnode = attach("wrongid", net::NodeKind::kResolver,
                                   {40, -81}, net::Ipv4Addr{6, 6, 6, 7}, 0.0);
  WrongIdServer wrong(wnode, net::Ipv4Addr{6, 6, 6, 7});
  registry_.add(&wrong);

  StubResolver stub(client_, net::Ipv4Addr{7, 7, 7, 7}, topo_, registry_);
  const auto result =
      stub.query(net::Ipv4Addr{6, 6, 6, 7}, name("www.example.com"),
                 RRType::kA, net::SimTime::zero(), rng_);
  EXPECT_FALSE(result.responded);
  EXPECT_TRUE(result.addresses().empty());
}

TEST_F(FailureTest, LossyLinkStillResolvesTransport) {
  // Transport (solicited two-way) abstracts retransmission; probes don't.
  const net::NodeId lossy = attach("lossy-host", net::NodeKind::kReplica,
                                   {39, -75}, net::Ipv4Addr{8, 1, 1, 1},
                                   /*loss=*/0.9);
  int ping_ok = 0;
  for (int i = 0; i < 200; ++i) {
    if (topo_.ping(client_, lossy, rng_).responded) ++ping_ok;
  }
  // Two traversals at 90% loss each: ~1% success.
  EXPECT_LT(ping_ok, 20);
  EXPECT_TRUE(topo_.transport_rtt_ms(client_, lossy, rng_).has_value());
}

TEST_F(FailureTest, ProbeEngineUnknownTarget) {
  measure::ProbeEngine probes(measure::WorldView{topo_, registry_});
  const measure::ProbeOrigin origin{client_, net::Ipv4Addr{7, 7, 7, 7}, 10.0};
  const auto ping =
      probes.ping(origin, net::Ipv4Addr{203, 0, 113, 200}, net::SimTime::zero(),
                  rng_);
  EXPECT_FALSE(ping.responded);
  const auto http = probes.http_get(origin, net::Ipv4Addr{203, 0, 113, 200},
                                    net::SimTime::zero(), rng_);
  EXPECT_FALSE(http.responded);
  const auto trace = probes.traceroute(origin, net::Ipv4Addr{203, 0, 113, 200},
                                       net::SimTime::zero(), rng_);
  EXPECT_FALSE(trace.reached);
  EXPECT_TRUE(trace.hop_names.empty());
}

TEST_F(FailureTest, ProbeEngineAddsAccessLatency) {
  measure::ProbeEngine probes(measure::WorldView{topo_, registry_});
  const measure::ProbeOrigin wired{client_, net::Ipv4Addr{7, 7, 7, 7}, 0.0};
  const measure::ProbeOrigin radio{client_, net::Ipv4Addr{7, 7, 7, 7}, 50.0};
  const auto a = probes.ping(wired, net::Ipv4Addr{50, 0, 0, 1},
                             net::SimTime::zero(), rng_);
  const auto b = probes.ping(radio, net::Ipv4Addr{50, 0, 0, 1},
                             net::SimTime::zero(), rng_);
  ASSERT_TRUE(a.responded && b.responded);
  EXPECT_NEAR(b.rtt_ms - a.rtt_ms, 50.0, 1.0);
}

TEST_F(FailureTest, HttpTtfbCountsTwoRoundTrips) {
  measure::ProbeEngine probes(measure::WorldView{topo_, registry_});
  const measure::ProbeOrigin radio{client_, net::Ipv4Addr{7, 7, 7, 7}, 25.0};
  const auto http = probes.http_get(radio, net::Ipv4Addr{50, 0, 0, 1},
                                    net::SimTime::zero(), rng_);
  ASSERT_TRUE(http.responded);
  // 2 radio RTTs (50) + 2 wired RTTs of 4 ms (client-hub-server, 1 ms
  // fixed per link, both ways).
  EXPECT_NEAR(http.ttfb_ms, 58.0, 1.0);
}

}  // namespace
}  // namespace curtain
