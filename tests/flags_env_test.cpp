// Environment-knob parsing: util/flags.h primitives and the clamping the
// campaign knobs and core::Scenario::from_env apply to hostile values
// (bad ints, empty strings, out-of-range CURTAIN_SHARDS). A typo'd env var
// must fall back to defaults, never crash or smuggle a wild value into a
// campaign.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/scenario.h"
#include "util/flags.h"

namespace curtain {
namespace {

/// Sets an env var for one test and restores the prior state on scope exit
/// (the suite mutates the process environment, so tests stay independent).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// ------------------------------------------------------------- primitives

TEST(EnvFlags, UnsetFallsBack) {
  ScopedEnv clear("CURTAIN_TEST_KNOB", nullptr);
  EXPECT_EQ(util::env_double("CURTAIN_TEST_KNOB", 1.5), 1.5);
  EXPECT_EQ(util::env_u64("CURTAIN_TEST_KNOB", 7u), 7u);
  EXPECT_EQ(util::env_string("CURTAIN_TEST_KNOB", "dflt"), "dflt");
}

TEST(EnvFlags, ParsesValidValues) {
  ScopedEnv set("CURTAIN_TEST_KNOB", "0.25");
  EXPECT_EQ(util::env_double("CURTAIN_TEST_KNOB", 1.5), 0.25);
  ScopedEnv set_int("CURTAIN_TEST_INT", "12345");
  EXPECT_EQ(util::env_u64("CURTAIN_TEST_INT", 7u), 12345u);
  EXPECT_EQ(util::env_string("CURTAIN_TEST_INT", "dflt"), "12345");
}

TEST(EnvFlags, GarbageFallsBack) {
  ScopedEnv set("CURTAIN_TEST_KNOB", "not-a-number");
  EXPECT_EQ(util::env_double("CURTAIN_TEST_KNOB", 1.5), 1.5);
  EXPECT_EQ(util::env_u64("CURTAIN_TEST_KNOB", 7u), 7u);
}

TEST(EnvFlags, TrailingJunkFallsBack) {
  // "0.5x" must not parse as 0.5: a typo'd knob silently truncating would
  // run a campaign at the wrong scale.
  ScopedEnv set("CURTAIN_TEST_KNOB", "0.5x");
  EXPECT_EQ(util::env_double("CURTAIN_TEST_KNOB", 1.5), 1.5);
  ScopedEnv set_int("CURTAIN_TEST_INT", "12abc");
  EXPECT_EQ(util::env_u64("CURTAIN_TEST_INT", 7u), 7u);
}

TEST(EnvFlags, EmptyStringFallsBack) {
  ScopedEnv set("CURTAIN_TEST_KNOB", "");
  EXPECT_EQ(util::env_double("CURTAIN_TEST_KNOB", 1.5), 1.5);
  EXPECT_EQ(util::env_u64("CURTAIN_TEST_KNOB", 7u), 7u);
  // env_string deliberately returns the empty value as-is: "" is a valid
  // string setting (e.g. CURTAIN_METRICS_OUT= disables the export).
  EXPECT_EQ(util::env_string("CURTAIN_TEST_KNOB", "dflt"), "");
}

TEST(EnvFlags, NegativeU64FallsBack) {
  ScopedEnv set("CURTAIN_TEST_KNOB", "-3");
  EXPECT_EQ(util::env_u64("CURTAIN_TEST_KNOB", 7u), 7u);
}

// --------------------------------------------------------- campaign knobs

TEST(CampaignKnobs, ScaleClampsToUnitInterval) {
  {
    ScopedEnv set("CURTAIN_SCALE", "2.5");
    EXPECT_EQ(util::campaign_scale(), 1.0);
  }
  {
    ScopedEnv set("CURTAIN_SCALE", "0");
    EXPECT_EQ(util::campaign_scale(), 0.05);  // non-positive -> default
  }
  {
    ScopedEnv set("CURTAIN_SCALE", "-1");
    EXPECT_EQ(util::campaign_scale(), 0.05);
  }
  {
    ScopedEnv set("CURTAIN_SCALE", "0.2");
    EXPECT_EQ(util::campaign_scale(), 0.2);
  }
}

TEST(CampaignKnobs, ShardsClampTo1Through64) {
  {
    // 0 means "one worker per hardware thread" — the result depends on
    // the host, but must always land inside the clamp band.
    ScopedEnv set("CURTAIN_SHARDS", "0");
    const int workers = util::campaign_shards();
    EXPECT_GE(workers, 1);
    EXPECT_LE(workers, 64);
  }
  {
    ScopedEnv set("CURTAIN_SHARDS", "9999");
    EXPECT_EQ(util::campaign_shards(), 64);
  }
  {
    ScopedEnv set("CURTAIN_SHARDS", "garbage");
    EXPECT_EQ(util::campaign_shards(), 1);
  }
  {
    ScopedEnv set("CURTAIN_SHARDS", "4");
    EXPECT_EQ(util::campaign_shards(), 4);
  }
}

TEST(CampaignKnobs, CohortsClampTo0Through64) {
  {
    ScopedEnv clear("CURTAIN_COHORTS", nullptr);
    EXPECT_EQ(util::campaign_cohorts(), 0);  // 0 = auto-size
  }
  {
    ScopedEnv set("CURTAIN_COHORTS", "0");
    EXPECT_EQ(util::campaign_cohorts(), 0);
  }
  {
    ScopedEnv set("CURTAIN_COHORTS", "9999");
    EXPECT_EQ(util::campaign_cohorts(), 64);
  }
  {
    ScopedEnv set("CURTAIN_COHORTS", "garbage");
    EXPECT_EQ(util::campaign_cohorts(), 0);
  }
  {
    ScopedEnv set("CURTAIN_COHORTS", "-3");
    EXPECT_EQ(util::campaign_cohorts(), 0);  // negative u64 parse fails
  }
  {
    ScopedEnv set("CURTAIN_COHORTS", "7");
    EXPECT_EQ(util::campaign_cohorts(), 7);
  }
}

TEST(CampaignKnobs, SeedDefaultIsTheImc14Date) {
  ScopedEnv clear("CURTAIN_SEED", nullptr);
  EXPECT_EQ(util::study_seed(), 20141105u);
}

TEST(CampaignKnobs, ProfileStallFactorClampsTo1Point5Through100) {
  {
    ScopedEnv clear("CURTAIN_PROFILE_STALL_K", nullptr);
    EXPECT_EQ(util::profile_stall_factor(), 4.0);
  }
  {
    // Below the floor a watchdog would flag normal scheduling jitter.
    ScopedEnv set("CURTAIN_PROFILE_STALL_K", "0.5");
    EXPECT_EQ(util::profile_stall_factor(), 1.5);
  }
  {
    ScopedEnv set("CURTAIN_PROFILE_STALL_K", "1e9");
    EXPECT_EQ(util::profile_stall_factor(), 100.0);
  }
  {
    ScopedEnv set("CURTAIN_PROFILE_STALL_K", "garbage");
    EXPECT_EQ(util::profile_stall_factor(), 4.0);
  }
  {
    ScopedEnv set("CURTAIN_PROFILE_STALL_K", "6");
    EXPECT_EQ(util::profile_stall_factor(), 6.0);
  }
}

TEST(CampaignKnobs, BlockRowsClampTo256Through1M) {
  {
    ScopedEnv clear("CURTAIN_BLOCK_ROWS", nullptr);
    EXPECT_EQ(util::record_block_rows(), 8192u);
  }
  {
    ScopedEnv set("CURTAIN_BLOCK_ROWS", "1");
    EXPECT_EQ(util::record_block_rows(), 256u);
  }
  {
    ScopedEnv set("CURTAIN_BLOCK_ROWS", "99999999");
    EXPECT_EQ(util::record_block_rows(), 1048576u);
  }
  {
    ScopedEnv set("CURTAIN_BLOCK_ROWS", "garbage");
    EXPECT_EQ(util::record_block_rows(), 8192u);
  }
  {
    ScopedEnv set("CURTAIN_BLOCK_ROWS", "4096");
    EXPECT_EQ(util::record_block_rows(), 4096u);
  }
}

TEST(CampaignKnobs, RssCeilingDefaultsToUnenforced) {
  {
    ScopedEnv clear("CURTAIN_RSS_CEILING_MB", nullptr);
    EXPECT_EQ(util::rss_ceiling_mb(), 0u);  // 0 = unenforced
  }
  {
    ScopedEnv set("CURTAIN_RSS_CEILING_MB", "1500");
    EXPECT_EQ(util::rss_ceiling_mb(), 1500u);
  }
  {
    ScopedEnv set("CURTAIN_RSS_CEILING_MB", "garbage");
    EXPECT_EQ(util::rss_ceiling_mb(), 0u);
  }
  {
    ScopedEnv set("CURTAIN_RSS_CEILING_MB", "99999999");
    EXPECT_EQ(util::rss_ceiling_mb(), 1048576u);
  }
}

// ----------------------------------------------------------- the listing

// Every knob the tree reads must appear in describe_flags(), with its
// resolved value — the table *is* the inventory, so a knob added without
// a listing row (or with a stale default) fails here.
TEST(FlagListing, EveryKnobListedWithResolvedValue) {
  ScopedEnv scale("CURTAIN_SCALE", "0.25");
  ScopedEnv rows("CURTAIN_BLOCK_ROWS", "512");
  ScopedEnv ceiling("CURTAIN_RSS_CEILING_MB", nullptr);
  const auto flags = util::describe_flags();
  ASSERT_EQ(flags.size(), 11u);

  static constexpr const char* kKnobs[] = {
      "CURTAIN_SCALE",          "CURTAIN_SEED",
      "CURTAIN_SHARDS",         "CURTAIN_COHORTS",
      "CURTAIN_BLOCK_ROWS",     "CURTAIN_RSS_CEILING_MB",
      "CURTAIN_METRICS_OUT",    "CURTAIN_PROFILE_OUT",
      "CURTAIN_PROFILE_STALL_K", "CURTAIN_LOG",
      "CURTAIN_BENCH_CSV_DIR"};
  ASSERT_EQ(std::size(kKnobs), flags.size());
  for (size_t i = 0; i < flags.size(); ++i) {
    EXPECT_STREQ(flags[i].name, kKnobs[i]) << "declaration order changed";
    EXPECT_NE(flags[i].kind[0], '\0');
    EXPECT_NE(flags[i].help[0], '\0');
    EXPECT_NE(flags[i].fallback[0], '\0');
  }
  EXPECT_EQ(flags[0].value, "0.2500");       // env override resolved
  EXPECT_EQ(flags[4].value, "512");          // clamp applied before listing
  EXPECT_EQ(flags[5].value, "0");            // unset -> rendered default
  EXPECT_STREQ(flags[4].range, "[256, 1048576]");
}

// ------------------------------------------------------ Scenario::from_env

TEST(ScenarioFromEnv, ReadsAllKnobs) {
  ScopedEnv seed("CURTAIN_SEED", "42");
  ScopedEnv scale("CURTAIN_SCALE", "0.5");
  ScopedEnv shards("CURTAIN_SHARDS", "2");
  ScopedEnv cohorts("CURTAIN_COHORTS", "5");
  ScopedEnv metrics("CURTAIN_METRICS_OUT", "/tmp/m.json");
  ScopedEnv profile("CURTAIN_PROFILE_OUT", "/tmp/trace.json");
  const auto scenario = core::Scenario::from_env();
  EXPECT_EQ(scenario.seed, 42u);
  EXPECT_EQ(scenario.scale, 0.5);
  EXPECT_EQ(scenario.shards, 2);
  EXPECT_EQ(scenario.cohorts, 5);
  EXPECT_EQ(scenario.metrics_out, "/tmp/m.json");
  EXPECT_EQ(scenario.profile_out, "/tmp/trace.json");
}

TEST(ScenarioFromEnv, HostileValuesYieldSafeDefaults) {
  ScopedEnv seed("CURTAIN_SEED", "twenty");
  ScopedEnv scale("CURTAIN_SCALE", "");
  ScopedEnv shards("CURTAIN_SHARDS", "-8");
  ScopedEnv cohorts("CURTAIN_COHORTS", "many");
  ScopedEnv metrics("CURTAIN_METRICS_OUT", nullptr);
  ScopedEnv profile("CURTAIN_PROFILE_OUT", nullptr);
  const auto scenario = core::Scenario::from_env();
  EXPECT_EQ(scenario.seed, 20141105u);
  EXPECT_EQ(scenario.scale, 0.05);
  EXPECT_EQ(scenario.shards, 1);
  EXPECT_EQ(scenario.cohorts, 0);
  EXPECT_TRUE(scenario.metrics_out.empty());
  EXPECT_TRUE(scenario.profile_out.empty());  // profiling stays opt-in
  // A from_env scenario must always satisfy campaign_config()'s contracts.
  const auto config = scenario.campaign_config();
  EXPECT_GT(config.duration_days, 0.0);
}

TEST(ScenarioFromEnv, OutOfRangeShardsAreClamped) {
  ScopedEnv shards("CURTAIN_SHARDS", "1000000");
  EXPECT_EQ(core::Scenario::from_env().shards, 64);
}

TEST(ScenarioSetters, WithScaleShardsAndCohortsClampLikeEnv) {
  core::Scenario scenario;
  EXPECT_EQ(scenario.with_scale(-2.0).scale, 0.05);
  EXPECT_EQ(scenario.with_scale(9.0).scale, 1.0);
  EXPECT_EQ(scenario.with_shards(0).shards, 1);
  EXPECT_EQ(scenario.with_cohorts(-1).cohorts, 0);
  EXPECT_EQ(scenario.with_cohorts(999).cohorts, 64);
  EXPECT_EQ(scenario.with_cohorts(7).cohorts, 7);
}

}  // namespace
}  // namespace curtain
