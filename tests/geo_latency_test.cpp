#include <gtest/gtest.h>

#include "net/geo.h"
#include "net/latency.h"

namespace curtain::net {
namespace {

TEST(Geo, DistanceZeroForSamePoint) {
  const GeoPoint p{40.0, -74.0};
  EXPECT_NEAR(distance_km(p, p), 0.0, 1e-9);
}

TEST(Geo, KnownDistanceNycToLa) {
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint la{34.05, -118.24};
  // Great-circle NYC-LA is ~3940 km.
  EXPECT_NEAR(distance_km(nyc, la), 3940.0, 60.0);
}

TEST(Geo, KnownDistanceSeoulBusan) {
  const GeoPoint seoul{37.57, 126.98};
  const GeoPoint busan{35.18, 129.08};
  EXPECT_NEAR(distance_km(seoul, busan), 325.0, 25.0);
}

TEST(Geo, DistanceSymmetric) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
}

TEST(Geo, PropagationScalesWithDistance) {
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint chi{41.88, -87.63};
  const GeoPoint la{34.05, -118.24};
  EXPECT_LT(propagation_ms(nyc, chi), propagation_ms(nyc, la));
  // NYC-LA one way over fiber with stretch: roughly 25-32 ms.
  EXPECT_GT(propagation_ms(nyc, la), 20.0);
  EXPECT_LT(propagation_ms(nyc, la), 40.0);
}

TEST(Geo, OffsetKmApproximation) {
  const GeoPoint origin{40.0, -74.0};
  const GeoPoint north = offset_km(origin, 0.0, 111.0);
  EXPECT_NEAR(north.lat_deg, 41.0, 0.01);
  const GeoPoint east = offset_km(origin, 50.0, 0.0);
  EXPECT_NEAR(distance_km(origin, east), 50.0, 2.0);
}

TEST(Geo, MetroListsPopulated) {
  EXPECT_EQ(us_metros().size(), 16u);
  EXPECT_EQ(kr_metros().size(), 6u);
  EXPECT_EQ(world_metros().size(), 30u);  // Google's 30 sites fit exactly
}

TEST(Latency, FixedIsDeterministic) {
  Rng rng(1);
  const LatencyModel m = LatencyModel::fixed(5.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.sample(rng), 5.0);
}

TEST(Latency, JitteredMedianApproximatesTarget) {
  Rng rng(2);
  const LatencyModel m = LatencyModel::jittered(30.0, 0.25);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(m.sample(rng));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 30.0, 1.0);
}

TEST(Latency, WanHasFloor) {
  Rng rng(3);
  const LatencyModel m = LatencyModel::wan(20.0, 2.0);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(m.sample(rng), 20.0);
}

TEST(Latency, SamplesNeverNegative) {
  Rng rng(4);
  const LatencyModel m = LatencyModel::jittered(0.5, 2.0);  // heavy tail
  for (int i = 0; i < 10000; ++i) EXPECT_GE(m.sample(rng), 0.0);
}

TEST(Latency, TypicalMsIsFloorPlusMedian) {
  const LatencyModel m = LatencyModel::wan(10.0, 3.0);
  EXPECT_DOUBLE_EQ(m.typical_ms(), 13.0);
}

// Property sweep: the median-parameterized lognormal holds across shapes.
class LatencyMedianSweep : public ::testing::TestWithParam<double> {};

TEST_P(LatencyMedianSweep, MedianMatchesParameter) {
  const double sigma = GetParam();
  Rng rng(42 + static_cast<uint64_t>(sigma * 100));
  const LatencyModel m = LatencyModel::jittered(100.0, sigma);
  std::vector<double> samples;
  for (int i = 0; i < 30001; ++i) samples.push_back(m.sample(rng));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 100.0, 100.0 * 0.04);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LatencyMedianSweep,
                         ::testing::Values(0.1, 0.2, 0.35, 0.5, 0.8));

}  // namespace
}  // namespace curtain::net
