// End-to-end invariants: run one short campaign and check that the
// paper's qualitative findings emerge from the simulation.
#include <gtest/gtest.h>

#include "analysis/figures.h"
#include "core/study.h"
#include "obs/metrics.h"

namespace curtain {
namespace {

using analysis::Ecdf;

class StudyIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ~3 days, ~2k experiments
    study_ = new core::Study(
        core::Scenario::paper_2014().with_seed(20141105).with_scale(0.02));
    study_->run();
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static const measure::RecordStore& data() { return study_->records(); }
  static core::Study* study_;
};

core::Study* StudyIntegrationTest::study_ = nullptr;

TEST_F(StudyIntegrationTest, CampaignProducedSubstantialData) {
  EXPECT_GT(data().experiment_count(), 1000u);
  EXPECT_GT(data().resolution_count(), 50000u);
  EXPECT_GT(data().probe_count(), 100000u);
}

// The obs registry saw the campaign: the headline counters every layer
// bumps are all non-zero after a default run.
TEST_F(StudyIntegrationTest, ObservabilityCountersPopulated) {
  const auto snapshot = obs::metrics().snapshot();
  EXPECT_GT(snapshot.counter_value("curtain_dns_queries_total"), 0u);
  EXPECT_GT(snapshot.counter_value("curtain_dns_cache_hits_total"), 0u);
  EXPECT_GT(snapshot.counter_value("curtain_cdn_mapping_lookups_total"), 0u);
  EXPECT_GT(snapshot.counter_value("curtain_measure_experiments_total"), 0u);
  EXPECT_GT(snapshot.counter_value("curtain_cell_client_queries_total"), 0u);
  // And the report knows where the wall-clock went.
  EXPECT_FALSE(study_->report().empty());
  EXPECT_GT(study_->report().wall_ms_total(), 0.0);
}

// Sampled resolutions carry a hop-by-hop virtual-time trace whose
// top-level spans partition the recorded resolution time exactly.
TEST_F(StudyIntegrationTest, ResolutionTracesDecomposeLatency) {
  ASSERT_GT(data().trace_count(), 0u);
  size_t checked = 0;
  for (const auto& row : data().resolutions()) {
    if (row.trace_index < 0) continue;
    ASSERT_LT(static_cast<size_t>(row.trace_index), data().trace_count());
    const auto& trace = data().trace_at(row.trace_index);
    ASSERT_GE(trace.spans.size(), 3u);
    EXPECT_NEAR(trace.top_level_ms(), row.resolution_ms, 1e-6);
    EXPECT_NEAR(trace.total_ms, row.resolution_ms, 1e-6);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

// §4.1 / Table 3: Verizon is the only carrier with 100% pairing
// consistency; pool and anycast carriers sit well below it.
TEST_F(StudyIntegrationTest, VerizonUniquelyConsistent) {
  const auto stats = analysis::ldns_pair_stats(data());
  const auto& verizon = stats[3];
  EXPECT_NEAR(verizon.consistency_percent, 100.0, 0.01);
  EXPECT_EQ(verizon.pairs, verizon.client_resolvers);  // strict 1:1
  for (const size_t c : {size_t{1}, size_t{2}, size_t{5}}) {
    EXPECT_LT(stats[c].consistency_percent, 95.0)
        << analysis::carrier_name(static_cast<int>(c));
  }
}

// §4.1: indirect resolution everywhere — external addresses differ from
// the configured resolver addresses in every carrier.
TEST_F(StudyIntegrationTest, IndirectResolutionEverywhere) {
  const auto stats = analysis::ldns_pair_stats(data());
  for (const auto& row : stats) {
    EXPECT_GT(row.client_resolvers, 0u)
        << analysis::carrier_name(row.carrier_index);
    EXPECT_GE(row.external_resolvers, row.client_resolvers);
  }
}

// Table 4: only the DMZ-hosted tiers (Verizon, AT&T, a sliver of
// T-Mobile) answer the wired vantage point; SK carriers and Sprint are
// fully opaque. Traceroutes never complete.
TEST_F(StudyIntegrationTest, OpaquenessMatchesTable4) {
  const auto table = analysis::external_reachability(data());
  const auto fraction = [](const analysis::ReachabilityStats& row) {
    return row.total == 0 ? 0.0
                          : static_cast<double>(row.ping_responded) /
                                static_cast<double>(row.total);
  };
  EXPECT_GT(fraction(table[0]), 0.5);  // AT&T majority
  EXPECT_GT(fraction(table[3]), 0.5);  // Verizon majority
  EXPECT_DOUBLE_EQ(fraction(table[1]), 0.0);  // Sprint
  EXPECT_DOUBLE_EQ(fraction(table[4]), 0.0);  // SK Telecom
  EXPECT_DOUBLE_EQ(fraction(table[5]), 0.0);  // LG U+
  for (const auto& row : table) {
    EXPECT_EQ(row.traceroute_reached, 0u);
  }
}

// Fig. 3: radio technologies form ordered latency bands.
TEST_F(StudyIntegrationTest, RadioBandsOrdered) {
  const auto groups = analysis::fig3_radio_bands(data());
  const auto& att = groups.at("AT&T");
  ASSERT_TRUE(att.count("LTE"));
  const double lte_median = att.at("LTE").median();
  if (att.count("HSPAP") && att.at("HSPAP").size() > 20) {
    EXPECT_GT(att.at("HSPAP").median(), lte_median);
  }
  EXPECT_GT(lte_median, 20.0);
  EXPECT_LT(lte_median, 120.0);
}

// Fig. 4: externals are farther than client-facing resolvers where both
// respond; SK Telecom's are collocated (nearly equal).
TEST_F(StudyIntegrationTest, ExternalResolversFartherExceptSkt) {
  const auto groups = analysis::fig4_resolver_distance(data());
  const auto& sprint = groups.at("Sprint");
  ASSERT_TRUE(sprint.count("Client") && sprint.count("External"));
  EXPECT_GT(sprint.at("External").median(), sprint.at("Client").median());

  const auto& skt = groups.at("SK Telecom");
  EXPECT_NEAR(skt.at("External").median(), skt.at("Client").median(),
              skt.at("Client").median() * 0.35);

  // Verizon/LG U+ externals never answer subscriber pings (Figs. 4/11).
  EXPECT_FALSE(groups.at("Verizon").count("External"));
  EXPECT_FALSE(groups.at("LG U+").count("External"));
}

// Fig. 7: back-to-back repeats are mostly cache hits with a ~20% miss
// tail.
TEST_F(StudyIntegrationTest, CacheEffectSecondLookups) {
  const auto groups = analysis::fig7_cache_effect(data());
  const auto& first = groups.at("1st Lookup");
  const auto& second = groups.at("2nd Lookup");
  EXPECT_LT(second.median(), first.median() * 1.05);
  // The slow tail of second lookups (misses) is a minority but exists.
  const double threshold = first.quantile(0.75);
  const double second_slow = 1.0 - second.fraction_at_or_below(threshold);
  EXPECT_GT(second_slow, 0.02);
  EXPECT_LT(second_slow, 0.45);
}

// Fig. 10: same-/24 resolvers see overlapping replica sets; cross-/24
// resolvers see mostly disjoint ones.
TEST_F(StudyIntegrationTest, CosineSimilaritySplit) {
  const auto splits = analysis::fig10_cosine(data(), /*buzzfeed=*/5);
  Ecdf same_all;
  Ecdf diff_all;
  for (const auto& [carrier, split] : splits) {
    same_all.add_all(split.same_slash24.sorted_values());
    diff_all.add_all(split.different_slash24.sorted_values());
  }
  ASSERT_GT(same_all.size(), 3u);
  ASSERT_GT(diff_all.size(), 3u);
  EXPECT_GT(same_all.median(), 0.8);
  EXPECT_LT(diff_all.median(), 0.2);
}

// §5.2: traceroute-derived egress counts are substantial for the US
// carriers (the fleet discovers a large fraction of the provisioned
// gateways over the campaign).
TEST_F(StudyIntegrationTest, EgressPointsDiscovered) {
  const auto stats = analysis::egress_points(data());
  EXPECT_GT(stats[0].egress_points, 20u);  // AT&T (110 provisioned)
  EXPECT_GT(stats[3].egress_points, 15u);  // Verizon (62 provisioned)
  // And never more than provisioned.
  for (size_t c = 0; c < stats.size(); ++c) {
    EXPECT_LE(stats[c].egress_points,
              static_cast<size_t>(
                  cellular::study_carriers()[c].egress_points));
  }
}

// Table 5: Google shows far more distinct IPs than cellular DNS, but
// similar (or fewer) /24 counts, bounded by its 30 sites.
TEST_F(StudyIntegrationTest, CensusGoogleManyIpsFewPrefixes) {
  const auto census = analysis::resolver_census(data());
  const auto local = static_cast<size_t>(measure::ResolverKind::kLocal);
  const auto google = static_cast<size_t>(measure::ResolverKind::kGoogle);
  size_t google_ips = 0;
  for (const auto& row : census) {
    google_ips += row.unique_ips[google];
    EXPECT_LE(row.unique_slash24s[google], 30u);
  }
  EXPECT_GT(google_ips, 0u);
  // For Verizon (12 externals), Google shows more IPs than the carrier.
  EXPECT_GT(census[3].unique_ips[google], census[3].unique_ips[local]);
}

// Fig. 11: the carrier's resolvers are closer than public DNS where they
// respond.
TEST_F(StudyIntegrationTest, CellDnsCloserThanPublic) {
  const auto groups = analysis::fig11_public_distance(data());
  for (const auto* carrier : {"AT&T", "Sprint", "T-Mobile", "SK Telecom"}) {
    const auto& group = groups.at(carrier);
    ASSERT_TRUE(group.count("Cell LDNS")) << carrier;
    ASSERT_TRUE(group.count("GoogleDNS")) << carrier;
    EXPECT_LT(group.at("Cell LDNS").median(), group.at("GoogleDNS").median())
        << carrier;
  }
}

// Fig. 13: local resolution is faster at the median, but public DNS has
// the shorter tail (more consistent).
TEST_F(StudyIntegrationTest, PublicResolutionSlowerButSteadier) {
  const auto groups = analysis::fig13_public_resolution(data());
  int local_faster = 0;
  int carriers = 0;
  for (const auto& [carrier, group] : groups) {
    if (!group.count("local") || !group.count("GoogleDNS")) continue;
    ++carriers;
    if (group.at("local").median() < group.at("GoogleDNS").median()) {
      ++local_faster;
    }
  }
  ASSERT_GT(carriers, 4);
  EXPECT_GE(local_faster, carriers - 1);
}

// The headline (abstract): public DNS replicas perform equal-or-better a
// large majority of the time.
TEST_F(StudyIntegrationTest, HeadlinePublicEqualOrBetter) {
  const double headline =
      analysis::headline_public_equal_or_better(data());
  EXPECT_GT(headline, 0.60);
}

// Fig. 14's shape: a large mass exactly at zero (same /24 cluster), the
// remainder split to both sides.
TEST_F(StudyIntegrationTest, Fig14MassAtZero) {
  const auto groups = analysis::fig14_public_replica_delta(data());
  uint64_t zero = 0;
  uint64_t total = 0;
  for (const auto& [carrier, group] : groups) {
    for (const auto& [kind, cdf] : group) {
      total += cdf.size();
      for (const double v : cdf.sorted_values()) {
        if (v == 0.0) ++zero;
      }
    }
  }
  ASSERT_GT(total, 100u);
  const double zero_fraction = static_cast<double>(zero) / static_cast<double>(total);
  EXPECT_GT(zero_fraction, 0.2);
  EXPECT_LT(zero_fraction, 0.95);
}

// Fig. 2: users routinely observe replicas 50%+ slower than their best.
TEST_F(StudyIntegrationTest, ReplicaPenaltiesSubstantial) {
  const auto penalties = analysis::fig2_replica_penalty(data());
  int carriers_with_penalty = 0;
  for (const auto& [carrier, cdf] : penalties) {
    if (cdf.size() < 20) continue;
    if (cdf.quantile(0.9) > 50.0) ++carriers_with_penalty;
  }
  EXPECT_GE(carriers_with_penalty, 3);
}

// Figs. 8/9: resolver churn is visible even for stationary clients, and
// SK carriers confine it to 1-2 /24s while US unstable carriers span
// many.
TEST_F(StudyIntegrationTest, ResolverChurnShapes) {
  const auto lg = analysis::resolver_timelines(
      data(), 5, measure::ResolverKind::kLocal);
  size_t max_ips = 0;
  for (const auto& timeline : lg) {
    max_ips = std::max(max_ips, timeline.unique_ips());
    EXPECT_LE(timeline.unique_slash24s(), 2u);
  }
  EXPECT_GT(max_ips, 5u);  // LG U+ churns hard (65 IPs in two weeks)

  const auto verizon_static = analysis::static_resolver_timelines(
      data(), 3, measure::ResolverKind::kLocal);
  size_t verizon_max = 0;
  for (const auto& timeline : verizon_static) {
    verizon_max = std::max(verizon_max, timeline.unique_ips());
  }
  EXPECT_LE(verizon_max, 6u);  // stable mappings
}

// Fig. 12: Google's anycast still shows multiple /24s per client.
TEST_F(StudyIntegrationTest, GoogleResolverChurn) {
  size_t multi = 0;
  size_t total = 0;
  for (int c = 0; c < 6; ++c) {
    for (const auto& timeline : analysis::resolver_timelines(
             data(), c, measure::ResolverKind::kGoogle)) {
      if (timeline.times.size() < 10) continue;
      ++total;
      if (timeline.unique_slash24s() > 1) ++multi;
    }
  }
  ASSERT_GT(total, 10u);
  EXPECT_GT(static_cast<double>(multi) / static_cast<double>(total), 0.5);
}

}  // namespace
}  // namespace curtain
