#include <gtest/gtest.h>

#include "net/ip_allocator.h"
#include "net/ipv4.h"

namespace curtain::net {
namespace {

TEST(Ipv4, ParseDottedQuad) {
  const auto addr = Ipv4Addr::parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xc0000201u);
}

TEST(Ipv4, ParseBounds) {
  EXPECT_TRUE(Ipv4Addr::parse("0.0.0.0").has_value());
  EXPECT_TRUE(Ipv4Addr::parse("255.255.255.255").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").has_value());
}

TEST(Ipv4, ToStringRoundTrip) {
  const Ipv4Addr addr{10, 20, 30, 40};
  EXPECT_EQ(addr.to_string(), "10.20.30.40");
  EXPECT_EQ(Ipv4Addr::parse(addr.to_string()), addr);
}

TEST(Ipv4, Octets) {
  const Ipv4Addr addr{1, 2, 3, 4};
  EXPECT_EQ(addr.octet(0), 1);
  EXPECT_EQ(addr.octet(3), 4);
}

TEST(Ipv4, Slash24) {
  EXPECT_EQ(Ipv4Addr(192, 0, 2, 77).slash24(), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(Ipv4Addr(192, 0, 2, 0).slash24(), Ipv4Addr(192, 0, 2, 0));
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 4));
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(Ipv4Addr{192, 0, 2, 77}, 24);
  EXPECT_EQ(p.address(), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
}

TEST(Prefix, Contains) {
  const Prefix p(Ipv4Addr{10, 0, 0, 0}, 8);
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 255, 1, 2)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 0, 0, 0)));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix outer(Ipv4Addr{10, 0, 0, 0}, 8);
  const Prefix inner(Ipv4Addr{10, 1, 2, 0}, 24);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all(Ipv4Addr{}, 0);
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(all.size(), uint64_t{1} << 32);
}

TEST(Prefix, ParseValid) {
  const auto p = Prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 12);
  EXPECT_TRUE(p->contains(Ipv4Addr(172, 31, 255, 255)));
  EXPECT_FALSE(p->contains(Ipv4Addr(172, 32, 0, 0)));
}

TEST(Prefix, ParseInvalid) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
}

TEST(Prefix, HostIndexing) {
  const Prefix p(Ipv4Addr{192, 0, 2, 0}, 24);
  EXPECT_EQ(p.host(1), Ipv4Addr(192, 0, 2, 1));
  EXPECT_EQ(p.host(255), Ipv4Addr(192, 0, 2, 255));
  // Wraps modulo the block size.
  EXPECT_EQ(p.host(256), Ipv4Addr(192, 0, 2, 0));
}

TEST(Prefix, SlashSizes) {
  EXPECT_EQ(Prefix(Ipv4Addr{}, 24).size(), 256u);
  EXPECT_EQ(Prefix(Ipv4Addr{}, 32).size(), 1u);
}

TEST(IpAllocator, BlocksAreDisjoint) {
  IpAllocator alloc(Prefix(Ipv4Addr{20, 0, 0, 0}, 8));
  const Prefix a = alloc.alloc_block(24);
  const Prefix b = alloc.alloc_block(24);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(IpAllocator, HostsStayInBlockAndSkipNetworkAddress) {
  IpAllocator alloc(Prefix(Ipv4Addr{20, 0, 0, 0}, 8));
  const Prefix block = alloc.alloc_block(24);
  for (int i = 0; i < 300; ++i) {
    const Ipv4Addr host = alloc.alloc_host(block);
    EXPECT_TRUE(block.contains(host));
    EXPECT_NE(host, block.address());  // never the .0 address
  }
}

TEST(IpAllocator, HostsAreSequentialWithinBlock) {
  IpAllocator alloc(Prefix(Ipv4Addr{20, 0, 0, 0}, 8));
  const Prefix block = alloc.alloc_block(24);
  EXPECT_EQ(alloc.alloc_host(block), block.host(1));
  EXPECT_EQ(alloc.alloc_host(block), block.host(2));
}

}  // namespace
}  // namespace curtain::net
