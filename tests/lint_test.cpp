// curtain_lint rule tests: every rule must fire on a minimal fixture and
// every waiver must suppress it, plus a full-tree scan proving the real
// sources stay lint-clean (the same invariant the LintTree ctest enforces
// via the binary's exit code).
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace curtain::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- entropy

TEST(LintEntropy, FlagsRandSrandAndRandomDevice) {
  const auto findings = lint_file("src/dns/fixture.cpp", R"cpp(
int draw() {
  std::srand(42);
  std::random_device rd;
  return rand();
}
)cpp");
  EXPECT_EQ(count_rule(findings, "entropy"), 3);
}

TEST(LintEntropy, IdentifierBoundariesAvoidSubstrings) {
  // "strand"/"grand_total" contain "rand" but are not entropy calls.
  const auto findings = lint_file("src/dns/fixture.cpp", R"cpp(
int strand = 1;
int grand_total = strand + 1;
)cpp");
  EXPECT_EQ(count_rule(findings, "entropy"), 0);
}

TEST(LintEntropy, RngImplementationIsExempt) {
  const auto findings =
      lint_file("src/net/rng.cpp", "int x = rand();\n");
  EXPECT_EQ(count_rule(findings, "entropy"), 0);
}

TEST(LintEntropy, WaiverSuppresses) {
  const auto findings = lint_file(
      "src/dns/fixture.cpp", "int x = rand();  // lint: entropy\n");
  EXPECT_EQ(count_rule(findings, "entropy"), 0);
}

// --------------------------------------------------------------- wallclock

TEST(LintWallclock, FlagsClockTokensAndTimeNullptr) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
void f() {
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::system_clock::now();
  auto c = time(nullptr);
  auto d = time(NULL);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "wallclock"), 4);
}

TEST(LintWallclock, PlainTimeIdentifierIsNotFlagged) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
double time = 0.0;
double t2 = time + resolve_time(query);
)cpp");
  EXPECT_EQ(count_rule(findings, "wallclock"), 0);
}

TEST(LintWallclock, ClockSubstrateIsExempt) {
  EXPECT_EQ(count_rule(lint_file("src/net/clock.cpp",
                                 "auto t = std::chrono::steady_clock::now();\n"),
                       "wallclock"),
            0);
  EXPECT_EQ(count_rule(lint_file("src/net/time.cpp",
                                 "auto t = std::chrono::steady_clock::now();\n"),
                       "wallclock"),
            0);
}

TEST(LintWallclock, WaiverSuppresses) {
  const auto findings = lint_file(
      "src/measure/fixture.cpp",
      "auto t = std::chrono::steady_clock::now();  // lint: wallclock\n");
  EXPECT_EQ(count_rule(findings, "wallclock"), 0);
}

TEST(LintWallclock, ProfilerWallclockAliasSuppresses) {
  // The flight recorder's sanctioned spelling: reads like a statement of
  // intent ("this is profiler time") rather than a bare rule name.
  const auto findings = lint_file(
      "src/obs/fixture.cpp",
      "auto t = std::chrono::steady_clock::now();  // lint: profiler-wallclock\n");
  EXPECT_EQ(count_rule(findings, "wallclock"), 0);
}

TEST(LintWallclock, ProfilerWallclockAliasOnlyCoversWallclock) {
  // The alias must not leak into unrelated rules on the same line.
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
std::unordered_map<int, double> totals;
void dump() {
  for (const auto& [k, v] : totals) print(k, v);  // lint: profiler-wallclock
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

// ----------------------------------------------------------- unordered-iter

TEST(LintUnorderedIter, FlagsRangeForInExportReachingFile) {
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
std::unordered_map<int, double> totals;
void dump() {
  for (const auto& [k, v] : totals) print(k, v);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, FlagsIteratorWalk) {
  const auto findings = lint_file("src/exec/fixture.cpp", R"cpp(
std::unordered_set<uint32_t> seen;
void dump() {
  for (auto it = seen.begin(); it != seen.end(); ++it) print(*it);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, RuntimeStatePathsAreOutOfScope) {
  // dns/ cache state is per-shard and never reaches exports; the rule is
  // deliberately scoped to export/analysis-reaching directories.
  const auto findings = lint_file("src/dns/fixture.cpp", R"cpp(
std::unordered_map<int, double> cache;
void sweep() {
  for (const auto& [k, v] : cache) evict(k);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, OrderInsensitiveWaiverSuppresses) {
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
std::unordered_map<int, double> totals;
double sum() {
  double s = 0;
  for (const auto& [k, v] : totals) s = max(s, v);  // lint: order-insensitive
  return s;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, SiblingHeaderMembersAreTracked) {
  // The container is declared only in the paired header; the .cpp loop must
  // still be caught.
  const std::string header = R"cpp(
class Agg {
  std::unordered_map<uint32_t, uint64_t> counts_;
};
)cpp";
  const std::string source = R"cpp(
void Agg::dump() {
  for (const auto& [k, v] : counts_) print(k, v);
}
)cpp";
  EXPECT_EQ(count_rule(lint_file("src/analysis/agg.cpp", source, header),
                       "unordered-iter"),
            1);
  // Without the sibling header the member is invisible.
  EXPECT_EQ(count_rule(lint_file("src/analysis/agg.cpp", source),
                       "unordered-iter"),
            0);
}

TEST(LintUnorderedIter, OrderSafeContainersAreNotFlagged) {
  // util::SmallVec (and the std sequence/tree containers) iterate in a
  // deterministic order; loops over them are fine in export paths.
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
util::SmallVec<uint8_t, 8> ends_;
std::map<int, double> totals_;
std::vector<int> order_;
void dump() {
  for (const auto e : ends_) print(e);
  for (const auto& [k, v] : totals_) print(k, v);
  for (auto it = order_.begin(); it != order_.end(); ++it) print(*it);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, OrderSafeDeclarationUntracksSharedName) {
  // A local `totals` declared as std::map shadows the unordered member of
  // the same name; iterating the local must not be misattributed to the
  // hash container. (The cost: iterating the member in another function in
  // the same file is also unflagged — acceptable for a heuristic linter.)
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
class Agg {
  std::unordered_map<int, double> totals;
};
void dump(const Agg& agg) {
  std::map<int, double> totals = sorted(agg);
  for (const auto& [k, v] : totals) print(k, v);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, UnorderedStillFlaggedNextToOrderSafeNames) {
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
std::unordered_map<int, double> totals;
util::SmallVec<uint8_t, 8> ends;
void dump() {
  for (const auto e : ends) print(e);
  for (const auto& [k, v] : totals) print(k, v);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, FunctionReturningContainerIsNotAVariable) {
  const auto findings = lint_file("src/analysis/fixture.cpp", R"cpp(
std::unordered_map<int, double> build_totals();
void use() {
  for (const auto& [k, v] : sorted(build_totals())) print(k, v);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 0);
}

// ------------------------------------------------------------------ rng-seed

TEST(LintRngSeed, FlagsLiteralSeeds) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
void f() {
  net::Rng rng(42);
  auto shared = std::make_shared<net::Rng>(7);
  use(net::Rng(1234));
}
)cpp");
  EXPECT_EQ(count_rule(findings, "rng-seed"), 3);
}

TEST(LintRngSeed, DerivedSeedsPass) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
void f(uint64_t seed) {
  net::Rng a(net::mix_key(seed, net::hash_tag("device")));
  net::Rng b(seed);
  auto c = std::make_unique<net::Rng>(rng.derive("probe"));
}
)cpp");
  EXPECT_EQ(count_rule(findings, "rng-seed"), 0);
}

TEST(LintRngSeed, MultiLineConstructionIsMatched) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
void f() {
  net::Rng rng(
      17);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "rng-seed"), 1);
}

TEST(LintRngSeed, RngSubstrateIsExemptAndWaiverSuppresses) {
  EXPECT_EQ(count_rule(lint_file("src/net/rng.cpp", "Rng r(99);\n"),
                       "rng-seed"),
            0);
  EXPECT_EQ(count_rule(lint_file("src/measure/fixture.cpp",
                                 "net::Rng rng(99);  // lint: rng-seed\n"),
                       "rng-seed"),
            0);
}

// ------------------------------------------------------------ header hygiene

TEST(LintHeaders, MissingPragmaOnceFires) {
  const auto findings =
      lint_file("src/dns/fixture.h", "int forty_two();\n");
  ASSERT_EQ(count_rule(findings, "pragma-once"), 1);
  EXPECT_EQ(findings.front().line, 1);
}

TEST(LintHeaders, PragmaOncePresentPasses) {
  const auto findings =
      lint_file("src/dns/fixture.h", "#pragma once\nint forty_two();\n");
  EXPECT_EQ(count_rule(findings, "pragma-once"), 0);
}

TEST(LintHeaders, UsingNamespaceInHeaderFires) {
  const auto findings = lint_file(
      "src/dns/fixture.h", "#pragma once\nusing namespace std;\n");
  EXPECT_EQ(count_rule(findings, "using-namespace"), 1);
}

TEST(LintHeaders, SourcesAreExemptFromHeaderRules) {
  const auto findings =
      lint_file("src/dns/fixture.cpp", "using namespace std;\n");
  EXPECT_EQ(count_rule(findings, "pragma-once"), 0);
  EXPECT_EQ(count_rule(findings, "using-namespace"), 0);
}

// ----------------------------------------------- comment/string insulation

TEST(LintPreprocess, CommentsAndStringsDoNotTriggerRules) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
// rand() and steady_clock in a comment are fine.
/* so is srand(1) in a block comment,
   even spanning lines with random_device */
const char* msg = "call rand() or use steady_clock";
)cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFormat, FindingFormatIsFileLineRuleMessage) {
  const Finding finding{"src/dns/a.cpp", 12, "entropy", "no ad-hoc entropy"};
  EXPECT_EQ(format(finding), "src/dns/a.cpp:12: [entropy] no ad-hoc entropy");
}

TEST(LintFindings, SortedByLine) {
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
void f() {
  auto t = std::chrono::steady_clock::now();
  int x = rand();
}
)cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_LT(findings[0].line, findings[1].line);
}

// ------------------------------------------------------- token-stream lexer

TEST(LintLexer, RawStringContentsAreInsulated) {
  // rand/steady_clock inside the raw literal are data, not code.
  const auto findings = lint_file("src/measure/fixture.cpp", R"cpp(
const char* q = R"sql(
  rand() steady_clock "lone quote
)sql";
)cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintLexer, CodeAfterRawStringCloseIsScanned) {
  // The regression the old per-line stripper had: the lone `"` inside the
  // raw string flipped its quote state, blanking the real code after the
  // closing `)"` — this rand() went unseen.
  const auto findings = lint_file(
      "src/measure/fixture.cpp",
      "const char* q = R\"(\n  \"lone quote\n)\"; int x = rand();\n");
  ASSERT_EQ(count_rule(findings, "entropy"), 1);
  EXPECT_EQ(findings.front().line, 3);
}

TEST(LintLexer, DelimitedRawStringsAreMatchedExactly) {
  // `)"` inside a delimited raw string is contents; only `)sql"` closes.
  const auto findings = lint_file(
      "src/measure/fixture.cpp",
      "const char* q = R\"sql(a)\" rand() b)sql\"; int ok = 1;\n");
  EXPECT_EQ(count_rule(findings, "entropy"), 0);
}

TEST(LintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  // The old stripper treated `'0'` in 1'000'000 as a char literal and
  // blanked the rest of the line.
  const auto findings = lint_file(
      "src/measure/fixture.cpp", "int big = 1'000'000; int x = rand();\n");
  EXPECT_EQ(count_rule(findings, "entropy"), 1);
}

TEST(LintLexer, SplicedIncludeDirectiveIsParsed) {
  // A backslash-newline continuation inside a directive still yields one
  // logical #include; the target anchors to its own physical line.
  const auto findings = lint_file(
      "src/net/fixture.cpp", "#include \\\n\"measure/records.h\"\n");
  ASSERT_EQ(count_rule(findings, "layering"), 1);
  EXPECT_EQ(findings.front().line, 2);
}

TEST(LintLexer, SplicedStringLiteralStaysInsulated) {
  const auto findings = lint_file(
      "src/measure/fixture.cpp", "const char* s = \"ra\\\nnd()\";\n");
  EXPECT_EQ(count_rule(findings, "entropy"), 0);
}

// ------------------------------------------------------------------ layering

TEST(LintLayering, UpwardIncludeFiresAndNamesEdge) {
  const auto findings =
      lint_file("src/net/fixture.cpp", "#include \"measure/records.h\"\n");
  ASSERT_EQ(count_rule(findings, "layering"), 1);
  EXPECT_NE(findings.front().message.find("net -> measure"),
            std::string::npos)
      << findings.front().message;
}

TEST(LintLayering, DownwardAndSameModuleIncludesPass) {
  const auto findings = lint_file("src/measure/fixture.cpp",
                                  "#include \"dns/cache.h\"\n"
                                  "#include \"measure/records.h\"\n"
                                  "#include \"util/csv.h\"\n");
  EXPECT_EQ(count_rule(findings, "layering"), 0);
}

TEST(LintLayering, SameLayerSiblingsMayNotIncludeEachOther) {
  // exec and analysis both sit on layer 6; neither may reach the other.
  const auto findings =
      lint_file("src/exec/fixture.cpp", "#include \"analysis/stats.h\"\n");
  EXPECT_EQ(count_rule(findings, "layering"), 1);
}

TEST(LintLayering, SystemAndUnknownIncludesAreIgnored) {
  const auto findings = lint_file("src/net/fixture.cpp",
                                  "#include <vector>\n"
                                  "#include \"thirdparty/json.h\"\n"
                                  "#include \"net_helpers.h\"\n");
  EXPECT_EQ(count_rule(findings, "layering"), 0);
}

TEST(LintLayering, FilesOutsideSrcAreUnconstrained) {
  // bench/, examples/ and tools/ sit above the DAG and may reach anything.
  const auto findings = lint_file("bench/fixture.cpp",
                                  "#include \"core/study.h\"\n"
                                  "#include \"measure/records.h\"\n");
  EXPECT_EQ(count_rule(findings, "layering"), 0);
}

TEST(LintLayering, WaiverSuppresses) {
  const auto findings = lint_file(
      "src/net/fixture.cpp",
      "#include \"measure/records.h\"  // lint: layering (transitional)\n");
  EXPECT_EQ(count_rule(findings, "layering"), 0);
}

// ------------------------------------------------------------- include-cycle

TEST(LintIncludeCycle, FiresOncePerCycleAndNamesTheChain) {
  const auto findings = lint_file_set({
      {"src/measure/a.h", "#pragma once\n#include \"measure/b.h\"\n"},
      {"src/measure/b.h", "#pragma once\n#include \"measure/a.h\"\n"},
  });
  ASSERT_EQ(count_rule(findings, "include-cycle"), 1);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule == "include-cycle";
      });
  EXPECT_EQ(it->file, "src/measure/b.h");
  EXPECT_NE(
      it->message.find("measure/a.h -> measure/b.h -> measure/a.h"),
      std::string::npos)
      << it->message;
}

TEST(LintIncludeCycle, AcyclicChainsPass) {
  const auto findings = lint_file_set({
      {"src/measure/a.h", "#pragma once\n#include \"measure/b.h\"\n"},
      {"src/measure/b.h", "#pragma once\n#include \"measure/c.h\"\n"},
      {"src/measure/c.h", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(findings, "include-cycle"), 0);
}

TEST(LintIncludeCycle, WaiverOnClosingIncludeSuppresses) {
  const auto findings = lint_file_set({
      {"src/measure/a.h", "#pragma once\n#include \"measure/b.h\"\n"},
      {"src/measure/b.h",
       "#pragma once\n"
       "#include \"measure/a.h\"  // lint: include-cycle (legacy pair)\n"},
  });
  EXPECT_EQ(count_rule(findings, "include-cycle"), 0);
}

// ------------------------------------------------------------- shared-static

TEST(LintSharedStatic, FlagsNamespaceAndFunctionLocalMutableStatics) {
  const auto findings = lint_file("src/exec/fixture.cpp", R"cpp(
static int g_counter = 0;
namespace exec {
int next() {
  static int last = 0;
  return ++last;
}
}
)cpp");
  EXPECT_EQ(count_rule(findings, "shared-static"), 2);
}

TEST(LintSharedStatic, ConstConstexprAndThreadLocalPass) {
  const auto findings = lint_file("src/exec/fixture.cpp", R"cpp(
static constexpr int kFanout = 4;
static const char* const kNames[] = {"urban", "rural"};
int scratch() {
  static thread_local int slot = 0;
  return slot;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "shared-static"), 0);
}

TEST(LintSharedStatic, FunctionsAndClassMembersAreNotVariables) {
  const auto findings = lint_file("src/exec/fixture.cpp", R"cpp(
static int helper(int x) { return x + 1; }
static void forward_decl(int x);
class Gadget {
  static int live_count_;
  static int make();
};
)cpp");
  EXPECT_EQ(count_rule(findings, "shared-static"), 0);
}

TEST(LintSharedStatic, TemplatesDoNotConfuseTheScopeWalk) {
  const auto findings = lint_file("src/exec/fixture.cpp", R"cpp(
template <class T>
static T zero() { return T{}; }
static int g_bad = 1;
)cpp");
  EXPECT_EQ(count_rule(findings, "shared-static"), 1);
}

TEST(LintSharedStatic, FlagsStaticContainersWithoutInitializer) {
  const auto findings = lint_file(
      "src/exec/fixture.cpp",
      "static std::unordered_map<int, long> g_lookup;\n");
  EXPECT_EQ(count_rule(findings, "shared-static"), 1);
}

TEST(LintSharedStatic, WaiverSuppresses) {
  const auto findings = lint_file(
      "src/exec/fixture.cpp",
      "static int g_hits = 0;  // lint: shared-static (test-only counter)\n");
  EXPECT_EQ(count_rule(findings, "shared-static"), 0);
}

// ----------------------------------------------------------------- hot-alloc

TEST(LintHotAlloc, SilentWithoutMarker) {
  const auto findings = lint_file(
      "src/dns/fixture.cpp", "int* leak() { return new int(7); }\n");
  EXPECT_EQ(count_rule(findings, "hot-alloc"), 0);
}

TEST(LintHotAlloc, FlagsAllocationIdiomsInMarkedFiles) {
  const auto findings = lint_file("src/dns/fixture.cpp", R"cpp(
// lint-hot-path
struct R;
R* grow() { return new R(); }
std::unique_ptr<R> boxed() { return std::make_unique<R>(); }
std::function<void()> cb;
void lookup(std::string name);
)cpp");
  EXPECT_EQ(count_rule(findings, "hot-alloc"), 4);
}

TEST(LintHotAlloc, PlacementNewViewsAndReturnsPass) {
  const auto findings = lint_file("src/dns/fixture.cpp", R"cpp(
// lint-hot-path
void reuse(void* slot) { ::new (slot) int(0); }
void find(const std::string& key);
void view(std::string_view key);
std::string render();
)cpp");
  EXPECT_EQ(count_rule(findings, "hot-alloc"), 0);
}

TEST(LintHotAlloc, MarkerWorksFromBlockComments) {
  const auto findings = lint_file(
      "src/dns/fixture.cpp",
      "/* lint-hot-path: resolver fast path */\nint* p = new int(1);\n");
  EXPECT_EQ(count_rule(findings, "hot-alloc"), 1);
}

TEST(LintHotAlloc, WaiverSuppresses) {
  const auto findings = lint_file(
      "src/dns/fixture.cpp",
      "// lint-hot-path\n"
      "int* spill() { return new int(1); }  // lint: hot-alloc (cold path)\n");
  EXPECT_EQ(count_rule(findings, "hot-alloc"), 0);
}

// ------------------------------------------------------- file sets / pairing

TEST(LintFileSet, PairsHppSiblingHeaders) {
  const auto findings = lint_file_set({
      {"src/analysis/agg.cpp",
       "void Agg::dump() {\n"
       "  for (const auto& [k, v] : counts_) print(k, v);\n"
       "}\n"},
      {"src/analysis/agg.hpp",
       "#pragma once\n"
       "class Agg { std::unordered_map<int, long> counts_; };\n"},
  });
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

TEST(LintFileSet, PairsHeadersInSiblingIncludeDirs) {
  // The lib/src + lib/include layout: agg.cpp's header lives one level up
  // under include/.
  const auto findings = lint_file_set({
      {"src/analysis/lib/src/agg.cpp",
       "void Agg::dump() {\n"
       "  for (const auto& [k, v] : counts_) print(k, v);\n"
       "}\n"},
      {"src/analysis/lib/include/agg.h",
       "#pragma once\n"
       "class Agg { std::unordered_map<int, long> counts_; };\n"},
  });
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1);
}

// --------------------------------------------------------- output & waivers

TEST(LintFormat, JsonOutputIsStableAndEscaped) {
  EXPECT_EQ(format_json({}), "[]");
  const std::vector<Finding> findings{
      {"src/a.cpp", 3, "entropy", "say \"no\""},
      {"src/b.h", 1, "pragma-once", "missing"}};
  EXPECT_EQ(format_json(findings),
            "[\n"
            "  {\"file\": \"src/a.cpp\", \"line\": 3, \"rule\": \"entropy\", "
            "\"message\": \"say \\\"no\\\"\"},\n"
            "  {\"file\": \"src/b.h\", \"line\": 1, \"rule\": "
            "\"pragma-once\", \"message\": \"missing\"}\n"
            "]");
}

TEST(LintFormat, WaiverFormatIsFileLineRule) {
  EXPECT_EQ(format(Waiver{"src/a.cpp", 9, "wallclock"}),
            "src/a.cpp:9: wallclock");
}

TEST(LintWaivers, MidCommentMentionsAreProseNotWaivers) {
  // Only a comment whose text *starts* with `lint:` waives; mentioning the
  // syntax mid-sentence (docs, this linter's own sources) is prose.
  const auto findings = lint_file(
      "src/dns/fixture.cpp",
      "int x = rand();  // waive with lint: entropy elsewhere\n");
  EXPECT_EQ(count_rule(findings, "entropy"), 1);
}

TEST(LintWaivers, InventoryListsActiveWaiversSorted) {
  const std::string root = CURTAIN_SOURCE_ROOT;
  const auto waivers = collect_waivers({root + "/tools/lint/testdata"});
  ASSERT_FALSE(waivers.empty());
  bool found = false;
  for (const Waiver& w : waivers) {
    if (w.rule == "order-insensitive" &&
        w.file.find("waived_ok.cpp") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "waived_ok.cpp's order-insensitive waiver missing";
  for (size_t i = 1; i < waivers.size(); ++i) {
    EXPECT_LE(waivers[i - 1].file, waivers[i].file);
    if (waivers[i - 1].file == waivers[i].file) {
      EXPECT_LE(waivers[i - 1].line, waivers[i].line);
    }
  }
}

// ------------------------------------------------------------- tree scan

TEST(LintTree, FixtureTreeFiresEveryRuleAndHonorsWaivers) {
  const std::string root = CURTAIN_SOURCE_ROOT;
  const auto findings = lint_tree({root + "/tools/lint/testdata"});
  // Every rule fires somewhere in the bad_* fixtures...
  for (const char* rule :
       {"entropy", "wallclock", "unordered-iter", "rng-seed", "record-growth",
        "layering", "include-cycle", "shared-static", "hot-alloc",
        "pragma-once", "using-namespace"}) {
    EXPECT_GT(count_rule(findings, rule), 0) << rule << " never fired";
  }
  // ...and the fully-waived fixture contributes nothing.
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.file.find("waived_ok"), std::string::npos)
        << format(finding);
  }
}

TEST(LintTree, RealSourcesAreClean) {
  const std::string root = CURTAIN_SOURCE_ROOT;
  const auto findings = lint_tree(
      {root + "/src", root + "/bench", root + "/examples", root + "/tools"});
  for (const Finding& finding : findings) {
    ADD_FAILURE() << format(finding);
  }
}

}  // namespace
}  // namespace curtain::lint
